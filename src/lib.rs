//! # poir — Persistent-Object-store Information Retrieval
//!
//! A from-scratch Rust reproduction of Brown, Callan, Moss & Croft,
//! *Supporting Full-Text Information Retrieval with a Persistent Object
//! Store* (EDBT 1994): the INQUERY probabilistic retrieval engine with its
//! inverted file index stored either in a custom B-tree keyed file (the
//! baseline) or in the Mneme persistent object store (the paper's
//! contribution).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`storage`] — simulated disk, OS file cache, and I/O accounting,
//! * [`mneme`] — the persistent object store,
//! * [`btree`] — the baseline B-tree keyed-file package,
//! * [`inquery`] — the IR engine (dictionary, indexer, query processing),
//! * [`core`] — the integration layer and [`core::Engine`] facade,
//! * [`collections`] — synthetic document collections and query sets.
//!
//! See `examples/quickstart.rs` for a five-minute tour, or start here:
//!
//! ```
//! use poir::core::{BackendKind, Engine};
//! use poir::inquery::{IndexBuilder, StopWords};
//! use poir::storage::Device;
//!
//! let mut builder = IndexBuilder::new(StopWords::default());
//! builder.add_document("DOC-1", "full text retrieval with a persistent object store");
//! builder.add_document("DOC-2", "the custom b-tree package was replaced");
//! let index = builder.finish();
//!
//! let device = Device::with_defaults();
//! let mut engine = Engine::builder(&device)
//!     .backend(BackendKind::MnemeCache)
//!     .build(index)
//!     .unwrap();
//! let hits = engine.query("#phrase(object store)", 10).unwrap();
//! assert_eq!(hits[0].name, "DOC-1");
//! ```

pub use poir_btree as btree;
pub use poir_collections as collections;
pub use poir_core as core;
pub use poir_inquery as inquery;
pub use poir_mneme as mneme;
pub use poir_storage as storage;
pub use poir_telemetry as telemetry;

//! The B-tree keyed file: lookup, insert, delete, and bulk build.
//!
//! This is the re-implementation of INQUERY's original "custom B-tree
//! package" (Section 3.1): "The inverted file index is organized as a keyed
//! file, using term ids as keys and a B-tree index. There is one record per
//! term." Records range "from less than 8 bytes to over 2 Mbytes", so leaf
//! entries inline small records and spill large ones to overflow chains.
//!
//! Every page touched is a separate read system call against the simulated
//! device, and only internal pages pass through the (deliberately small)
//! [`crate::node_cache::NodeCache`] — reproducing the baseline's
//! more-than-one-access-per-lookup behaviour from Table 5.

use poir_storage::FileHandle;
use poir_telemetry::{Event, Recorder, TraceOp};

use crate::error::{BTreeError, Result};
use crate::node_cache::{NodeCache, DEFAULT_CACHE_NODES};
use crate::page::{
    build_internal, internal_capacity, overflow_pages, InternalPage, LeafPage, PageId,
    DEFAULT_PAGE_SIZE, LEAF_ENTRY, LEAF_HEADER, NIL_PAGE, PAGE_INTERNAL,
};

const MAGIC: &[u8; 4] = b"BTRF";
const VERSION: u16 = 1;

/// Construction parameters for a [`BTreeFile`].
#[derive(Debug, Clone)]
pub struct BTreeConfig {
    /// Page size in bytes; should equal the device transfer block.
    pub page_size: usize,
    /// Internal pages cached besides the root.
    pub cache_nodes: usize,
}

impl Default for BTreeConfig {
    fn default() -> Self {
        BTreeConfig { page_size: DEFAULT_PAGE_SIZE, cache_nodes: DEFAULT_CACHE_NODES }
    }
}

/// A disk-resident B-tree mapping `u32` keys to byte records.
pub struct BTreeFile {
    handle: FileHandle,
    page_size: usize,
    root: PageId,
    next_page: PageId,
    height: u32,
    record_count: u64,
    cache: NodeCache,
    /// Telemetry recorder for node descents and node-cache traffic
    /// (disabled by default).
    recorder: Recorder,
}

impl std::fmt::Debug for BTreeFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BTreeFile")
            .field("height", &self.height)
            .field("records", &self.record_count)
            .field("pages", &self.next_page)
            .finish_non_exhaustive()
    }
}

impl BTreeFile {
    /// Creates an empty tree on `handle`.
    pub fn create(handle: FileHandle, config: BTreeConfig) -> Result<Self> {
        assert!(
            config.page_size > LEAF_HEADER + LEAF_ENTRY + 16,
            "page size {} too small",
            config.page_size
        );
        let mut tree = BTreeFile {
            handle,
            page_size: config.page_size,
            root: 1,
            next_page: 2,
            height: 1,
            record_count: 0,
            cache: NodeCache::new(config.cache_nodes),
            recorder: Recorder::disabled(),
        };
        tree.cache.set_root_id(1);
        tree.write_page(1, LeafPage::empty(config.page_size).bytes())?;
        tree.write_header()?;
        Ok(tree)
    }

    /// Opens an existing tree.
    pub fn open(handle: FileHandle, cache_nodes: usize) -> Result<Self> {
        let header = handle.read(0, 32)?;
        if &header[0..4] != MAGIC {
            return Err(BTreeError::Corrupt("bad magic".into()));
        }
        let version = u16::from_le_bytes(header[4..6].try_into().unwrap());
        if version != VERSION {
            return Err(BTreeError::Corrupt(format!("unsupported version {version}")));
        }
        let page_size = u32::from_le_bytes(header[6..10].try_into().unwrap()) as usize;
        let root = u32::from_le_bytes(header[10..14].try_into().unwrap());
        let next_page = u32::from_le_bytes(header[14..18].try_into().unwrap());
        let height = u32::from_le_bytes(header[18..22].try_into().unwrap());
        let record_count = u64::from_le_bytes(header[22..30].try_into().unwrap());
        let mut cache = NodeCache::new(cache_nodes);
        cache.set_root_id(root);
        Ok(BTreeFile {
            handle,
            page_size,
            root,
            next_page,
            height,
            record_count,
            cache,
            recorder: Recorder::disabled(),
        })
    }

    /// Attaches a telemetry recorder: node descents and node-cache
    /// hits/misses are recorded from now on.
    pub fn attach_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    fn write_header(&self) -> Result<()> {
        let mut h = vec![0u8; 32];
        h[0..4].copy_from_slice(MAGIC);
        h[4..6].copy_from_slice(&VERSION.to_le_bytes());
        h[6..10].copy_from_slice(&(self.page_size as u32).to_le_bytes());
        h[10..14].copy_from_slice(&self.root.to_le_bytes());
        h[14..18].copy_from_slice(&self.next_page.to_le_bytes());
        h[18..22].copy_from_slice(&self.height.to_le_bytes());
        h[22..30].copy_from_slice(&self.record_count.to_le_bytes());
        self.handle.write(0, &h)?;
        Ok(())
    }

    /// Persists the header (page writes are write-through already).
    pub fn flush(&self) -> Result<()> {
        self.write_header()?;
        self.handle.sync()?;
        Ok(())
    }

    /// Number of records in the tree.
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    /// Height of the tree (1 = the root is a leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total file size in bytes (Table 1's "B-Tree Size" column).
    pub fn file_size(&self) -> u64 {
        self.next_page as u64 * self.page_size as u64
    }

    /// The storage handle backing this tree.
    pub fn handle(&self) -> &FileHandle {
        &self.handle
    }

    fn alloc_page(&mut self) -> PageId {
        let id = self.next_page;
        self.next_page += 1;
        id
    }

    fn read_page(&self, id: PageId) -> Result<Vec<u8>> {
        Ok(self.handle.read(id as u64 * self.page_size as u64, self.page_size)?)
    }

    fn write_page(&mut self, id: PageId, bytes: &[u8]) -> Result<()> {
        debug_assert_eq!(bytes.len(), self.page_size);
        self.cache.invalidate(id);
        self.handle.write(id as u64 * self.page_size as u64, bytes)?;
        Ok(())
    }

    /// Reads an internal page through the node cache.
    fn read_internal(&mut self, id: PageId) -> Result<Vec<u8>> {
        if let Some(bytes) = self.cache.get(id) {
            self.recorder.incr(Event::BTreeCacheHit);
            return Ok(bytes.to_vec());
        }
        self.recorder.incr(Event::BTreeCacheMiss);
        let bytes = self.read_page(id)?;
        if bytes[0] == PAGE_INTERNAL {
            self.cache.put(id, bytes.clone());
        }
        Ok(bytes)
    }

    /// Records larger than this are stored entirely in overflow chains.
    fn inline_threshold(&self) -> usize {
        (self.page_size - LEAF_HEADER) / 4 - LEAF_ENTRY
    }

    /// Walks from the root down the `height - 1` internal levels toward the
    /// leaf that would hold `key`, returning the internal path and the leaf
    /// id. The leaf itself is *not* read here.
    fn descend(&mut self, key: u32) -> Result<(Vec<PageId>, PageId)> {
        let mut path = Vec::with_capacity(self.height as usize - 1);
        let mut page_id = self.root;
        for _ in 0..self.height - 1 {
            let traced = self.recorder.trace_start();
            self.recorder.incr(Event::BTreeNodeDescent);
            let bytes = self.read_internal(page_id)?;
            self.recorder.trace_end(
                traced,
                TraceOp::BTreeDescent,
                page_id as u64,
                None,
                bytes.len() as u64,
            );
            if bytes[0] != PAGE_INTERNAL {
                return Err(BTreeError::Corrupt(format!(
                    "expected internal page at {page_id}, found type {}",
                    bytes[0]
                )));
            }
            path.push(page_id);
            page_id = InternalPage::new(&bytes).child_for(key);
        }
        Ok((path, page_id))
    }

    /// Looks up the record for `key`.
    pub fn lookup(&mut self, key: u32) -> Result<Option<Vec<u8>>> {
        let (_, leaf_id) = self.descend(key)?;
        let leaf = LeafPage::from_bytes(self.read_page(leaf_id)?);
        let Ok(i) = leaf.search(key) else { return Ok(None) };
        let entry = leaf.entry(i);
        self.read_record(&leaf, i, entry).map(Some)
    }

    /// Materialises the record behind leaf entry `i`: the inline payload,
    /// or a single seek + read of its contiguous overflow span (one file
    /// access, as the legacy package fetched large records).
    fn read_record(
        &self,
        leaf: &LeafPage,
        i: usize,
        entry: crate::page::LeafEntry,
    ) -> Result<Vec<u8>> {
        if entry.overflow == NIL_PAGE {
            if entry.inline_len != entry.total_len {
                return Err(BTreeError::Corrupt(format!(
                    "key {}: inline {} of {} bytes with no overflow",
                    entry.key, entry.inline_len, entry.total_len
                )));
            }
            return Ok(leaf.inline_payload(i).to_vec());
        }
        let offset = entry.overflow as u64 * self.page_size as u64;
        Ok(self.handle.read(offset, entry.total_len as usize)?)
    }

    /// Whether `key` has a record.
    pub fn contains(&mut self, key: u32) -> Result<bool> {
        let (_, leaf_id) = self.descend(key)?;
        let leaf = LeafPage::from_bytes(self.read_page(leaf_id)?);
        Ok(leaf.search(key).is_ok())
    }

    /// Writes `value`'s overflow span (if any), returning
    /// `(inline_bytes, first_overflow_page)`. Overflow records occupy a
    /// contiguous run of raw pages written with a single call.
    fn place_value<'v>(&mut self, value: &'v [u8]) -> Result<(&'v [u8], PageId)> {
        if value.len() <= self.inline_threshold() {
            return Ok((value, NIL_PAGE));
        }
        let pages = overflow_pages(self.page_size, value.len());
        let start = self.next_page;
        self.next_page += pages as u32;
        self.handle.write(start as u64 * self.page_size as u64, value)?;
        Ok((&[], start))
    }

    /// Inserts or replaces the record for `key`.
    pub fn insert(&mut self, key: u32, value: &[u8]) -> Result<()> {
        let (path, leaf_id) = self.descend(key)?;
        let mut leaf = LeafPage::from_bytes(self.read_page(leaf_id)?);
        if let Ok(i) = leaf.search(key) {
            // Replace: drop the old entry (old overflow pages are leaked —
            // the archival workload re-indexes rather than churns; see gc in
            // the Mneme backend for the managed alternative).
            leaf.remove(i);
            leaf.compact(self.page_size);
            self.record_count -= 1;
        }
        let (inline, overflow) = self.place_value(value)?;
        if leaf.fits(inline.len()) {
            leaf.insert(key, inline, value.len() as u32, overflow);
            self.write_page(leaf_id, leaf.bytes())?;
            self.record_count += 1;
            self.write_header()?;
            return Ok(());
        }
        // Split the leaf: move the upper half into a fresh page.
        let n = leaf.count();
        let mid = n / 2;
        let mut right = LeafPage::empty(self.page_size);
        right.set_next_leaf(leaf.next_leaf());
        for i in mid..n {
            let e = leaf.entry(i);
            let inline_payload = leaf.inline_payload(i).to_vec();
            right.insert(e.key, &inline_payload, e.total_len, e.overflow);
        }
        let mut left = LeafPage::empty(self.page_size);
        for i in 0..mid {
            let e = leaf.entry(i);
            let inline_payload = leaf.inline_payload(i).to_vec();
            left.insert(e.key, &inline_payload, e.total_len, e.overflow);
        }
        let right_id = self.alloc_page();
        left.set_next_leaf(right_id);
        let sep = right.entry(0).key;
        // Insert the new record into the proper half.
        let target = if key < sep { &mut left } else { &mut right };
        if !target.fits(inline.len()) {
            return Err(BTreeError::RecordTooLarge { key, len: value.len() });
        }
        target.insert(key, inline, value.len() as u32, overflow);
        self.write_page(leaf_id, left.bytes())?;
        self.write_page(right_id, right.bytes())?;
        self.record_count += 1;
        self.propagate_split(&path, sep, right_id)?;
        self.write_header()?;
        Ok(())
    }

    /// Inserts separator `sep` pointing at `new_page` into the parents along
    /// `path`, splitting internal pages (and growing the root) as needed.
    fn propagate_split(&mut self, path: &[PageId], sep: u32, new_page: PageId) -> Result<()> {
        let mut sep = sep;
        let mut new_page = new_page;
        for &parent_id in path.iter().rev() {
            let bytes = self.read_internal(parent_id)?;
            let view = InternalPage::new(&bytes);
            let count = view.count();
            let mut keys: Vec<u32> = (0..count).map(|i| view.key(i)).collect();
            let mut children: Vec<PageId> = (0..=count).map(|i| view.child(i)).collect();
            let pos = keys.partition_point(|&k| k <= sep);
            keys.insert(pos, sep);
            children.insert(pos + 1, new_page);
            if children.len() <= internal_capacity(self.page_size) {
                let page = build_internal(self.page_size, &keys, &children);
                self.write_page(parent_id, &page)?;
                return Ok(());
            }
            // Split this internal page; the middle key moves up.
            let mid = keys.len() / 2;
            let up_key = keys[mid];
            let right_keys = keys.split_off(mid + 1);
            keys.pop(); // up_key
            let right_children = children.split_off(mid + 1);
            let left_page = build_internal(self.page_size, &keys, &children);
            let right_page = build_internal(self.page_size, &right_keys, &right_children);
            let right_id = self.alloc_page();
            self.write_page(parent_id, &left_page)?;
            self.write_page(right_id, &right_page)?;
            sep = up_key;
            new_page = right_id;
        }
        // The root itself split: grow the tree.
        let new_root = self.alloc_page();
        let page = build_internal(self.page_size, &[sep], &[self.root, new_page]);
        self.write_page(new_root, &page)?;
        self.root = new_root;
        self.cache.set_root_id(new_root);
        self.height += 1;
        Ok(())
    }

    /// Removes the record for `key`. Pages are not rebalanced (deletion is
    /// rare in the archival workload); space is reclaimed by re-indexing.
    pub fn delete(&mut self, key: u32) -> Result<bool> {
        let (_, leaf_id) = self.descend(key)?;
        let mut leaf = LeafPage::from_bytes(self.read_page(leaf_id)?);
        let Ok(i) = leaf.search(key) else { return Ok(false) };
        leaf.remove(i);
        leaf.compact(self.page_size);
        self.write_page(leaf_id, leaf.bytes())?;
        self.record_count -= 1;
        self.write_header()?;
        Ok(true)
    }

    /// Builds a tree from key-sorted `(key, value)` pairs — the batch index
    /// creation path ("creation ... may be considered a special case of
    /// modification where a number of document additions are batched
    /// together", Section 2).
    pub fn bulk_build(
        handle: FileHandle,
        config: BTreeConfig,
        pairs: impl IntoIterator<Item = (u32, Vec<u8>)>,
    ) -> Result<Self> {
        let mut tree = BTreeFile::create(handle, config)?;
        // Fill leaves left to right.
        let mut leaves: Vec<(u32, PageId)> = Vec::new(); // (first key, page)
        let mut current = LeafPage::empty(tree.page_size);
        let mut current_id = tree.root; // reuse page 1 as the first leaf
        let mut first_key: Option<u32> = None;
        let mut last_key: Option<u32> = None;
        for (key, value) in pairs {
            if let Some(last) = last_key {
                assert!(key > last, "bulk_build requires strictly ascending keys");
            }
            last_key = Some(key);
            tree.record_count += 1;
            let (inline, overflow) = tree.place_value(&value)?;
            if !current.fits(inline.len()) {
                // Seal this leaf and start the next one.
                let next_id = tree.alloc_page();
                current.set_next_leaf(next_id);
                tree.write_page(current_id, current.bytes())?;
                leaves.push((first_key.expect("sealed leaf is non-empty"), current_id));
                current = LeafPage::empty(tree.page_size);
                current_id = next_id;
                first_key = None;
            }
            if first_key.is_none() {
                first_key = Some(key);
            }
            current.insert(key, inline, value.len() as u32, overflow);
        }
        tree.write_page(current_id, current.bytes())?;
        leaves.push((first_key.unwrap_or(0), current_id));
        // Build internal levels bottom-up.
        let mut level = leaves;
        while level.len() > 1 {
            let fanout = internal_capacity(tree.page_size).min(256);
            let mut next_level = Vec::with_capacity(level.len() / 2 + 1);
            for group in level.chunks(fanout) {
                let keys: Vec<u32> = group[1..].iter().map(|&(k, _)| k).collect();
                let children: Vec<PageId> = group.iter().map(|&(_, p)| p).collect();
                let id = tree.alloc_page();
                let page = build_internal(tree.page_size, &keys, &children);
                tree.write_page(id, &page)?;
                next_level.push((group[0].0, id));
            }
            level = next_level;
            tree.height += 1;
        }
        tree.root = level[0].1;
        tree.cache.set_root_id(tree.root);
        tree.write_header()?;
        Ok(tree)
    }

    /// Iterates every `(key, record)` pair in key order.
    pub fn scan(&mut self) -> Result<Vec<(u32, Vec<u8>)>> {
        // Find the leftmost leaf.
        let (_, mut leaf_id) = self.descend(0)?;
        let mut out = Vec::with_capacity(self.record_count as usize);
        loop {
            let leaf = LeafPage::from_bytes(self.read_page(leaf_id)?);
            for i in 0..leaf.count() {
                let e = leaf.entry(i);
                let record = self.read_record(&leaf, i, e)?;
                out.push((e.key, record));
            }
            if leaf.next_leaf() == NIL_PAGE {
                break;
            }
            leaf_id = leaf.next_leaf();
        }
        Ok(out)
    }
}

//! # The baseline: INQUERY's custom B-tree keyed-file package
//!
//! A re-implementation of the "custom B-tree package" that originally
//! provided INQUERY's inverted file index support (Brown, Callan, Moss &
//! Croft, EDBT 1994, Section 3.1): a keyed file mapping term ids to
//! variable-length inverted-list records, with fixed-size pages equal to the
//! disk transfer block, overflow chains for large records, and —
//! faithfully — only "limited and unsophisticated caching of index nodes,
//! such that every record lookup requires more than one disk access"
//! (Section 4.3).
//!
//! This crate is the *comparison baseline* for the paper's experiments. Its
//! replacement, the Mneme-backed inverted file, lives in `poir-core`.

pub mod error;
pub mod node_cache;
pub mod page;
pub mod tree;

pub use error::{BTreeError, Result};
pub use node_cache::NodeCache;
pub use page::DEFAULT_PAGE_SIZE;
pub use tree::{BTreeConfig, BTreeFile};

//! The baseline's limited, unsophisticated node cache.
//!
//! "The B-tree version does limited and unsophisticated caching of index
//! nodes, such that every record lookup requires more than one disk access.
//! This problem gets worse as the file grows and the height of the index
//! tree increases." (Section 4.3)
//!
//! Only internal (index) pages are cached: the root is pinned and a small
//! FIFO of recently read internal pages is kept. Leaves and overflow pages
//! are never cached — exactly the behaviour that makes the baseline issue
//! more than one file access per lookup.

use std::collections::HashMap;

use crate::page::PageId;

/// Default number of non-root internal pages retained.
pub const DEFAULT_CACHE_NODES: usize = 8;

/// A root-pinned FIFO cache of internal page bytes.
#[derive(Debug)]
pub struct NodeCache {
    root_id: PageId,
    root: Option<Vec<u8>>,
    capacity: usize,
    map: HashMap<PageId, Vec<u8>>,
    fifo: std::collections::VecDeque<PageId>,
}

impl NodeCache {
    /// Creates a cache retaining the root plus up to `capacity` other
    /// internal pages.
    pub fn new(capacity: usize) -> Self {
        NodeCache {
            root_id: crate::page::NIL_PAGE,
            root: None,
            capacity,
            map: HashMap::with_capacity(capacity),
            fifo: std::collections::VecDeque::with_capacity(capacity),
        }
    }

    /// Declares which page is the root (pinning it once cached).
    pub fn set_root_id(&mut self, id: PageId) {
        if self.root_id != id {
            self.root_id = id;
            self.root = None;
        }
    }

    /// Fetches a cached page.
    pub fn get(&self, id: PageId) -> Option<&[u8]> {
        if id == self.root_id {
            return self.root.as_deref();
        }
        self.map.get(&id).map(Vec::as_slice)
    }

    /// Caches an internal page's bytes.
    pub fn put(&mut self, id: PageId, bytes: Vec<u8>) {
        if id == self.root_id {
            self.root = Some(bytes);
            return;
        }
        if self.capacity == 0 {
            return;
        }
        if let std::collections::hash_map::Entry::Occupied(mut e) = self.map.entry(id) {
            e.insert(bytes);
            return;
        }
        if self.map.len() == self.capacity {
            if let Some(victim) = self.fifo.pop_front() {
                self.map.remove(&victim);
            }
        }
        self.map.insert(id, bytes);
        self.fifo.push_back(id);
    }

    /// Drops a page (called when it is rewritten).
    pub fn invalidate(&mut self, id: PageId) {
        if id == self.root_id {
            self.root = None;
        }
        if self.map.remove(&id).is_some() {
            self.fifo.retain(|&p| p != id);
        }
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.root = None;
        self.map.clear();
        self.fifo.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_is_pinned() {
        let mut c = NodeCache::new(2);
        c.set_root_id(1);
        c.put(1, vec![1]);
        for id in 10..20 {
            c.put(id, vec![id as u8]);
        }
        assert_eq!(c.get(1), Some(&[1u8][..]), "root survives any pressure");
        assert_eq!(c.map.len(), 2);
    }

    #[test]
    fn fifo_eviction() {
        let mut c = NodeCache::new(2);
        c.set_root_id(1);
        c.put(10, vec![10]);
        c.put(11, vec![11]);
        c.put(12, vec![12]); // evicts 10
        assert!(c.get(10).is_none());
        assert!(c.get(11).is_some());
        assert!(c.get(12).is_some());
    }

    #[test]
    fn invalidate_and_clear() {
        let mut c = NodeCache::new(4);
        c.set_root_id(1);
        c.put(1, vec![1]);
        c.put(10, vec![10]);
        c.invalidate(10);
        assert!(c.get(10).is_none());
        c.invalidate(1);
        assert!(c.get(1).is_none());
        c.put(1, vec![2]);
        c.clear();
        assert!(c.get(1).is_none());
    }

    #[test]
    fn changing_root_unpins_old_root() {
        let mut c = NodeCache::new(2);
        c.set_root_id(1);
        c.put(1, vec![1]);
        c.set_root_id(2);
        assert!(c.get(2).is_none());
        c.put(2, vec![2]);
        assert_eq!(c.get(2), Some(&[2u8][..]));
    }

    #[test]
    fn zero_capacity_caches_only_root() {
        let mut c = NodeCache::new(0);
        c.set_root_id(1);
        c.put(1, vec![1]);
        c.put(5, vec![5]);
        assert!(c.get(1).is_some());
        assert!(c.get(5).is_none());
    }

    #[test]
    fn reput_updates_in_place() {
        let mut c = NodeCache::new(2);
        c.put(10, vec![1]);
        c.put(10, vec![2]);
        assert_eq!(c.get(10), Some(&[2u8][..]));
        c.put(11, vec![3]);
        c.put(12, vec![4]); // evicts 10 (single FIFO entry)
        assert!(c.get(10).is_none());
    }
}

//! On-disk page layouts for the B-tree keyed file.
//!
//! All pages are `PAGE_SIZE` bytes (one device transfer block). Three page
//! types exist:
//!
//! * **internal** — `count` separator keys and `count + 1` child page ids;
//! * **leaf** — a slotted page of `(key, payload)` entries with a directory
//!   growing backward from the page end; payloads too large to share a leaf
//!   live in contiguous **overflow** page runs read with a single seek.
//!
//! Layout constants are `u32`-based so ablation studies can vary the page
//! size.

/// Default page size.
///
/// Deliberately *not* the platform's 8 Kbyte transfer block: the paper
/// attributes part of Mneme's win to "careful file allocation sympathetic
/// to the device transfer block size", which the legacy package lacked —
/// its nodes were small, so each node read requests few file bytes while
/// the disk still transfers a whole 8 Kbyte block (Section 4.3's
/// observation that the B-tree version "attempts to read far fewer bytes
/// in the file" yet "transfers more raw bytes from disk").
pub const DEFAULT_PAGE_SIZE: usize = 1024;

/// Page type tags.
pub const PAGE_INTERNAL: u8 = 1;
pub const PAGE_LEAF: u8 = 2;
pub const PAGE_OVERFLOW: u8 = 3;

/// Page id type. Page 0 is the file header, so 0 doubles as "nil".
pub type PageId = u32;

/// Nil page id.
pub const NIL_PAGE: PageId = 0;

/// Common header: `[type u8][count u16]`.
pub const COMMON_HEADER: usize = 3;

// ---------------------------------------------------------------- internal

/// Internal page header length: common + nothing extra.
pub const INTERNAL_HEADER: usize = COMMON_HEADER;

/// Maximum number of children an internal page of `page_size` bytes holds.
///
/// Keys occupy 4 bytes each, children 4 bytes each: `count` keys and
/// `count + 1` children.
pub fn internal_capacity(page_size: usize) -> usize {
    (page_size - INTERNAL_HEADER - 4) / 8
}

/// View over an internal page: `keys[i]` is the smallest key reachable
/// through `children[i + 1]`.
pub struct InternalPage<'a> {
    data: &'a [u8],
}

impl<'a> InternalPage<'a> {
    /// Wraps page bytes; panics in debug builds on a type mismatch.
    pub fn new(data: &'a [u8]) -> Self {
        debug_assert_eq!(data[0], PAGE_INTERNAL);
        InternalPage { data }
    }

    /// Number of separator keys (`children() = keys + 1`).
    pub fn count(&self) -> usize {
        u16::from_le_bytes(self.data[1..3].try_into().unwrap()) as usize
    }

    /// The `i`-th separator key.
    pub fn key(&self, i: usize) -> u32 {
        let off = INTERNAL_HEADER + i * 4;
        u32::from_le_bytes(self.data[off..off + 4].try_into().unwrap())
    }

    /// The `i`-th child page id (`0 ..= count`).
    pub fn child(&self, i: usize) -> PageId {
        let off = INTERNAL_HEADER + self.count() * 4 + i * 4;
        u32::from_le_bytes(self.data[off..off + 4].try_into().unwrap())
    }

    /// The child to descend into for `key`.
    pub fn child_for(&self, key: u32) -> PageId {
        let n = self.count();
        // First separator strictly greater than `key` bounds the child.
        let mut lo = 0;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.key(mid) <= key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        self.child(lo)
    }
}

/// Serializes an internal page from keys and children.
pub fn build_internal(page_size: usize, keys: &[u32], children: &[PageId]) -> Vec<u8> {
    assert_eq!(children.len(), keys.len() + 1);
    assert!(children.len() <= internal_capacity(page_size));
    let mut page = vec![0u8; page_size];
    page[0] = PAGE_INTERNAL;
    page[1..3].copy_from_slice(&(keys.len() as u16).to_le_bytes());
    let mut off = INTERNAL_HEADER;
    for k in keys {
        page[off..off + 4].copy_from_slice(&k.to_le_bytes());
        off += 4;
    }
    for c in children {
        page[off..off + 4].copy_from_slice(&c.to_le_bytes());
        off += 4;
    }
    page
}

// -------------------------------------------------------------------- leaf

/// Leaf page header: common + next-leaf pointer + payload cursor.
pub const LEAF_HEADER: usize = COMMON_HEADER + 4 + 4;

/// Bytes per leaf directory entry:
/// `[key u32][offset u32][inline_len u32][total_len u32][overflow PageId]`.
pub const LEAF_ENTRY: usize = 20;

/// One decoded leaf directory entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeafEntry {
    pub key: u32,
    /// Offset of the inline payload within the page.
    pub offset: u32,
    /// Bytes stored inline (0 when the whole record is in overflow pages).
    pub inline_len: u32,
    /// Total record length.
    pub total_len: u32,
    /// First overflow page, or [`NIL_PAGE`].
    pub overflow: PageId,
}

/// Mutable wrapper around a leaf page's bytes.
pub struct LeafPage {
    data: Vec<u8>,
}

impl LeafPage {
    /// Creates an empty leaf page.
    pub fn empty(page_size: usize) -> Self {
        let mut data = vec![0u8; page_size];
        data[0] = PAGE_LEAF;
        data[3..7].copy_from_slice(&NIL_PAGE.to_le_bytes());
        data[7..11].copy_from_slice(&(LEAF_HEADER as u32).to_le_bytes());
        LeafPage { data }
    }

    /// Wraps existing leaf bytes.
    pub fn from_bytes(data: Vec<u8>) -> Self {
        debug_assert_eq!(data[0], PAGE_LEAF);
        LeafPage { data }
    }

    /// The raw page bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Consumes the wrapper, returning the page bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.data
    }

    /// Number of directory entries.
    pub fn count(&self) -> usize {
        u16::from_le_bytes(self.data[1..3].try_into().unwrap()) as usize
    }

    fn set_count(&mut self, n: usize) {
        self.data[1..3].copy_from_slice(&(n as u16).to_le_bytes());
    }

    /// The next leaf in key order ([`NIL_PAGE`] at the rightmost leaf).
    pub fn next_leaf(&self) -> PageId {
        u32::from_le_bytes(self.data[3..7].try_into().unwrap())
    }

    /// Links this leaf to its successor.
    pub fn set_next_leaf(&mut self, next: PageId) {
        self.data[3..7].copy_from_slice(&next.to_le_bytes());
    }

    fn payload_cursor(&self) -> usize {
        u32::from_le_bytes(self.data[7..11].try_into().unwrap()) as usize
    }

    fn set_payload_cursor(&mut self, c: usize) {
        self.data[7..11].copy_from_slice(&(c as u32).to_le_bytes());
    }

    fn entry_pos(&self, i: usize) -> usize {
        self.data.len() - (i + 1) * LEAF_ENTRY
    }

    /// Reads the `i`-th directory entry (entries are key-sorted).
    pub fn entry(&self, i: usize) -> LeafEntry {
        let p = self.entry_pos(i);
        let e = &self.data[p..p + LEAF_ENTRY];
        LeafEntry {
            key: u32::from_le_bytes(e[0..4].try_into().unwrap()),
            offset: u32::from_le_bytes(e[4..8].try_into().unwrap()),
            inline_len: u32::from_le_bytes(e[8..12].try_into().unwrap()),
            total_len: u32::from_le_bytes(e[12..16].try_into().unwrap()),
            overflow: u32::from_le_bytes(e[16..20].try_into().unwrap()),
        }
    }

    fn write_entry(&mut self, i: usize, e: LeafEntry) {
        let p = self.entry_pos(i);
        let buf = &mut self.data[p..p + LEAF_ENTRY];
        buf[0..4].copy_from_slice(&e.key.to_le_bytes());
        buf[4..8].copy_from_slice(&e.offset.to_le_bytes());
        buf[8..12].copy_from_slice(&e.inline_len.to_le_bytes());
        buf[12..16].copy_from_slice(&e.total_len.to_le_bytes());
        buf[16..20].copy_from_slice(&e.overflow.to_le_bytes());
    }

    /// Binary-searches for `key`, returning `Ok(index)` or the insertion
    /// point.
    pub fn search(&self, key: u32) -> Result<usize, usize> {
        let mut lo = 0;
        let mut hi = self.count();
        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.entry(mid).key.cmp(&key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    /// Free bytes between the payload cursor and the directory.
    pub fn free_space(&self) -> usize {
        let dir_start = self.data.len() - self.count() * LEAF_ENTRY;
        dir_start - self.payload_cursor()
    }

    /// Whether an entry with `inline_len` payload bytes fits.
    pub fn fits(&self, inline_len: usize) -> bool {
        self.free_space() >= inline_len + LEAF_ENTRY
    }

    /// Inserts a new entry for `key` with `inline` payload bytes and an
    /// optional overflow chain. The key must not be present.
    ///
    /// # Panics
    /// Panics if the entry does not fit or the key already exists.
    pub fn insert(&mut self, key: u32, inline: &[u8], total_len: u32, overflow: PageId) {
        let at = match self.search(key) {
            Ok(_) => panic!("key {key} already present"),
            Err(at) => at,
        };
        assert!(self.fits(inline.len()), "entry does not fit");
        let cursor = self.payload_cursor();
        self.data[cursor..cursor + inline.len()].copy_from_slice(inline);
        let n = self.count();
        // Shift directory entries after `at` one slot toward the page start.
        let mut i = n;
        while i > at {
            let e = self.entry(i - 1);
            self.write_entry(i, e);
            i -= 1;
        }
        self.write_entry(
            at,
            LeafEntry {
                key,
                offset: cursor as u32,
                inline_len: inline.len() as u32,
                total_len,
                overflow,
            },
        );
        self.set_count(n + 1);
        self.set_payload_cursor(cursor + inline.len());
    }

    /// Removes the entry at `i`, leaving its payload bytes as dead space
    /// (reclaimed by [`LeafPage::compact`]).
    pub fn remove(&mut self, i: usize) -> LeafEntry {
        let removed = self.entry(i);
        let n = self.count();
        for j in i..n - 1 {
            let e = self.entry(j + 1);
            self.write_entry(j, e);
        }
        self.set_count(n - 1);
        removed
    }

    /// Reads the inline payload of entry `i`.
    pub fn inline_payload(&self, i: usize) -> &[u8] {
        let e = self.entry(i);
        &self.data[e.offset as usize..(e.offset + e.inline_len) as usize]
    }

    /// Rewrites the page with payloads densely packed (dropping dead space).
    pub fn compact(&mut self, page_size: usize) {
        let mut fresh = LeafPage::empty(page_size);
        fresh.set_next_leaf(self.next_leaf());
        for i in 0..self.count() {
            let e = self.entry(i);
            let inline = self.inline_payload(i).to_vec();
            fresh.insert(e.key, &inline, e.total_len, e.overflow);
        }
        self.data = fresh.data;
    }
}

// ---------------------------------------------------------------- overflow

/// Overflow storage is a contiguous run of raw pages: a record of
/// `total_len` bytes with no inline portion occupies
/// `overflow_pages(page_size, total_len)` whole pages starting at the
/// entry's `overflow` page id, and is read back with a single seek + read
/// (one file access) — how the legacy package fetched large records.
pub fn overflow_pages(page_size: usize, total_len: usize) -> usize {
    total_len.div_ceil(page_size)
}

#[cfg(test)]
mod tests {
    use super::*;

    const PS: usize = 256;

    #[test]
    fn internal_page_round_trip_and_routing() {
        let page = build_internal(PS, &[10, 20, 30], &[100, 101, 102, 103]);
        let v = InternalPage::new(&page);
        assert_eq!(v.count(), 3);
        assert_eq!(v.key(1), 20);
        assert_eq!(v.child(0), 100);
        assert_eq!(v.child(3), 103);
        // keys[i] is the smallest key in children[i+1].
        assert_eq!(v.child_for(5), 100);
        assert_eq!(v.child_for(9), 100);
        assert_eq!(v.child_for(10), 101);
        assert_eq!(v.child_for(19), 101);
        assert_eq!(v.child_for(20), 102);
        assert_eq!(v.child_for(30), 103);
        assert_eq!(v.child_for(u32::MAX), 103);
    }

    #[test]
    fn internal_capacity_is_sane() {
        assert!(internal_capacity(8192) > 1000);
        assert!(internal_capacity(PS) >= 30);
    }

    #[test]
    fn leaf_insert_search_read() {
        let mut leaf = LeafPage::empty(PS);
        leaf.insert(20, b"twenty", 6, NIL_PAGE);
        leaf.insert(10, b"ten", 3, NIL_PAGE);
        leaf.insert(30, b"", 1000, 77); // overflow record
        assert_eq!(leaf.count(), 3);
        // Entries are key-sorted regardless of insert order.
        assert_eq!(leaf.entry(0).key, 10);
        assert_eq!(leaf.entry(1).key, 20);
        assert_eq!(leaf.entry(2).key, 30);
        assert_eq!(leaf.inline_payload(0), b"ten");
        assert_eq!(leaf.inline_payload(1), b"twenty");
        assert_eq!(leaf.entry(2).overflow, 77);
        assert_eq!(leaf.entry(2).total_len, 1000);
        assert_eq!(leaf.search(20), Ok(1));
        assert_eq!(leaf.search(15), Err(1));
        assert_eq!(leaf.search(99), Err(3));
    }

    #[test]
    fn leaf_fill_until_full() {
        let mut leaf = LeafPage::empty(PS);
        let mut n = 0u32;
        while leaf.fits(8) {
            leaf.insert(n, &[n as u8; 8], 8, NIL_PAGE);
            n += 1;
        }
        // 256 - 11 header = 245; each entry costs 8 + 20 = 28 → 8 entries.
        assert_eq!(n, 8);
        assert!(leaf.free_space() < 28);
        for i in 0..8 {
            assert_eq!(leaf.inline_payload(i as usize), &[i as u8; 8]);
        }
    }

    #[test]
    fn leaf_remove_then_compact_reclaims_space() {
        let mut leaf = LeafPage::empty(PS);
        for k in 0..6u32 {
            leaf.insert(k, &[k as u8; 20], 20, NIL_PAGE);
        }
        let free_before = leaf.free_space();
        leaf.remove(2);
        assert_eq!(leaf.count(), 5);
        assert_eq!(leaf.search(2), Err(2));
        // Payload bytes are dead until compaction.
        assert_eq!(leaf.free_space(), free_before + LEAF_ENTRY);
        leaf.compact(PS);
        assert_eq!(leaf.free_space(), free_before + LEAF_ENTRY + 20);
        assert_eq!(leaf.count(), 5);
        assert_eq!(leaf.inline_payload(0), &[0u8; 20]);
        assert_eq!(leaf.inline_payload(2), &[3u8; 20]);
    }

    #[test]
    fn leaf_next_pointer() {
        let mut leaf = LeafPage::empty(PS);
        assert_eq!(leaf.next_leaf(), NIL_PAGE);
        leaf.set_next_leaf(42);
        assert_eq!(leaf.next_leaf(), 42);
        let leaf2 = LeafPage::from_bytes(leaf.into_bytes());
        assert_eq!(leaf2.next_leaf(), 42);
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn duplicate_leaf_key_panics() {
        let mut leaf = LeafPage::empty(PS);
        leaf.insert(1, b"a", 1, NIL_PAGE);
        leaf.insert(1, b"b", 1, NIL_PAGE);
    }

    #[test]
    fn overflow_page_count() {
        assert_eq!(overflow_pages(1024, 0), 0);
        assert_eq!(overflow_pages(1024, 1), 1);
        assert_eq!(overflow_pages(1024, 1024), 1);
        assert_eq!(overflow_pages(1024, 1025), 2);
        assert_eq!(overflow_pages(1024, 10_000), 10);
    }
}

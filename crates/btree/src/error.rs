//! Error type for the B-tree keyed-file package.

use std::fmt;

/// Errors surfaced by B-tree operations.
#[derive(Debug)]
pub enum BTreeError {
    /// The file content is corrupt or from an incompatible version.
    Corrupt(String),
    /// A record was too large to place even after splitting a leaf.
    RecordTooLarge { key: u32, len: usize },
    /// An error from the storage substrate.
    Storage(poir_storage::StorageError),
}

impl fmt::Display for BTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BTreeError::Corrupt(msg) => write!(f, "corrupt b-tree file: {msg}"),
            BTreeError::RecordTooLarge { key, len } => {
                write!(f, "record for key {key} of {len} bytes cannot be placed")
            }
            BTreeError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for BTreeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BTreeError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<poir_storage::StorageError> for BTreeError {
    fn from(e: poir_storage::StorageError) -> Self {
        BTreeError::Storage(e)
    }
}

/// Result alias for B-tree operations.
pub type Result<T> = std::result::Result<T, BTreeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(BTreeError::Corrupt("x".into()).to_string().contains('x'));
        let e = BTreeError::RecordTooLarge { key: 5, len: 100 };
        assert!(e.to_string().contains('5') && e.to_string().contains("100"));
    }

    #[test]
    fn storage_conversion() {
        let e: BTreeError = poir_storage::StorageError::UnknownFile(1).into();
        assert!(std::error::Error::source(&e).is_some());
    }
}

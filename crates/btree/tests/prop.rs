//! Property tests: the B-tree keyed file must match `std::collections::BTreeMap`
//! under arbitrary insert/replace/delete/lookup sequences, for several page
//! sizes, and scans must return exactly the model's sorted contents.

use std::collections::BTreeMap;

use proptest::prelude::*;

use poir_btree::{BTreeConfig, BTreeFile};
use poir_storage::{CostModel, Device, DeviceConfig};

#[derive(Debug, Clone)]
enum Op {
    Insert { key: u16, len: u16 },
    Delete { key: u16 },
    Lookup { key: u16 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (any::<u16>(), 0u16..2048).prop_map(|(key, len)| Op::Insert { key: key % 300, len }),
        2 => any::<u16>().prop_map(|key| Op::Delete { key: key % 300 }),
        3 => any::<u16>().prop_map(|key| Op::Lookup { key: key % 300 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn btree_matches_btreemap_model(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        page_size in prop_oneof![Just(256usize), Just(512), Just(1024)],
        reopen_at in 0usize..120,
    ) {
        let dev = Device::new(DeviceConfig {
            block_size: 512,
            os_cache_blocks: 16,
            cost_model: CostModel::free(),
        });
        let handle = dev.create_file();
        let mut tree = BTreeFile::create(
            handle.clone(),
            BTreeConfig { page_size, cache_nodes: 2 },
        ).unwrap();
        let mut model: BTreeMap<u32, Vec<u8>> = BTreeMap::new();
        let mut fill = 0u8;

        for (i, op) in ops.iter().enumerate() {
            if i == reopen_at {
                tree.flush().unwrap();
                tree = BTreeFile::open(handle.clone(), 2).unwrap();
            }
            match *op {
                Op::Insert { key, len } => {
                    fill = fill.wrapping_add(1);
                    let value = vec![fill; len as usize];
                    tree.insert(key as u32, &value).unwrap();
                    model.insert(key as u32, value);
                }
                Op::Delete { key } => {
                    let deleted = tree.delete(key as u32).unwrap();
                    prop_assert_eq!(deleted, model.remove(&(key as u32)).is_some());
                }
                Op::Lookup { key } => {
                    prop_assert_eq!(
                        tree.lookup(key as u32).unwrap(),
                        model.get(&(key as u32)).cloned()
                    );
                }
            }
            prop_assert_eq!(tree.record_count(), model.len() as u64);
        }
        // Full scan equals the model.
        let scanned = tree.scan().unwrap();
        let expected: Vec<(u32, Vec<u8>)> =
            model.iter().map(|(k, v)| (*k, v.clone())).collect();
        prop_assert_eq!(scanned, expected);
    }

    #[test]
    fn bulk_build_round_trips_any_sorted_input(
        keys in proptest::collection::btree_set(any::<u32>(), 0..400),
        page_size in prop_oneof![Just(256usize), Just(1024), Just(8192)],
    ) {
        let dev = Device::with_defaults();
        let pairs: Vec<(u32, Vec<u8>)> = keys
            .iter()
            .map(|&k| (k, k.to_le_bytes().repeat((k % 97) as usize + 1)))
            .collect();
        let mut tree = BTreeFile::bulk_build(
            dev.create_file(),
            BTreeConfig { page_size, cache_nodes: 4 },
            pairs.clone(),
        ).unwrap();
        prop_assert_eq!(tree.record_count(), pairs.len() as u64);
        for (k, v) in &pairs {
            prop_assert_eq!(&tree.lookup(*k).unwrap().unwrap(), v);
        }
        prop_assert_eq!(tree.scan().unwrap(), pairs);
    }
}

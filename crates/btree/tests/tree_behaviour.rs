//! Behavioural tests of the B-tree keyed file, including the baseline's
//! characteristic I/O pattern (more than one access per lookup).

use std::sync::Arc;

use poir_btree::{BTreeConfig, BTreeFile};
use poir_storage::{CostModel, Device, DeviceConfig};

fn device() -> Arc<Device> {
    Device::new(DeviceConfig {
        block_size: 512,
        os_cache_blocks: 32,
        cost_model: CostModel::free(),
    })
}

fn config() -> BTreeConfig {
    BTreeConfig { page_size: 512, cache_nodes: 4 }
}

#[test]
fn insert_then_lookup_small_records() {
    let dev = device();
    let mut t = BTreeFile::create(dev.create_file(), config()).unwrap();
    for k in (0..500u32).rev() {
        t.insert(k, format!("record-{k}").as_bytes()).unwrap();
    }
    assert_eq!(t.record_count(), 500);
    for k in 0..500u32 {
        assert_eq!(t.lookup(k).unwrap().unwrap(), format!("record-{k}").as_bytes());
    }
    assert_eq!(t.lookup(1000).unwrap(), None);
    assert!(t.height() > 1, "500 records must split a 512-byte page");
}

#[test]
fn large_records_use_overflow_chains() {
    let dev = device();
    let mut t = BTreeFile::create(dev.create_file(), config()).unwrap();
    let big = vec![0xCD; 10_000]; // ~20 overflow pages at 512 B/page
    t.insert(7, &big).unwrap();
    t.insert(8, b"small").unwrap();
    assert_eq!(t.lookup(7).unwrap().unwrap(), big);
    assert_eq!(t.lookup(8).unwrap().unwrap(), b"small");
}

#[test]
fn replace_existing_record() {
    let dev = device();
    let mut t = BTreeFile::create(dev.create_file(), config()).unwrap();
    t.insert(1, b"first").unwrap();
    t.insert(1, b"second version").unwrap();
    assert_eq!(t.record_count(), 1);
    assert_eq!(t.lookup(1).unwrap().unwrap(), b"second version");
    // Replace with an overflow-sized record and back.
    t.insert(1, &vec![1u8; 5000]).unwrap();
    assert_eq!(t.lookup(1).unwrap().unwrap(), vec![1u8; 5000]);
    t.insert(1, b"small again").unwrap();
    assert_eq!(t.lookup(1).unwrap().unwrap(), b"small again");
}

#[test]
fn delete_removes_records() {
    let dev = device();
    let mut t = BTreeFile::create(dev.create_file(), config()).unwrap();
    for k in 0..100u32 {
        t.insert(k, &[k as u8; 10]).unwrap();
    }
    assert!(t.delete(50).unwrap());
    assert!(!t.delete(50).unwrap());
    assert_eq!(t.lookup(50).unwrap(), None);
    assert_eq!(t.lookup(49).unwrap().unwrap(), [49u8; 10]);
    assert_eq!(t.record_count(), 99);
}

#[test]
fn bulk_build_equals_incremental_inserts() {
    let dev = device();
    let pairs: Vec<(u32, Vec<u8>)> =
        (0..300u32).map(|k| (k * 3, vec![(k % 251) as u8; (k % 40) as usize])).collect();
    let mut bulk = BTreeFile::bulk_build(dev.create_file(), config(), pairs.clone()).unwrap();
    let mut incr = BTreeFile::create(dev.create_file(), config()).unwrap();
    for (k, v) in &pairs {
        incr.insert(*k, v).unwrap();
    }
    assert_eq!(bulk.record_count(), incr.record_count());
    for (k, v) in &pairs {
        assert_eq!(&bulk.lookup(*k).unwrap().unwrap(), v);
        assert_eq!(&incr.lookup(*k).unwrap().unwrap(), v);
    }
    assert_eq!(bulk.scan().unwrap(), pairs);
}

#[test]
fn tree_survives_reopen() {
    let dev = device();
    let handle = dev.create_file();
    {
        let mut t = BTreeFile::create(handle.clone(), config()).unwrap();
        for k in 0..200u32 {
            t.insert(k, format!("v{k}").as_bytes()).unwrap();
        }
        t.flush().unwrap();
    }
    let mut t = BTreeFile::open(handle, 4).unwrap();
    assert_eq!(t.record_count(), 200);
    for k in 0..200u32 {
        assert_eq!(t.lookup(k).unwrap().unwrap(), format!("v{k}").as_bytes());
    }
}

#[test]
fn lookups_need_more_than_one_access_as_the_tree_grows() {
    // The paper's Table 5: the B-tree baseline averages 1.44-3.09 file
    // accesses per record lookup because only index nodes are cached.
    let dev = device();
    let pairs: Vec<(u32, Vec<u8>)> = (0..3000u32).map(|k| (k, vec![7u8; 30])).collect();
    let mut t = BTreeFile::bulk_build(dev.create_file(), config(), pairs).unwrap();
    assert!(t.height() >= 3);
    let before = dev.stats().snapshot();
    let lookups = 500u64;
    for k in 0..lookups as u32 {
        t.lookup(k * 6 % 3000).unwrap();
    }
    let delta = dev.stats().snapshot().since(&before);
    let a = delta.file_accesses as f64 / lookups as f64;
    assert!(a > 1.0, "A = {a} must exceed 1 access per lookup");
    assert!(a <= t.height() as f64, "A = {a} cannot exceed the tree height");
}

#[test]
fn scan_returns_key_order() {
    let dev = device();
    let mut t = BTreeFile::create(dev.create_file(), config()).unwrap();
    for k in [5u32, 1, 9, 3, 7] {
        t.insert(k, &k.to_le_bytes()).unwrap();
    }
    let scanned = t.scan().unwrap();
    let keys: Vec<u32> = scanned.iter().map(|(k, _)| *k).collect();
    assert_eq!(keys, vec![1, 3, 5, 7, 9]);
}

#[test]
fn empty_tree_behaviour() {
    let dev = device();
    let mut t = BTreeFile::create(dev.create_file(), config()).unwrap();
    assert_eq!(t.lookup(0).unwrap(), None);
    assert!(!t.delete(0).unwrap());
    assert_eq!(t.record_count(), 0);
    assert_eq!(t.scan().unwrap(), vec![]);
    assert!(!t.contains(5).unwrap());
}

#[test]
fn empty_value_round_trips() {
    let dev = device();
    let mut t = BTreeFile::create(dev.create_file(), config()).unwrap();
    t.insert(3, b"").unwrap();
    assert_eq!(t.lookup(3).unwrap().unwrap(), Vec::<u8>::new());
    assert!(t.contains(3).unwrap());
}

//! Structured trace log: a sharded, bounded ring buffer of per-operation
//! [`TraceRecord`]s, plus exporters.
//!
//! Where the counter side of this crate answers "how many", the trace
//! answers "which object, which pool, which thread, and when": every
//! device read, pool fetch, buffer hit/miss/evict, hash-table probe,
//! B-tree descent, and lock acquisition on the parallel read path can
//! emit one fixed-size record into a [`Tracer`]. Records carry a
//! monotonic timestamp (microseconds since the tracer's epoch), the
//! recording thread's track id, the query being evaluated (if any), an
//! object/segment id, a pool index, a byte count, and a duration.
//!
//! The buffer is sharded by thread: each shard is a plain bounded ring
//! behind its own `std::sync::Mutex`, and a thread always writes to the
//! shard picked by its track id, so shard mutexes are effectively
//! uncontended and per-thread record order equals shard append order.
//! When a shard fills, the oldest record is dropped and counted in
//! [`Tracer::dropped`] — tracing never blocks or grows without bound.
//!
//! Exporters:
//!
//! * [`Tracer::chrome_trace_json`] — Chrome `trace_event` JSON that loads
//!   in Perfetto / `chrome://tracing`, one track per thread, with query
//!   phases and I/O as nested slices.
//! * [`Tracer::access_log_jsonl`] — a flat JSONL access log, one record
//!   per line, for grep/jq-style analysis.
//! * [`BufferResidencyReport::from_records`] — per-pool residency and
//!   eviction-age statistics plus hottest-N objects, derived purely from
//!   the trace.

use std::cell::Cell;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::{HistogramSnapshot, HISTOGRAM_BUCKETS};

/// Operation kinds a [`TraceRecord`] can describe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum TraceOp {
    /// One read system call against the device (`object` = file offset).
    DeviceRead,
    /// One write system call against the device (`object` = file offset).
    DeviceWrite,
    /// One record fetched through a store (`object` = object/store ref).
    PoolFetch,
    /// A buffer reference served from the pool (`object` = segment offset).
    BufferHit,
    /// A buffer reference that had to load its segment (`object` = segment offset).
    BufferMiss,
    /// A segment evicted from a pool buffer (`object` = segment offset).
    BufferEvict,
    /// One persistent-hash-table probe resolving an object id.
    HashProbe,
    /// One internal-node descent step in the B-tree (`object` = node page).
    BTreeDescent,
    /// Time spent acquiring a lock on the shared read path; `object` is
    /// one of [`LOCK_META_READ`]/[`LOCK_META_WRITE`]/[`LOCK_POOL`].
    LockWait,
    /// One whole query (`object` = query index).
    Query,
    /// One query pipeline phase (`object` = `Phase as u64`).
    QueryPhase,
    /// Per-query aggregate of posting cursor seeks that jumped blocks via
    /// the skip directory (`object` = seeks performed, `bytes` = postings
    /// bypassed).
    CursorSeek,
    /// A partial (byte-range) segment read below the store trait
    /// (`object` = object/store ref, `bytes` = bytes returned).
    RangeRead,
    /// Per-query aggregate of posting-block decodes (`object` = blocks
    /// decoded from the bit-packed representation, `bytes` = posting
    /// payload bytes decoded).
    BlockDecode,
    /// Time a request spent in the query service's admission queue before
    /// a worker dequeued it (`object` = service sequence number).
    QueueWait,
    /// A storage fault fired by an installed fault plan (`object` = file
    /// id, `bytes` = bytes the faulted operation requested).
    FaultInjected,
    /// Per-query aggregate of decoded-block cache consultations
    /// (`object` = hits, `bytes` = misses).
    BlockCache,
    /// One result-cache consultation (`object` = 1 on a hit, 0 on a miss).
    ResultCache,
}

/// `object` value for a [`TraceOp::LockWait`] on the Mneme meta `RwLock`
/// taken for reading.
pub const LOCK_META_READ: u64 = 0;
/// `object` value for a [`TraceOp::LockWait`] on the Mneme meta `RwLock`
/// taken for writing.
pub const LOCK_META_WRITE: u64 = 1;
/// `object` value for a [`TraceOp::LockWait`] on a per-pool buffer mutex
/// (the pool index is in the record's `pool` field).
pub const LOCK_POOL: u64 = 2;

impl TraceOp {
    /// Number of operation kinds.
    pub const COUNT: usize = 18;

    /// All operation kinds, in declaration order.
    pub const ALL: [TraceOp; TraceOp::COUNT] = [
        TraceOp::DeviceRead,
        TraceOp::DeviceWrite,
        TraceOp::PoolFetch,
        TraceOp::BufferHit,
        TraceOp::BufferMiss,
        TraceOp::BufferEvict,
        TraceOp::HashProbe,
        TraceOp::BTreeDescent,
        TraceOp::LockWait,
        TraceOp::Query,
        TraceOp::QueryPhase,
        TraceOp::CursorSeek,
        TraceOp::RangeRead,
        TraceOp::BlockDecode,
        TraceOp::QueueWait,
        TraceOp::FaultInjected,
        TraceOp::BlockCache,
        TraceOp::ResultCache,
    ];

    /// Stable snake_case name used by both exporters.
    pub fn name(self) -> &'static str {
        match self {
            TraceOp::DeviceRead => "device_read",
            TraceOp::DeviceWrite => "device_write",
            TraceOp::PoolFetch => "pool_fetch",
            TraceOp::BufferHit => "buffer_hit",
            TraceOp::BufferMiss => "buffer_miss",
            TraceOp::BufferEvict => "buffer_evict",
            TraceOp::HashProbe => "hash_probe",
            TraceOp::BTreeDescent => "btree_descent",
            TraceOp::LockWait => "lock_wait",
            TraceOp::Query => "query",
            TraceOp::QueryPhase => "query_phase",
            TraceOp::CursorSeek => "cursor_seek",
            TraceOp::RangeRead => "range_read",
            TraceOp::BlockDecode => "block_decode",
            TraceOp::QueueWait => "queue_wait",
            TraceOp::FaultInjected => "fault_injected",
            TraceOp::BlockCache => "block_cache",
            TraceOp::ResultCache => "result_cache",
        }
    }

    /// Chrome trace category for this operation.
    fn category(self) -> &'static str {
        match self {
            TraceOp::DeviceRead
            | TraceOp::DeviceWrite
            | TraceOp::RangeRead
            | TraceOp::FaultInjected => "io",
            TraceOp::PoolFetch
            | TraceOp::BufferHit
            | TraceOp::BufferMiss
            | TraceOp::BufferEvict => "buffer",
            TraceOp::HashProbe | TraceOp::BTreeDescent => "index",
            TraceOp::LockWait => "lock",
            TraceOp::Query
            | TraceOp::QueryPhase
            | TraceOp::CursorSeek
            | TraceOp::BlockDecode
            | TraceOp::QueueWait
            | TraceOp::BlockCache
            | TraceOp::ResultCache => "query",
        }
    }
}

/// Sentinel `query` value: the record was emitted outside any query.
pub const NO_QUERY: u32 = u32::MAX;
/// Sentinel `pool` value: the operation has no associated buffer pool.
pub const NO_POOL: u8 = u8::MAX;

/// One traced operation. Fixed-size and `Copy` so shard rings stay flat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Microseconds since the tracer's epoch at which the operation began.
    pub ts_micros: u64,
    /// Duration of the operation in microseconds (0 for point events).
    pub dur_micros: u64,
    /// Track id of the recording thread (dense, assigned on first record).
    pub thread: u32,
    /// Query index the operation belongs to, or [`NO_QUERY`].
    pub query: u32,
    /// What happened.
    pub op: TraceOp,
    /// Object / segment / offset identifier (meaning depends on `op`).
    pub object: u64,
    /// Buffer pool index, or [`NO_POOL`].
    pub pool: u8,
    /// Bytes moved by the operation (0 when not applicable).
    pub bytes: u64,
}

impl TraceRecord {
    /// One JSON object for this record — the line format of
    /// [`Tracer::access_log_jsonl`], also embedded in slow-query dumps.
    /// `pool`/`query` are `null` when absent.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"ts_micros\": {}, \"dur_micros\": {}, \"thread\": {}, \"query\": {}, \
             \"op\": \"{}\", \"object\": {}, \"pool\": {}, \"bytes\": {}}}",
            self.ts_micros,
            self.dur_micros,
            self.thread,
            if self.query == NO_QUERY { "null".to_string() } else { self.query.to_string() },
            self.op.name(),
            self.object,
            if self.pool == NO_POOL { "null".to_string() } else { self.pool.to_string() },
            self.bytes,
        )
    }
}

// Thread track ids are process-wide so a thread keeps one identity across
// tracers; the cell caches the assignment after the first record.
static NEXT_THREAD_TAG: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static THREAD_TAG: Cell<u32> = const { Cell::new(u32::MAX) };
    static CURRENT_QUERY: Cell<u32> = const { Cell::new(NO_QUERY) };
}

fn thread_tag() -> u32 {
    THREAD_TAG.with(|t| {
        let tag = t.get();
        if tag != u32::MAX {
            return tag;
        }
        let tag = NEXT_THREAD_TAG.fetch_add(1, Ordering::Relaxed);
        t.set(tag);
        tag
    })
}

/// The query index the current thread is evaluating ([`NO_QUERY`] outside
/// a query). Stamped onto every record the thread emits.
pub fn current_query() -> u32 {
    CURRENT_QUERY.with(Cell::get)
}

/// Tags the current thread as evaluating query `query` until the guard
/// drops (restoring the previous tag, so tags nest).
pub fn tag_query(query: u32) -> QueryTag {
    let previous = CURRENT_QUERY.with(|c| c.replace(query));
    QueryTag { previous }
}

/// Guard returned by [`tag_query`].
pub struct QueryTag {
    previous: u32,
}

impl Drop for QueryTag {
    fn drop(&mut self) {
        CURRENT_QUERY.with(|c| c.set(self.previous));
    }
}

const TRACE_SHARDS: usize = 16;

#[derive(Default)]
struct Shard {
    ring: VecDeque<TraceRecord>,
}

/// A bounded, sharded ring buffer of [`TraceRecord`]s.
///
/// `capacity` is the total record budget, split evenly across
/// [`TRACE_SHARDS`] shards (minimum one record per shard). Threads map to
/// shards by track id, so with up to 16 tracing threads each shard mutex
/// is private to one thread.
pub struct Tracer {
    epoch: Instant,
    shards: Vec<Mutex<Shard>>,
    shard_capacity: usize,
    dropped: AtomicU64,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("capacity", &(self.shard_capacity * TRACE_SHARDS))
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl Tracer {
    /// A tracer holding at most (roughly) `capacity` records.
    pub fn new(capacity: usize) -> Tracer {
        let shard_capacity = capacity.div_ceil(TRACE_SHARDS).max(1);
        Tracer {
            epoch: Instant::now(),
            shards: (0..TRACE_SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity,
            dropped: AtomicU64::new(0),
        }
    }

    /// Microseconds elapsed since the tracer's epoch.
    pub fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Appends one record; the timestamp is computed here as
    /// `now - dur_micros`, so callers time the operation and report only
    /// its duration. Oldest records are dropped (and counted) when the
    /// recording thread's shard is full.
    pub fn record(&self, op: TraceOp, object: u64, pool: u8, bytes: u64, dur_micros: u64) {
        let thread = thread_tag();
        let record = TraceRecord {
            ts_micros: self.now_micros().saturating_sub(dur_micros),
            dur_micros,
            thread,
            query: current_query(),
            op,
            object,
            pool,
            bytes,
        };
        let mut shard = self.shards[thread as usize % TRACE_SHARDS].lock().unwrap();
        if shard.ring.len() == self.shard_capacity {
            shard.ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        shard.ring.push_back(record);
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().ring.len()).sum()
    }

    /// Whether the tracer holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records dropped because a shard ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Discards all records (the epoch is kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap().ring.clear();
        }
    }

    /// All records, globally sorted by start timestamp (stable, so any
    /// per-thread subsequence is timestamp-ordered too).
    pub fn records(&self) -> Vec<TraceRecord> {
        let mut out = Vec::with_capacity(self.len());
        for shard in &self.shards {
            out.extend(shard.lock().unwrap().ring.iter().copied());
        }
        out.sort_by_key(|r| r.ts_micros);
        out
    }

    /// The records tagged with query `query`, sorted by start timestamp —
    /// the trace slice a slow-query flight-recorder entry retains.
    pub fn records_for_query(&self, query: u32) -> Vec<TraceRecord> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.lock().unwrap().ring.iter().filter(|r| r.query == query).copied());
        }
        out.sort_by_key(|r| r.ts_micros);
        out
    }

    /// Chrome `trace_event` JSON (the "JSON array format" with a
    /// `traceEvents` wrapper), loadable in Perfetto or `chrome://tracing`.
    /// Every record becomes one complete ("X") slice on its thread's
    /// track; thread-name metadata events label the tracks.
    pub fn chrome_trace_json(&self) -> String {
        let records = self.records();
        let mut threads: Vec<u32> = records.iter().map(|r| r.thread).collect();
        threads.sort_unstable();
        threads.dedup();

        let mut s = String::with_capacity(64 + records.len() * 160);
        s.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
        let mut first = true;
        for thread in &threads {
            if !first {
                s.push_str(",\n");
            }
            first = false;
            s.push_str(&format!(
                "{{\"ph\": \"M\", \"pid\": 1, \"tid\": {thread}, \"name\": \"thread_name\", \
                 \"args\": {{\"name\": \"thread {thread}\"}}}}"
            ));
        }
        for r in &records {
            if !first {
                s.push_str(",\n");
            }
            first = false;
            s.push_str(&format!(
                "{{\"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"ts\": {}, \"dur\": {}, \
                 \"name\": \"{}\", \"cat\": \"{}\", \"args\": {{",
                r.thread,
                r.ts_micros,
                r.dur_micros,
                r.op.name(),
                r.op.category()
            ));
            s.push_str(&format!("\"object\": {}, \"bytes\": {}", r.object, r.bytes));
            if r.pool != NO_POOL {
                s.push_str(&format!(", \"pool\": {}", r.pool));
            }
            if r.query != NO_QUERY {
                s.push_str(&format!(", \"query\": {}", r.query));
            }
            s.push_str("}}");
        }
        s.push_str("\n]}\n");
        s
    }

    /// Flat JSONL access log: one JSON object per record per line, in
    /// global timestamp order. `pool`/`query` are `null` when absent.
    pub fn access_log_jsonl(&self) -> String {
        let records = self.records();
        let mut s = String::with_capacity(records.len() * 140);
        for r in &records {
            s.push_str(&r.to_json());
            s.push('\n');
        }
        s
    }

    /// Buffer residency statistics derived from the current records.
    pub fn residency_report(&self, top_n: usize) -> BufferResidencyReport {
        BufferResidencyReport::from_records(&self.records(), top_n)
    }
}

/// Residency statistics for one buffer pool, rebuilt from the trace.
#[derive(Debug, Clone, Default)]
pub struct PoolResidency {
    /// Pool index.
    pub pool: u8,
    /// Buffer references (hits + misses) seen in the trace.
    pub refs: u64,
    /// References served from the buffer.
    pub hits: u64,
    /// References that admitted their segment (misses).
    pub misses: u64,
    /// Segments evicted.
    pub evictions: u64,
    /// Distinct segments referenced.
    pub distinct_segments: u64,
    /// Segments admitted and never evicted within the trace window.
    pub resident_at_end: u64,
    /// Time from a segment's last admission to its eviction, as a
    /// power-of-two-microsecond histogram.
    pub eviction_age: HistogramSnapshot,
}

/// Per-pool residency, eviction-age, and hot-object statistics derived
/// purely from a trace (no live engine state needed).
#[derive(Debug, Clone, Default)]
pub struct BufferResidencyReport {
    /// One entry per pool index seen in the trace, ascending.
    pub pools: Vec<PoolResidency>,
    /// Hottest objects by [`TraceOp::PoolFetch`] count:
    /// `(pool, object, fetches)`, descending, at most `top_n` entries.
    pub hottest: Vec<(u8, u64, u64)>,
}

impl BufferResidencyReport {
    /// Builds the report from trace records (any order; the hit/miss/
    /// evict interleaving per pool uses timestamp order).
    pub fn from_records(records: &[TraceRecord], top_n: usize) -> BufferResidencyReport {
        let mut sorted: Vec<&TraceRecord> = records.iter().collect();
        sorted.sort_by_key(|r| r.ts_micros);

        let mut pools: HashMap<u8, PoolResidency> = HashMap::new();
        // (pool, segment) -> timestamp of the segment's last admission.
        let mut admitted: HashMap<(u8, u64), u64> = HashMap::new();
        let mut seen: HashMap<(u8, u64), ()> = HashMap::new();
        let mut fetches: HashMap<(u8, u64), u64> = HashMap::new();

        for r in &sorted {
            match r.op {
                TraceOp::BufferHit | TraceOp::BufferMiss | TraceOp::BufferEvict => {
                    let entry = pools.entry(r.pool).or_insert_with(|| PoolResidency {
                        pool: r.pool,
                        ..PoolResidency::default()
                    });
                    match r.op {
                        TraceOp::BufferHit => {
                            entry.refs += 1;
                            entry.hits += 1;
                        }
                        TraceOp::BufferMiss => {
                            entry.refs += 1;
                            entry.misses += 1;
                            admitted.insert((r.pool, r.object), r.ts_micros);
                        }
                        TraceOp::BufferEvict => {
                            entry.evictions += 1;
                            if let Some(at) = admitted.remove(&(r.pool, r.object)) {
                                let age = r.ts_micros.saturating_sub(at);
                                entry.eviction_age.buckets
                                    [crate::bucket_for(age).min(HISTOGRAM_BUCKETS - 1)] += 1;
                                entry.eviction_age.count += 1;
                                entry.eviction_age.sum_micros += age;
                            }
                        }
                        _ => unreachable!(),
                    }
                    if r.op != TraceOp::BufferEvict {
                        seen.insert((r.pool, r.object), ());
                    }
                }
                TraceOp::PoolFetch => {
                    *fetches.entry((r.pool, r.object)).or_insert(0) += 1;
                }
                _ => {}
            }
        }

        for &(pool, _) in seen.keys() {
            if let Some(entry) = pools.get_mut(&pool) {
                entry.distinct_segments += 1;
            }
        }
        for &(pool, _) in admitted.keys() {
            if let Some(entry) = pools.get_mut(&pool) {
                entry.resident_at_end += 1;
            }
        }

        let mut pools: Vec<PoolResidency> = pools.into_values().collect();
        pools.sort_by_key(|p| p.pool);

        let mut hottest: Vec<(u8, u64, u64)> =
            fetches.into_iter().map(|((pool, object), n)| (pool, object, n)).collect();
        hottest.sort_by(|a, b| b.2.cmp(&a.2).then(a.1.cmp(&b.1)).then(a.0.cmp(&b.0)));
        hottest.truncate(top_n);

        BufferResidencyReport { pools, hottest }
    }

    /// Plain-text rendering for terminal output.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("buffer residency (from trace)\n");
        s.push_str(
            "  pool       refs       hits     misses  evictions   distinct   resident  mean_evict_age_ms\n",
        );
        for p in &self.pools {
            s.push_str(&format!(
                "  {:>4} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>18.3}\n",
                p.pool,
                p.refs,
                p.hits,
                p.misses,
                p.evictions,
                p.distinct_segments,
                p.resident_at_end,
                p.eviction_age.mean_micros() / 1e3,
            ));
        }
        if !self.hottest.is_empty() {
            s.push_str("  hottest objects by fetch count:\n");
            for (pool, object, n) in &self.hottest {
                let pool = if *pool == NO_POOL { "-".to_string() } else { pool.to_string() };
                s.push_str(&format!("    pool {pool:>2}  object {object:>12}  fetches {n}\n"));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_bounded_and_drop_oldest() {
        let tracer = Tracer::new(16); // 1 per shard
        for i in 0..5 {
            tracer.record(TraceOp::DeviceRead, i, NO_POOL, 100, 0);
        }
        // Single thread -> single shard with capacity 1.
        assert_eq!(tracer.len(), 1);
        assert_eq!(tracer.dropped(), 4);
        assert_eq!(tracer.records()[0].object, 4);
    }

    #[test]
    fn timestamps_never_underflow_and_sort_per_thread() {
        let tracer = Tracer::new(1024);
        tracer.record(TraceOp::LockWait, LOCK_META_READ, NO_POOL, 0, u64::MAX);
        tracer.record(TraceOp::DeviceRead, 7, 1, 8192, 0);
        let records = tracer.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].ts_micros, 0, "saturated start");
        assert!(records.windows(2).all(|w| w[0].ts_micros <= w[1].ts_micros));
    }

    #[test]
    fn query_tags_nest_and_restore() {
        assert_eq!(current_query(), NO_QUERY);
        {
            let _outer = tag_query(3);
            assert_eq!(current_query(), 3);
            {
                let _inner = tag_query(9);
                assert_eq!(current_query(), 9);
            }
            assert_eq!(current_query(), 3);
        }
        assert_eq!(current_query(), NO_QUERY);
    }

    #[test]
    fn records_for_query_filters_and_sorts() {
        let tracer = Tracer::new(64);
        tracer.record(TraceOp::DeviceRead, 1, NO_POOL, 0, 0);
        {
            let _q = tag_query(5);
            tracer.record(TraceOp::QueueWait, 5, NO_POOL, 0, 3);
            tracer.record(TraceOp::PoolFetch, 9, 0, 64, 0);
        }
        {
            let _q = tag_query(6);
            tracer.record(TraceOp::PoolFetch, 10, 0, 64, 0);
        }
        let slice = tracer.records_for_query(5);
        assert_eq!(slice.len(), 2);
        assert!(slice.iter().all(|r| r.query == 5));
        assert!(slice.windows(2).all(|w| w[0].ts_micros <= w[1].ts_micros));
        assert!(tracer.records_for_query(1234).is_empty());
    }

    #[test]
    fn chrome_export_has_metadata_and_slices() {
        let tracer = Tracer::new(64);
        let _q = tag_query(2);
        tracer.record(TraceOp::DeviceRead, 4096, NO_POOL, 8192, 12);
        tracer.record(TraceOp::BufferMiss, 99, 1, 0, 0);
        let json = tracer.chrome_trace_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"device_read\""));
        assert!(json.contains("\"query\": 2"));
        assert!(json.contains("\"pool\": 1"));
    }

    #[test]
    fn jsonl_emits_one_line_per_record() {
        let tracer = Tracer::new(64);
        tracer.record(TraceOp::HashProbe, 5, NO_POOL, 0, 1);
        tracer.record(TraceOp::PoolFetch, 5, 0, 64, 2);
        let log = tracer.access_log_jsonl();
        assert_eq!(log.lines().count(), 2);
        assert!(log.contains("\"op\": \"hash_probe\""));
        assert!(log.contains("\"pool\": null"));
        assert!(log.contains("\"pool\": 0"));
    }

    #[test]
    fn residency_report_tracks_admissions_evictions_and_heat() {
        let mk = |op, object, pool, ts| TraceRecord {
            ts_micros: ts,
            dur_micros: 0,
            thread: 0,
            query: NO_QUERY,
            op,
            object,
            pool,
            bytes: 0,
        };
        let records = vec![
            mk(TraceOp::BufferMiss, 10, 0, 0),
            mk(TraceOp::BufferHit, 10, 0, 5),
            mk(TraceOp::BufferMiss, 20, 0, 6),
            mk(TraceOp::BufferEvict, 10, 0, 9),
            mk(TraceOp::PoolFetch, 77, 0, 1),
            mk(TraceOp::PoolFetch, 77, 0, 2),
            mk(TraceOp::PoolFetch, 88, 0, 3),
        ];
        let report = BufferResidencyReport::from_records(&records, 1);
        assert_eq!(report.pools.len(), 1);
        let p = &report.pools[0];
        assert_eq!((p.refs, p.hits, p.misses, p.evictions), (3, 1, 2, 1));
        assert_eq!(p.distinct_segments, 2);
        assert_eq!(p.resident_at_end, 1, "segment 20 still resident");
        assert_eq!(p.eviction_age.count, 1);
        assert_eq!(p.eviction_age.sum_micros, 9);
        assert_eq!(report.hottest, vec![(0, 77, 2)]);
        assert!(report.render().contains("hottest objects"));
    }
}

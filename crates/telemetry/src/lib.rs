//! Zero-dependency telemetry for the POIR engine stack.
//!
//! Every layer of the stack accepts a [`Recorder`] handle: the simulated
//! device records file accesses, transfer-block inputs, and OS-cache
//! hits/misses; the Mneme buffer manager records per-pool buffer
//! references, evictions, and reservations; the B-tree records node
//! descents and node-cache traffic; and the engine records per-phase
//! query latencies. A disabled recorder (the default) is a `None` inside
//! a clonable handle — every record call is a single branch, so code can
//! be instrumented unconditionally without measurable cost.
//!
//! Counters are grouped three ways:
//!
//! * [`Event`] — global monotonic counters. The I/O events mirror the
//!   storage crate's `IoStats` exactly (they are recorded at the same
//!   call sites), which is what lets [`MetricsReport`] reproduce the
//!   paper's Table 5 I/A/B statistics purely from telemetry.
//! * [`PoolEvent`] — per-buffer-pool counters, indexed by pool id.
//! * [`Phase`] — fixed-bucket (power-of-two microseconds) latency
//!   histograms for the query pipeline phases.
//!
//! Snapshots ([`TelemetrySnapshot`]) are plain value types with a
//! saturating [`TelemetrySnapshot::since`], mirroring `IoSnapshot`.
//! [`QueryTrace`] captures one query's phase times and I/O deltas;
//! [`MetricsReport`] aggregates a query set and exports JSON for the
//! bench bins.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub mod metrics;
pub mod trace;

pub use metrics::{
    Attribution, BreakdownRing, Counter, FlightRecorder, Gauge, Histogram, LatencyBreakdown,
    LatencySummary, MetricSnapshot, MetricValue, MetricsRegistry, RegistrySnapshot,
    SlowQueryRecord, SlowShard, WindowRates,
};
pub use trace::{BufferResidencyReport, PoolResidency, TraceOp, TraceRecord, Tracer};

/// Global monotonic counters.
///
/// The first eight mirror `poir_storage::IoStats` field-for-field and are
/// recorded by the device at the exact same call sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Event {
    /// Read system calls against the device (Table 5's per-lookup "A" numerator).
    FileAccess,
    /// Write system calls against the device.
    FileWrite,
    /// Bytes read from the device (Table 5's "B", reported in Kbytes).
    BytesRead,
    /// Bytes written to the device.
    BytesWritten,
    /// Transfer blocks faulted in from disk (Table 5's "I").
    IoInput,
    /// Transfer blocks written out to disk.
    IoOutput,
    /// Transfer blocks served from the simulated OS file cache.
    OsCacheHit,
    /// Transfer blocks that missed the OS file cache.
    OsCacheMiss,
    /// Inverted-list record lookups served by a store backend.
    RecordLookup,
    /// Internal node reads while descending the B-tree.
    BTreeNodeDescent,
    /// Internal nodes served from the B-tree node cache.
    BTreeCacheHit,
    /// Internal nodes that missed the B-tree node cache.
    BTreeCacheMiss,
    /// Dictionary (term -> store ref) lookups during query evaluation.
    DictLookup,
    /// Inverted-list records decoded during query evaluation.
    RecordDecoded,
    /// Bytes of inverted-list records decoded during query evaluation.
    RecordBytesDecoded,
    /// Individual postings decoded by a cursor during query evaluation.
    PostingsDecoded,
    /// Postings skipped over (never decoded) by cursor seeks.
    PostingsSkipped,
    /// Whole posting blocks bypassed via the skip directory.
    BlocksSkipped,
    /// Partial (byte-range) record fetches served below the store trait.
    RangeRead,
    /// Bytes of posting payload actually decoded by cursors (bit-packed
    /// blocks plus vbyte streams; excludes bytes skipped via the directory).
    BytesDecoded,
    /// Posting blocks decoded from the v2 bit-packed representation.
    BlocksBitpacked,
    /// Requests admitted into the query service's bounded queue.
    QueueEnqueued,
    /// Requests rejected at admission because the queue was full.
    QueueRejected,
    /// Requests whose deadline had already expired when dequeued.
    QueueExpired,
    /// Storage faults fired by an installed fault plan.
    FaultInjected,
    /// Shard evaluations retried after a transient storage fault.
    ShardRetry,
    /// Responses served degraded (one or more shards missing).
    DegradedResponse,
    /// Posting blocks served from the decoded-block cache (no unpack).
    BlockCacheHit,
    /// Decoded-block cache consultations that had to decode.
    BlockCacheMiss,
    /// Decoded blocks admitted into the block cache.
    BlockCacheAdmit,
    /// Decoded blocks evicted from the block cache.
    BlockCacheEvict,
    /// Queries answered from the result cache (no shard evaluation).
    ResultCacheHit,
    /// Result-cache consultations that had to evaluate.
    ResultCacheMiss,
    /// Responses evicted from the result cache.
    ResultCacheEvict,
}

impl Event {
    /// Number of event kinds (array dimension).
    pub const COUNT: usize = 34;

    /// All events, in declaration order.
    pub const ALL: [Event; Event::COUNT] = [
        Event::FileAccess,
        Event::FileWrite,
        Event::BytesRead,
        Event::BytesWritten,
        Event::IoInput,
        Event::IoOutput,
        Event::OsCacheHit,
        Event::OsCacheMiss,
        Event::RecordLookup,
        Event::BTreeNodeDescent,
        Event::BTreeCacheHit,
        Event::BTreeCacheMiss,
        Event::DictLookup,
        Event::RecordDecoded,
        Event::RecordBytesDecoded,
        Event::PostingsDecoded,
        Event::PostingsSkipped,
        Event::BlocksSkipped,
        Event::RangeRead,
        Event::BytesDecoded,
        Event::BlocksBitpacked,
        Event::QueueEnqueued,
        Event::QueueRejected,
        Event::QueueExpired,
        Event::FaultInjected,
        Event::ShardRetry,
        Event::DegradedResponse,
        Event::BlockCacheHit,
        Event::BlockCacheMiss,
        Event::BlockCacheAdmit,
        Event::BlockCacheEvict,
        Event::ResultCacheHit,
        Event::ResultCacheMiss,
        Event::ResultCacheEvict,
    ];

    /// Stable snake_case name used in JSON export.
    pub fn name(self) -> &'static str {
        match self {
            Event::FileAccess => "file_accesses",
            Event::FileWrite => "file_writes",
            Event::BytesRead => "bytes_read",
            Event::BytesWritten => "bytes_written",
            Event::IoInput => "io_inputs",
            Event::IoOutput => "io_outputs",
            Event::OsCacheHit => "os_cache_hits",
            Event::OsCacheMiss => "os_cache_misses",
            Event::RecordLookup => "record_lookups",
            Event::BTreeNodeDescent => "btree_node_descents",
            Event::BTreeCacheHit => "btree_cache_hits",
            Event::BTreeCacheMiss => "btree_cache_misses",
            Event::DictLookup => "dict_lookups",
            Event::RecordDecoded => "records_decoded",
            Event::RecordBytesDecoded => "record_bytes_decoded",
            Event::PostingsDecoded => "postings_decoded",
            Event::PostingsSkipped => "postings_skipped",
            Event::BlocksSkipped => "blocks_skipped",
            Event::RangeRead => "range_reads",
            Event::BytesDecoded => "bytes_decoded",
            Event::BlocksBitpacked => "blocks_bitpacked",
            Event::QueueEnqueued => "queue_enqueued",
            Event::QueueRejected => "queue_rejected",
            Event::QueueExpired => "queue_expired",
            Event::FaultInjected => "faults_injected",
            Event::ShardRetry => "shard_retries",
            Event::DegradedResponse => "degraded_responses",
            Event::BlockCacheHit => "block_cache_hits",
            Event::BlockCacheMiss => "block_cache_misses",
            Event::BlockCacheAdmit => "block_cache_admits",
            Event::BlockCacheEvict => "block_cache_evicts",
            Event::ResultCacheHit => "result_cache_hits",
            Event::ResultCacheMiss => "result_cache_misses",
            Event::ResultCacheEvict => "result_cache_evicts",
        }
    }
}

/// Per-buffer-pool counters, indexed by the Mneme pool id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum PoolEvent {
    /// Buffer references (hits + misses).
    Ref,
    /// References satisfied from the pool's buffer.
    Hit,
    /// References that had to read the segment from the device.
    Miss,
    /// Segments evicted to admit new ones.
    Eviction,
    /// Segments pinned by query reservation.
    Reservation,
}

impl PoolEvent {
    /// Number of pool event kinds (array dimension).
    pub const COUNT: usize = 5;

    /// All pool events, in declaration order.
    pub const ALL: [PoolEvent; PoolEvent::COUNT] = [
        PoolEvent::Ref,
        PoolEvent::Hit,
        PoolEvent::Miss,
        PoolEvent::Eviction,
        PoolEvent::Reservation,
    ];

    /// Stable snake_case name used in JSON export.
    pub fn name(self) -> &'static str {
        match self {
            PoolEvent::Ref => "refs",
            PoolEvent::Hit => "hits",
            PoolEvent::Miss => "misses",
            PoolEvent::Eviction => "evictions",
            PoolEvent::Reservation => "reservations",
        }
    }
}

/// Pools tracked per recorder. Mneme uses three (small/medium/large);
/// extra ids are clamped into the last slot rather than dropped.
pub const MAX_POOLS: usize = 4;

/// Query pipeline phases timed by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Query text -> belief network parse.
    Parse,
    /// Batched prefetch of the query's inverted lists.
    Prefetch,
    /// Buffer reservation (pinning) of the query's lists.
    Reserve,
    /// Belief evaluation: dictionary lookups, record fetches, scoring.
    Evaluate,
    /// Sorting and truncating the scored documents.
    Rank,
}

impl Phase {
    /// Number of phases (array dimension).
    pub const COUNT: usize = 5;

    /// All phases, in pipeline order.
    pub const ALL: [Phase; Phase::COUNT] =
        [Phase::Parse, Phase::Prefetch, Phase::Reserve, Phase::Evaluate, Phase::Rank];

    /// Stable snake_case name used in JSON export.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Prefetch => "prefetch",
            Phase::Reserve => "reserve",
            Phase::Evaluate => "evaluate",
            Phase::Rank => "rank",
        }
    }
}

/// Histogram buckets: bucket `i` holds durations in `[2^(i-1), 2^i)`
/// microseconds (bucket 0 is `< 1us`); the last bucket is unbounded.
pub const HISTOGRAM_BUCKETS: usize = 22;

pub(crate) fn bucket_for(micros: u64) -> usize {
    let bits = 64 - micros.leading_zeros() as usize;
    bits.min(HISTOGRAM_BUCKETS - 1)
}

#[derive(Default)]
pub(crate) struct AtomicHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl AtomicHistogram {
    pub(crate) fn record(&self, micros: u64) {
        self.buckets[bucket_for(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum_micros: self.sum_micros.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of one phase's latency histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Power-of-two microsecond buckets; see [`HISTOGRAM_BUCKETS`].
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed durations in microseconds.
    pub sum_micros: u64,
}

impl HistogramSnapshot {
    /// Saturating element-wise difference `self - earlier`.
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (i, out) in buckets.iter_mut().enumerate() {
            *out = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum_micros: self.sum_micros.saturating_sub(earlier.sum_micros),
        }
    }

    /// Mean observed duration in microseconds (0 when empty).
    pub fn mean_micros(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_micros as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile, reported as the containing bucket's upper
    /// bound in microseconds (0 when empty). The power-of-two buckets
    /// make this an upper bound with at most 2x slack — good enough for
    /// dashboards; exact percentiles come from sample rings.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return if i == 0 { 1 } else { 1u64 << i };
            }
        }
        1u64 << (HISTOGRAM_BUCKETS - 1)
    }
}

// Epochs distinguish recorders so snapshot diffs can detect a baseline
// taken against a *different* recorder (epoch 0 = the disabled recorder,
// treated as a wildcard so `TelemetrySnapshot::default()` baselines keep
// working).
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

struct Inner {
    epoch: u64,
    events: [AtomicU64; Event::COUNT],
    pools: [[AtomicU64; PoolEvent::COUNT]; MAX_POOLS],
    phases: [AtomicHistogram; Phase::COUNT],
}

impl Default for Inner {
    fn default() -> Self {
        Inner {
            epoch: 0,
            events: std::array::from_fn(|_| AtomicU64::new(0)),
            pools: Default::default(),
            phases: Default::default(),
        }
    }
}

/// Cheap-to-clone telemetry handle. Disabled by default; every record
/// call on a disabled recorder is a single `Option` branch.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
    tracer: Option<Arc<Tracer>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .field("tracing", &self.is_tracing())
            .finish()
    }
}

impl Recorder {
    /// A recorder that accumulates counters.
    pub fn enabled() -> Recorder {
        let inner = Inner { epoch: NEXT_EPOCH.fetch_add(1, Ordering::Relaxed), ..Inner::default() };
        Recorder { inner: Some(Arc::new(inner)), tracer: None }
    }

    /// A recorder that drops everything (same as `Recorder::default()`).
    pub fn disabled() -> Recorder {
        Recorder { inner: None, tracer: None }
    }

    /// This recorder, additionally appending a [`TraceRecord`] per traced
    /// operation into `tracer`.
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Recorder {
        self.tracer = Some(tracer);
        self
    }

    /// Whether record calls accumulate anywhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// This recorder's epoch id: a process-unique nonzero value for an
    /// enabled recorder, 0 for a disabled one. Snapshots carry it so a
    /// diff against a snapshot of a *different* recorder is detectable
    /// (see [`TelemetrySnapshot::since_checked`]).
    pub fn epoch(&self) -> u64 {
        self.inner.as_ref().map_or(0, |inner| inner.epoch)
    }

    /// Whether traced operations append [`TraceRecord`]s.
    #[inline]
    pub fn is_tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// `Some(Instant::now())` when tracing, else `None`. Call sites use
    /// this to time an operation only when a tracer will consume it:
    ///
    /// ```ignore
    /// let t = recorder.trace_start();
    /// // ... the operation ...
    /// recorder.trace_end(t, TraceOp::DeviceRead, offset, None, bytes);
    /// ```
    #[inline]
    pub fn trace_start(&self) -> Option<Instant> {
        if self.tracer.is_some() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Appends a trace record spanning from `start` (a
    /// [`Recorder::trace_start`] result) to now. A no-op when `start` is
    /// `None` or no tracer is attached.
    #[inline]
    pub fn trace_end(
        &self,
        start: Option<Instant>,
        op: TraceOp,
        object: u64,
        pool: Option<usize>,
        bytes: u64,
    ) {
        if let (Some(start), Some(tracer)) = (start, &self.tracer) {
            let pool = pool.map_or(trace::NO_POOL, |p| p.min(u8::MAX as usize) as u8);
            tracer.record(op, object, pool, bytes, start.elapsed().as_micros() as u64);
        }
    }

    /// Appends a trace record with an explicit duration (use
    /// [`Duration::ZERO`] for point events). A no-op without a tracer.
    #[inline]
    pub fn trace(&self, op: TraceOp, object: u64, pool: Option<usize>, bytes: u64, dur: Duration) {
        if let Some(tracer) = &self.tracer {
            let pool = pool.map_or(trace::NO_POOL, |p| p.min(u8::MAX as usize) as u8);
            tracer.record(op, object, pool, bytes, dur.as_micros() as u64);
        }
    }

    /// Adds `n` to a global counter.
    #[inline]
    pub fn add(&self, event: Event, n: u64) {
        if let Some(inner) = &self.inner {
            inner.events[event as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1 to a global counter.
    #[inline]
    pub fn incr(&self, event: Event) {
        self.add(event, 1);
    }

    /// Adds `n` to a per-pool counter. Pool ids beyond [`MAX_POOLS`]
    /// clamp into the last slot.
    #[inline]
    pub fn pool_add(&self, pool: usize, event: PoolEvent, n: u64) {
        if let Some(inner) = &self.inner {
            inner.pools[pool.min(MAX_POOLS - 1)][event as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1 to a per-pool counter.
    #[inline]
    pub fn pool_incr(&self, pool: usize, event: PoolEvent) {
        self.pool_add(pool, event, 1);
    }

    /// Records one phase observation of `micros` microseconds.
    #[inline]
    pub fn record_phase(&self, phase: Phase, micros: u64) {
        if let Some(inner) = &self.inner {
            inner.phases[phase as usize].record(micros);
        }
    }

    /// Starts a span that records its elapsed time into `phase` when
    /// dropped (a no-op on a disabled recorder).
    pub fn span(&self, phase: Phase) -> PhaseSpan {
        PhaseSpan { recorder: self.clone(), phase, start: Instant::now() }
    }

    /// Point-in-time copy of every counter (all zeros when disabled).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::default();
        if let Some(inner) = &self.inner {
            snap.epoch = inner.epoch;
            for (out, c) in snap.events.iter_mut().zip(&inner.events) {
                *out = c.load(Ordering::Relaxed);
            }
            for (pool_out, pool) in snap.pools.iter_mut().zip(&inner.pools) {
                for (out, c) in pool_out.iter_mut().zip(pool) {
                    *out = c.load(Ordering::Relaxed);
                }
            }
            for (out, h) in snap.phases.iter_mut().zip(&inner.phases) {
                *out = h.snapshot();
            }
        }
        snap
    }
}

/// Guard returned by [`Recorder::span`]; records elapsed microseconds on drop.
pub struct PhaseSpan {
    recorder: Recorder,
    phase: Phase,
    start: Instant,
}

impl Drop for PhaseSpan {
    fn drop(&mut self) {
        self.recorder.record_phase(self.phase, self.start.elapsed().as_micros() as u64);
    }
}

/// Point-in-time copy of every recorder counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Epoch of the recorder the snapshot was taken from (0 = disabled
    /// recorder or a hand-built baseline; compatible with everything).
    pub epoch: u64,
    /// Global counters, indexed by [`Event`].
    pub events: [u64; Event::COUNT],
    /// Per-pool counters, indexed by pool id then [`PoolEvent`].
    pub pools: [[u64; PoolEvent::COUNT]; MAX_POOLS],
    /// Phase latency histograms, indexed by [`Phase`].
    pub phases: [HistogramSnapshot; Phase::COUNT],
}

impl Default for TelemetrySnapshot {
    fn default() -> Self {
        TelemetrySnapshot {
            epoch: 0,
            events: [0; Event::COUNT],
            pools: [[0; PoolEvent::COUNT]; MAX_POOLS],
            phases: [HistogramSnapshot::default(); Phase::COUNT],
        }
    }
}

/// Two snapshots being diffed came from different recorders, so the
/// counter delta would be meaningless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochMismatch {
    /// Epoch of the later snapshot (`self` in a `since` call).
    pub expected: u64,
    /// Epoch of the earlier snapshot the delta was requested against.
    pub actual: u64,
}

impl std::fmt::Display for EpochMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "telemetry snapshots come from different recorders (epoch {} vs {})",
            self.expected, self.actual
        )
    }
}

impl std::error::Error for EpochMismatch {}

impl TelemetrySnapshot {
    /// Value of one global counter.
    pub fn get(&self, event: Event) -> u64 {
        self.events[event as usize]
    }

    /// Value of one per-pool counter.
    pub fn pool(&self, pool: usize, event: PoolEvent) -> u64 {
        self.pools[pool.min(MAX_POOLS - 1)][event as usize]
    }

    /// Histogram for one phase.
    pub fn phase(&self, phase: Phase) -> &HistogramSnapshot {
        &self.phases[phase as usize]
    }

    /// Whether a delta between the two snapshots is meaningful: same
    /// epoch, or either side is epoch 0 (disabled recorder / hand-built
    /// baseline, compatible with everything).
    pub fn epoch_compatible(&self, other: &TelemetrySnapshot) -> bool {
        self.epoch == other.epoch || self.epoch == 0 || other.epoch == 0
    }

    /// Saturating element-wise difference `self - earlier` (mirrors
    /// `IoSnapshot::since`).
    ///
    /// Debug builds assert the snapshots come from the same recorder;
    /// release builds saturate silently (use
    /// [`TelemetrySnapshot::since_checked`] to handle the mismatch as a
    /// typed error instead).
    pub fn since(&self, earlier: &TelemetrySnapshot) -> TelemetrySnapshot {
        debug_assert!(
            self.epoch_compatible(earlier),
            "telemetry snapshots come from different recorders (epoch {} vs {})",
            self.epoch,
            earlier.epoch
        );
        let mut out = TelemetrySnapshot {
            epoch: if self.epoch != 0 { self.epoch } else { earlier.epoch },
            ..TelemetrySnapshot::default()
        };
        for (i, v) in out.events.iter_mut().enumerate() {
            *v = self.events[i].saturating_sub(earlier.events[i]);
        }
        for (p, pool) in out.pools.iter_mut().enumerate() {
            for (i, v) in pool.iter_mut().enumerate() {
                *v = self.pools[p][i].saturating_sub(earlier.pools[p][i]);
            }
        }
        for (i, v) in out.phases.iter_mut().enumerate() {
            *v = self.phases[i].since(&earlier.phases[i]);
        }
        out
    }

    /// [`TelemetrySnapshot::since`], but an epoch mismatch is a typed
    /// error instead of a saturated (garbage) delta.
    pub fn since_checked(
        &self,
        earlier: &TelemetrySnapshot,
    ) -> Result<TelemetrySnapshot, EpochMismatch> {
        if !self.epoch_compatible(earlier) {
            return Err(EpochMismatch { expected: self.epoch, actual: earlier.epoch });
        }
        Ok(self.since(earlier))
    }
}

/// Typed telemetry switches for engine construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryOptions {
    /// Master switch: record counters and histograms at all.
    pub enabled: bool,
    /// Also build a [`QueryTrace`] per query (requires `enabled`).
    pub trace_queries: bool,
    /// Structured trace ring-buffer capacity in records; 0 (the default)
    /// disables the trace log. Requires `enabled`.
    pub trace_capacity: usize,
}

impl Default for TelemetryOptions {
    fn default() -> Self {
        TelemetryOptions { enabled: false, trace_queries: true, trace_capacity: 0 }
    }
}

impl TelemetryOptions {
    /// Telemetry off (the default; zero overhead).
    pub fn off() -> TelemetryOptions {
        TelemetryOptions { enabled: false, trace_queries: false, trace_capacity: 0 }
    }

    /// Counters, histograms, and per-query traces all on.
    pub fn full() -> TelemetryOptions {
        TelemetryOptions { enabled: true, trace_queries: true, trace_capacity: 0 }
    }

    /// Counters and histograms only; no per-query traces.
    pub fn counters_only() -> TelemetryOptions {
        TelemetryOptions { enabled: true, trace_queries: false, trace_capacity: 0 }
    }

    /// Everything [`TelemetryOptions::full`] records, plus a structured
    /// trace log holding up to `capacity` [`TraceRecord`]s.
    pub fn tracing(capacity: usize) -> TelemetryOptions {
        TelemetryOptions { enabled: true, trace_queries: true, trace_capacity: capacity }
    }
}

/// Telemetry captured for a single query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTrace {
    /// Index of the query within its set.
    pub query: usize,
    /// Results returned after ranking.
    pub results: usize,
    /// Microseconds spent in each phase, indexed by [`Phase`].
    pub phase_micros: [u64; Phase::COUNT],
    /// Counter deltas attributable to this query, indexed by [`Event`].
    pub events: [u64; Event::COUNT],
}

impl Default for QueryTrace {
    fn default() -> Self {
        QueryTrace {
            query: 0,
            results: 0,
            phase_micros: [0; Phase::COUNT],
            events: [0; Event::COUNT],
        }
    }
}

impl QueryTrace {
    /// Delta of one global counter during this query.
    pub fn get(&self, event: Event) -> u64 {
        self.events[event as usize]
    }

    /// Microseconds spent in one phase.
    pub fn phase_micros(&self, phase: Phase) -> u64 {
        self.phase_micros[phase as usize]
    }

    /// Total microseconds across all phases.
    pub fn total_micros(&self) -> u64 {
        self.phase_micros.iter().sum()
    }

    /// JSON object for this trace (stable keys; no external deps).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str(&format!("{{\"query\": {}, \"results\": {}", self.query, self.results));
        s.push_str(", \"phase_micros\": {");
        for (i, phase) in Phase::ALL.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\": {}", phase.name(), self.phase_micros[i]));
        }
        s.push_str("}, \"io\": {");
        for (i, event) in Event::ALL.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\": {}", event.name(), self.events[i]));
        }
        s.push_str("}}");
        s
    }
}

/// Aggregated telemetry for a whole query set: the counter delta over
/// the run, per-query traces, and enough derived accessors to rebuild
/// the paper's Table 5 row (I, A, B) without consulting `IoStats`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsReport {
    /// Queries executed.
    pub queries: usize,
    /// Counter/histogram deltas over the query set.
    pub delta: TelemetrySnapshot,
    /// Per-query traces (empty unless `trace_queries` was on, or for
    /// parallel runs where per-query attribution is not meaningful).
    pub traces: Vec<QueryTrace>,
    /// Engine (CPU) time for the set, microseconds.
    pub engine_micros: u64,
    /// Cost-model charge for the set's I/O, microseconds. Derived from
    /// the telemetry counters (not from `IoStats`) by the engine.
    pub sim_io_micros: u64,
}

impl MetricsReport {
    /// Table 5 "I": transfer blocks read from disk.
    pub fn io_inputs(&self) -> u64 {
        self.delta.get(Event::IoInput)
    }

    /// Read system calls issued against the device.
    pub fn file_accesses(&self) -> u64 {
        self.delta.get(Event::FileAccess)
    }

    /// Inverted-list record lookups served.
    pub fn record_lookups(&self) -> u64 {
        self.delta.get(Event::RecordLookup)
    }

    /// Table 5 "A": file accesses per record lookup.
    pub fn accesses_per_lookup(&self) -> f64 {
        if self.record_lookups() == 0 {
            0.0
        } else {
            self.file_accesses() as f64 / self.record_lookups() as f64
        }
    }

    /// Bytes read from the device.
    pub fn bytes_read(&self) -> u64 {
        self.delta.get(Event::BytesRead)
    }

    /// Table 5 "B": Kbytes read from the device.
    pub fn kbytes_read(&self) -> u64 {
        self.bytes_read() / 1024
    }

    /// OS-cache hit rate over transfer-block touches.
    pub fn os_cache_hit_rate(&self) -> f64 {
        let hits = self.delta.get(Event::OsCacheHit);
        let total = hits + self.delta.get(Event::OsCacheMiss);
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Per-pool buffer hit rate (0.0 when the pool saw no references).
    pub fn pool_hit_rate(&self, pool: usize) -> f64 {
        let refs = self.delta.pool(pool, PoolEvent::Ref);
        if refs == 0 {
            0.0
        } else {
            self.delta.pool(pool, PoolEvent::Hit) as f64 / refs as f64
        }
    }

    /// Simulated wall-clock seconds: engine time plus cost-model I/O time.
    pub fn wall_clock_secs(&self) -> f64 {
        (self.engine_micros + self.sim_io_micros) as f64 / 1e6
    }

    /// JSON object for the whole report (stable keys; no external deps).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024 + 256 * self.traces.len());
        s.push_str(&format!(
            "{{\n  \"queries\": {},\n  \"engine_micros\": {},\n  \"sim_io_micros\": {},\n",
            self.queries, self.engine_micros, self.sim_io_micros
        ));
        s.push_str(&format!(
            "  \"table5\": {{\"io_inputs\": {}, \"accesses_per_lookup\": {:.4}, \"kbytes_read\": {}}},\n",
            self.io_inputs(),
            self.accesses_per_lookup(),
            self.kbytes_read()
        ));
        s.push_str("  \"counters\": {");
        for (i, event) in Event::ALL.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\": {}", event.name(), self.delta.events[i]));
        }
        s.push_str("},\n  \"pools\": [");
        for pool in 0..MAX_POOLS {
            if pool > 0 {
                s.push_str(", ");
            }
            s.push('{');
            for (i, event) in PoolEvent::ALL.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("\"{}\": {}", event.name(), self.delta.pools[pool][i]));
            }
            s.push('}');
        }
        s.push_str("],\n  \"phases\": {");
        for (i, phase) in Phase::ALL.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let h = &self.delta.phases[i];
            s.push_str(&format!(
                "\"{}\": {{\"count\": {}, \"sum_micros\": {}, \"mean_micros\": {:.1}}}",
                phase.name(),
                h.count,
                h.sum_micros,
                h.mean_micros()
            ));
        }
        s.push_str("},\n  \"traces\": [");
        for (i, trace) in self.traces.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&trace.to_json());
        }
        s.push_str("]\n}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        r.incr(Event::FileAccess);
        r.pool_incr(0, PoolEvent::Hit);
        r.record_phase(Phase::Parse, 10);
        assert_eq!(r.snapshot(), TelemetrySnapshot::default());
    }

    #[test]
    fn counters_accumulate_and_diff() {
        let r = Recorder::enabled();
        r.add(Event::BytesRead, 100);
        let before = r.snapshot();
        r.add(Event::BytesRead, 50);
        r.incr(Event::IoInput);
        r.pool_add(2, PoolEvent::Eviction, 3);
        let delta = r.snapshot().since(&before);
        assert_eq!(delta.get(Event::BytesRead), 50);
        assert_eq!(delta.get(Event::IoInput), 1);
        assert_eq!(delta.pool(2, PoolEvent::Eviction), 3);
        assert_eq!(delta.get(Event::FileAccess), 0);
    }

    #[test]
    fn clones_share_state() {
        let r = Recorder::enabled();
        let c = r.clone();
        c.incr(Event::RecordLookup);
        assert_eq!(r.snapshot().get(Event::RecordLookup), 1);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(bucket_for(0), 0);
        assert_eq!(bucket_for(1), 1);
        assert_eq!(bucket_for(2), 2);
        assert_eq!(bucket_for(3), 2);
        assert_eq!(bucket_for(4), 3);
        assert_eq!(bucket_for(u64::MAX), HISTOGRAM_BUCKETS - 1);
        let r = Recorder::enabled();
        r.record_phase(Phase::Evaluate, 5);
        r.record_phase(Phase::Evaluate, 7);
        let h = *r.snapshot().phase(Phase::Evaluate);
        assert_eq!(h.count, 2);
        assert_eq!(h.sum_micros, 12);
        assert_eq!(h.buckets[3], 2); // [4, 8)
        assert!((h.mean_micros() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn span_records_on_drop() {
        let r = Recorder::enabled();
        {
            let _span = r.span(Phase::Rank);
        }
        assert_eq!(r.snapshot().phase(Phase::Rank).count, 1);
    }

    #[test]
    fn report_derives_table5_statistics() {
        let r = Recorder::enabled();
        r.add(Event::IoInput, 40);
        r.add(Event::FileAccess, 30);
        r.add(Event::RecordLookup, 20);
        r.add(Event::BytesRead, 4096 * 25);
        let report = MetricsReport {
            queries: 10,
            delta: r.snapshot(),
            traces: Vec::new(),
            engine_micros: 1_000,
            sim_io_micros: 9_000,
        };
        assert_eq!(report.io_inputs(), 40);
        assert!((report.accesses_per_lookup() - 1.5).abs() < 1e-9);
        assert_eq!(report.kbytes_read(), 100);
        assert!((report.wall_clock_secs() - 0.01).abs() < 1e-12);
        let json = report.to_json();
        assert!(json.contains("\"io_inputs\": 40"));
        assert!(json.contains("\"accesses_per_lookup\": 1.5000"));
        assert!(json.contains("\"kbytes_read\": 100"));
    }

    #[test]
    fn epochs_distinguish_recorders() {
        let a = Recorder::enabled();
        let b = Recorder::enabled();
        assert_ne!(a.epoch(), 0);
        assert_ne!(a.epoch(), b.epoch(), "every enabled recorder gets its own epoch");
        assert_eq!(a.clone().epoch(), a.epoch(), "clones share the epoch");
        assert_eq!(Recorder::disabled().epoch(), 0);
        assert_eq!(a.snapshot().epoch, a.epoch());

        // Same recorder: checked diff succeeds and keeps the epoch.
        let before = a.snapshot();
        a.add(Event::IoInput, 2);
        let delta = a.snapshot().since_checked(&before).expect("same recorder");
        assert_eq!(delta.get(Event::IoInput), 2);
        assert_eq!(delta.epoch, a.epoch());

        // Epoch 0 is a wildcard: hand-built baselines keep working.
        let delta = a.snapshot().since(&TelemetrySnapshot::default());
        assert_eq!(delta.epoch, a.epoch());

        // Different recorders: typed error, with both epochs reported.
        let err = a.snapshot().since_checked(&b.snapshot()).unwrap_err();
        assert_eq!(err, EpochMismatch { expected: a.epoch(), actual: b.epoch() });
        assert!(err.to_string().contains("different recorders"));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "different recorders")]
    fn since_asserts_on_cross_recorder_diff_in_debug() {
        let a = Recorder::enabled();
        let b = Recorder::enabled();
        let _ = a.snapshot().since(&b.snapshot());
    }

    #[test]
    fn histogram_quantiles_report_bucket_upper_bounds() {
        assert_eq!(HistogramSnapshot::default().quantile_micros(0.99), 0);
        let r = Recorder::enabled();
        for _ in 0..98 {
            r.record_phase(Phase::Evaluate, 3); // bucket [2, 4)
        }
        r.record_phase(Phase::Evaluate, 100); // bucket [64, 128)
        r.record_phase(Phase::Evaluate, 5000); // bucket [4096, 8192)
        let h = *r.snapshot().phase(Phase::Evaluate);
        assert_eq!(h.quantile_micros(0.50), 4);
        assert_eq!(h.quantile_micros(0.99), 128);
        assert_eq!(h.quantile_micros(1.0), 8192);
    }

    #[test]
    fn trace_json_has_phase_and_io_keys() {
        let mut t = QueryTrace { query: 3, results: 7, ..QueryTrace::default() };
        t.phase_micros[Phase::Evaluate as usize] = 42;
        t.events[Event::IoInput as usize] = 5;
        let json = t.to_json();
        assert!(json.contains("\"query\": 3"));
        assert!(json.contains("\"evaluate\": 42"));
        assert!(json.contains("\"io_inputs\": 5"));
    }
}

//! Windowed serving metrics: rolling counters, gauges, and latency
//! histograms, plus tail-latency attribution and the slow-query flight
//! recorder.
//!
//! Where the rest of this crate accumulates *lifetime* counters (the
//! batch-measurement model: snapshot, run, diff), a long-lived server
//! needs *rates* — "admitted per second over the last 10 seconds", not
//! "admitted since boot". Every windowed metric here keeps a ring of
//! [`WINDOW_BUCKETS`] fixed-duration buckets ([`BUCKET_MILLIS`] each);
//! writers stamp the bucket for the current wall-clock slot and reset it
//! when the slot is reused (a compare-exchange on the stamp picks one
//! resetting writer), readers sum the buckets whose stamps fall inside
//! the last 1/10/60 seconds. Everything is plain atomics on the write
//! path — no locks, one CAS only on the first write of each one-second
//! slot. The reset protocol has a documented slack: a write racing the
//! slot reset can lose its delta *for that window*; the separate lifetime
//! total is always exact.
//!
//! On top of the registry sit the serving-observability types:
//!
//! * [`LatencyBreakdown`] — one request's end-to-end time split into
//!   queue / eval / merge / other, where `other` is the residual so the
//!   components always sum back to the measured total.
//! * [`BreakdownRing`] — a bounded ring of recent breakdowns; computes
//!   exact nearest-rank percentiles ([`LatencySummary`]) and the
//!   [`Attribution`] of the p99: the slow quantile's own split plus the
//!   mean split of everything at or above it.
//! * [`FlightRecorder`] — the N slowest requests past a threshold, each
//!   retaining its breakdown, mode, shard timings, and (when tracing is
//!   on) its extracted trace slice; dumpable as JSONL.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::trace::TraceRecord;
use crate::{bucket_for, AtomicHistogram, HistogramSnapshot, HISTOGRAM_BUCKETS};

/// Ring length of every windowed metric. 64 one-second buckets cover the
/// longest aggregation window (60 s) with slack for clock-edge skew.
pub const WINDOW_BUCKETS: usize = 64;

/// Duration of one ring bucket in milliseconds.
pub const BUCKET_MILLIS: u64 = 1000;

/// Stamp value of a never-written bucket.
const EMPTY: u64 = u64::MAX;

/// Shared time base for every metric of a registry, so one bucket index
/// means the same wall-clock second everywhere.
struct Clock {
    epoch: Instant,
    /// Test-only skew so window rotation is testable without sleeping.
    skew_millis: AtomicU64,
}

impl Clock {
    fn new() -> Clock {
        Clock { epoch: Instant::now(), skew_millis: AtomicU64::new(0) }
    }

    /// The current wall-clock slot (monotone, starts at 0).
    fn now_bucket(&self) -> u64 {
        let millis =
            self.epoch.elapsed().as_millis() as u64 + self.skew_millis.load(Ordering::Relaxed);
        millis / BUCKET_MILLIS
    }

    #[cfg(test)]
    fn advance(&self, millis: u64) {
        self.skew_millis.fetch_add(millis, Ordering::Relaxed);
    }
}

/// Claims `slot` for wall-clock bucket `now`. Returns `true` when this
/// caller won the rotation and must reset the slot's payload.
fn claim_slot(stamp: &AtomicU64, now: u64) -> bool {
    let s = stamp.load(Ordering::Acquire);
    s != now && stamp.compare_exchange(s, now, Ordering::AcqRel, Ordering::Relaxed).is_ok()
}

/// Whether a bucket stamped `stamp` lies inside the trailing window of
/// `secs` seconds ending at bucket `now` (the current partial bucket
/// included).
fn in_window(stamp: u64, now: u64, secs: u64) -> bool {
    stamp != EMPTY && stamp <= now && stamp + secs > now
}

/// Per-second rates over the rolling 1 s / 10 s / 60 s windows.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WindowRates {
    /// Events per second over the last second.
    pub s1: f64,
    /// Events per second averaged over the last 10 seconds.
    pub s10: f64,
    /// Events per second averaged over the last 60 seconds.
    pub s60: f64,
}

struct CounterSlot {
    stamp: AtomicU64,
    value: AtomicU64,
}

struct CounterCore {
    total: AtomicU64,
    ring: Vec<CounterSlot>,
}

/// A monotone windowed counter handle (clones share state).
#[derive(Clone)]
pub struct Counter {
    clock: Arc<Clock>,
    core: Arc<CounterCore>,
}

impl Counter {
    fn new(clock: Arc<Clock>) -> Counter {
        let ring = (0..WINDOW_BUCKETS)
            .map(|_| CounterSlot { stamp: AtomicU64::new(EMPTY), value: AtomicU64::new(0) })
            .collect();
        Counter { clock, core: Arc::new(CounterCore { total: AtomicU64::new(0), ring }) }
    }

    /// Adds `n`; the lifetime total is exact, the window bucket is subject
    /// to the rotation slack documented on the module.
    pub fn add(&self, n: u64) {
        self.core.total.fetch_add(n, Ordering::Relaxed);
        let now = self.clock.now_bucket();
        let slot = &self.core.ring[(now % WINDOW_BUCKETS as u64) as usize];
        if claim_slot(&slot.stamp, now) {
            slot.value.store(0, Ordering::Relaxed);
        }
        slot.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Exact lifetime total.
    pub fn total(&self) -> u64 {
        self.core.total.load(Ordering::Relaxed)
    }

    /// Sum over the trailing `secs`-second window (current partial bucket
    /// included; `secs` clamps to [`WINDOW_BUCKETS`]).
    pub fn sum_window(&self, secs: u64) -> u64 {
        let now = self.clock.now_bucket();
        let secs = secs.clamp(1, WINDOW_BUCKETS as u64);
        let mut sum = 0;
        for slot in &self.core.ring {
            if in_window(slot.stamp.load(Ordering::Acquire), now, secs) {
                sum += slot.value.load(Ordering::Relaxed);
            }
        }
        sum
    }

    /// 1 s / 10 s / 60 s per-second rates. Windows longer than the
    /// registry's uptime divide by the elapsed time instead, so a young
    /// server's 60 s rate is not artificially deflated.
    pub fn rates(&self) -> WindowRates {
        let elapsed = self.clock.now_bucket() + 1;
        let rate = |secs: u64| self.sum_window(secs) as f64 / secs.min(elapsed).max(1) as f64;
        WindowRates { s1: rate(1), s10: rate(10), s60: rate(60) }
    }
}

struct GaugeSlot {
    stamp: AtomicU64,
    max: AtomicI64,
}

struct GaugeCore {
    value: AtomicI64,
    ring: Vec<GaugeSlot>,
}

/// An instantaneous value with a windowed maximum (clones share state).
#[derive(Clone)]
pub struct Gauge {
    clock: Arc<Clock>,
    core: Arc<GaugeCore>,
}

impl Gauge {
    fn new(clock: Arc<Clock>) -> Gauge {
        let ring = (0..WINDOW_BUCKETS)
            .map(|_| GaugeSlot { stamp: AtomicU64::new(EMPTY), max: AtomicI64::new(i64::MIN) })
            .collect();
        Gauge { clock, core: Arc::new(GaugeCore { value: AtomicI64::new(0), ring }) }
    }

    fn observe(&self, v: i64) {
        let now = self.clock.now_bucket();
        let slot = &self.core.ring[(now % WINDOW_BUCKETS as u64) as usize];
        if claim_slot(&slot.stamp, now) {
            slot.max.store(i64::MIN, Ordering::Relaxed);
        }
        slot.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Sets the current value (and folds it into the window maximum).
    pub fn set(&self, v: i64) {
        self.core.value.store(v, Ordering::Relaxed);
        self.observe(v);
    }

    /// Adds `delta`, returning the new value.
    pub fn add(&self, delta: i64) -> i64 {
        let v = self.core.value.fetch_add(delta, Ordering::Relaxed) + delta;
        self.observe(v);
        v
    }

    /// Adds 1, returning the new value.
    pub fn inc(&self) -> i64 {
        self.add(1)
    }

    /// Subtracts 1, returning the new value.
    pub fn dec(&self) -> i64 {
        self.add(-1)
    }

    /// The current value.
    pub fn value(&self) -> i64 {
        self.core.value.load(Ordering::Relaxed)
    }

    /// Maximum observed over the trailing `secs`-second window, never
    /// below the current value.
    pub fn max_window(&self, secs: u64) -> i64 {
        let now = self.clock.now_bucket();
        let secs = secs.clamp(1, WINDOW_BUCKETS as u64);
        let mut max = self.value();
        for slot in &self.core.ring {
            if in_window(slot.stamp.load(Ordering::Acquire), now, secs) {
                max = max.max(slot.max.load(Ordering::Relaxed));
            }
        }
        max
    }
}

struct HistogramSlot {
    stamp: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

struct HistogramCore {
    lifetime: AtomicHistogram,
    ring: Vec<HistogramSlot>,
}

/// A streaming latency histogram (the crate's 22-bucket power-of-two
/// layout) with both lifetime and windowed views (clones share state).
#[derive(Clone)]
pub struct Histogram {
    clock: Arc<Clock>,
    core: Arc<HistogramCore>,
}

impl Histogram {
    fn new(clock: Arc<Clock>) -> Histogram {
        let ring = (0..WINDOW_BUCKETS)
            .map(|_| HistogramSlot {
                stamp: AtomicU64::new(EMPTY),
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum_micros: AtomicU64::new(0),
            })
            .collect();
        Histogram {
            clock,
            core: Arc::new(HistogramCore { lifetime: AtomicHistogram::default(), ring }),
        }
    }

    /// Records one observation of `micros` microseconds.
    pub fn record(&self, micros: u64) {
        self.core.lifetime.record(micros);
        let now = self.clock.now_bucket();
        let slot = &self.core.ring[(now % WINDOW_BUCKETS as u64) as usize];
        if claim_slot(&slot.stamp, now) {
            for b in &slot.buckets {
                b.store(0, Ordering::Relaxed);
            }
            slot.count.store(0, Ordering::Relaxed);
            slot.sum_micros.store(0, Ordering::Relaxed);
        }
        slot.buckets[bucket_for(micros)].fetch_add(1, Ordering::Relaxed);
        slot.count.fetch_add(1, Ordering::Relaxed);
        slot.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// The exact lifetime histogram.
    pub fn lifetime(&self) -> HistogramSnapshot {
        self.core.lifetime.snapshot()
    }

    /// Merged histogram over the trailing `secs`-second window.
    pub fn window(&self, secs: u64) -> HistogramSnapshot {
        let now = self.clock.now_bucket();
        let secs = secs.clamp(1, WINDOW_BUCKETS as u64);
        let mut out = HistogramSnapshot::default();
        for slot in &self.core.ring {
            if in_window(slot.stamp.load(Ordering::Acquire), now, secs) {
                for (o, b) in out.buckets.iter_mut().zip(&slot.buckets) {
                    *o += b.load(Ordering::Relaxed);
                }
                out.count += slot.count.load(Ordering::Relaxed);
                out.sum_micros += slot.sum_micros.load(Ordering::Relaxed);
            }
        }
        out
    }
}

#[derive(Clone)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Handle {
    fn kind(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

struct MetricEntry {
    name: String,
    handle: Handle,
}

/// A named collection of windowed metrics sharing one clock. Cheap to
/// clone (clones share state); registering an existing name returns the
/// existing handle, so services and their samplers agree on identity.
#[derive(Clone)]
pub struct MetricsRegistry {
    clock: Arc<Clock>,
    metrics: Arc<Mutex<Vec<MetricEntry>>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An empty registry with a fresh clock epoch.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry { clock: Arc::new(Clock::new()), metrics: Arc::new(Mutex::new(Vec::new())) }
    }

    fn register(&self, name: &str, make: impl FnOnce(Arc<Clock>) -> Handle) -> Handle {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        if let Some(entry) = metrics.iter().find(|e| e.name == name) {
            return entry.handle.clone();
        }
        let handle = make(Arc::clone(&self.clock));
        metrics.push(MetricEntry { name: name.to_string(), handle: handle.clone() });
        handle
    }

    /// Registers (or retrieves) a windowed counter.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        match self.register(name, |c| Handle::Counter(Counter::new(c))) {
            Handle::Counter(c) => c,
            h => panic!("metric {name:?} already registered as a {}", h.kind()),
        }
    }

    /// Registers (or retrieves) a gauge.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.register(name, |c| Handle::Gauge(Gauge::new(c))) {
            Handle::Gauge(g) => g,
            h => panic!("metric {name:?} already registered as a {}", h.kind()),
        }
    }

    /// Registers (or retrieves) a windowed histogram.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.register(name, |c| Handle::Histogram(Histogram::new(c))) {
            Handle::Histogram(h) => h,
            h => panic!("metric {name:?} already registered as a {}", h.kind()),
        }
    }

    /// Point-in-time copy of every registered metric, in registration
    /// order.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let metrics = self.metrics.lock().expect("metrics registry poisoned");
        let entries = metrics
            .iter()
            .map(|e| MetricSnapshot {
                name: e.name.clone(),
                value: match &e.handle {
                    Handle::Counter(c) => {
                        MetricValue::Counter { total: c.total(), rates: c.rates() }
                    }
                    Handle::Gauge(g) => {
                        MetricValue::Gauge { value: g.value(), max_60s: g.max_window(60) }
                    }
                    Handle::Histogram(h) => MetricValue::Histogram {
                        lifetime: Box::new(h.lifetime()),
                        last_60s: Box::new(h.window(60)),
                    },
                },
            })
            .collect();
        RegistrySnapshot { metrics: entries }
    }

    #[cfg(test)]
    fn advance(&self, millis: u64) {
        self.clock.advance(millis);
    }
}

/// One metric's state inside a [`RegistrySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Lifetime total plus windowed rates.
    Counter {
        /// Exact lifetime total.
        total: u64,
        /// Per-second rates over the rolling windows.
        rates: WindowRates,
    },
    /// Current value plus windowed maximum.
    Gauge {
        /// The instantaneous value.
        value: i64,
        /// Maximum over the last 60 seconds (≥ `value`).
        max_60s: i64,
    },
    /// Lifetime and trailing-60 s histograms (boxed: a snapshot holds a
    /// full bucket array, far larger than the other variants).
    Histogram {
        /// Exact lifetime histogram.
        lifetime: Box<HistogramSnapshot>,
        /// Merged histogram over the last 60 seconds.
        last_60s: Box<HistogramSnapshot>,
    },
}

/// A named [`MetricValue`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Registration name (stable snake_case).
    pub name: String,
    /// The metric's state.
    pub value: MetricValue,
}

/// Point-in-time copy of a whole [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RegistrySnapshot {
    /// Every metric, in registration order.
    pub metrics: Vec<MetricSnapshot>,
}

impl RegistrySnapshot {
    /// The state of one metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.iter().find(|m| m.name == name).map(|m| &m.value)
    }

    /// JSON array of metric objects (stable keys; no external deps).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(64 + self.metrics.len() * 128);
        s.push('[');
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            match &m.value {
                MetricValue::Counter { total, rates } => s.push_str(&format!(
                    "{{\"name\": \"{}\", \"kind\": \"counter\", \"total\": {}, \
                     \"rate_1s\": {:.3}, \"rate_10s\": {:.3}, \"rate_60s\": {:.3}}}",
                    m.name, total, rates.s1, rates.s10, rates.s60
                )),
                MetricValue::Gauge { value, max_60s } => s.push_str(&format!(
                    "{{\"name\": \"{}\", \"kind\": \"gauge\", \"value\": {}, \"max_60s\": {}}}",
                    m.name, value, max_60s
                )),
                MetricValue::Histogram { lifetime, last_60s } => s.push_str(&format!(
                    "{{\"name\": \"{}\", \"kind\": \"histogram\", \"count\": {}, \
                     \"sum_micros\": {}, \"p50_micros\": {}, \"p99_micros\": {}, \
                     \"count_60s\": {}, \"mean_micros_60s\": {:.1}}}",
                    m.name,
                    lifetime.count,
                    lifetime.sum_micros,
                    lifetime.quantile_micros(0.50),
                    lifetime.quantile_micros(0.99),
                    last_60s.count,
                    last_60s.mean_micros()
                )),
            }
        }
        s.push(']');
        s
    }

    /// Prometheus text exposition (one `# TYPE` line plus samples per
    /// metric, every name prefixed with `prefix`). Histogram buckets use
    /// the crate's power-of-two-microsecond upper bounds.
    pub fn prometheus_text(&self, prefix: &str) -> String {
        let mut s = String::with_capacity(128 + self.metrics.len() * 256);
        for m in &self.metrics {
            let name = format!("{prefix}{}", m.name);
            match &m.value {
                MetricValue::Counter { total, .. } => {
                    s.push_str(&format!("# TYPE {name} counter\n{name} {total}\n"));
                }
                MetricValue::Gauge { value, .. } => {
                    s.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
                }
                MetricValue::Histogram { lifetime, .. } => {
                    s.push_str(&format!("# TYPE {name} histogram\n"));
                    let mut acc = 0u64;
                    for (i, c) in lifetime.buckets.iter().enumerate() {
                        acc += c;
                        let le = if i == HISTOGRAM_BUCKETS - 1 {
                            "+Inf".to_string()
                        } else {
                            (1u64 << i).to_string()
                        };
                        s.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {acc}\n"));
                    }
                    s.push_str(&format!("{name}_sum {}\n", lifetime.sum_micros));
                    s.push_str(&format!("{name}_count {}\n", lifetime.count));
                }
            }
        }
        s
    }
}

/// Where one request's end-to-end time went. `other` is the residual
/// (`total - queue - eval - merge`, saturating), so the four components
/// sum back to the measured total by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyBreakdown {
    /// The request's stable query id (see `QueryRequest::id`).
    pub query_id: u32,
    /// Microseconds waiting in the admission queue.
    pub queue_micros: u64,
    /// Microseconds of per-shard evaluation, summed across shards.
    pub eval_micros: u64,
    /// Microseconds merging the per-shard top-k lists.
    pub merge_micros: u64,
    /// Residual: parsing, result naming, scheduling gaps.
    pub other_micros: u64,
}

impl LatencyBreakdown {
    /// Builds a breakdown whose components sum to `total_micros` exactly
    /// (when the parts exceed the measured total — overlapping clocks —
    /// `other` saturates to 0 and the sum equals the parts instead).
    pub fn from_parts(
        query_id: u32,
        queue_micros: u64,
        eval_micros: u64,
        merge_micros: u64,
        total_micros: u64,
    ) -> LatencyBreakdown {
        let other_micros = total_micros.saturating_sub(queue_micros + eval_micros + merge_micros);
        LatencyBreakdown { query_id, queue_micros, eval_micros, merge_micros, other_micros }
    }

    /// Sum of the four components.
    pub fn total_micros(&self) -> u64 {
        self.queue_micros + self.eval_micros + self.merge_micros + self.other_micros
    }

    /// The component fields as a JSON fragment (no braces), shared by the
    /// stats and flight-recorder exports.
    pub fn json_fields(&self) -> String {
        format!(
            "\"query_id\": {}, \"queue_micros\": {}, \"eval_micros\": {}, \
             \"merge_micros\": {}, \"other_micros\": {}, \"total_micros\": {}",
            self.query_id,
            self.queue_micros,
            self.eval_micros,
            self.merge_micros,
            self.other_micros,
            self.total_micros()
        )
    }
}

/// Exact nearest-rank latency percentiles over a [`BreakdownRing`]'s
/// retained window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Requests in the window.
    pub count: usize,
    /// Mean end-to-end microseconds.
    pub mean_micros: f64,
    /// Median end-to-end microseconds.
    pub p50_micros: u64,
    /// 95th percentile.
    pub p95_micros: u64,
    /// 99th percentile.
    pub p99_micros: u64,
    /// Maximum.
    pub max_micros: u64,
}

impl LatencySummary {
    /// JSON object (stable keys; no external deps).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\": {}, \"mean_micros\": {:.1}, \"p50_micros\": {}, \
             \"p95_micros\": {}, \"p99_micros\": {}, \"max_micros\": {}}}",
            self.count,
            self.mean_micros,
            self.p50_micros,
            self.p95_micros,
            self.p99_micros,
            self.max_micros
        )
    }
}

/// Where the p99 spends its time: the nearest-rank p99 request's own
/// [`LatencyBreakdown`] (components sum to `p99_micros` by construction)
/// plus the mean split over every request at or above it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Attribution {
    /// Requests the attribution was computed over.
    pub samples: usize,
    /// Requests with `total >= p99_micros` (the averaged tail).
    pub tail_count: usize,
    /// The nearest-rank 99th-percentile end-to-end microseconds.
    pub p99_micros: u64,
    /// The p99 request's exact component split.
    pub breakdown: LatencyBreakdown,
    /// Mean queue microseconds over the tail.
    pub tail_queue_micros: f64,
    /// Mean eval microseconds over the tail.
    pub tail_eval_micros: f64,
    /// Mean merge microseconds over the tail.
    pub tail_merge_micros: f64,
    /// Mean residual microseconds over the tail.
    pub tail_other_micros: f64,
}

impl Attribution {
    /// JSON object (stable keys; no external deps).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"samples\": {}, \"tail_count\": {}, \"p99_micros\": {}, {}, \
             \"tail_queue_micros\": {:.1}, \"tail_eval_micros\": {:.1}, \
             \"tail_merge_micros\": {:.1}, \"tail_other_micros\": {:.1}}}",
            self.samples,
            self.tail_count,
            self.p99_micros,
            self.breakdown.json_fields(),
            self.tail_queue_micros,
            self.tail_eval_micros,
            self.tail_merge_micros,
            self.tail_other_micros
        )
    }
}

/// A bounded ring of recent [`LatencyBreakdown`]s; the source of exact
/// percentiles and p99 attribution (the windowed histograms are
/// power-of-two-coarse, too blunt for "within 5% of p99" claims).
pub struct BreakdownRing {
    capacity: usize,
    inner: Mutex<VecDeque<LatencyBreakdown>>,
}

impl BreakdownRing {
    /// A ring retaining the last `capacity` (min 1) breakdowns.
    pub fn new(capacity: usize) -> BreakdownRing {
        let capacity = capacity.max(1);
        BreakdownRing { capacity, inner: Mutex::new(VecDeque::with_capacity(capacity)) }
    }

    /// Appends one breakdown, evicting the oldest past capacity.
    pub fn push(&self, b: LatencyBreakdown) {
        let mut ring = self.inner.lock().expect("breakdown ring poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(b);
    }

    /// Breakdowns currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("breakdown ring poisoned").len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy of the retained window, oldest first.
    pub fn snapshot(&self) -> Vec<LatencyBreakdown> {
        self.inner.lock().expect("breakdown ring poisoned").iter().copied().collect()
    }

    /// Exact nearest-rank percentiles over the retained window.
    pub fn summary(&self) -> LatencySummary {
        let mut totals: Vec<u64> = self.snapshot().iter().map(|b| b.total_micros()).collect();
        if totals.is_empty() {
            return LatencySummary::default();
        }
        totals.sort_unstable();
        let pick = |q: f64| {
            let rank = ((q * totals.len() as f64).ceil() as usize).clamp(1, totals.len());
            totals[rank - 1]
        };
        LatencySummary {
            count: totals.len(),
            mean_micros: totals.iter().sum::<u64>() as f64 / totals.len() as f64,
            p50_micros: pick(0.50),
            p95_micros: pick(0.95),
            p99_micros: pick(0.99),
            max_micros: *totals.last().unwrap(),
        }
    }

    /// Attribution of the 99th percentile (`None` on an empty window).
    /// Deterministic: entries sort by `(total, query_id)` before the
    /// nearest-rank pick.
    pub fn p99_attribution(&self) -> Option<Attribution> {
        let mut entries = self.snapshot();
        if entries.is_empty() {
            return None;
        }
        entries.sort_by_key(|b| (b.total_micros(), b.query_id));
        let rank = ((0.99 * entries.len() as f64).ceil() as usize).clamp(1, entries.len());
        let p99 = entries[rank - 1];
        let p99_micros = p99.total_micros();
        let tail: Vec<&LatencyBreakdown> =
            entries.iter().filter(|b| b.total_micros() >= p99_micros).collect();
        let mean = |f: fn(&LatencyBreakdown) -> u64| {
            tail.iter().map(|b| f(b)).sum::<u64>() as f64 / tail.len() as f64
        };
        Some(Attribution {
            samples: entries.len(),
            tail_count: tail.len(),
            p99_micros,
            breakdown: p99,
            tail_queue_micros: mean(|b| b.queue_micros),
            tail_eval_micros: mean(|b| b.eval_micros),
            tail_merge_micros: mean(|b| b.merge_micros),
            tail_other_micros: mean(|b| b.other_micros),
        })
    }
}

/// One shard's contribution to a slow request (mirrors the service's
/// `ShardTiming` without depending on the core crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowShard {
    /// Shard ordinal.
    pub shard: usize,
    /// Microseconds the shard's evaluation took.
    pub micros: u64,
    /// Hits the shard contributed.
    pub hits: usize,
}

/// Everything the flight recorder retains about one slow request.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowQueryRecord {
    /// The request's stable query id (joins against trace exports).
    pub query_id: u32,
    /// The service-assigned sequence number.
    pub seq: u32,
    /// The execution mode that actually ran (stable CLI name).
    pub mode: String,
    /// Requested result count.
    pub k: usize,
    /// Where the time went.
    pub breakdown: LatencyBreakdown,
    /// Per-shard evaluation timings.
    pub shards: Vec<SlowShard>,
    /// The request's trace slice (empty unless tracing was on).
    pub trace: Vec<TraceRecord>,
}

impl SlowQueryRecord {
    /// One JSONL line (stable keys; no external deps).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(192 + self.trace.len() * 140);
        s.push_str(&format!(
            "{{{}, \"seq\": {}, \"mode\": \"{}\", \"k\": {}, \"shards\": [",
            self.breakdown.json_fields(),
            self.seq,
            self.mode,
            self.k
        ));
        for (i, sh) in self.shards.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"shard\": {}, \"micros\": {}, \"hits\": {}}}",
                sh.shard, sh.micros, sh.hits
            ));
        }
        s.push_str("], \"trace\": [");
        for (i, r) in self.trace.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&r.to_json());
        }
        s.push_str("]}");
        s
    }
}

/// A bounded collection of the N slowest requests past a threshold.
///
/// `offer` is called only for requests whose end-to-end time reached
/// [`FlightRecorder::threshold_micros`]; the recorder keeps the
/// `capacity` slowest seen so far, in deterministic order (total
/// descending, then query id, then sequence number ascending).
pub struct FlightRecorder {
    threshold_micros: u64,
    capacity: usize,
    observed: AtomicU64,
    inner: Mutex<Vec<SlowQueryRecord>>,
}

impl FlightRecorder {
    /// A recorder keeping the `capacity` (min 1) slowest requests at or
    /// above `threshold_micros` end-to-end.
    pub fn new(capacity: usize, threshold_micros: u64) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            threshold_micros,
            capacity,
            observed: AtomicU64::new(0),
            inner: Mutex::new(Vec::with_capacity(capacity + 1)),
        }
    }

    /// The admission threshold in microseconds.
    pub fn threshold_micros(&self) -> u64 {
        self.threshold_micros
    }

    /// Maximum records retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Requests at or above the threshold ever offered (including ones
    /// since displaced by slower requests).
    pub fn observed(&self) -> u64 {
        self.observed.load(Ordering::Relaxed)
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("flight recorder poisoned").len()
    }

    /// Whether no slow request has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Offers one record; returns whether it was retained. Sub-threshold
    /// records are rejected without taking the lock.
    pub fn offer(&self, rec: SlowQueryRecord) -> bool {
        if rec.breakdown.total_micros() < self.threshold_micros {
            return false;
        }
        self.observed.fetch_add(1, Ordering::Relaxed);
        let key =
            (std::cmp::Reverse(rec.breakdown.total_micros()), rec.breakdown.query_id, rec.seq);
        let mut held = self.inner.lock().expect("flight recorder poisoned");
        let at = held
            .binary_search_by_key(&key, |r| {
                (std::cmp::Reverse(r.breakdown.total_micros()), r.breakdown.query_id, r.seq)
            })
            .unwrap_or_else(|i| i);
        if at >= self.capacity {
            return false;
        }
        held.insert(at, rec);
        held.truncate(self.capacity);
        true
    }

    /// Retained records, slowest first (see the type docs for the exact
    /// order).
    pub fn snapshot(&self) -> Vec<SlowQueryRecord> {
        self.inner.lock().expect("flight recorder poisoned").clone()
    }

    /// The retained records as JSONL, one record per line, slowest first.
    pub fn dump_jsonl(&self) -> String {
        let mut s = String::new();
        for r in self.snapshot() {
            s.push_str(&r.to_json());
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceOp, NO_POOL, NO_QUERY};

    #[test]
    fn counter_windows_roll_and_lifetime_total_is_exact() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("admitted");
        c.add(5);
        assert_eq!(c.total(), 5);
        assert_eq!(c.sum_window(1), 5);
        assert_eq!(c.sum_window(60), 5);
        // Two buckets later the 1 s window is empty but 60 s still sees it.
        reg.advance(2 * BUCKET_MILLIS);
        assert_eq!(c.sum_window(1), 0);
        assert_eq!(c.sum_window(60), 5);
        c.add(7);
        assert_eq!(c.sum_window(1), 7);
        assert_eq!(c.sum_window(60), 12);
        // Past the 60 s horizon the first bucket ages out of every window.
        reg.advance(61 * BUCKET_MILLIS);
        assert_eq!(c.sum_window(60), 0);
        assert_eq!(c.total(), 12, "lifetime total never ages out");
        // Ring reuse: a slot overwritten after wrap-around reports only the
        // new value.
        c.add(1);
        reg.advance(WINDOW_BUCKETS as u64 * BUCKET_MILLIS);
        c.add(2);
        assert_eq!(c.sum_window(1), 2);
        let rates = c.rates();
        assert!(rates.s1 >= 2.0, "{rates:?}");
    }

    #[test]
    fn gauge_tracks_value_and_windowed_max() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("queue_depth");
        assert_eq!(g.value(), 0);
        g.inc();
        g.inc();
        assert_eq!(g.value(), 2);
        g.dec();
        assert_eq!(g.value(), 1);
        assert_eq!(g.max_window(60), 2);
        reg.advance(61 * BUCKET_MILLIS);
        // The spike aged out; the max can never fall below the current value.
        assert_eq!(g.max_window(60), 1);
        g.set(-3);
        assert_eq!(g.value(), -3);
    }

    #[test]
    fn histogram_window_merges_and_ages_out() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("eval_micros");
        h.record(5);
        h.record(7);
        reg.advance(2 * BUCKET_MILLIS);
        h.record(100);
        let w = h.window(60);
        assert_eq!(w.count, 3);
        assert_eq!(w.sum_micros, 112);
        assert_eq!(h.window(1).count, 1);
        assert_eq!(h.lifetime().count, 3);
        reg.advance(61 * BUCKET_MILLIS);
        assert_eq!(h.window(60).count, 0);
        assert_eq!(h.lifetime().count, 3);
    }

    #[test]
    fn registry_reuses_names_and_snapshots_every_kind() {
        let reg = MetricsRegistry::new();
        let c1 = reg.counter("admitted");
        let c2 = reg.counter("admitted");
        c1.add(3);
        c2.add(4);
        assert_eq!(c1.total(), 7, "same name returns the same counter");
        reg.gauge("depth").set(9);
        reg.histogram("lat").record(42);
        let snap = reg.snapshot();
        assert_eq!(snap.metrics.len(), 3);
        assert!(matches!(snap.get("admitted"), Some(MetricValue::Counter { total: 7, .. })));
        assert!(matches!(snap.get("depth"), Some(MetricValue::Gauge { value: 9, .. })));
        assert!(
            matches!(snap.get("lat"), Some(MetricValue::Histogram { lifetime, .. }) if lifetime.count == 1)
        );
        let json = snap.to_json();
        assert!(json.contains("\"name\": \"admitted\""));
        assert!(json.contains("\"kind\": \"gauge\""));
        assert!(json.contains("\"p99_micros\""));
    }

    #[test]
    fn prometheus_text_has_types_buckets_and_prefix() {
        let reg = MetricsRegistry::new();
        reg.counter("admitted").add(12);
        reg.gauge("depth").set(3);
        let h = reg.histogram("lat");
        h.record(5); // bucket [4, 8) -> le="8" cumulative
        let text = reg.snapshot().prometheus_text("poir_service_");
        assert!(text.contains("# TYPE poir_service_admitted counter\npoir_service_admitted 12\n"));
        assert!(text.contains("# TYPE poir_service_depth gauge\npoir_service_depth 3\n"));
        assert!(text.contains("# TYPE poir_service_lat histogram\n"));
        assert!(text.contains("poir_service_lat_bucket{le=\"4\"} 0\n"));
        assert!(text.contains("poir_service_lat_bucket{le=\"8\"} 1\n"));
        assert!(text.contains("poir_service_lat_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("poir_service_lat_sum 5\n"));
        assert!(text.contains("poir_service_lat_count 1\n"));
    }

    #[test]
    fn breakdown_other_is_the_residual_and_sums_exactly() {
        let b = LatencyBreakdown::from_parts(7, 100, 800, 50, 1000);
        assert_eq!(b.other_micros, 50);
        assert_eq!(b.total_micros(), 1000);
        // Parts exceeding the measured total saturate other to zero.
        let b = LatencyBreakdown::from_parts(7, 600, 600, 0, 1000);
        assert_eq!(b.other_micros, 0);
        assert_eq!(b.total_micros(), 1200);
        assert!(b.json_fields().contains("\"query_id\": 7"));
    }

    #[test]
    fn ring_is_bounded_and_attribution_components_sum_to_p99() {
        let ring = BreakdownRing::new(100);
        for i in 0..200u64 {
            // Totals 1000..=1199 with a known split.
            let total = 1000 + i;
            ring.push(LatencyBreakdown::from_parts(i as u32, total / 4, total / 2, 10, total));
        }
        assert_eq!(ring.len(), 100, "ring bounded");
        let s = ring.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.max_micros, 1199, "oldest evicted first");
        assert_eq!(s.p50_micros, 1149);
        assert_eq!(s.p99_micros, 1198);
        let attr = ring.p99_attribution().expect("non-empty window");
        assert_eq!(attr.p99_micros, 1198);
        assert_eq!(attr.breakdown.total_micros(), attr.p99_micros, "components sum to p99");
        assert_eq!(attr.tail_count, 2, "1198 and 1199");
        assert_eq!(attr.samples, 100);
        assert!(attr.to_json().contains("\"p99_micros\": 1198"));
        assert!(BreakdownRing::new(4).p99_attribution().is_none());
    }

    fn slow(query_id: u32, seq: u32, total: u64) -> SlowQueryRecord {
        SlowQueryRecord {
            query_id,
            seq,
            mode: "daat_pruned".to_string(),
            k: 10,
            breakdown: LatencyBreakdown::from_parts(query_id, total / 10, total / 2, 5, total),
            shards: vec![SlowShard { shard: 0, micros: total / 2, hits: 10 }],
            trace: Vec::new(),
        }
    }

    #[test]
    fn flight_recorder_keeps_slowest_in_deterministic_order() {
        let fr = FlightRecorder::new(3, 100);
        assert!(!fr.offer(slow(0, 0, 99)), "below threshold");
        assert_eq!(fr.observed(), 0);
        assert!(fr.offer(slow(1, 1, 500)));
        assert!(fr.offer(slow(2, 2, 300)));
        assert!(fr.offer(slow(3, 3, 400)));
        assert!(!fr.offer(slow(4, 4, 200)), "slower than every retained record");
        assert!(fr.offer(slow(5, 5, 450)), "displaces the 300");
        assert_eq!(fr.observed(), 5);
        assert_eq!(fr.len(), 3);
        let totals: Vec<u64> = fr.snapshot().iter().map(|r| r.breakdown.total_micros()).collect();
        assert_eq!(totals, vec![500, 450, 400], "slowest first");
        // Ties order by query id then seq.
        let fr = FlightRecorder::new(4, 0);
        fr.offer(slow(9, 1, 300));
        fr.offer(slow(2, 7, 300));
        fr.offer(slow(2, 3, 300));
        let keys: Vec<(u32, u32)> = fr.snapshot().iter().map(|r| (r.query_id, r.seq)).collect();
        assert_eq!(keys, vec![(2, 3), (2, 7), (9, 1)]);
        let jsonl = fr.dump_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        assert!(jsonl.contains("\"mode\": \"daat_pruned\""));
    }

    #[test]
    fn flight_recorder_bound_holds_under_concurrent_offers() {
        let fr = FlightRecorder::new(16, 50);
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let fr = &fr;
                scope.spawn(move || {
                    for i in 0..100u64 {
                        let total = 40 + (t * 100 + i) % 400; // some below threshold
                        fr.offer(slow((t * 100 + i) as u32, i as u32, total));
                    }
                });
            }
        });
        assert_eq!(fr.len(), 16, "capacity bound survives concurrent offers");
        let snap = fr.snapshot();
        assert!(
            snap.windows(2).all(|w| w[0].breakdown.total_micros() >= w[1].breakdown.total_micros()),
            "slowest-first order survives concurrent offers"
        );
        // Every retained record is at least as slow as the threshold and
        // the recorder saw exactly the above-threshold offers.
        assert!(snap.iter().all(|r| r.breakdown.total_micros() >= 50));
        let above: u64 = (0..8u64)
            .map(|t| (0..100u64).filter(|i| 40 + (t * 100 + i) % 400 >= 50).count() as u64)
            .sum();
        assert_eq!(fr.observed(), above);
    }

    #[test]
    fn slow_record_json_includes_trace_slice() {
        let mut rec = slow(3, 4, 1000);
        rec.trace.push(TraceRecord {
            ts_micros: 10,
            dur_micros: 2,
            thread: 1,
            query: 3,
            op: TraceOp::QueueWait,
            object: 3,
            pool: NO_POOL,
            bytes: 0,
        });
        rec.trace.push(TraceRecord {
            ts_micros: 12,
            dur_micros: 0,
            thread: 1,
            query: NO_QUERY,
            op: TraceOp::BufferHit,
            object: 8,
            pool: 1,
            bytes: 64,
        });
        let json = rec.to_json();
        assert!(json.contains("\"op\": \"queue_wait\""));
        assert!(json.contains("\"pool\": 1"));
        assert!(json.contains("\"query\": null"));
        assert!(json.contains("\"shards\": [{\"shard\": 0"));
    }
}

//! Synthetic relevance judgments.
//!
//! "A relevance file lists the documents that should have been retrieved
//! for each query and is required for determining recall and precision."
//! (Section 4.2). For synthetic collections the ground truth is known by
//! construction: a query generated for topic *t* is satisfied by the
//! documents of topic *t* (they are the ones salted with the topic's
//! characteristic terms).

use poir_inquery::{DocId, Judgments};

use crate::generator::SyntheticCollection;
use crate::queries::GeneratedQuery;

/// Maximum relevant documents listed per query (real relevance files list
/// a bounded judged set, not every topical document).
pub const MAX_RELEVANT: usize = 200;

/// Judgments for one generated query.
pub fn judgments_for(collection: &SyntheticCollection, query: &GeneratedQuery) -> Judgments {
    Judgments::new(collection.docs_of_topic(query.topic, MAX_RELEVANT).into_iter().map(DocId))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::CollectionSpec;
    use crate::queries::{generate, QuerySetSpec, QueryStyle};

    #[test]
    fn judgments_match_topic_membership() {
        let c = SyntheticCollection::new(CollectionSpec::tiny(4));
        let spec = QuerySetSpec {
            name: "t".into(),
            style: QueryStyle::NaturalLanguage,
            num_queries: 5,
            mean_terms: 4,
            reuse_rate: 0.0,
            seed: 8,
        };
        for q in generate(&c, &spec) {
            let j = judgments_for(&c, &q);
            assert!(!j.is_empty());
            for d in c.docs_of_topic(q.topic, 10) {
                assert!(j.is_relevant(DocId(d)));
            }
            let other = (q.topic + 1) % c.spec().num_topics;
            for d in c.docs_of_topic(other, 10) {
                assert!(!j.is_relevant(DocId(d)));
            }
        }
    }

    #[test]
    fn judged_set_is_bounded() {
        let c = SyntheticCollection::new(CollectionSpec::tiny(4));
        let q = GeneratedQuery { text: "ignored".into(), topic: 0 };
        assert!(judgments_for(&c, &q).len() <= MAX_RELEVANT);
    }
}

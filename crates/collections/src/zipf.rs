//! Zipf-distributed sampling.
//!
//! "Zipf observed that if the terms in a document collection are ranked by
//! decreasing number of occurrences ... there is a constant for the
//! collection that is approximately equal to the product of any given term's
//! size and rank order number. The implication of this is that nearly half
//! of the terms have only one or two occurrences, while some terms occur
//! very many times." (Section 2)
//!
//! The generator draws every token from this distribution so synthetic
//! collections reproduce the inverted-list size distribution of Figure 1 —
//! the property the paper's three-pool design is built on.

use rand::Rng;

/// A pre-computed Zipf(s) distribution over ranks `0..n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution `P(rank k) ∝ 1 / (k+1)^s` for `k in 0..n`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite and positive.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "a Zipf distribution needs at least one rank");
        assert!(s.is_finite() && s > 0.0, "exponent must be positive");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cumulative.push(total);
        }
        // Normalise so binary search can use a uniform [0, 1) draw.
        let norm = total;
        for c in &mut cumulative {
            *c /= norm;
        }
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the distribution is degenerate (never: `new` requires n > 0).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cumulative.partition_point(|&c| c < u).min(self.cumulative.len() - 1)
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cumulative[0]
        } else {
            self.cumulative[k] - self.cumulative[k - 1]
        }
    }
}

/// An analytic power-law ("continuous Zipf") sampler over ranks `0..n`.
///
/// Where [`Zipf`] tabulates an exact distribution, `PowerLaw` inverts the
/// continuous CDF of `p(k) ∝ 1/(k+1)^s`, so vocabularies of tens of
/// millions of ranks cost no memory — which is what reproducing the paper's
/// hapax-heavy tail ("nearly half of the terms have only one or two
/// occurrences") requires at TIPSTER scale.
#[derive(Debug, Clone, Copy)]
pub struct PowerLaw {
    n: f64,
    s: f64,
}

impl PowerLaw {
    /// Builds the sampler for `n` ranks and exponent `s > 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "a power law needs at least one rank");
        assert!(s.is_finite() && s > 0.0, "exponent must be positive");
        PowerLaw { n: n as f64, s }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.n as usize
    }

    /// Never empty (`new` requires n > 0).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws one rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        let x = if (self.s - 1.0).abs() < 1e-9 {
            // s = 1: the CDF is logarithmic → log-uniform inverse.
            (self.n + 1.0).powf(u)
        } else {
            // CDF(x) = (1 - x^(1-s)) / (1 - (n+1)^(1-s)) for x in [1, n+1].
            let tail = (self.n + 1.0).powf(1.0 - self.s);
            (1.0 - u * (1.0 - tail)).powf(1.0 / (1.0 - self.s))
        };
        ((x - 1.0) as usize).min(self.n as usize - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn low_ranks_dominate() {
        let z = Zipf::new(10_000, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0u32; 10_000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[9], "rank 0 must beat rank 9");
        assert!(counts[0] > counts[99] * 10, "rank 0 must dwarf rank 99");
        // Rank 0 of Zipf(1.0, 10k) has mass ~1/H(10k) ≈ 1/9.8 ≈ 10%.
        assert!(counts[0] > 80_000 / 10 && counts[0] < 130_000 / 10);
    }

    #[test]
    fn heavy_tail_produces_many_singletons() {
        // The property behind the small object pool: with a vocabulary much
        // larger than needed, a large fraction of *observed* terms occur
        // exactly once.
        let z = Zipf::new(200_000, 1.0);
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..100_000 {
            *counts.entry(z.sample(&mut rng)).or_insert(0u32) += 1;
        }
        let singletons = counts.values().filter(|&&c| c == 1).count();
        let fraction = singletons as f64 / counts.len() as f64;
        assert!(
            fraction > 0.35 && fraction < 0.75,
            "singleton fraction {fraction} should be near one half"
        );
    }

    #[test]
    fn pmf_sums_to_one_and_decreases() {
        let z = Zipf::new(100, 1.2);
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for k in 1..100 {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
        }
        assert_eq!(z.len(), 100);
        assert!(!z.is_empty());
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let z = Zipf::new(1000, 1.0);
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..20).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(1), draw(1));
        assert_ne!(draw(1), draw(2));
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        Zipf::new(0, 1.0);
    }

    #[test]
    fn power_law_matches_table_zipf_at_s1() {
        // The continuous sampler must produce the same rank-frequency shape
        // as the exact table for s = 1.
        let n = 10_000;
        let table = Zipf::new(n, 1.0);
        let continuous = PowerLaw::new(n, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let draws = 200_000;
        let mut c_table = vec![0u32; n];
        let mut c_cont = vec![0u32; n];
        for _ in 0..draws {
            c_table[table.sample(&mut rng)] += 1;
            c_cont[continuous.sample(&mut rng)] += 1;
        }
        // Compare mass of the top-10 ranks: within 20% of each other.
        let top_t: u32 = c_table[..10].iter().sum();
        let top_c: u32 = c_cont[..10].iter().sum();
        let ratio = top_t as f64 / top_c as f64;
        assert!((0.8..1.25).contains(&ratio), "top-10 mass ratio {ratio}");
    }

    #[test]
    fn power_law_supports_huge_vocabularies() {
        let p = PowerLaw::new(50_000_000, 1.25);
        let mut rng = StdRng::seed_from_u64(9);
        let mut max = 0usize;
        for _ in 0..10_000 {
            let r = p.sample(&mut rng);
            assert!(r < 50_000_000);
            max = max.max(r);
        }
        assert!(max > 100_000, "the tail must actually be reachable, saw max {max}");
        assert_eq!(p.len(), 50_000_000);
        assert!(!p.is_empty());
    }

    #[test]
    fn steeper_exponents_concentrate_mass() {
        let shallow = PowerLaw::new(1_000_000, 1.0);
        let steep = PowerLaw::new(1_000_000, 1.6);
        let mut rng = StdRng::seed_from_u64(4);
        let head =
            |p: &PowerLaw, rng: &mut StdRng| (0..50_000).filter(|_| p.sample(rng) < 100).count();
        let h_shallow = head(&shallow, &mut rng);
        let h_steep = head(&steep, &mut rng);
        assert!(h_steep > h_shallow, "s=1.6 head {h_steep} must exceed s=1.0 head {h_shallow}");
    }
}

//! Synthetic document collection generation.
//!
//! The paper's collections (CACM abstracts, the private Legal corpus,
//! TIPSTER news) are unavailable or impractically large, so the benchmark
//! harness generates collections calibrated to preserve the properties the
//! evaluation depends on:
//!
//! * a Zipf vocabulary (Figure 1's inverted-list size distribution, with
//!   ~50% of records at or under 12 bytes),
//! * topical structure (documents of the same topic share characteristic
//!   terms, giving query sets coherent relevant-document sets and the
//!   cross-query term repetition the caching results rely on),
//! * the relative document counts and lengths of the four collections
//!   (scaled; see DESIGN.md §4).
//!
//! Generation is fully deterministic: each document is derived from the
//! collection seed and its ordinal, so judgments and queries can be
//! recomputed independently of generation order.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::words::word;
use crate::zipf::PowerLaw;

/// Parameters of one synthetic collection.
#[derive(Debug, Clone)]
pub struct CollectionSpec {
    /// Display name ("CACM", "Legal", ...).
    pub name: String,
    /// Number of documents.
    pub num_docs: usize,
    /// Mean document length in tokens (actual lengths are uniform in
    /// `[0.5, 1.5] × mean`).
    pub mean_doc_len: usize,
    /// Vocabulary pool size (distinct terms that *can* occur).
    pub vocab_size: usize,
    /// Zipf exponent of the global term distribution.
    pub zipf_s: f64,
    /// Number of topics; each document belongs to `doc_id % num_topics`.
    pub num_topics: usize,
    /// Fraction of tokens drawn from the document's topic terms instead of
    /// the global distribution.
    pub topic_mix: f64,
    /// Characteristic terms per topic.
    pub terms_per_topic: usize,
    /// Probability that a token is a "rare" word drawn uniformly from a
    /// huge tail pool instead of the Zipf core — the hapax legomena
    /// (names, codes, typos) that make "nearly half of the terms" occur
    /// only once or twice (Section 2).
    pub rare_rate: f64,
    /// Size of the rare-word tail pool (ranks `vocab_size ..`).
    pub rare_pool: usize,
    /// Master seed.
    pub seed: u64,
}

impl CollectionSpec {
    /// A small spec for unit tests.
    pub fn tiny(seed: u64) -> Self {
        CollectionSpec {
            name: "tiny".into(),
            num_docs: 200,
            mean_doc_len: 60,
            vocab_size: 5_000,
            zipf_s: 1.0,
            num_topics: 10,
            topic_mix: 0.2,
            terms_per_topic: 8,
            rare_rate: 0.01,
            rare_pool: 1 << 22,
            seed,
        }
    }
}

/// One generated document.
#[derive(Debug, Clone)]
pub struct Document {
    /// External identifier, e.g. "LEGAL-000042".
    pub name: String,
    /// The document text.
    pub text: String,
    /// The topic this document belongs to.
    pub topic: usize,
}

/// A deterministic synthetic collection.
#[derive(Debug)]
pub struct SyntheticCollection {
    spec: CollectionSpec,
    zipf: PowerLaw,
    /// `topic_terms[t]` are the vocabulary ranks characteristic of topic `t`.
    topic_terms: Vec<Vec<usize>>,
}

impl SyntheticCollection {
    /// Prepares the generator for `spec`.
    pub fn new(spec: CollectionSpec) -> Self {
        assert!(spec.num_topics > 0, "at least one topic is required");
        let zipf = PowerLaw::new(spec.vocab_size, spec.zipf_s);
        // Topic terms come from the mid-frequency band: rare enough to be
        // discriminative, frequent enough that their inverted lists are the
        // medium/large records queries actually touch (Figure 2).
        let band_lo = (spec.vocab_size / 200).max(16);
        let band_hi = (spec.vocab_size / 4).max(band_lo + 1);
        let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x7091_c0de);
        let topic_terms = (0..spec.num_topics)
            .map(|_| (0..spec.terms_per_topic).map(|_| rng.gen_range(band_lo..band_hi)).collect())
            .collect();
        SyntheticCollection { spec, zipf, topic_terms }
    }

    /// The collection's parameters.
    pub fn spec(&self) -> &CollectionSpec {
        &self.spec
    }

    /// The characteristic term ranks of `topic`.
    pub fn topic_terms(&self, topic: usize) -> &[usize] {
        &self.topic_terms[topic % self.spec.num_topics]
    }

    /// The topic of document `doc_id`.
    pub fn topic_of(&self, doc_id: usize) -> usize {
        doc_id % self.spec.num_topics
    }

    /// Document ids belonging to `topic`, capped at `limit`.
    pub fn docs_of_topic(&self, topic: usize, limit: usize) -> Vec<u32> {
        (0..self.spec.num_docs)
            .skip(topic % self.spec.num_topics)
            .step_by(self.spec.num_topics)
            .take(limit)
            .map(|d| d as u32)
            .collect()
    }

    /// Runs the deterministic token-rank stream of document `doc_id`,
    /// invoking `f(rank, is_rare)` for every token.
    fn compose(&self, doc_id: usize, mut f: impl FnMut(usize, bool)) {
        assert!(doc_id < self.spec.num_docs);
        let mut rng =
            StdRng::seed_from_u64(self.spec.seed.wrapping_add(doc_id as u64 * 2_654_435_761));
        let topic = self.topic_of(doc_id);
        let terms = &self.topic_terms[topic];
        let len_range = (self.spec.mean_doc_len / 2).max(4)..=self.spec.mean_doc_len * 3 / 2;
        let len = rng.gen_range(len_range);
        for _ in 0..len {
            let draw: f64 = rng.gen();
            if draw < self.spec.topic_mix {
                f(terms[rng.gen_range(0..terms.len())], false);
            } else if draw < self.spec.topic_mix + self.spec.rare_rate {
                // A hapax-tail word: effectively unique in the collection.
                f(self.spec.vocab_size + rng.gen_range(0..self.spec.rare_pool), true);
            } else {
                f(self.zipf.sample(&mut rng), false);
            }
        }
    }

    /// Generates document `doc_id` (deterministic).
    pub fn document(&self, doc_id: usize) -> Document {
        let mut text = String::with_capacity(self.spec.mean_doc_len * 8);
        self.compose(doc_id, |rank, _| {
            if !text.is_empty() {
                text.push(' ');
            }
            text.push_str(&word(rank));
        });
        Document {
            name: format!("{}-{:06}", self.spec.name.to_uppercase(), doc_id),
            text,
            topic: self.topic_of(doc_id),
        }
    }

    /// The hapax-tail word ranks that occur in document `doc_id` — terms
    /// whose inverted records land in the small object pool. Used by the
    /// query generator so that "the small inverted lists are accessed
    /// rarely" (Figure 2) rather than never.
    pub fn rare_ranks_in(&self, doc_id: usize) -> Vec<usize> {
        let mut out = Vec::new();
        self.compose(doc_id, |rank, is_rare| {
            if is_rare {
                out.push(rank);
            }
        });
        out
    }

    /// Iterates all documents in order.
    pub fn documents(&self) -> impl Iterator<Item = Document> + '_ {
        (0..self.spec.num_docs).map(move |i| self.document(i))
    }

    /// The contiguous document-id range owned by horizontal shard `shard`
    /// of `shards` (see [`shard_ranges`]).
    pub fn shard_range(&self, shard: usize, shards: usize) -> std::ops::Range<usize> {
        let ranges = shard_ranges(self.spec.num_docs, shards);
        ranges[shard.min(ranges.len() - 1)].clone()
    }

    /// Iterates the documents of one horizontal shard, in order. Because
    /// every document is generated independently and deterministically,
    /// shard corpora can be produced in parallel without materialising the
    /// whole collection.
    pub fn shard_documents(
        &self,
        shard: usize,
        shards: usize,
    ) -> impl Iterator<Item = Document> + '_ {
        self.shard_range(shard, shards).map(move |i| self.document(i))
    }
}

/// Contiguous document-id ranges carving `num_docs` documents into
/// `shards` near-equal horizontal slices: shard `s` owns
/// `[s·D/N, (s+1)·D/N)`. This is the canonical corpus split mirrored by
/// the index-side `Index::split_shards`, so a shard's corpus and its
/// inverted-record slice cover exactly the same documents.
pub fn shard_ranges(num_docs: usize, shards: usize) -> Vec<std::ops::Range<usize>> {
    let n = shards.max(1);
    (0..n).map(|s| s * num_docs / n..(s + 1) * num_docs / n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticCollection::new(CollectionSpec::tiny(42));
        let b = SyntheticCollection::new(CollectionSpec::tiny(42));
        for i in [0usize, 17, 199] {
            assert_eq!(a.document(i).text, b.document(i).text);
            assert_eq!(a.document(i).name, b.document(i).name);
        }
        let c = SyntheticCollection::new(CollectionSpec::tiny(43));
        assert_ne!(a.document(0).text, c.document(0).text);
    }

    #[test]
    fn documents_have_expected_lengths() {
        let c = SyntheticCollection::new(CollectionSpec::tiny(1));
        for doc in c.documents().take(50) {
            let tokens = doc.text.split_whitespace().count();
            assert!((30..=90).contains(&tokens), "{} tokens", tokens);
        }
    }

    #[test]
    fn topic_terms_appear_more_often_within_their_topic() {
        let spec = CollectionSpec { topic_mix: 0.3, ..CollectionSpec::tiny(5) };
        let c = SyntheticCollection::new(spec);
        let topic = 3usize;
        let term = word(c.topic_terms(topic)[0]);
        let count_in = |docs: &[u32]| -> usize {
            docs.iter().map(|&d| c.document(d as usize).text.matches(&term).count()).sum()
        };
        let on_topic = c.docs_of_topic(topic, 20);
        let off_topic = c.docs_of_topic((topic + 1) % 10, 20);
        assert!(count_in(&on_topic) > count_in(&off_topic));
    }

    #[test]
    fn docs_of_topic_matches_topic_of() {
        let c = SyntheticCollection::new(CollectionSpec::tiny(9));
        for topic in 0..10 {
            let docs = c.docs_of_topic(topic, 5);
            assert!(!docs.is_empty());
            for d in docs {
                assert_eq!(c.topic_of(d as usize), topic);
            }
        }
    }

    #[test]
    fn names_are_stable_and_prefixed() {
        let c = SyntheticCollection::new(CollectionSpec::tiny(2));
        assert_eq!(c.document(7).name, "TINY-000007");
    }

    #[test]
    fn shard_documents_tile_the_collection() {
        let c = SyntheticCollection::new(CollectionSpec::tiny(11));
        let ranges = shard_ranges(200, 3);
        assert_eq!(ranges, vec![0..66, 66..133, 133..200]);
        let whole: Vec<String> = c.documents().map(|d| d.name).collect();
        let stitched: Vec<String> =
            (0..3).flat_map(|s| c.shard_documents(s, 3).map(|d| d.name)).collect();
        assert_eq!(stitched, whole, "shard corpora concatenate to the full collection");
        assert_eq!(c.shard_range(1, 3), 66..133);
    }
}

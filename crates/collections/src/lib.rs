//! # Synthetic document collections and query sets
//!
//! The paper evaluates on CACM, a private Legal collection, and the
//! TIPSTER distribution — unavailable or impractically large here. This
//! crate generates deterministic synthetic stand-ins that preserve the
//! statistical properties the evaluation depends on (see DESIGN.md §3-4):
//!
//! * [`zipf`] — the Zipf term distribution behind Figure 1's inverted-list
//!   size distribution,
//! * [`words`] — bijective rank → pseudo-word synthesis,
//! * [`generator`] — topical document generation,
//! * [`queries`] — the seven query sets (boolean / natural-language /
//!   weighted / phrase styles) with cross-query term repetition,
//! * [`relevance`] — by-construction relevance judgments,
//! * [`presets`] — the four paper collections, scaled.

pub mod generator;
pub mod presets;
pub mod queries;
pub mod relevance;
pub mod words;
pub mod zipf;

pub use generator::{shard_ranges, CollectionSpec, Document, SyntheticCollection};
pub use presets::{all as paper_collections, cacm, legal, tipster, tipster1, PaperCollection};
pub use queries::{generate as generate_queries, GeneratedQuery, QuerySetSpec, QueryStyle};
pub use relevance::judgments_for;
pub use zipf::{PowerLaw, Zipf};

//! Deterministic pseudo-word synthesis.
//!
//! Each vocabulary rank maps bijectively to a pronounceable word built from
//! consonant-vowel syllables, so the same rank always yields the same term
//! in documents, queries, and relevance judgments. Words have at least two
//! syllables (four characters), start with a consonant, and avoid the vowel
//! `e`, which keeps them clear of the analyzer's stop-word list and its
//! minimum-length filter.

const CONSONANTS: &[u8] = b"bcdfghjklmnprstvwz";
const VOWELS: &[u8] = b"aiou";

/// Number of distinct syllables.
const SYLLABLES: usize = CONSONANTS.len() * VOWELS.len(); // 72

/// Returns the unique word for vocabulary `rank`.
pub fn word(rank: usize) -> String {
    // Offset so every word has at least two syllables.
    let mut n = rank + SYLLABLES;
    let mut syllables = Vec::with_capacity(4);
    while n > 0 {
        syllables.push(n % SYLLABLES);
        n /= SYLLABLES;
    }
    let mut out = String::with_capacity(syllables.len() * 2);
    for &s in syllables.iter().rev() {
        out.push(CONSONANTS[s / VOWELS.len()] as char);
        out.push(VOWELS[s % VOWELS.len()] as char);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn words_are_unique_and_deterministic() {
        let mut seen = HashSet::new();
        for rank in 0..100_000 {
            let w = word(rank);
            assert_eq!(w, word(rank));
            assert!(seen.insert(w.clone()), "duplicate word {w} at rank {rank}");
        }
    }

    #[test]
    fn words_survive_the_analyzer() {
        let stop = poir_inquery::StopWords::default();
        for rank in [0usize, 1, 71, 72, 5183, 5184, 999_999] {
            let w = word(rank);
            assert!(w.len() >= 4, "{w} too short");
            let toks = poir_inquery::text::terms(&w, &stop);
            assert_eq!(toks, vec![w.clone()], "analyzer must keep {w} intact");
        }
    }

    #[test]
    fn low_ranks_are_short_high_ranks_longer() {
        assert_eq!(word(0).len(), 4);
        assert!(word(10_000_000).len() > word(0).len());
    }
}

//! The paper's four collections and seven query sets, scaled.
//!
//! Table 1 of the paper:
//!
//! | Collection | Docs    | Size (KB) | Records |
//! |------------|---------|-----------|---------|
//! | CACM       | 3,204   | 2,136     | 5,944   |
//! | Legal      | 11,953  | 290,529   | 142,721 |
//! | TIPSTER 1  | 510,887 | 1,225,712 | 627,078 |
//! | TIPSTER    | 742,358 | 2,103,574 | 846,331 |
//!
//! CACM and Legal keep their document counts (Legal documents are shortened
//! ~8×); the TIPSTER collections are scaled down ~13× in document count so
//! a full reproduction run completes in minutes rather than days. TIPSTER 1
//! shares TIPSTER's seed and configuration, so — as in the paper — it *is*
//! a prefix of TIPSTER and "uses the same query set". See DESIGN.md §4 for
//! the substitution rationale.

use crate::generator::CollectionSpec;
use crate::queries::{QuerySetSpec, QueryStyle};

/// A paper collection with its query sets.
#[derive(Debug, Clone)]
pub struct PaperCollection {
    /// The collection parameters.
    pub spec: CollectionSpec,
    /// The query sets evaluated against it, in the paper's order.
    pub query_sets: Vec<QuerySetSpec>,
}

impl PaperCollection {
    /// Scales the document count by `factor` (for quick runs and tests).
    /// Query sets and per-document sizes are unchanged.
    pub fn scale(mut self, factor: f64) -> Self {
        assert!(factor > 0.0);
        self.spec.num_docs =
            ((self.spec.num_docs as f64 * factor) as usize).max(self.spec.num_topics * 2);
        self
    }
}

fn qs(name: &str, style: QueryStyle, mean_terms: usize, seed: u64) -> QuerySetSpec {
    QuerySetSpec { name: name.into(), style, num_queries: 50, mean_terms, reuse_rate: 0.35, seed }
}

/// CACM: 3,204 short abstracts; three representations of the same 50
/// queries (boolean, boolean, words + phrases).
pub fn cacm() -> PaperCollection {
    PaperCollection {
        spec: CollectionSpec {
            name: "CACM".into(),
            num_docs: 3_204,
            mean_doc_len: 90,
            vocab_size: 3_000,
            zipf_s: 1.0,
            num_topics: 50,
            topic_mix: 0.15,
            terms_per_topic: 10,
            rare_rate: 0.011,
            rare_pool: 1 << 26,
            seed: 0xCAC3,
        },
        query_sets: vec![
            qs("CACM QS1", QueryStyle::BooleanAnd, 5, 101),
            qs("CACM QS2", QueryStyle::BooleanOrAnd, 5, 101),
            qs("CACM QS3", QueryStyle::PhraseEnriched, 7, 101),
        ],
    }
}

/// Legal: 11,953 case descriptions (documents shortened ~8× from the
/// private collection's 24 KB average); a supplied natural-language set and
/// a weighted/phrase-enriched refinement of it.
pub fn legal() -> PaperCollection {
    PaperCollection {
        spec: CollectionSpec {
            name: "Legal".into(),
            num_docs: 11_953,
            mean_doc_len: 450,
            vocab_size: 75_000,
            zipf_s: 1.0,
            num_topics: 50,
            topic_mix: 0.12,
            terms_per_topic: 12,
            rare_rate: 0.013,
            rare_pool: 1 << 26,
            seed: 0x1E6A1,
        },
        query_sets: vec![
            qs("Legal QS1", QueryStyle::NaturalLanguage, 8, 201),
            qs("Legal QS2", QueryStyle::WeightedEnriched, 12, 201),
        ],
    }
}

/// TIPSTER: news articles; long automatic queries from topics 51-100.
pub fn tipster() -> PaperCollection {
    PaperCollection {
        spec: CollectionSpec {
            name: "TIPSTER".into(),
            num_docs: 60_000,
            mean_doc_len: 300,
            vocab_size: 250_000,
            zipf_s: 1.0,
            num_topics: 50,
            topic_mix: 0.10,
            terms_per_topic: 15,
            rare_rate: 0.014,
            rare_pool: 1 << 26,
            seed: 0x7197,
        },
        query_sets: vec![qs("TIPSTER QS1", QueryStyle::NaturalLanguage, 25, 301)],
    }
}

/// TIPSTER 1: part 1 of TIPSTER — the same configuration and seed with
/// fewer documents, evaluated with the same query set.
pub fn tipster1() -> PaperCollection {
    let mut c = tipster();
    c.spec.name = "TIPSTER 1".into();
    c.spec.num_docs = 40_000;
    c.query_sets = vec![QuerySetSpec { name: "TIPSTER 1 QS1".into(), ..c.query_sets[0].clone() }];
    c
}

/// All four collections in the paper's Table 1 order.
pub fn all() -> Vec<PaperCollection> {
    vec![cacm(), legal(), tipster1(), tipster()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::SyntheticCollection;

    #[test]
    fn paper_document_counts() {
        assert_eq!(cacm().spec.num_docs, 3_204);
        assert_eq!(legal().spec.num_docs, 11_953);
        assert!(tipster1().spec.num_docs < tipster().spec.num_docs);
        assert_eq!(all().len(), 4);
    }

    #[test]
    fn cacm_sets_share_term_selection() {
        let sets = cacm().query_sets;
        assert_eq!(sets[0].seed, sets[1].seed);
        assert_eq!(sets[0].seed, sets[2].seed);
        assert_ne!(sets[0].style, sets[1].style);
    }

    #[test]
    fn tipster1_is_a_prefix_of_tipster() {
        let small = SyntheticCollection::new(tipster1().scale(0.01).spec);
        let big = SyntheticCollection::new(tipster().scale(0.01).spec);
        // Same seed + config → identical shared-prefix documents.
        for i in 0..50 {
            assert_eq!(small.document(i).text, big.document(i).text);
        }
        assert_eq!(
            tipster1().query_sets[0].seed,
            tipster().query_sets[0].seed,
            "TIPSTER 1 uses the same query set"
        );
    }

    #[test]
    fn scaling_shrinks_document_count_only() {
        let full = legal();
        let scaled = legal().scale(0.1);
        assert_eq!(scaled.spec.num_docs, 1_195);
        assert_eq!(scaled.spec.mean_doc_len, full.spec.mean_doc_len);
        assert_eq!(scaled.query_sets.len(), full.query_sets.len());
        // Scaling never drops below two docs per topic.
        let tiny = legal().scale(1e-9);
        assert_eq!(tiny.spec.num_docs, tiny.spec.num_topics * 2);
    }
}

//! Query-set generation.
//!
//! The paper's query sets "are designed to evaluate an IR system's recall
//! and precision and are representative of queries that would be asked by
//! real users" (Section 4.2), and Section 2 observes "significant
//! repetition of the terms used from query to query" — from iterative query
//! refinement and from specialised collections. The generator reproduces
//! both properties: query terms come mostly from the query's topic (so
//! relevant documents exist), and a sliding reuse pool re-injects terms
//! from earlier queries at a configurable rate (so the caching behaviour of
//! Tables 5-6 has something to cache).
//!
//! Term *selection* depends only on the collection and the spec seed; the
//! [`QueryStyle`] controls formatting. This mirrors the paper's CACM sets:
//! "different boolean representations of the same 50 queries".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::generator::SyntheticCollection;
use crate::words::word;

/// How the selected terms are rendered into INQUERY query syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryStyle {
    /// `#and(t1 t2 ...)` — CACM query set 1.
    BooleanAnd,
    /// `#and(#or(t1 t2) #or(t3 t4) ...)` — CACM query set 2.
    BooleanOrAnd,
    /// Bare terms (implicit `#sum`) — natural-language sets.
    NaturalLanguage,
    /// `#sum(terms ... #phrase(a b))` — manually selected words and
    /// phrases (CACM query set 3).
    PhraseEnriched,
    /// `#wsum(w t ... )` with phrases — Legal query set 2 ("supplementing
    /// the first query set with dictionary terms, phrases, and weights").
    WeightedEnriched,
}

/// Parameters of one query set.
#[derive(Debug, Clone)]
pub struct QuerySetSpec {
    /// Display label, e.g. "Legal QS2".
    pub name: String,
    /// Rendering style.
    pub style: QueryStyle,
    /// Number of queries.
    pub num_queries: usize,
    /// Mean number of terms per query.
    pub mean_terms: usize,
    /// Probability that a term is re-drawn from earlier queries.
    pub reuse_rate: f64,
    /// Seed for term selection. Sets sharing a seed select the same terms.
    pub seed: u64,
}

/// One generated query.
#[derive(Debug, Clone)]
pub struct GeneratedQuery {
    /// INQUERY query text.
    pub text: String,
    /// The topic the query targets (drives relevance judgments).
    pub topic: usize,
}

/// Generates the query set described by `spec` against `collection`.
pub fn generate(collection: &SyntheticCollection, spec: &QuerySetSpec) -> Vec<GeneratedQuery> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let num_topics = collection.spec().num_topics;
    let mut reuse_pool: Vec<usize> = Vec::new();
    let mut queries = Vec::with_capacity(spec.num_queries);
    for q in 0..spec.num_queries {
        let topic = q % num_topics;
        let topic_terms = collection.topic_terms(topic);
        let count = rng.gen_range((spec.mean_terms / 2).max(2)..=spec.mean_terms * 3 / 2);
        let mut ranks: Vec<usize> = Vec::with_capacity(count);
        for _ in 0..count {
            let rank = if !reuse_pool.is_empty() && rng.gen::<f64>() < spec.reuse_rate {
                reuse_pool[rng.gen_range(0..reuse_pool.len())]
            } else if rng.gen::<f64>() < 0.65 {
                topic_terms[rng.gen_range(0..topic_terms.len())]
            } else if rng.gen::<f64>() < 0.6 {
                // A common content word (high document frequency): these
                // are the accesses to the big inverted lists that dominate
                // Figure 2 and populate the large-object buffer.
                rng.gen_range(8..512.min(collection.spec().vocab_size))
            } else if rng.gen::<f64>() < 0.1 {
                // A very rare word that actually occurs in the collection
                // (a name or code from some document): its one-or-two-entry
                // record lives in the small object pool. "The small
                // inverted lists are accessed rarely" (Figure 2).
                let doc = rng.gen_range(0..collection.spec().num_docs);
                let rare = collection.rare_ranks_in(doc);
                if rare.is_empty() {
                    rng.gen_range(16..collection.spec().vocab_size / 4)
                } else {
                    rare[rng.gen_range(0..rare.len())]
                }
            } else {
                // An off-topic mid-frequency term, as refinement introduces.
                rng.gen_range(16..collection.spec().vocab_size / 4)
            };
            if !ranks.contains(&rank) {
                ranks.push(rank);
            }
        }
        reuse_pool.extend(&ranks);
        if reuse_pool.len() > 200 {
            let excess = reuse_pool.len() - 200;
            reuse_pool.drain(0..excess);
        }
        let terms: Vec<String> = ranks.iter().map(|&r| word(r)).collect();
        queries.push(GeneratedQuery { text: render(&terms, spec.style, &mut rng), topic });
    }
    queries
}

fn render(terms: &[String], style: QueryStyle, rng: &mut StdRng) -> String {
    match style {
        QueryStyle::BooleanAnd => format!("#and({})", terms.join(" ")),
        QueryStyle::BooleanOrAnd => {
            let groups: Vec<String> = terms
                .chunks(2)
                .map(|pair| {
                    if pair.len() == 2 {
                        format!("#or({} {})", pair[0], pair[1])
                    } else {
                        pair[0].clone()
                    }
                })
                .collect();
            format!("#and({})", groups.join(" "))
        }
        QueryStyle::NaturalLanguage => terms.join(" "),
        QueryStyle::PhraseEnriched => {
            let mut parts: Vec<String> = terms.to_vec();
            if terms.len() >= 2 {
                let a = rng.gen_range(0..terms.len());
                let mut b = rng.gen_range(0..terms.len());
                if a == b {
                    b = (b + 1) % terms.len();
                }
                parts.push(format!("#phrase({} {})", terms[a], terms[b]));
            }
            format!("#sum({})", parts.join(" "))
        }
        QueryStyle::WeightedEnriched => {
            let mut parts: Vec<String> =
                terms.iter().map(|t| format!("{} {}", rng.gen_range(1..=5), t)).collect();
            if terms.len() >= 2 {
                parts.push(format!("2 #phrase({} {})", terms[0], terms[1]));
            }
            format!("#wsum({})", parts.join(" "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::CollectionSpec;
    use poir_inquery::{parse_query, StopWords};
    use std::collections::HashSet;

    fn collection() -> SyntheticCollection {
        SyntheticCollection::new(CollectionSpec::tiny(3))
    }

    fn spec(style: QueryStyle, seed: u64) -> QuerySetSpec {
        QuerySetSpec {
            name: "test".into(),
            style,
            num_queries: 30,
            mean_terms: 6,
            reuse_rate: 0.3,
            seed,
        }
    }

    #[test]
    fn all_styles_produce_parsable_queries() {
        let c = collection();
        let stop = StopWords::default();
        for style in [
            QueryStyle::BooleanAnd,
            QueryStyle::BooleanOrAnd,
            QueryStyle::NaturalLanguage,
            QueryStyle::PhraseEnriched,
            QueryStyle::WeightedEnriched,
        ] {
            for q in generate(&c, &spec(style, 77)) {
                parse_query(&q.text, &stop)
                    .unwrap_or_else(|e| panic!("style {style:?}: {} → {e}", q.text));
            }
        }
    }

    #[test]
    fn same_seed_selects_same_terms_across_styles() {
        let c = collection();
        let and_set = generate(&c, &spec(QueryStyle::BooleanAnd, 9));
        let nl_set = generate(&c, &spec(QueryStyle::NaturalLanguage, 9));
        // Same underlying terms: strip the boolean syntax and compare.
        for (a, n) in and_set.iter().zip(nl_set.iter()) {
            let stripped: String = a.text.replace("#and(", "").replace(')', "");
            assert_eq!(
                stripped.split_whitespace().collect::<Vec<_>>(),
                n.text.split_whitespace().collect::<Vec<_>>()
            );
            assert_eq!(a.topic, n.topic);
        }
    }

    #[test]
    fn terms_repeat_across_queries() {
        let c = collection();
        let queries = generate(&c, &spec(QueryStyle::NaturalLanguage, 5));
        let mut seen: HashSet<String> = HashSet::new();
        let mut repeats = 0usize;
        let mut total = 0usize;
        for q in &queries {
            for t in q.text.split_whitespace() {
                total += 1;
                if !seen.insert(t.to_string()) {
                    repeats += 1;
                }
            }
        }
        let rate = repeats as f64 / total as f64;
        assert!(rate > 0.25, "cross-query repetition rate {rate} too low");
    }

    #[test]
    fn queries_cycle_through_topics() {
        let c = collection();
        let queries = generate(&c, &spec(QueryStyle::NaturalLanguage, 5));
        assert_eq!(queries[0].topic, 0);
        assert_eq!(queries[10].topic, 0, "10 topics in the tiny spec");
        assert_eq!(queries[3].topic, 3);
    }

    #[test]
    fn generation_is_deterministic() {
        let c = collection();
        let a = generate(&c, &spec(QueryStyle::WeightedEnriched, 5));
        let b = generate(&c, &spec(QueryStyle::WeightedEnriched, 5));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.text, y.text);
        }
    }
}

//! Behavioural tests of the full Mneme file layer: pools, buffers,
//! location tables, persistence, and I/O accounting.

use std::sync::Arc;

use poir_mneme::{LruBuffer, MnemeError, MnemeFile, ObjectId, PoolConfig, PoolId, PoolKindConfig};
use poir_storage::{CostModel, Device, DeviceConfig};

fn paper_pools() -> Vec<PoolConfig> {
    vec![
        PoolConfig { id: PoolId(0), kind: PoolKindConfig::Small },
        PoolConfig { id: PoolId(1), kind: PoolKindConfig::Packed { segment_size: 8192 } },
        PoolConfig {
            id: PoolId(2),
            kind: PoolKindConfig::SegmentPerObject { embedded_refs: false },
        },
    ]
}

fn device() -> Arc<Device> {
    Device::new(DeviceConfig {
        block_size: 8192,
        os_cache_blocks: 64,
        cost_model: CostModel::free(),
    })
}

#[test]
fn three_pool_round_trip() {
    let dev = device();
    let mut f = MnemeFile::create(dev.create_file(), &paper_pools(), 16).unwrap();
    let small = f.create_object(PoolId(0), b"tiny!").unwrap();
    let medium = f.create_object(PoolId(1), &vec![42u8; 1000]).unwrap();
    let large = f.create_object(PoolId(2), &vec![7u8; 100_000]).unwrap();

    assert_eq!(f.get(small).unwrap(), b"tiny!");
    assert_eq!(f.get(medium).unwrap(), vec![42u8; 1000]);
    assert_eq!(f.get(large).unwrap(), vec![7u8; 100_000]);
    assert_eq!(f.object_len(large).unwrap(), 100_000);
    assert_eq!(f.pool_of(small).unwrap(), PoolId(0));
    assert_eq!(f.pool_of(medium).unwrap(), PoolId(1));
    assert_eq!(f.pool_of(large).unwrap(), PoolId(2));
}

#[test]
fn small_pool_rejects_oversized_objects() {
    let dev = device();
    let mut f = MnemeFile::create(dev.create_file(), &paper_pools(), 16).unwrap();
    assert!(matches!(
        f.create_object(PoolId(0), &[0u8; 13]),
        Err(MnemeError::ObjectTooLarge { len: 13, max: 12 })
    ));
}

#[test]
fn objects_survive_flush_and_reopen() {
    let dev = device();
    let handle = dev.create_file();
    let mut ids = Vec::new();
    {
        let mut f = MnemeFile::create(handle.clone(), &paper_pools(), 16).unwrap();
        for i in 0..1000u32 {
            let pool = PoolId((i % 3) as u8);
            let len = match pool.0 {
                0 => (i % 13) as usize,          // 0..=12 bytes
                1 => 20 + (i % 500) as usize,    // medium
                _ => 5000 + (i % 3000) as usize, // large
            };
            let data = vec![(i % 251) as u8; len];
            ids.push((f.create_object(pool, &data).unwrap(), data));
        }
        f.flush().unwrap();
    }
    let f = MnemeFile::open(handle).unwrap();
    for (id, data) in &ids {
        assert_eq!(&f.get(*id).unwrap(), data, "object {id:?}");
    }
    assert_eq!(f.pool_ids(), vec![PoolId(0), PoolId(1), PoolId(2)]);
}

#[test]
fn unflushed_objects_are_readable_through_building_segments() {
    let dev = device();
    let mut f = MnemeFile::create(dev.create_file(), &paper_pools(), 16).unwrap();
    let id = f.create_object(PoolId(1), b"not yet flushed").unwrap();
    assert_eq!(f.get(id).unwrap(), b"not yet flushed");
}

#[test]
fn more_than_255_objects_span_logical_segments() {
    let dev = device();
    let mut f = MnemeFile::create(dev.create_file(), &paper_pools(), 16).unwrap();
    let mut ids = Vec::new();
    for i in 0..700u32 {
        ids.push(f.create_object(PoolId(0), &[i as u8; 4]).unwrap());
    }
    // 700 objects need 3 logical segments.
    let segs: std::collections::HashSet<_> = ids.iter().map(|id| id.segment()).collect();
    assert_eq!(segs.len(), 3);
    for (i, id) in ids.iter().enumerate() {
        assert_eq!(f.get(*id).unwrap(), [i as u8; 4]);
    }
}

#[test]
fn interleaved_pools_use_disjoint_logical_segments() {
    let dev = device();
    let mut f = MnemeFile::create(dev.create_file(), &paper_pools(), 16).unwrap();
    let a = f.create_object(PoolId(0), b"a").unwrap();
    let b = f.create_object(PoolId(1), b"b").unwrap();
    let c = f.create_object(PoolId(0), b"c").unwrap();
    assert_eq!(a.segment(), c.segment(), "same pool refills its segment");
    assert_ne!(a.segment(), b.segment(), "pools never share a logical segment");
}

#[test]
fn update_in_place_and_relocation() {
    let dev = device();
    let mut f = MnemeFile::create(dev.create_file(), &paper_pools(), 16).unwrap();
    let id = f.create_object(PoolId(1), &[1u8; 100]).unwrap();
    // Pad the segment so a grown object cannot fit in place.
    for _ in 0..20 {
        f.create_object(PoolId(1), &vec![0u8; 380]).unwrap();
    }
    // Shrink: in place.
    f.update(id, &[2u8; 50]).unwrap();
    assert_eq!(f.get(id).unwrap(), vec![2u8; 50]);
    assert_eq!(f.garbage_bytes(), 0);
    // Grow beyond the segment: relocated via an exception entry.
    f.update(id, &vec![3u8; 4000]).unwrap();
    assert_eq!(f.get(id).unwrap(), vec![3u8; 4000]);
    assert!(f.garbage_bytes() > 0);
    // Relocated objects survive flush + reopen.
    f.flush().unwrap();
    let handle = f.handle().clone();
    drop(f);
    let f = MnemeFile::open(handle).unwrap();
    assert_eq!(f.get(id).unwrap(), vec![3u8; 4000]);
}

#[test]
fn delete_semantics() {
    let dev = device();
    let mut f = MnemeFile::create(dev.create_file(), &paper_pools(), 16).unwrap();
    let id = f.create_object(PoolId(1), b"doomed").unwrap();
    let neighbour = f.create_object(PoolId(1), b"survivor").unwrap();
    f.delete(id).unwrap();
    assert!(matches!(f.get(id), Err(MnemeError::ObjectDeleted(_))));
    assert!(matches!(f.delete(id), Err(MnemeError::ObjectDeleted(_))));
    assert!(matches!(f.update(id, b"x"), Err(MnemeError::ObjectDeleted(_))));
    assert_eq!(f.get(neighbour).unwrap(), b"survivor");
    // Never-created ids are absent, not deleted.
    let bogus = ObjectId::from_raw(0x000F_FF00).unwrap();
    assert!(matches!(f.get(bogus), Err(MnemeError::NoSuchObject(_))));
}

#[test]
fn buffer_hit_rates_follow_access_pattern() {
    let dev = device();
    let handle = dev.create_file();
    let mut ids = Vec::new();
    {
        let mut f = MnemeFile::create(handle.clone(), &paper_pools(), 16).unwrap();
        for i in 0..50u32 {
            ids.push(f.create_object(PoolId(2), &vec![i as u8; 6000]).unwrap());
        }
        f.flush().unwrap();
    }
    let mut f = MnemeFile::open(handle).unwrap();
    // Generous buffer: repeated accesses to the same object must hit.
    f.attach_buffer(PoolId(2), Box::new(LruBuffer::new(1 << 20))).unwrap();
    for _ in 0..3 {
        for id in ids.iter().take(10) {
            f.get(*id).unwrap();
        }
    }
    let stats = f.buffer_stats(PoolId(2)).unwrap();
    assert_eq!(stats.refs, 30);
    assert_eq!(stats.hits, 20, "first pass misses, later passes hit");
    f.reset_buffer_stats();
    assert_eq!(f.buffer_stats(PoolId(2)).unwrap().refs, 0);
}

#[test]
fn zero_capacity_buffer_rereads_every_access() {
    let dev = device();
    let handle = dev.create_file();
    let id;
    {
        let mut f = MnemeFile::create(handle.clone(), &paper_pools(), 16).unwrap();
        id = f.create_object(PoolId(1), &vec![1u8; 500]).unwrap();
        f.flush().unwrap();
    }
    let f = MnemeFile::open(handle).unwrap();
    let before = dev.stats().snapshot();
    f.get(id).unwrap();
    f.get(id).unwrap();
    f.get(id).unwrap();
    let delta = dev.stats().snapshot().since(&before);
    // Three object reads: one segment read each, plus one location bucket
    // read on the first access only (aux tables stay cached).
    assert_eq!(delta.file_accesses, 4);
    let stats = f.buffer_stats(PoolId(1)).unwrap();
    assert_eq!(stats.refs, 3);
    assert_eq!(stats.hits, 0);
}

#[test]
fn reservation_pins_resident_segments() {
    let dev = device();
    let handle = dev.create_file();
    let mut ids = Vec::new();
    {
        let mut f = MnemeFile::create(handle.clone(), &paper_pools(), 16).unwrap();
        for i in 0..6u32 {
            ids.push(f.create_object(PoolId(2), &vec![i as u8; 8000]).unwrap());
        }
        f.flush().unwrap();
    }
    let mut f = MnemeFile::open(handle).unwrap();
    // Buffer fits exactly one 8 KB segment (plus header).
    f.attach_buffer(PoolId(2), Box::new(LruBuffer::new(9000))).unwrap();
    f.get(ids[0]).unwrap(); // ids[0] resident
    f.reserve(&ids[0..1]);
    f.get(ids[1]).unwrap(); // would evict ids[0] without the reservation
    f.get(ids[0]).unwrap(); // must still be a hit
    let stats = f.buffer_stats(PoolId(2)).unwrap();
    assert_eq!(stats.refs, 3);
    assert_eq!(stats.hits, 1, "the reserved segment survived");
    f.release_reservations();
    f.get(ids[2]).unwrap();
    f.get(ids[0]).unwrap(); // evicted now
    assert_eq!(f.buffer_stats(PoolId(2)).unwrap().hits, 1);
}

#[test]
fn aux_tables_are_read_once_then_cached() {
    let dev = device();
    let handle = dev.create_file();
    let mut ids = Vec::new();
    {
        let mut f = MnemeFile::create(handle.clone(), &paper_pools(), 4).unwrap();
        for i in 0..1000u32 {
            ids.push(f.create_object(PoolId(0), &[i as u8; 3]).unwrap());
        }
        f.flush().unwrap();
    }
    let f = MnemeFile::open(handle).unwrap();
    let before = dev.stats().snapshot();
    for id in &ids {
        f.get(*id).unwrap();
    }
    let delta = dev.stats().snapshot().since(&before);
    // 1000 smalls live in 4 logical segments = 4 physical segments; the
    // zero-capacity default buffer re-reads segments per access (1000), and
    // at most 4 bucket loads happen — never one per access.
    assert!(delta.file_accesses <= 1000 + 4, "accesses: {}", delta.file_accesses);
    assert!(delta.file_accesses >= 1000);
    assert!(f.aux_table_bytes() > 0);
}

#[test]
fn empty_objects_round_trip() {
    let dev = device();
    let mut f = MnemeFile::create(dev.create_file(), &paper_pools(), 16).unwrap();
    let a = f.create_object(PoolId(0), b"").unwrap();
    let b = f.create_object(PoolId(1), b"").unwrap();
    let c = f.create_object(PoolId(2), b"").unwrap();
    for id in [a, b, c] {
        assert_eq!(f.get(id).unwrap(), Vec::<u8>::new());
        assert_eq!(f.object_len(id).unwrap(), 0);
    }
}

#[test]
fn open_rejects_garbage() {
    let dev = device();
    let handle = dev.create_file();
    handle.write(0, &vec![0xAAu8; 8192]).unwrap();
    assert!(matches!(MnemeFile::open(handle), Err(MnemeError::Corrupt(_))));
}

#[test]
fn file_size_matches_handle_length() {
    let dev = device();
    let mut f = MnemeFile::create(dev.create_file(), &paper_pools(), 16).unwrap();
    for i in 0..100u32 {
        f.create_object(PoolId(1), &[i as u8; 200]).unwrap();
    }
    f.flush().unwrap();
    let size = f.file_size().unwrap();
    assert!(size > 8192 + 100 * 200, "size {size} must cover header + data");
    assert_eq!(size, f.handle().len().unwrap());
}

#[test]
fn live_object_ids_reflects_creates_and_deletes() {
    let dev = device();
    let mut f = MnemeFile::create(dev.create_file(), &paper_pools(), 8).unwrap();
    let mut expected = Vec::new();
    for i in 0..60u32 {
        let id = f.create_object(PoolId((i % 3) as u8), &[1u8; 12]).unwrap();
        if i % 5 == 0 {
            f.delete(id).unwrap();
        } else {
            expected.push(id);
        }
    }
    expected.sort_unstable();
    assert_eq!(f.live_object_ids().unwrap(), expected);
}

#[test]
fn file_stats_summarise_pool_occupancy() {
    let dev = device();
    let mut f = MnemeFile::create(dev.create_file(), &paper_pools(), 16).unwrap();
    for i in 0..100u32 {
        f.create_object(PoolId(0), &[i as u8; 8]).unwrap();
    }
    for i in 0..20u32 {
        f.create_object(PoolId(1), &vec![i as u8; 1000]).unwrap();
    }
    let big = f.create_object(PoolId(2), &vec![1u8; 50_000]).unwrap();
    f.delete(big).unwrap();
    f.flush().unwrap();
    let stats = f.stats().unwrap();
    assert_eq!(stats.pools.len(), 3);
    assert_eq!(stats.pools[0].live_objects, 100);
    assert_eq!(stats.pools[0].payload_bytes, 800);
    assert_eq!(stats.pools[1].live_objects, 20);
    assert_eq!(stats.pools[1].payload_bytes, 20_000);
    assert_eq!(stats.pools[2].live_objects, 0, "the large object was deleted");
    assert_eq!(stats.garbage_bytes, 50_000);
    assert!(stats.file_bytes > 20_800);
    assert!(stats.aux_table_bytes > 0);
    // 100 smalls fit one 4 KB segment; 20 KB of mediums need 3 segments.
    assert_eq!(stats.pools[0].segments, 1);
    assert_eq!(stats.pools[1].segments, 3);
}

//! Property tests: a Mneme file must behave like a map from object id to
//! byte string under arbitrary create/get/update/delete/flush/reopen
//! sequences, across all three pool layouts and any buffer size.

use proptest::prelude::*;

use poir_mneme::{LruBuffer, MnemeError, MnemeFile, ObjectId, PoolConfig, PoolId, PoolKindConfig};
use poir_storage::{CostModel, Device, DeviceConfig};

#[derive(Debug, Clone)]
enum Op {
    Create { pool: u8, len: u16 },
    Get { nth: u16 },
    Update { nth: u16, len: u16 },
    Delete { nth: u16 },
    Flush,
    Reopen,
    AttachBuffers { capacity: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..3, 0u16..2000).prop_map(|(pool, len)| Op::Create { pool, len }),
        4 => (0u16..500).prop_map(|nth| Op::Get { nth }),
        2 => (0u16..500, 0u16..2000).prop_map(|(nth, len)| Op::Update { nth, len }),
        1 => (0u16..500).prop_map(|nth| Op::Delete { nth }),
        1 => Just(Op::Flush),
        1 => Just(Op::Reopen),
        1 => (0u32..100_000).prop_map(|capacity| Op::AttachBuffers { capacity }),
    ]
}

fn pools() -> Vec<PoolConfig> {
    vec![
        PoolConfig { id: PoolId(0), kind: PoolKindConfig::Small },
        PoolConfig { id: PoolId(1), kind: PoolKindConfig::Packed { segment_size: 2048 } },
        PoolConfig {
            id: PoolId(2),
            kind: PoolKindConfig::SegmentPerObject { embedded_refs: false },
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mneme_file_matches_map_model(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let dev = Device::new(DeviceConfig {
            block_size: 512,
            os_cache_blocks: 8,
            cost_model: CostModel::free(),
        });
        let handle = dev.create_file();
        let mut file = MnemeFile::create(handle.clone(), &pools(), 4).unwrap();
        // Model: id -> Some(bytes) live, None deleted.
        let mut model: Vec<(ObjectId, Option<Vec<u8>>)> = Vec::new();
        let mut fill = 0u8;

        for op in ops {
            match op {
                Op::Create { pool, len } => {
                    fill = fill.wrapping_add(1);
                    let len = if pool == 0 { (len % 13) as usize } else { len as usize };
                    let data = vec![fill; len];
                    let id = file.create_object(PoolId(pool), &data).unwrap();
                    for (existing, _) in &model {
                        prop_assert_ne!(*existing, id, "ids must never repeat");
                    }
                    model.push((id, Some(data)));
                }
                Op::Get { nth } => {
                    if model.is_empty() { continue; }
                    let (id, expected) = &model[nth as usize % model.len()];
                    match expected {
                        Some(data) => prop_assert_eq!(&file.get(*id).unwrap(), data),
                        None => prop_assert!(matches!(
                            file.get(*id),
                            Err(MnemeError::ObjectDeleted(_))
                        )),
                    }
                }
                Op::Update { nth, len } => {
                    if model.is_empty() { continue; }
                    let slot = nth as usize % model.len();
                    let id = model[slot].0;
                    fill = fill.wrapping_add(1);
                    let pool = file.pool_of(id).unwrap();
                    let len = if pool == PoolId(0) { (len % 13) as usize } else { len as usize };
                    let data = vec![fill; len];
                    match (&model[slot].1, file.update(id, &data)) {
                        (Some(_), Ok(())) => model[slot].1 = Some(data),
                        (None, Err(MnemeError::ObjectDeleted(_))) => {}
                        (state, result) => {
                            prop_assert!(false, "update mismatch: model {state:?}, got {result:?}");
                        }
                    }
                }
                Op::Delete { nth } => {
                    if model.is_empty() { continue; }
                    let slot = nth as usize % model.len();
                    let id = model[slot].0;
                    match (&model[slot].1, file.delete(id)) {
                        (Some(_), Ok(())) => model[slot].1 = None,
                        (None, Err(MnemeError::ObjectDeleted(_))) => {}
                        (state, result) => {
                            prop_assert!(false, "delete mismatch: model {state:?}, got {result:?}");
                        }
                    }
                }
                Op::Flush => file.flush().unwrap(),
                Op::Reopen => {
                    file.flush().unwrap();
                    drop(file);
                    file = MnemeFile::open(handle.clone()).unwrap();
                }
                Op::AttachBuffers { capacity } => {
                    for pool in [PoolId(0), PoolId(1), PoolId(2)] {
                        file.attach_buffer(pool, Box::new(LruBuffer::new(capacity as usize)))
                            .unwrap();
                    }
                }
            }
        }
        // Final sweep: every live object still reads back correctly.
        for (id, expected) in &model {
            match expected {
                Some(data) => prop_assert_eq!(&file.get(*id).unwrap(), data),
                None => prop_assert!(matches!(file.get(*id), Err(MnemeError::ObjectDeleted(_)))),
            }
        }
        // live_object_ids agrees with the model.
        let live: Vec<ObjectId> =
            model.iter().filter(|(_, d)| d.is_some()).map(|(id, _)| *id).collect();
        let mut live_sorted = live.clone();
        live_sorted.sort_unstable();
        prop_assert_eq!(file.live_object_ids().unwrap(), live_sorted);
    }

    #[test]
    fn buffer_stats_refs_equal_object_accesses(
        capacity in 0usize..50_000,
        accesses in proptest::collection::vec(0usize..40, 1..120),
    ) {
        let dev = Device::with_defaults();
        let handle = dev.create_file();
        let mut ids = Vec::new();
        {
            let mut f = MnemeFile::create(handle.clone(), &pools(), 4).unwrap();
            for i in 0..40u32 {
                ids.push(f.create_object(PoolId(1), &[i as u8; 100]).unwrap());
            }
            f.flush().unwrap();
        }
        let mut f = MnemeFile::open(handle).unwrap();
        f.attach_buffer(PoolId(1), Box::new(LruBuffer::new(capacity))).unwrap();
        for &a in &accesses {
            f.get(ids[a]).unwrap();
        }
        let stats = f.buffer_stats(PoolId(1)).unwrap();
        prop_assert_eq!(stats.refs, accesses.len() as u64);
        prop_assert!(stats.hits <= stats.refs);
        if capacity == 0 {
            prop_assert_eq!(stats.hits, 0, "zero-capacity buffers never hit");
        }
    }

    /// Model check of the id/slot arithmetic used everywhere.
    #[test]
    fn object_id_raw_round_trip(raw in 0u32..(1 << 28)) {
        match ObjectId::from_raw(raw) {
            Some(id) => {
                prop_assert_eq!(id.raw(), raw);
                prop_assert!((id.slot() as u32) < 255);
                prop_assert_eq!((id.segment().0 << 8) | id.slot() as u32, raw);
            }
            None => prop_assert_eq!(raw & 0xFF, 255),
        }
    }
}

//! The medium ("packed") object pool: slotted fixed-size segments.
//!
//! "The remaining inverted lists form the third group of objects and were
//! allocated in a medium object pool. These objects are packed into 8 Kbyte
//! physical segments. The physical segment size is based on the disk I/O
//! block size and a desire to keep the segments relatively small so as to
//! reduce the number of unused objects retrieved with each segment."
//! (Section 3.3)
//!
//! The layout is a classic slotted page: object payloads grow forward from
//! the header, a table of `(id, offset, len)` entries grows backward from
//! the segment end. Entries stay sorted by id because the file layer
//! allocates ids sequentially, so lookup is a binary search.

use std::ops::Range;

use crate::id::{ObjectId, PoolId};
use crate::pool::{
    header_count, header_word, set_header_count, set_header_word, write_header, AppendOutcome,
    LocateResult, Pool, SEGMENT_HEADER_LEN,
};
use crate::segment::{SegmentImage, SegmentKind};

/// Bytes per object-table entry: id (4) + offset (4) + length (4).
const ENTRY_LEN: usize = 12;

/// Length sentinel marking a deleted entry.
const LEN_DELETED: u32 = u32::MAX;

/// The medium object pool policy.
#[derive(Debug, Clone)]
pub struct PackedPool {
    id: PoolId,
    segment_size: usize,
}

impl PackedPool {
    /// Creates a packed pool writing segments of `segment_size` bytes.
    ///
    /// # Panics
    /// Panics if the segment is too small to hold the header, one table
    /// entry, and at least one payload byte.
    pub fn new(id: PoolId, segment_size: usize) -> Self {
        assert!(
            segment_size > SEGMENT_HEADER_LEN + ENTRY_LEN,
            "segment size {segment_size} cannot hold any object"
        );
        assert!(segment_size <= u32::MAX as usize, "segment size must fit in 32 bits");
        PackedPool { id, segment_size }
    }

    /// The fixed segment size of this pool.
    pub fn segment_size(&self) -> usize {
        self.segment_size
    }

    /// Largest payload that fits in an otherwise empty segment.
    pub fn max_payload(&self) -> usize {
        self.segment_size - SEGMENT_HEADER_LEN - ENTRY_LEN
    }

    fn entry_range(&self, index: usize) -> Range<usize> {
        let end = self.segment_size - index * ENTRY_LEN;
        end - ENTRY_LEN..end
    }

    fn read_entry(&self, seg: &[u8], index: usize) -> (u32, u32, u32) {
        let r = self.entry_range(index);
        let e = &seg[r];
        (
            u32::from_le_bytes(e[0..4].try_into().unwrap()),
            u32::from_le_bytes(e[4..8].try_into().unwrap()),
            u32::from_le_bytes(e[8..12].try_into().unwrap()),
        )
    }

    fn write_entry(&self, seg: &mut [u8], index: usize, id: u32, offset: u32, len: u32) {
        let r = self.entry_range(index);
        let e = &mut seg[r];
        e[0..4].copy_from_slice(&id.to_le_bytes());
        e[4..8].copy_from_slice(&offset.to_le_bytes());
        e[8..12].copy_from_slice(&len.to_le_bytes());
    }

    /// Total number of table entries (live + deleted). Stored as the upper
    /// 16 bits of nothing — we derive it from the header count plus deleted
    /// entries is impossible, so we store it in bytes [12..14] of the
    /// header's reserved area.
    fn entries(seg: &[u8]) -> usize {
        u16::from_le_bytes(seg[12..14].try_into().unwrap()) as usize
    }

    fn set_entries(seg: &mut [u8], n: usize) {
        seg[12..14].copy_from_slice(&(n as u16).to_le_bytes());
    }

    /// Binary search over the (id-sorted) entry table.
    fn find_entry(&self, seg: &[u8], id: ObjectId) -> Option<usize> {
        let n = Self::entries(seg);
        let raw = id.raw();
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let (eid, _, _) = self.read_entry(seg, mid);
            match eid.cmp(&raw) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(mid),
            }
        }
        None
    }

    fn free_space(&self, seg: &[u8]) -> usize {
        let payload_end = header_word(seg) as usize;
        let table_start = self.segment_size - Self::entries(seg) * ENTRY_LEN;
        table_start - payload_end
    }
}

impl Pool for PackedPool {
    fn id(&self) -> PoolId {
        self.id
    }

    fn kind(&self) -> SegmentKind {
        SegmentKind::Packed
    }

    fn max_object_len(&self) -> Option<usize> {
        Some(self.max_payload())
    }

    fn new_segment(&self, first: ObjectId, _first_len: usize) -> SegmentImage {
        let mut bytes = vec![0u8; self.segment_size];
        write_header(&mut bytes, SegmentKind::Packed, self.id, 0, SEGMENT_HEADER_LEN as u32, first);
        Self::set_entries(&mut bytes, 0);
        SegmentImage::new_dirty(bytes)
    }

    fn try_append(&self, seg: &mut SegmentImage, id: ObjectId, data: &[u8]) -> AppendOutcome {
        assert!(data.len() <= self.max_payload(), "caller must respect max_object_len");
        if self.free_space(seg.bytes()) < data.len() + ENTRY_LEN {
            return AppendOutcome::Full;
        }
        let n = Self::entries(seg.bytes());
        if n > 0 {
            let (last_id, _, _) = self.read_entry(seg.bytes(), n - 1);
            assert!(last_id < id.raw(), "objects must be appended in ascending id order");
        }
        let bytes = seg.bytes_mut();
        let offset = header_word(bytes) as usize;
        bytes[offset..offset + data.len()].copy_from_slice(data);
        set_header_word(bytes, (offset + data.len()) as u32);
        self.write_entry(bytes, n, id.raw(), offset as u32, data.len() as u32);
        Self::set_entries(bytes, n + 1);
        let count = header_count(bytes) + 1;
        set_header_count(bytes, count);
        AppendOutcome::Appended
    }

    fn locate(&self, seg: &[u8], id: ObjectId) -> LocateResult {
        match self.find_entry(seg, id) {
            None => LocateResult::Absent,
            Some(i) => {
                let (_, offset, len) = self.read_entry(seg, i);
                if len == LEN_DELETED {
                    LocateResult::Deleted
                } else {
                    LocateResult::Found(offset as usize..offset as usize + len as usize)
                }
            }
        }
    }

    fn try_update_in_place(&self, seg: &mut SegmentImage, id: ObjectId, data: &[u8]) -> bool {
        let Some(i) = self.find_entry(seg.bytes(), id) else { return false };
        let (eid, offset, len) = self.read_entry(seg.bytes(), i);
        if len == LEN_DELETED {
            return false;
        }
        if data.len() <= len as usize {
            // Shrink or same-size: overwrite in place.
            let bytes = seg.bytes_mut();
            bytes[offset as usize..offset as usize + data.len()].copy_from_slice(data);
            self.write_entry(bytes, i, eid, offset, data.len() as u32);
            return true;
        }
        // Grow: relocate within the segment if there is room at the end.
        if self.free_space(seg.bytes()) >= data.len() {
            let bytes = seg.bytes_mut();
            let new_offset = header_word(bytes) as usize;
            bytes[new_offset..new_offset + data.len()].copy_from_slice(data);
            set_header_word(bytes, (new_offset + data.len()) as u32);
            self.write_entry(bytes, i, eid, new_offset as u32, data.len() as u32);
            return true;
        }
        false
    }

    fn delete(&self, seg: &mut SegmentImage, id: ObjectId) -> bool {
        let Some(i) = self.find_entry(seg.bytes(), id) else { return false };
        let (eid, offset, len) = self.read_entry(seg.bytes(), i);
        if len == LEN_DELETED {
            return false;
        }
        let bytes = seg.bytes_mut();
        self.write_entry(bytes, i, eid, offset, LEN_DELETED);
        let count = header_count(bytes) - 1;
        set_header_count(bytes, count);
        true
    }

    fn live_objects(&self, seg: &[u8]) -> Vec<(ObjectId, Range<usize>)> {
        let n = Self::entries(seg);
        let mut out = Vec::with_capacity(header_count(seg) as usize);
        for i in 0..n {
            let (id, offset, len) = self.read_entry(seg, i);
            if len != LEN_DELETED {
                let id = ObjectId::from_raw(id).expect("stored ids are valid");
                out.push((id, offset as usize..(offset + len) as usize));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::LogicalSegment;

    fn pool() -> PackedPool {
        PackedPool::new(PoolId(1), 256)
    }

    fn oid(n: u32) -> ObjectId {
        ObjectId::new(LogicalSegment(n / 255), (n % 255) as u8)
    }

    #[test]
    fn append_locate_round_trip() {
        let p = pool();
        let mut seg = p.new_segment(oid(0), 10);
        assert_eq!(p.try_append(&mut seg, oid(0), b"first"), AppendOutcome::Appended);
        assert_eq!(p.try_append(&mut seg, oid(1), b"second!"), AppendOutcome::Appended);
        match p.locate(seg.bytes(), oid(0)) {
            LocateResult::Found(r) => assert_eq!(&seg.bytes()[r], b"first"),
            o => panic!("{o:?}"),
        }
        match p.locate(seg.bytes(), oid(1)) {
            LocateResult::Found(r) => assert_eq!(&seg.bytes()[r], b"second!"),
            o => panic!("{o:?}"),
        }
        assert_eq!(p.locate(seg.bytes(), oid(2)), LocateResult::Absent);
    }

    #[test]
    fn fills_until_capacity_then_reports_full() {
        let p = pool();
        let mut seg = p.new_segment(oid(0), 0);
        let mut appended = 0u32;
        loop {
            let data = [appended as u8; 20];
            match p.try_append(&mut seg, oid(appended), &data) {
                AppendOutcome::Appended => appended += 1,
                AppendOutcome::Full => break,
            }
        }
        // 256 - 16 header = 240; each object costs 20 + 12 = 32 → 7 objects.
        assert_eq!(appended, 7);
        assert_eq!(p.live_objects(seg.bytes()).len(), 7);
        // The segment stays internally consistent after being full.
        for i in 0..7 {
            match p.locate(seg.bytes(), oid(i)) {
                LocateResult::Found(r) => assert_eq!(seg.bytes()[r.start], i as u8),
                o => panic!("{o:?}"),
            }
        }
    }

    #[test]
    fn max_payload_object_fits_alone() {
        let p = pool();
        let mut seg = p.new_segment(oid(0), p.max_payload());
        let data = vec![7u8; p.max_payload()];
        assert_eq!(p.try_append(&mut seg, oid(0), &data), AppendOutcome::Appended);
        assert_eq!(p.try_append(&mut seg, oid(1), b""), AppendOutcome::Full);
    }

    #[test]
    #[should_panic(expected = "ascending id order")]
    fn out_of_order_append_is_rejected() {
        let p = pool();
        let mut seg = p.new_segment(oid(0), 0);
        p.try_append(&mut seg, oid(5), b"x");
        p.try_append(&mut seg, oid(3), b"y");
    }

    #[test]
    fn update_shrink_and_grow_in_place() {
        let p = pool();
        let mut seg = p.new_segment(oid(0), 0);
        p.try_append(&mut seg, oid(0), b"abcdef");
        p.try_append(&mut seg, oid(1), b"tail");
        // Shrink.
        assert!(p.try_update_in_place(&mut seg, oid(0), b"ab"));
        match p.locate(seg.bytes(), oid(0)) {
            LocateResult::Found(r) => assert_eq!(&seg.bytes()[r], b"ab"),
            o => panic!("{o:?}"),
        }
        // Grow: relocated to payload end within the segment.
        assert!(p.try_update_in_place(&mut seg, oid(0), b"0123456789"));
        match p.locate(seg.bytes(), oid(0)) {
            LocateResult::Found(r) => assert_eq!(&seg.bytes()[r], b"0123456789"),
            o => panic!("{o:?}"),
        }
        // The neighbour is untouched.
        match p.locate(seg.bytes(), oid(1)) {
            LocateResult::Found(r) => assert_eq!(&seg.bytes()[r], b"tail"),
            o => panic!("{o:?}"),
        }
        // Grow beyond free space fails.
        let huge = vec![1u8; p.max_payload()];
        assert!(!p.try_update_in_place(&mut seg, oid(0), &huge));
        // Updating an absent object fails.
        assert!(!p.try_update_in_place(&mut seg, oid(9), b"zz"));
    }

    #[test]
    fn delete_hides_object_but_keeps_neighbours() {
        let p = pool();
        let mut seg = p.new_segment(oid(0), 0);
        for i in 0..3 {
            p.try_append(&mut seg, oid(i), &[i as u8; 8]);
        }
        assert!(p.delete(&mut seg, oid(1)));
        assert!(!p.delete(&mut seg, oid(1)));
        assert_eq!(p.locate(seg.bytes(), oid(1)), LocateResult::Deleted);
        assert!(!p.try_update_in_place(&mut seg, oid(1), b"x"), "deleted object not updatable");
        let live = p.live_objects(seg.bytes());
        assert_eq!(live.iter().map(|(id, _)| *id).collect::<Vec<_>>(), vec![oid(0), oid(2)]);
        assert_eq!(header_count(seg.bytes()), 2);
    }

    #[test]
    fn ids_spanning_logical_segments_still_sort() {
        let p = PackedPool::new(PoolId(1), 4096);
        let mut seg = p.new_segment(oid(253), 0);
        // Crosses the boundary between lseg 0 (slots 253,254) and lseg 1.
        for n in 253..260 {
            assert_eq!(p.try_append(&mut seg, oid(n), &[n as u8]), AppendOutcome::Appended);
        }
        for n in 253..260 {
            match p.locate(seg.bytes(), oid(n)) {
                LocateResult::Found(r) => assert_eq!(seg.bytes()[r.start], n as u8),
                o => panic!("{o:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot hold any object")]
    fn rejects_degenerate_segment_size() {
        PackedPool::new(PoolId(1), 20);
    }
}

//! Zero-copy object payloads.
//!
//! Segment images are cached behind reference-counted buffers
//! ([`crate::segment::SegmentImage`]), so the read path can hand out a
//! payload as a sub-slice of the cached buffer instead of copying it into
//! a fresh `Vec`. [`ObjectBytes`] carries either form; callers treat both
//! uniformly as `&[u8]`. A shared slice stays valid for as long as the
//! value lives — buffer eviction only drops the cache's reference, and
//! segment mutation is copy-on-write against outstanding readers.

use std::sync::Arc;

/// Bytes of one object payload (or payload range), in whatever ownership
/// form the read path could produce cheapest.
#[derive(Debug, Clone)]
pub enum ObjectBytes {
    /// A private copy the caller exclusively owns (direct device reads).
    Owned(Vec<u8>),
    /// The sub-slice `buf[start..end]` of a cached segment image —
    /// produced without copying payload bytes.
    Shared {
        /// The shared segment buffer.
        buf: Arc<Vec<u8>>,
        /// First payload byte within `buf`.
        start: usize,
        /// One past the last payload byte within `buf`.
        end: usize,
    },
}

impl ObjectBytes {
    /// Wraps the sub-slice `buf[start..end]` without copying.
    pub fn shared(buf: Arc<Vec<u8>>, start: usize, end: usize) -> Self {
        debug_assert!(start <= end && end <= buf.len());
        ObjectBytes::Shared { buf, start, end }
    }

    /// The payload as a slice.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            ObjectBytes::Owned(v) => v,
            ObjectBytes::Shared { buf, start, end } => &buf[*start..*end],
        }
    }

    /// An exclusively owned `Vec`, copying only when the bytes are still
    /// shared with the cache or are a proper sub-slice.
    pub fn into_vec(self) -> Vec<u8> {
        match self {
            ObjectBytes::Owned(v) => v,
            ObjectBytes::Shared { buf, start, end } => {
                if start == 0 && end == buf.len() {
                    Arc::try_unwrap(buf).unwrap_or_else(|shared| shared.to_vec())
                } else {
                    buf[start..end].to_vec()
                }
            }
        }
    }

    /// Whether the bytes are a zero-copy view of a cached segment.
    pub fn is_shared(&self) -> bool {
        matches!(self, ObjectBytes::Shared { .. })
    }
}

impl std::ops::Deref for ObjectBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for ObjectBytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for ObjectBytes {
    fn from(v: Vec<u8>) -> Self {
        ObjectBytes::Owned(v)
    }
}

impl PartialEq for ObjectBytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for ObjectBytes {}
impl PartialEq<[u8]> for ObjectBytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<&[u8]> for ObjectBytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for ObjectBytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl<const N: usize> PartialEq<[u8; N]> for ObjectBytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}
impl<const N: usize> PartialEq<&[u8; N]> for ObjectBytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_slices_view_the_backing_buffer() {
        let buf = Arc::new(vec![1u8, 2, 3, 4, 5]);
        let bytes = ObjectBytes::shared(Arc::clone(&buf), 1, 4);
        assert!(bytes.is_shared());
        assert_eq!(bytes, [2u8, 3, 4]);
        assert_eq!(bytes.as_slice().as_ptr(), unsafe { buf.as_slice().as_ptr().add(1) });
    }

    #[test]
    fn into_vec_avoids_the_copy_when_sole_whole_holder() {
        let whole = ObjectBytes::shared(Arc::new(vec![9u8; 8]), 0, 8);
        assert_eq!(whole.into_vec(), vec![9u8; 8]);
        let buf = Arc::new(vec![1u8, 2, 3]);
        let partial = ObjectBytes::shared(Arc::clone(&buf), 0, 2);
        assert_eq!(partial.into_vec(), vec![1, 2]);
        assert_eq!(*buf, vec![1, 2, 3]);
    }
}

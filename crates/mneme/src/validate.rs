//! Store integrity validation.
//!
//! A production data manager ships a checker: [`MnemeFile::validate`] walks
//! the location tables and every physical segment they reference, verifying
//! that
//!
//! * every referenced segment lies inside the file and none overlap,
//! * each segment's header parses and its pool/kind match the location
//!   table's pool binding,
//! * every live object a segment reports is locatable back through the
//!   tables (no orphans), and every slot the tables map resolves inside its
//!   segment (no dangling runs).
//!
//! The report lists problems rather than failing fast, so a damaged file
//! can be triaged before attempting [`crate::gc::compact`] or restoring
//! from a [`crate::recovery`] log.

use crate::error::Result;
use crate::file::MnemeFile;
use crate::pool::LocateResult;
use crate::segment::SegmentKind;

/// Outcome of a validation pass.
#[derive(Debug, Default)]
pub struct ValidationReport {
    /// Physical segments examined.
    pub segments_checked: usize,
    /// Live objects accounted for.
    pub live_objects: u64,
    /// Human-readable descriptions of every inconsistency found.
    pub problems: Vec<String>,
}

impl ValidationReport {
    /// Whether the file is internally consistent.
    pub fn is_clean(&self) -> bool {
        self.problems.is_empty()
    }
}

impl MnemeFile {
    /// Verifies the file's internal consistency. Read-only apart from
    /// loading location buckets and faulting segments through the buffers.
    pub fn validate(&mut self) -> Result<ValidationReport> {
        // Seal building segments and settle the tables so the on-disk state
        // is what gets checked.
        self.flush()?;
        let mut report = ValidationReport::default();
        let file_len = self.file_size()?;
        let inventory = self.segment_inventory()?;

        // Overlap and bounds checks over the sorted segment list.
        let mut prev_end = 0u64;
        let mut prev_desc = String::new();
        let mut sorted = inventory.clone();
        sorted.sort_unstable_by_key(|&(_, addr)| addr);
        for (pool, addr) in &sorted {
            let desc = format!("segment at {}+{} (pool {})", addr.offset, addr.len, pool.0);
            if addr.offset + addr.len as u64 > file_len {
                report.problems.push(format!("{desc} extends past end of file ({file_len})"));
            }
            if addr.offset < prev_end {
                report.problems.push(format!("{desc} overlaps previous segment {prev_desc}"));
            }
            prev_end = addr.offset + addr.len as u64;
            prev_desc = desc;
        }

        // Per-segment structural checks.
        for (pool_id, addr) in inventory {
            report.segments_checked += 1;
            if addr.offset + addr.len as u64 > file_len {
                continue; // already reported as out of bounds
            }
            let header_kind = match self.segment_header_kind(addr) {
                Ok(k) => k,
                Err(e) => {
                    report
                        .problems
                        .push(format!("segment at {}+{}: unreadable ({e})", addr.offset, addr.len));
                    continue;
                }
            };
            let expected = self.pool_kind(pool_id)?;
            if header_kind != Some(expected) {
                report.problems.push(format!(
                    "segment at {}+{}: header kind {:?} does not match pool {} ({:?})",
                    addr.offset, addr.len, header_kind, pool_id.0, expected
                ));
                continue;
            }
            // Every live object in the segment must resolve back through
            // the location tables to this segment.
            for (id, _) in self.segment_live_objects(pool_id, addr)? {
                report.live_objects += 1;
                match self.locate_for_validation(id)? {
                    Some(found) if found == addr => {}
                    Some(found) => report.problems.push(format!(
                        "object {id:?} stored at {}+{} but tables point to {}+{}",
                        addr.offset, addr.len, found.offset, found.len
                    )),
                    None => report
                        .problems
                        .push(format!("object {id:?} at {}+{} is orphaned", addr.offset, addr.len)),
                }
            }
        }

        // Dangling-run check: the head slot of every run/exception was
        // allocated when the run was pushed, so it must exist in its
        // segment (live or tombstoned) — never Absent.
        for (id, addr) in self.run_heads()? {
            if addr.offset + addr.len as u64 > file_len {
                continue; // already reported as out of bounds
            }
            let pool_id = self.pool_of(id)?;
            if self.segment_header_kind(addr)? != Some(self.pool_kind(pool_id)?) {
                continue; // already reported as a header problem above
            }
            if matches!(self.locate_in_segment(pool_id, addr, id)?, LocateResult::Absent) {
                report.problems.push(format!(
                    "tables map {id:?} to {}+{} but the segment has no such object",
                    addr.offset, addr.len
                ));
            }
        }
        Ok(report)
    }
}

/// Segment kinds are compared via the pool's declared layout.
pub(crate) fn kind_of_config(kind: &crate::pool::PoolKindConfig) -> SegmentKind {
    match kind {
        crate::pool::PoolKindConfig::Small => SegmentKind::FixedSlots,
        crate::pool::PoolKindConfig::Packed { .. } => SegmentKind::Packed,
        crate::pool::PoolKindConfig::SegmentPerObject { .. } => SegmentKind::SingleObject,
    }
}

#[cfg(test)]
mod tests {
    use crate::pool::{PoolConfig, PoolKindConfig};
    use crate::{MnemeFile, PoolId};
    use poir_storage::Device;

    fn pools() -> Vec<PoolConfig> {
        vec![
            PoolConfig { id: PoolId(0), kind: PoolKindConfig::Small },
            PoolConfig { id: PoolId(1), kind: PoolKindConfig::Packed { segment_size: 2048 } },
            PoolConfig {
                id: PoolId(2),
                kind: PoolKindConfig::SegmentPerObject { embedded_refs: false },
            },
        ]
    }

    #[test]
    fn healthy_files_validate_clean() {
        let dev = Device::with_defaults();
        let mut f = MnemeFile::create(dev.create_file(), &pools(), 8).unwrap();
        for i in 0..300u32 {
            let pool = PoolId((i % 3) as u8);
            let len = if pool == PoolId(0) { (i % 13) as usize } else { 20 + (i as usize % 500) };
            f.create_object(pool, &vec![(i % 251) as u8; len]).unwrap();
        }
        // Updates and deletes must not confuse the checker.
        let victim = f.create_object(PoolId(1), b"temp").unwrap();
        f.delete(victim).unwrap();
        f.flush().unwrap();
        let report = f.validate().unwrap();
        assert!(report.is_clean(), "problems: {:?}", report.problems);
        assert!(report.segments_checked > 3);
        assert!(report.live_objects >= 300);
    }

    #[test]
    fn validate_works_after_reopen() {
        let dev = Device::with_defaults();
        let handle = dev.create_file();
        {
            let mut f = MnemeFile::create(handle.clone(), &pools(), 8).unwrap();
            for i in 0..100u32 {
                f.create_object(PoolId(1), &[i as u8; 100]).unwrap();
            }
            f.flush().unwrap();
        }
        let mut f = MnemeFile::open(handle).unwrap();
        let report = f.validate().unwrap();
        assert!(report.is_clean(), "problems: {:?}", report.problems);
    }

    #[test]
    fn corrupted_segment_header_is_detected() {
        let dev = Device::with_defaults();
        let handle = dev.create_file();
        let mut f = MnemeFile::create(handle.clone(), &pools(), 8).unwrap();
        let id = f.create_object(PoolId(2), &vec![9u8; 4000]).unwrap();
        f.flush().unwrap();
        // Smash the segment header's kind byte on disk. The large object's
        // segment starts right after the 8 KB file header.
        handle.write(8192, &[0xEE]).unwrap();
        let _ = id;
        let mut f = MnemeFile::open(handle).unwrap();
        let report = f.validate().unwrap();
        assert!(!report.is_clean());
        assert!(
            report.problems.iter().any(|p| p.contains("kind")),
            "problems: {:?}",
            report.problems
        );
    }

    #[test]
    fn truncated_file_is_detected() {
        let dev = Device::with_defaults();
        let handle = dev.create_file();
        let mut f = MnemeFile::create(handle.clone(), &pools(), 8).unwrap();
        f.create_object(PoolId(2), &vec![1u8; 50_000]).unwrap();
        f.flush().unwrap();
        // Reopen and validate once so the location tables are resident,
        // then chop the file's tail (data and tables both live there) and
        // validate again — the damage must be reported, not panicked on.
        let mut f2 = MnemeFile::open(handle.clone()).unwrap();
        assert!(f2.validate().unwrap().is_clean());
        handle.truncate(handle.len().unwrap() - 10_000).unwrap();
        let report = f2.validate().unwrap();
        assert!(!report.is_clean());
        assert!(
            report
                .problems
                .iter()
                .any(|p| p.contains("past end of file") || p.contains("unreadable")),
            "problems: {:?}",
            report.problems
        );
    }
}

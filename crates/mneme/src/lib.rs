//! # Mneme — a persistent object store
//!
//! A from-scratch Rust implementation of the Mneme persistent object store
//! as described in Moss, *Design of the Mneme persistent object store*
//! (ACM TOIS 8(2), 1990) and used by Brown, Callan, Moss & Croft,
//! *Supporting Full-Text Information Retrieval with a Persistent Object
//! Store* (EDBT 1994), Section 3.2.
//!
//! The basic services are "storage and retrieval of objects, where an object
//! is a chunk of contiguous bytes that has been assigned a unique
//! identifier. Mneme has no notion of type or class for objects."
//!
//! Key concepts, each in its own module:
//!
//! * [`id`] — 28-bit file-local object ids; 255-object logical segments;
//!   store-wide global ids.
//! * [`pool`] — pools define segment size, object layout, location, and
//!   creation policy; the extensibility mechanism. Built-ins:
//!   [`SmallPool`], [`PackedPool`], [`HugePool`].
//! * [`segment`] — physical segments, the unit of disk transfer.
//! * [`buffer`] — the extensible buffering mechanism; [`LruBuffer`]
//!   implements LRU with the paper's reservation optimization, and
//!   [`ClockBuffer`] / [`S3FifoBuffer`] are the alternative organizations
//!   the paper invites (clock and scan-resistant S3-FIFO).
//! * [`table`] — compact multi-level hash location tables, permanently
//!   cached after first access.
//! * [`mod@file`] — a Mneme file combining all of the above.
//! * [`store`] — multiple open files under one global id space.
//! * [`refs`] — inter-object references (linked structures, chunked
//!   objects).
//! * [`recovery`] — redo-log + checkpoint durability (the paper's
//!   future-work item, validating that recovery services do not change the
//!   performance picture).
//! * [`gc`] — offline compaction reclaiming tombstoned objects.
//!
//! All I/O flows through [`poir_storage`], so every experiment measures the
//! same simulated platform as the baseline B-tree package.

pub mod buffer;
pub mod bytes;
pub mod clock_buffer;
pub mod error;
pub mod file;
pub mod gc;
pub mod huge_pool;
pub mod id;
pub mod packed_pool;
pub mod pool;
pub mod recovery;
pub mod refs;
pub mod s3fifo;
pub mod segment;
pub mod small_pool;
pub mod store;
pub mod table;
pub mod validate;

pub use buffer::{Buffer, BufferPolicy, BufferStats, LruBuffer};
pub use bytes::ObjectBytes;
pub use clock_buffer::ClockBuffer;
pub use error::{MnemeError, Result};
pub use file::{FileStats, MnemeFile, PoolStats};
pub use huge_pool::HugePool;
pub use id::{FileSlot, GlobalId, LogicalSegment, ObjectId, PoolId, SLOTS_PER_SEGMENT};
pub use packed_pool::PackedPool;
pub use pool::{AppendOutcome, LocateResult, Pool, PoolConfig, PoolKindConfig};
pub use s3fifo::S3FifoBuffer;
pub use segment::{SegmentAddr, SegmentImage, SegmentKind};
pub use small_pool::SmallPool;
pub use store::Store;
pub use validate::ValidationReport;

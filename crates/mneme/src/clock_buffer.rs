//! A second buffer policy: the clock (second-chance) algorithm.
//!
//! The paper stresses that buffers are *extensible*: "Buffers may be
//! defined by supplying a number of standard buffer operations ... How
//! these operations are implemented determines the policies used to manage
//! the buffer" (Section 3.2), and its conclusions invite "investigat\[ing\]
//! other store and buffer organizations". [`ClockBuffer`] is exactly such
//! an alternative organization: it implements the same [`Buffer`] trait as
//! [`crate::LruBuffer`] with the classic clock approximation of LRU —
//! cheaper bookkeeping per hit (one flag set instead of a list splice) in
//! exchange for coarser recency information.
//!
//! The `ablations` bench compares the two policies' hit rates on a real
//! query-set trace.

use std::collections::HashMap;

use crate::buffer::{Buffer, BufferStats};
use crate::segment::{SegmentAddr, SegmentImage};

struct Frame {
    addr: SegmentAddr,
    image: SegmentImage,
    referenced: bool,
    pinned: bool,
}

/// Byte-capacity clock (second-chance) buffer.
pub struct ClockBuffer {
    capacity: usize,
    frames: Vec<Frame>,
    map: HashMap<SegmentAddr, usize>,
    hand: usize,
    resident_bytes: usize,
    stats: BufferStats,
}

impl std::fmt::Debug for ClockBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClockBuffer")
            .field("capacity", &self.capacity)
            .field("resident_segments", &self.frames.len())
            .field("resident_bytes", &self.resident_bytes)
            .finish()
    }
}

impl ClockBuffer {
    /// Creates a buffer of `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        ClockBuffer {
            capacity,
            frames: Vec::new(),
            map: HashMap::new(),
            hand: 0,
            resident_bytes: 0,
            stats: BufferStats::default(),
        }
    }

    fn remove_frame(&mut self, idx: usize) -> (SegmentAddr, SegmentImage) {
        let frame = self.frames.swap_remove(idx);
        self.map.remove(&frame.addr);
        self.resident_bytes -= frame.image.len();
        // The frame that swapped into `idx` needs its map entry fixed.
        if idx < self.frames.len() {
            let moved = self.frames[idx].addr;
            self.map.insert(moved, idx);
        }
        if self.hand >= self.frames.len() {
            self.hand = 0;
        }
        (frame.addr, frame.image)
    }

    /// Sweeps the clock hand, evicting unreferenced, unpinned frames until
    /// within capacity. `protect` (the newcomer) is evicted only as a last
    /// resort.
    fn enforce_capacity(&mut self, protect: SegmentAddr) -> Vec<(SegmentAddr, SegmentImage)> {
        let mut evicted = Vec::new();
        let mut sweeps_without_progress = 0usize;
        while self.resident_bytes > self.capacity && !self.frames.is_empty() {
            if sweeps_without_progress > 2 * self.frames.len() {
                // Everything else is pinned: bounce the newcomer if allowed.
                if let Some(&idx) = self.map.get(&protect) {
                    if !self.frames[idx].pinned {
                        evicted.push(self.remove_frame(idx));
                    }
                }
                break;
            }
            let idx = self.hand;
            let frame = &mut self.frames[idx];
            if frame.pinned || frame.addr == protect {
                self.hand = (self.hand + 1) % self.frames.len();
                sweeps_without_progress += 1;
                continue;
            }
            if frame.referenced {
                // Second chance.
                frame.referenced = false;
                self.hand = (self.hand + 1) % self.frames.len();
                sweeps_without_progress += 1;
                continue;
            }
            evicted.push(self.remove_frame(idx));
            sweeps_without_progress = 0;
        }
        evicted
    }
}

impl Buffer for ClockBuffer {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn lookup(&mut self, addr: SegmentAddr) -> Option<&mut SegmentImage> {
        let idx = *self.map.get(&addr)?;
        self.frames[idx].referenced = true;
        Some(&mut self.frames[idx].image)
    }

    fn touch(&mut self, addr: SegmentAddr) -> bool {
        match self.map.get(&addr) {
            Some(&idx) => {
                self.frames[idx].referenced = true;
                true
            }
            None => false,
        }
    }

    fn probe(&self, addr: SegmentAddr) -> Option<&SegmentImage> {
        let idx = *self.map.get(&addr)?;
        Some(&self.frames[idx].image)
    }

    fn is_resident(&self, addr: SegmentAddr) -> bool {
        self.map.contains_key(&addr)
    }

    fn insert(
        &mut self,
        addr: SegmentAddr,
        image: SegmentImage,
    ) -> Vec<(SegmentAddr, SegmentImage)> {
        if let Some(&idx) = self.map.get(&addr) {
            let old_len = self.frames[idx].image.len();
            self.resident_bytes = self.resident_bytes - old_len + image.len();
            self.frames[idx].image = image;
            self.frames[idx].referenced = true;
            return self.enforce_capacity(addr);
        }
        self.resident_bytes += image.len();
        self.map.insert(addr, self.frames.len());
        self.frames.push(Frame { addr, image, referenced: true, pinned: false });
        self.enforce_capacity(addr)
    }

    fn remove(&mut self, addr: SegmentAddr) -> Option<SegmentImage> {
        let idx = *self.map.get(&addr)?;
        Some(self.remove_frame(idx).1)
    }

    fn reserve(&mut self, addr: SegmentAddr) -> bool {
        match self.map.get(&addr) {
            Some(&idx) => {
                self.frames[idx].pinned = true;
                true
            }
            None => false,
        }
    }

    fn release_reservations(&mut self) {
        for f in &mut self.frames {
            f.pinned = false;
        }
    }

    fn drain(&mut self) -> Vec<(SegmentAddr, SegmentImage)> {
        let mut out = Vec::with_capacity(self.frames.len());
        while !self.frames.is_empty() {
            out.push(self.remove_frame(0));
        }
        out
    }

    fn record_ref(&mut self, hit: bool) {
        self.stats.refs += 1;
        if hit {
            self.stats.hits += 1;
        }
    }

    fn stats(&self) -> BufferStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = BufferStats::default();
    }

    fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(offset: u64) -> SegmentAddr {
        SegmentAddr { offset, len: 0 }
    }

    fn image(len: usize, fill: u8) -> SegmentImage {
        SegmentImage::from_disk(vec![fill; len])
    }

    #[test]
    fn basic_residency_and_lookup() {
        let mut b = ClockBuffer::new(100);
        b.insert(addr(0), image(10, 1));
        assert!(b.lookup(addr(0)).is_some());
        assert!(b.lookup(addr(1)).is_none());
        assert_eq!(b.resident_bytes(), 10);
        assert_eq!(b.capacity(), 100);
    }

    #[test]
    fn second_chance_protects_referenced_frames() {
        let mut b = ClockBuffer::new(30);
        b.insert(addr(0), image(10, 0));
        b.insert(addr(1), image(10, 1));
        b.insert(addr(2), image(10, 2));
        // Reference 0 and 2; 1 is the eviction candidate.
        b.lookup(addr(0));
        b.lookup(addr(2));
        // Frame 1's referenced bit was set by insertion; sweep clears bits,
        // so insert twice to force a real choice.
        let evicted = b.insert(addr(3), image(10, 3));
        assert_eq!(evicted.len(), 1);
        // Whichever was evicted, recently re-referenced frames survive at
        // least one sweep: 0 or 2 may lose their bit but frame 1 (never
        // re-referenced after insert) must go first or second.
        let survivors: Vec<bool> = [0u64, 1, 2].iter().map(|&o| b.is_resident(addr(o))).collect();
        assert_eq!(survivors.iter().filter(|&&s| s).count(), 2);
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut b = ClockBuffer::new(0);
        let evicted = b.insert(addr(0), image(10, 0));
        assert_eq!(evicted.len(), 1);
        assert!(!b.is_resident(addr(0)));
        assert_eq!(b.resident_bytes(), 0);
    }

    #[test]
    fn pinned_frames_survive() {
        let mut b = ClockBuffer::new(20);
        b.insert(addr(0), image(10, 0));
        b.insert(addr(1), image(10, 1));
        assert!(b.reserve(addr(0)));
        let evicted = b.insert(addr(2), image(10, 2));
        assert!(b.is_resident(addr(0)), "pinned frame must survive");
        assert!(!evicted.iter().any(|(a, _)| *a == addr(0)));
        b.release_reservations();
        // Now it can be evicted again.
        for i in 3..10 {
            b.insert(addr(i), image(10, i as u8));
        }
        assert!(b.resident_bytes() <= 20);
    }

    #[test]
    fn drain_and_remove() {
        let mut b = ClockBuffer::new(100);
        for i in 0..5 {
            b.insert(addr(i), image(10, i as u8));
        }
        assert_eq!(b.remove(addr(2)).unwrap().bytes()[0], 2);
        assert!(b.remove(addr(2)).is_none());
        let drained = b.drain();
        assert_eq!(drained.len(), 4);
        assert_eq!(b.resident_bytes(), 0);
    }

    #[test]
    fn stats_accumulate() {
        let mut b = ClockBuffer::new(10);
        b.record_ref(true);
        b.record_ref(false);
        assert_eq!(b.stats(), BufferStats { refs: 2, hits: 1 });
        b.reset_stats();
        assert_eq!(b.stats().refs, 0);
    }

    #[test]
    fn works_as_a_mneme_pool_buffer() {
        use crate::pool::{PoolConfig, PoolKindConfig};
        use crate::{MnemeFile, PoolId};
        let dev = poir_storage::Device::with_defaults();
        let handle = dev.create_file();
        let mut ids = Vec::new();
        {
            let mut f = MnemeFile::create(
                handle.clone(),
                &[PoolConfig {
                    id: PoolId(0),
                    kind: PoolKindConfig::SegmentPerObject { embedded_refs: false },
                }],
                8,
            )
            .unwrap();
            for i in 0..10u32 {
                ids.push(f.create_object(PoolId(0), &vec![i as u8; 5000]).unwrap());
            }
            f.flush().unwrap();
        }
        let mut f = MnemeFile::open(handle).unwrap();
        f.attach_buffer(PoolId(0), Box::new(ClockBuffer::new(1 << 20))).unwrap();
        for _ in 0..3 {
            for id in &ids {
                f.get(*id).unwrap();
            }
        }
        let stats = f.buffer_stats(PoolId(0)).unwrap();
        assert_eq!(stats.refs, 30);
        assert_eq!(stats.hits, 20, "all repeat passes hit under clock too");
    }
}

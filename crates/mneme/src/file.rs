//! A Mneme file: objects, pools, physical segments, and location tables.
//!
//! "Objects are grouped into files supported by the operating system. An
//! object's identifier is unique only within the object's file." (Section
//! 3.2). A [`MnemeFile`] owns:
//!
//! * the pool set it was created with (persisted in the header),
//! * one segment buffer per pool ("Each object pool was attached to a
//!   separate buffer, allowing the global buffer space to be divided
//!   between the object pools", Section 3.3),
//! * the multi-level location tables ([`crate::table`]), loaded lazily and
//!   then retained — the paper's permanently-cached auxiliary tables,
//! * the id allocator handing out logical segments to pools.
//!
//! ## On-disk layout
//!
//! ```text
//! [ header block (8 KB) ][ physical segments ... ][ directory ][ buckets ]
//! ```
//!
//! The header records where the data region ends and where the serialized
//! location tables begin. Tables are rewritten at every [`MnemeFile::flush`];
//! between flushes the on-disk tables may be stale (see [`crate::recovery`]
//! for the redo-log extension that closes this window).
//!
//! ## Concurrency
//!
//! The read path ([`MnemeFile::get`], [`MnemeFile::get_batch`],
//! [`MnemeFile::prefetch`], [`MnemeFile::reserve`], …) takes `&self`: the
//! location tables sit behind a reader-writer lock (write-acquired only for
//! lazy bucket loads) and each pool's buffer and building segment behind its
//! own mutex, so concurrent readers of *different* pools never contend.
//! Lock order is always meta before pool, and no read-path operation holds
//! two pool locks at once, so the read path cannot deadlock. Mutations
//! (create/update/delete/flush) keep `&mut self` and access the same state
//! through `get_mut`, paying no locking cost.
//!
//! ```
//! use poir_mneme::{MnemeFile, PoolConfig, PoolId, PoolKindConfig};
//! use poir_storage::Device;
//!
//! let device = Device::with_defaults();
//! let pools = [PoolConfig {
//!     id: PoolId(0),
//!     kind: PoolKindConfig::Packed { segment_size: 8192 },
//! }];
//! let mut file = MnemeFile::create(device.create_file(), &pools, 16).unwrap();
//! let id = file.create_object(PoolId(0), b"a chunk of contiguous bytes").unwrap();
//! assert_eq!(file.get(id).unwrap(), b"a chunk of contiguous bytes");
//! file.flush().unwrap();
//! ```

use std::collections::BTreeMap;
use std::time::Duration;

use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use poir_storage::FileHandle;
use poir_telemetry::trace::{LOCK_META_READ, LOCK_META_WRITE, LOCK_POOL};
use poir_telemetry::{PoolEvent, Recorder, TraceOp};

use crate::buffer::{Buffer, BufferStats, LruBuffer};
use crate::bytes::ObjectBytes;
use crate::error::{MnemeError, Result};
use crate::id::{LogicalSegment, ObjectId, PoolId, MAX_LOGICAL_SEGMENTS, SLOTS_PER_SEGMENT};
use crate::pool::{AppendOutcome, LocateResult, Pool, PoolConfig, SEGMENT_HEADER_LEN};
use crate::segment::{SegmentAddr, SegmentImage, SegmentKind};
use crate::table::LocationTable;

const MAGIC: &[u8; 4] = b"MNEM";
const VERSION: u16 = 1;
/// The header occupies one full device block so data segments start aligned.
const HEADER_LEN: u64 = 8192;
/// Byte offset where pool configurations begin within the header.
const POOLS_OFFSET: usize = 40;
/// Bytes per on-disk directory entry: bucket offset (u64) + length (u32).
const DIR_ENTRY_LEN: usize = 12;

struct PoolState {
    pool: Box<dyn Pool>,
    buffer: Box<dyn Buffer>,
    current_lseg: Option<LogicalSegment>,
    next_slot: u32,
    building: Option<(SegmentAddr, SegmentImage)>,
}

/// Table-and-allocator state shared by every pool, guarded as one unit.
struct Meta {
    table: LocationTable,
    /// Per-bucket on-disk location `(offset, len)`; empty lengths mean the
    /// bucket has never been written.
    directory: Vec<(u64, u32)>,
    data_end: u64,
    next_lseg: u32,
    /// Whether there are logical changes not yet committed by a flush.
    dirty: bool,
    /// Bytes occupied by the serialized location tables at the last flush —
    /// the "auxiliary table" size (about 512 Kbytes for TIPSTER).
    aux_bytes: u64,
    /// Payload bytes orphaned by relocating updates and deletions.
    garbage_bytes: u64,
}

/// One Mneme file holding objects in pools.
pub struct MnemeFile {
    handle: FileHandle,
    configs: Vec<PoolConfig>,
    pools: Vec<Mutex<PoolState>>,
    meta: RwLock<Meta>,
    /// Telemetry recorder for per-pool buffer events (disabled by default).
    recorder: Recorder,
}

impl std::fmt::Debug for MnemeFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("MnemeFile");
        d.field("pools", &self.pools.len());
        if let Some(meta) = self.meta.try_read() {
            d.field("data_end", &meta.data_end).field("next_lseg", &meta.next_lseg);
        }
        d.finish_non_exhaustive()
    }
}

fn load_bucket_into(handle: &FileHandle, meta: &mut Meta, bucket: u32) -> Result<()> {
    let (offset, len) = meta.directory[bucket as usize];
    if len == 0 {
        // Never written: install an empty bucket.
        meta.table.load_bucket(bucket, &0u32.to_le_bytes())?;
    } else {
        let bytes = handle.read(offset, len as usize)?;
        meta.table.load_bucket(bucket, &bytes)?;
    }
    Ok(())
}

fn ensure_bucket_loaded(handle: &FileHandle, meta: &mut Meta, lseg: LogicalSegment) -> Result<()> {
    let bucket = meta.table.bucket_of(lseg);
    if meta.table.is_loaded(bucket) {
        return Ok(());
    }
    load_bucket_into(handle, meta, bucket)
}

/// Reads every not-yet-resident location bucket into memory.
fn load_all_buckets(handle: &FileHandle, meta: &mut Meta) -> Result<()> {
    for bucket in meta.table.unloaded_buckets() {
        load_bucket_into(handle, meta, bucket)?;
    }
    Ok(())
}

/// Allocates file space for a new physical segment. Segments append at
/// `data_end`; flushed location tables live *before* `data_end` (the table
/// region is copy-on-write — each flush writes a fresh region and bumps
/// `data_end` past it), so appends never clobber valid tables.
fn allocate_segment(meta: &mut Meta, len: usize) -> SegmentAddr {
    let addr = SegmentAddr { offset: meta.data_end, len: len as u32 };
    meta.data_end += len as u64;
    addr
}

/// Allocates the next object id for a pool, starting a new logical segment
/// when the current one is exhausted.
fn allocate_id(handle: &FileHandle, meta: &mut Meta, ps: &mut PoolState) -> Result<ObjectId> {
    if ps.current_lseg.is_none() || ps.next_slot >= SLOTS_PER_SEGMENT {
        if meta.next_lseg >= MAX_LOGICAL_SEGMENTS {
            return Err(MnemeError::IdSpaceExhausted);
        }
        let lseg = LogicalSegment(meta.next_lseg);
        meta.next_lseg += 1;
        ensure_bucket_loaded(handle, meta, lseg)?;
        meta.table.entry_mut(lseg, ps.pool.id())?;
        ps.current_lseg = Some(lseg);
        ps.next_slot = 0;
    }
    let id = ObjectId::new(ps.current_lseg.unwrap(), ps.next_slot as u8);
    ps.next_slot += 1;
    Ok(id)
}

fn save_segment(handle: &FileHandle, addr: SegmentAddr, image: &mut SegmentImage) -> Result<()> {
    debug_assert_eq!(image.len(), addr.len as usize);
    handle.write(addr.offset, image.bytes())?;
    image.mark_clean();
    Ok(())
}

fn save_evicted(handle: &FileHandle, evicted: Vec<(SegmentAddr, SegmentImage)>) -> Result<()> {
    for (addr, mut image) in evicted {
        if image.is_dirty() {
            save_segment(handle, addr, &mut image)?;
        }
    }
    Ok(())
}

/// Mirrors a `Buffer::record_ref` call into the telemetry recorder, and
/// traces the reference against the referenced segment.
fn note_ref(recorder: &Recorder, pool: PoolId, addr: SegmentAddr, hit: bool) {
    let pool = pool.0 as usize;
    recorder.pool_incr(pool, PoolEvent::Ref);
    recorder.pool_incr(pool, if hit { PoolEvent::Hit } else { PoolEvent::Miss });
    recorder.trace(
        if hit { TraceOp::BufferHit } else { TraceOp::BufferMiss },
        addr.offset,
        Some(pool),
        addr.len as u64,
        Duration::ZERO,
    );
}

/// Records segments evicted from a pool's buffer, one trace record per
/// evicted segment so eviction ages stay derivable from the trace.
fn note_evictions(recorder: &Recorder, pool: PoolId, evicted: &[(SegmentAddr, SegmentImage)]) {
    if evicted.is_empty() {
        return;
    }
    let pool = pool.0 as usize;
    recorder.pool_add(pool, PoolEvent::Eviction, evicted.len() as u64);
    if recorder.is_tracing() {
        for (addr, _) in evicted {
            recorder.trace(
                TraceOp::BufferEvict,
                addr.offset,
                Some(pool),
                addr.len as u64,
                Duration::ZERO,
            );
        }
    }
}

/// Seals a pool's building segment: it becomes a regular segment served
/// through the pool's buffer (written out when evicted or flushed).
fn seal_building(handle: &FileHandle, recorder: &Recorder, ps: &mut PoolState) -> Result<()> {
    if let Some((addr, image)) = ps.building.take() {
        let evicted = ps.buffer.insert(addr, image);
        note_evictions(recorder, ps.pool.id(), &evicted);
        save_evicted(handle, evicted)?;
    }
    Ok(())
}

/// Runs `f` against the segment at `addr`, serving it from the pool's
/// building segment, its buffer, or the file (in that order). One object
/// reference is recorded against the pool's buffer.
fn with_segment_in<R>(
    handle: &FileHandle,
    recorder: &Recorder,
    ps: &mut PoolState,
    addr: SegmentAddr,
    f: impl FnOnce(&dyn Pool, &mut SegmentImage) -> R,
) -> Result<R> {
    let pool_id = ps.pool.id();
    if let Some((baddr, image)) = ps.building.as_mut() {
        if *baddr == addr {
            ps.buffer.record_ref(true);
            note_ref(recorder, pool_id, addr, true);
            return Ok(f(ps.pool.as_ref(), image));
        }
    }
    if ps.buffer.is_resident(addr) {
        ps.buffer.record_ref(true);
        note_ref(recorder, pool_id, addr, true);
        let image = ps.buffer.lookup(addr).expect("resident segment");
        return Ok(f(ps.pool.as_ref(), image));
    }
    ps.buffer.record_ref(false);
    note_ref(recorder, pool_id, addr, false);
    let mut image = SegmentImage::from_disk(handle.read(addr.offset, addr.len as usize)?);
    let result = f(ps.pool.as_ref(), &mut image);
    let evicted = ps.buffer.insert(addr, image);
    note_evictions(recorder, pool_id, &evicted);
    save_evicted(handle, evicted)?;
    Ok(result)
}

/// Read-only variant of [`with_segment_in`]. On a buffer hit the promotion
/// bookkeeping happens in one O(1) [`Buffer::touch`] call, after which the
/// image is borrowed *shared* via [`Buffer::probe`] for the duration of
/// `f` — the exclusive part of the access no longer extends across the
/// whole segment read, and the buffer's replacement state is not mutably
/// borrowed while the caller extracts bytes.
fn with_segment_read<R>(
    handle: &FileHandle,
    recorder: &Recorder,
    ps: &mut PoolState,
    addr: SegmentAddr,
    f: impl FnOnce(&dyn Pool, &SegmentImage) -> R,
) -> Result<R> {
    let pool_id = ps.pool.id();
    if let Some((baddr, image)) = ps.building.as_ref() {
        if *baddr == addr {
            ps.buffer.record_ref(true);
            note_ref(recorder, pool_id, addr, true);
            return Ok(f(ps.pool.as_ref(), image));
        }
    }
    if ps.buffer.touch(addr) {
        ps.buffer.record_ref(true);
        note_ref(recorder, pool_id, addr, true);
        let image = ps.buffer.probe(addr).expect("resident segment");
        return Ok(f(ps.pool.as_ref(), image));
    }
    ps.buffer.record_ref(false);
    note_ref(recorder, pool_id, addr, false);
    let image = SegmentImage::from_disk(handle.read(addr.offset, addr.len as usize)?);
    let result = f(ps.pool.as_ref(), &image);
    let evicted = ps.buffer.insert(addr, image);
    note_evictions(recorder, pool_id, &evicted);
    save_evicted(handle, evicted)?;
    Ok(result)
}

/// Extracts `id`'s payload from a located segment image as a zero-copy
/// shared slice of the image's buffer.
fn extract_object(pool: &dyn Pool, seg: &SegmentImage, id: ObjectId) -> Result<ObjectBytes> {
    match pool.locate(seg.bytes(), id) {
        LocateResult::Found(r) => Ok(ObjectBytes::shared(seg.share(), r.start, r.end)),
        LocateResult::Deleted => Err(MnemeError::ObjectDeleted(id)),
        LocateResult::Absent => Err(MnemeError::NoSuchObject(id)),
    }
}

/// Resolves `id` against already-loaded tables.
fn resolve_in(meta: &Meta, configs: &[PoolConfig], id: ObjectId) -> Result<(usize, SegmentAddr)> {
    let entry = meta.table.entry(id.segment())?.ok_or(MnemeError::NoSuchObject(id))?;
    let pool_id = entry.pool;
    let addr = entry.segment_for(id.slot()).ok_or(MnemeError::NoSuchObject(id))?;
    let idx =
        configs.iter().position(|c| c.id == pool_id).ok_or(MnemeError::NoSuchPool(pool_id))?;
    Ok((idx, addr))
}

/// Sorts deduplicated segment addresses and splits them into maximal runs of
/// physically adjacent segments — each run is one coalesced device read.
fn coalesce_runs(mut addrs: Vec<SegmentAddr>) -> Vec<Vec<SegmentAddr>> {
    addrs.sort_unstable();
    let mut runs: Vec<Vec<SegmentAddr>> = Vec::new();
    for addr in addrs {
        match runs.last_mut() {
            Some(run) if run.last().map(|p| p.offset + p.len as u64) == Some(addr.offset) => {
                run.push(addr);
            }
            _ => runs.push(vec![addr]),
        }
    }
    runs
}

impl MnemeFile {
    /// Creates a new Mneme file with the given pools on `handle` (which must
    /// be empty). `num_buckets` sizes the location-table directory.
    pub fn create(handle: FileHandle, configs: &[PoolConfig], num_buckets: u32) -> Result<Self> {
        assert!(!configs.is_empty(), "a Mneme file needs at least one pool");
        assert!(num_buckets > 0, "at least one directory bucket is required");
        assert!(
            POOLS_OFFSET + configs.len() * 8 <= HEADER_LEN as usize,
            "too many pools for the header block"
        );
        for (i, c) in configs.iter().enumerate() {
            for other in &configs[..i] {
                assert_ne!(c.id, other.id, "pool ids must be unique");
            }
        }
        let mut file = MnemeFile {
            handle,
            configs: configs.to_vec(),
            pools: configs.iter().map(|c| Mutex::new(Self::fresh_pool_state(c))).collect(),
            meta: RwLock::new(Meta {
                table: LocationTable::new_empty(num_buckets),
                directory: vec![(0, 0); num_buckets as usize],
                data_end: HEADER_LEN,
                next_lseg: 0,
                dirty: true,
                aux_bytes: 0,
                garbage_bytes: 0,
            }),
            recorder: Recorder::disabled(),
        };
        file.write_header()?;
        Ok(file)
    }

    /// Opens an existing Mneme file, reconstructing its pools from the
    /// header. Reads the header and directory eagerly; location-table
    /// buckets load on first touch and stay resident.
    pub fn open(handle: FileHandle) -> Result<Self> {
        let header = handle.read(0, HEADER_LEN as usize)?;
        if &header[0..4] != MAGIC {
            return Err(MnemeError::Corrupt("bad magic".into()));
        }
        let version = u16::from_le_bytes(header[4..6].try_into().unwrap());
        if version != VERSION {
            return Err(MnemeError::Corrupt(format!("unsupported version {version}")));
        }
        let num_pools = u16::from_le_bytes(header[6..8].try_into().unwrap()) as usize;
        let data_end = u64::from_le_bytes(header[8..16].try_into().unwrap());
        let next_lseg = u32::from_le_bytes(header[16..20].try_into().unwrap());
        let num_buckets = u32::from_le_bytes(header[20..24].try_into().unwrap());
        let dir_offset = u64::from_le_bytes(header[24..32].try_into().unwrap());
        let dir_len = u32::from_le_bytes(header[32..36].try_into().unwrap());
        if num_buckets == 0 || num_pools == 0 {
            return Err(MnemeError::Corrupt("empty pool set or directory".into()));
        }
        let mut configs = Vec::with_capacity(num_pools);
        for i in 0..num_pools {
            let start = POOLS_OFFSET + i * 8;
            let raw: [u8; 8] = header[start..start + 8].try_into().unwrap();
            configs.push(
                PoolConfig::decode(&raw)
                    .ok_or_else(|| MnemeError::Corrupt(format!("bad pool config {i}")))?,
            );
        }
        let directory = if dir_offset == 0 {
            vec![(0u64, 0u32); num_buckets as usize]
        } else {
            if dir_len as usize != num_buckets as usize * DIR_ENTRY_LEN {
                return Err(MnemeError::Corrupt("directory length mismatch".into()));
            }
            let raw = handle.read(dir_offset, dir_len as usize)?;
            raw.chunks_exact(DIR_ENTRY_LEN)
                .map(|c| {
                    (
                        u64::from_le_bytes(c[0..8].try_into().unwrap()),
                        u32::from_le_bytes(c[8..12].try_into().unwrap()),
                    )
                })
                .collect::<Vec<_>>()
        };
        let aux_bytes = directory_bytes(num_buckets)
            + directory.iter().map(|&(_, len)| len as u64).sum::<u64>();
        Ok(MnemeFile {
            handle,
            pools: configs.iter().map(|c| Mutex::new(Self::fresh_pool_state(c))).collect(),
            configs,
            meta: RwLock::new(Meta {
                table: LocationTable::new_unloaded(num_buckets),
                directory,
                data_end,
                next_lseg,
                dirty: false,
                aux_bytes,
                garbage_bytes: 0,
            }),
            recorder: Recorder::disabled(),
        })
    }

    /// Attaches a telemetry recorder: buffer references, evictions, and
    /// reservations are recorded per pool from now on.
    pub fn attach_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    fn fresh_pool_state(config: &PoolConfig) -> PoolState {
        PoolState {
            pool: config.build(),
            // Pools start with a zero-capacity buffer: nothing is cached
            // across accesses until a sized buffer is attached.
            buffer: Box::new(LruBuffer::new(0)),
            current_lseg: None,
            next_slot: SLOTS_PER_SEGMENT,
            building: None,
        }
    }

    /// The pool ids configured in this file, in declaration order.
    pub fn pool_ids(&self) -> Vec<PoolId> {
        self.configs.iter().map(|c| c.id).collect()
    }

    /// Largest object accepted by `pool`, if bounded.
    pub fn pool_max_object_len(&self, pool: PoolId) -> Result<Option<usize>> {
        Ok(self.pools[self.pool_index(pool)?].lock().pool.max_object_len())
    }

    fn pool_index(&self, pool: PoolId) -> Result<usize> {
        self.configs.iter().position(|c| c.id == pool).ok_or(MnemeError::NoSuchPool(pool))
    }

    /// Read-acquires the meta lock, tracing the wait as a lock-wait span.
    /// Uncontended acquisitions show up as ~0-length slices, which is the
    /// point: the trace proves the acquisition happened and measures any
    /// contention on it.
    fn lock_meta_read(&self) -> RwLockReadGuard<'_, Meta> {
        let traced = self.recorder.trace_start();
        let guard = self.meta.read();
        self.recorder.trace_end(traced, TraceOp::LockWait, LOCK_META_READ, None, 0);
        guard
    }

    /// Write-acquires the meta lock, tracing the wait.
    fn lock_meta_write(&self) -> RwLockWriteGuard<'_, Meta> {
        let traced = self.recorder.trace_start();
        let guard = self.meta.write();
        self.recorder.trace_end(traced, TraceOp::LockWait, LOCK_META_WRITE, None, 0);
        guard
    }

    /// Acquires one pool's mutex, tracing the wait against that pool.
    fn lock_pool(&self, pool_idx: usize) -> MutexGuard<'_, PoolState> {
        let traced = self.recorder.trace_start();
        let guard = self.pools[pool_idx].lock();
        self.recorder.trace_end(traced, TraceOp::LockWait, LOCK_POOL, Some(pool_idx), 0);
        guard
    }

    fn write_header(&mut self) -> Result<()> {
        self.write_header_with_directory(0, 0)
    }

    /// Writes the complete header in a single block write — the commit
    /// point of a flush. A zero `dir_offset` means "no tables on disk".
    fn write_header_with_directory(&mut self, dir_offset: u64, dir_len: u32) -> Result<()> {
        let meta = self.meta.get_mut();
        let mut header = vec![0u8; HEADER_LEN as usize];
        header[0..4].copy_from_slice(MAGIC);
        header[4..6].copy_from_slice(&VERSION.to_le_bytes());
        header[6..8].copy_from_slice(&(self.configs.len() as u16).to_le_bytes());
        header[8..16].copy_from_slice(&meta.data_end.to_le_bytes());
        header[16..20].copy_from_slice(&meta.next_lseg.to_le_bytes());
        header[20..24].copy_from_slice(&meta.table.num_buckets().to_le_bytes());
        header[24..32].copy_from_slice(&dir_offset.to_le_bytes());
        header[32..36].copy_from_slice(&dir_len.to_le_bytes());
        for (i, c) in self.configs.iter().enumerate() {
            let start = POOLS_OFFSET + i * 8;
            header[start..start + 8].copy_from_slice(&c.encode());
        }
        self.handle.write(0, &header)?;
        Ok(())
    }

    /// Creates a new object with `data` in `pool`, returning its id.
    pub fn create_object(&mut self, pool: PoolId, data: &[u8]) -> Result<ObjectId> {
        let pool_idx = self.pool_index(pool)?;
        let MnemeFile { handle, pools, meta, recorder, .. } = self;
        let meta = meta.get_mut();
        let ps = pools[pool_idx].get_mut();
        meta.dirty = true;
        if let Some(max) = ps.pool.max_object_len() {
            if data.len() > max {
                return Err(MnemeError::ObjectTooLarge { len: data.len(), max });
            }
        }
        let id = allocate_id(handle, meta, ps)?;
        let addr = loop {
            if ps.building.is_none() {
                let image = ps.pool.new_segment(id, data.len());
                let addr = allocate_segment(meta, image.len());
                ps.building = Some((addr, image));
            }
            let (addr, image) = ps.building.as_mut().unwrap();
            match ps.pool.try_append(image, id, data) {
                AppendOutcome::Appended => break *addr,
                AppendOutcome::Full => seal_building(handle, recorder, ps)?,
            }
        };
        ensure_bucket_loaded(handle, meta, id.segment())?;
        let entry = meta.table.entry_mut(id.segment(), pool)?;
        entry.push_run(id.slot(), addr);
        Ok(id)
    }

    /// The id the next [`MnemeFile::create_object`] call for `pool` will
    /// return, or `None` when a fresh logical segment will be started.
    pub(crate) fn next_id_hint(&self, pool: PoolId) -> Result<Option<ObjectId>> {
        let ps = self.pools[self.pool_index(pool)?].lock();
        Ok(match ps.current_lseg {
            Some(lseg) if ps.next_slot < SLOTS_PER_SEGMENT => {
                Some(ObjectId::new(lseg, ps.next_slot as u8))
            }
            _ => None,
        })
    }

    /// Moves `pool`'s allocation cursor so the next created object receives
    /// exactly `id`. Used by log replay ([`crate::recovery`]) to reproduce
    /// the pre-crash id sequence. The current building segment is sealed
    /// because objects before the cursor may already live on disk.
    pub(crate) fn force_allocation_cursor(&mut self, pool: PoolId, id: ObjectId) -> Result<()> {
        let pool_idx = self.pool_index(pool)?;
        let MnemeFile { handle, pools, meta, recorder, .. } = self;
        let meta = meta.get_mut();
        let ps = pools[pool_idx].get_mut();
        seal_building(handle, recorder, ps)?;
        ensure_bucket_loaded(handle, meta, id.segment())?;
        meta.table.entry_mut(id.segment(), pool)?;
        meta.next_lseg = meta.next_lseg.max(id.segment().0 + 1);
        ps.current_lseg = Some(id.segment());
        ps.next_slot = id.slot() as u32;
        Ok(())
    }

    /// Forces `id`'s payload to `data` regardless of the slot's current
    /// state — live, tombstoned, or shadowed. Used by log replay
    /// ([`crate::recovery`]): dirty-segment evictions can leak
    /// post-checkpoint tombstones into checkpointed segments, so a replayed
    /// create/update may find its object spuriously deleted. The old copy
    /// (live or tombstoned) stays dead and a fresh single-object segment
    /// shadows the slot via an exception entry, exactly like a relocating
    /// [`MnemeFile::update`].
    pub(crate) fn resurrect(&mut self, id: ObjectId, data: &[u8]) -> Result<()> {
        let MnemeFile { handle, configs, pools, meta, recorder } = self;
        let meta = meta.get_mut();
        meta.dirty = true;
        ensure_bucket_loaded(handle, meta, id.segment())?;
        let (pool_idx, addr) = resolve_in(meta, configs, id)?;
        let ps = pools[pool_idx].get_mut();
        if let Some(max) = ps.pool.max_object_len() {
            if data.len() > max {
                return Err(MnemeError::ObjectTooLarge { len: data.len(), max });
            }
        }
        let old_len = with_segment_in(handle, recorder, ps, addr, |pool, seg| {
            match pool.locate(seg.bytes(), id) {
                LocateResult::Found(r) => {
                    let len = r.len();
                    pool.delete(seg, id);
                    len
                }
                _ => 0,
            }
        })?;
        meta.garbage_bytes += old_len as u64;
        let mut image = ps.pool.new_segment(id, data.len());
        let outcome = ps.pool.try_append(&mut image, id, data);
        debug_assert_eq!(outcome, AppendOutcome::Appended, "fresh segment must accept its object");
        let new_addr = allocate_segment(meta, image.len());
        let evicted = ps.buffer.insert(new_addr, image);
        note_evictions(recorder, ps.pool.id(), &evicted);
        save_evicted(handle, evicted)?;
        let pool_id = ps.pool.id();
        ensure_bucket_loaded(handle, meta, id.segment())?;
        meta.table.entry_mut(id.segment(), pool_id)?.set_exception(id.slot(), new_addr);
        Ok(())
    }

    /// Resolves an object id to its pool and physical segment, loading the
    /// id's location bucket if needed. Takes the meta lock only; the fast
    /// path (bucket already resident) is a shared read acquisition.
    fn resolve(&self, id: ObjectId) -> Result<(usize, SegmentAddr)> {
        let traced = self.recorder.trace_start();
        let result = self.resolve_untraced(id);
        self.recorder.trace_end(traced, TraceOp::HashProbe, id.raw() as u64, None, 0);
        result
    }

    fn resolve_untraced(&self, id: ObjectId) -> Result<(usize, SegmentAddr)> {
        {
            let meta = self.lock_meta_read();
            if meta.table.is_loaded(meta.table.bucket_of(id.segment())) {
                return resolve_in(&meta, &self.configs, id);
            }
        }
        // Double-checked: reacquire exclusively and load the bucket. Another
        // thread may have loaded it between the two acquisitions; then the
        // ensure call is a no-op.
        let mut meta = self.lock_meta_write();
        ensure_bucket_loaded(&self.handle, &mut meta, id.segment())?;
        resolve_in(&meta, &self.configs, id)
    }

    /// Reads an object's payload. Building-segment and buffer-resident
    /// objects are served as zero-copy shared slices of the cached segment
    /// image; only buffer misses transfer bytes.
    pub fn get(&self, id: ObjectId) -> Result<ObjectBytes> {
        let traced = self.recorder.trace_start();
        let (pool_idx, addr) = self.resolve(id)?;
        let mut ps = self.lock_pool(pool_idx);
        let payload =
            with_segment_read(&self.handle, &self.recorder, &mut ps, addr, |pool, seg| {
                extract_object(pool, seg, id)
            })??;
        drop(ps);
        self.recorder.trace_end(
            traced,
            TraceOp::PoolFetch,
            id.raw() as u64,
            Some(pool_idx),
            payload.len() as u64,
        );
        Ok(payload)
    }

    /// Reads `len` bytes of an object's payload starting at byte `start`,
    /// transferring only the device blocks the range touches.
    ///
    /// Only pools that store one object per physical segment (the huge
    /// pool's [`SegmentKind::SingleObject`] layout) can map a payload range
    /// onto a device range; every other pool returns `Ok(None)` and the
    /// caller falls back to [`MnemeFile::get`]. Building-segment and
    /// buffer-resident objects are sliced in memory and count a buffer hit;
    /// disk-served ranges count a buffer miss but are *not* admitted to the
    /// buffer — a partial segment image could later be mistaken for the
    /// whole object.
    ///
    /// Opening reads (`start == 0`) validate the segment header and clamp
    /// to the live payload length. Continuation reads (`start > 0`) trust
    /// the resolve step and clamp to the segment's capacity, so a caller
    /// that ranges past a payload shortened by an in-place update may see
    /// stale capacity bytes — callers derive ranges from the record itself,
    /// which cannot point past its own end.
    pub fn get_range(&self, id: ObjectId, start: u64, len: usize) -> Result<Option<ObjectBytes>> {
        let traced = self.recorder.trace_start();
        let (pool_idx, addr) = self.resolve(id)?;
        let mut ps = self.lock_pool(pool_idx);
        let ps = &mut *ps;
        if ps.pool.kind() != SegmentKind::SingleObject {
            return Ok(None);
        }
        let pool_id = ps.pool.id();
        let slice_image = |pool: &dyn Pool, seg: &SegmentImage| -> Result<ObjectBytes> {
            match pool.locate(seg.bytes(), id) {
                LocateResult::Found(r) => {
                    let payload_len = r.end - r.start;
                    let from = (start.min(payload_len as u64)) as usize;
                    let to = from.saturating_add(len).min(payload_len);
                    Ok(ObjectBytes::shared(seg.share(), r.start + from, r.start + to))
                }
                LocateResult::Deleted => Err(MnemeError::ObjectDeleted(id)),
                LocateResult::Absent => Err(MnemeError::NoSuchObject(id)),
            }
        };
        let payload = if let Some((baddr, image)) = ps.building.as_ref().filter(|(b, _)| *b == addr)
        {
            debug_assert_eq!(*baddr, addr);
            ps.buffer.record_ref(true);
            note_ref(&self.recorder, pool_id, addr, true);
            slice_image(ps.pool.as_ref(), image)?
        } else if ps.buffer.touch(addr) {
            ps.buffer.record_ref(true);
            note_ref(&self.recorder, pool_id, addr, true);
            let image = ps.buffer.probe(addr).expect("resident segment");
            slice_image(ps.pool.as_ref(), image)?
        } else {
            ps.buffer.record_ref(false);
            note_ref(&self.recorder, pool_id, addr, false);
            let capacity = (addr.len as usize).saturating_sub(SEGMENT_HEADER_LEN);
            if start == 0 {
                // One contiguous read of header plus prefix; the header
                // tells us the object is live and how long it really is.
                let want = len.min(capacity);
                let bytes = self.handle.read(addr.offset, SEGMENT_HEADER_LEN + want)?;
                match ps.pool.locate(&bytes, id) {
                    LocateResult::Found(r) => {
                        let end = r.end.min(bytes.len());
                        ObjectBytes::from(bytes[r.start.min(end)..end].to_vec())
                    }
                    LocateResult::Deleted => return Err(MnemeError::ObjectDeleted(id)),
                    LocateResult::Absent => return Err(MnemeError::NoSuchObject(id)),
                }
            } else {
                let from = (start as usize).min(capacity);
                let take = len.min(capacity - from);
                if take == 0 {
                    ObjectBytes::from(Vec::new())
                } else {
                    ObjectBytes::from(
                        self.handle.read(addr.offset + (SEGMENT_HEADER_LEN + from) as u64, take)?,
                    )
                }
            }
        };
        self.recorder.trace_end(
            traced,
            TraceOp::RangeRead,
            id.raw() as u64,
            Some(pool_idx),
            payload.len() as u64,
        );
        Ok(Some(payload))
    }

    /// An upper bound on an object's payload length, read off its segment
    /// address alone — no payload I/O and no buffer accounting. `None` for
    /// shared-segment pools (an object's extent there is only known from
    /// the segment contents) and for objects still in the building segment.
    pub fn object_len_hint(&self, id: ObjectId) -> Option<u64> {
        let (pool_idx, addr) = self.resolve_untraced(id).ok()?;
        let ps = self.lock_pool(pool_idx);
        if ps.pool.kind() != SegmentKind::SingleObject
            || ps.building.as_ref().is_some_and(|(b, _)| *b == addr)
        {
            return None;
        }
        Some((addr.len as u64).saturating_sub(SEGMENT_HEADER_LEN as u64))
    }

    /// Reads many objects' payloads with coalesced device I/O.
    ///
    /// All ids are resolved up front, grouped by pool, and each pool's
    /// missing segments are sorted by physical offset and read as maximal
    /// runs of adjacent segments — one gathered system call per run
    /// ([`FileHandle::read_run`]) instead of one per segment. Every touched
    /// segment is admitted to the pool's buffer in a single pass, so later
    /// [`MnemeFile::get`] calls for the same records are buffer hits.
    ///
    /// Buffer-reference accounting mirrors the serial path per *object*
    /// access: building-segment and buffer-resident services count as hits,
    /// the first access to each batch-fetched segment counts as a miss, and
    /// further accesses to that segment within the batch count as hits (the
    /// batch holds fetched images in working memory even when the buffer
    /// admits nothing).
    pub fn get_batch(&self, ids: &[ObjectId]) -> Vec<Result<ObjectBytes>> {
        let mut located: Vec<Option<(usize, SegmentAddr)>> = Vec::with_capacity(ids.len());
        let mut out: Vec<Option<Result<ObjectBytes>>> = Vec::with_capacity(ids.len());
        for &id in ids {
            match self.resolve(id) {
                Ok(loc) => {
                    located.push(Some(loc));
                    out.push(None);
                }
                Err(e) => {
                    located.push(None);
                    out.push(Some(Err(e)));
                }
            }
        }
        for pool_idx in 0..self.pools.len() {
            let members: Vec<usize> = (0..ids.len())
                .filter(|&i| located[i].is_some_and(|(p, _)| p == pool_idx))
                .collect();
            if members.is_empty() {
                continue;
            }
            let mut ps = self.lock_pool(pool_idx);
            let ps = &mut *ps;
            let pool_id = ps.pool.id();
            // Which distinct segments need disk I/O right now?
            let mut missing: Vec<SegmentAddr> = members
                .iter()
                .map(|&i| located[i].unwrap().1)
                .filter(|&addr| {
                    ps.building.as_ref().is_none_or(|(b, _)| *b != addr)
                        && !ps.buffer.is_resident(addr)
                })
                .collect();
            missing.sort_unstable();
            missing.dedup();
            // One gathered read per run of physically adjacent segments. A
            // failed run falls back to per-segment service below, which
            // reports precise per-object errors.
            let mut fetched: BTreeMap<SegmentAddr, SegmentImage> = BTreeMap::new();
            for run in coalesce_runs(missing) {
                let lens: Vec<u32> = run.iter().map(|a| a.len).collect();
                if let Ok(buffers) = self.handle.read_run(run[0].offset, &lens) {
                    for (addr, bytes) in run.into_iter().zip(buffers) {
                        fetched.insert(addr, SegmentImage::from_disk(bytes));
                    }
                }
            }
            let mut touched: std::collections::HashSet<SegmentAddr> =
                std::collections::HashSet::new();
            for &i in &members {
                if out[i].is_some() {
                    continue;
                }
                let id = ids[i];
                let addr = located[i].unwrap().1;
                let result = if let Some((baddr, image)) =
                    ps.building.as_ref().filter(|(b, _)| *b == addr)
                {
                    debug_assert_eq!(*baddr, addr);
                    ps.buffer.record_ref(true);
                    note_ref(&self.recorder, pool_id, addr, true);
                    extract_object(ps.pool.as_ref(), image, id)
                } else if let Some(image) = fetched.get(&addr) {
                    let hit = !touched.insert(addr);
                    ps.buffer.record_ref(hit);
                    note_ref(&self.recorder, pool_id, addr, hit);
                    extract_object(ps.pool.as_ref(), image, id)
                } else if ps.buffer.touch(addr) {
                    ps.buffer.record_ref(true);
                    note_ref(&self.recorder, pool_id, addr, true);
                    let image = ps.buffer.probe(addr).expect("resident segment");
                    extract_object(ps.pool.as_ref(), image, id)
                } else {
                    // Run read failed (or raced an eviction): serial path.
                    with_segment_read(&self.handle, &self.recorder, ps, addr, |pool, seg| {
                        extract_object(pool, seg, id)
                    })
                    .and_then(|r| r)
                };
                if let Ok(payload) = &result {
                    self.recorder.trace(
                        TraceOp::PoolFetch,
                        id.raw() as u64,
                        Some(pool_idx),
                        payload.len() as u64,
                        Duration::ZERO,
                    );
                }
                out[i] = Some(result);
            }
            // Admit every fetched segment in one pass (ascending offset).
            for (addr, image) in fetched {
                let evicted = ps.buffer.insert(addr, image);
                note_evictions(&self.recorder, pool_id, &evicted);
                let _ = save_evicted(&self.handle, evicted);
            }
        }
        out.into_iter().map(|r| r.expect("every slot served")).collect()
    }

    /// Faults the segments holding `ids` into their pools' buffers using the
    /// same coalesced run reads as [`MnemeFile::get_batch`], without copying
    /// payloads or recording buffer references.
    ///
    /// Prefetching is advisory: pools whose buffer cannot retain anything
    /// (zero capacity) are skipped, unresolvable ids are ignored, and read
    /// errors are swallowed — a later [`MnemeFile::get`] surfaces them.
    /// Returns the number of segments transferred.
    pub fn prefetch(&self, ids: &[ObjectId]) -> usize {
        let mut per_pool: Vec<Vec<SegmentAddr>> = vec![Vec::new(); self.pools.len()];
        for &id in ids {
            if let Ok((pool_idx, addr)) = self.resolve(id) {
                per_pool[pool_idx].push(addr);
            }
        }
        let mut transferred = 0;
        for (pool_idx, mut addrs) in per_pool.into_iter().enumerate() {
            if addrs.is_empty() {
                continue;
            }
            let mut ps = self.lock_pool(pool_idx);
            let ps = &mut *ps;
            if ps.buffer.capacity() == 0 {
                continue;
            }
            addrs.retain(|&addr| {
                ps.building.as_ref().is_none_or(|(b, _)| *b != addr) && !ps.buffer.is_resident(addr)
            });
            addrs.sort_unstable();
            addrs.dedup();
            // Never fault in more than the buffer can retain alongside what
            // is already resident: over-filling would evict segments (this
            // batch's or hot ones) before they are used, turning one
            // coalesced read into a read *plus* a re-read at evaluation
            // time — worse than not prefetching at all.
            let mut budget = ps.buffer.capacity().saturating_sub(ps.buffer.resident_bytes());
            addrs.retain(|addr| {
                let fits = addr.len as usize <= budget;
                if fits {
                    budget -= addr.len as usize;
                }
                fits
            });
            for run in coalesce_runs(addrs) {
                let lens: Vec<u32> = run.iter().map(|a| a.len).collect();
                if let Ok(buffers) = self.handle.read_run(run[0].offset, &lens) {
                    for (addr, bytes) in run.into_iter().zip(buffers) {
                        transferred += 1;
                        let evicted = ps.buffer.insert(addr, SegmentImage::from_disk(bytes));
                        note_evictions(&self.recorder, ps.pool.id(), &evicted);
                        let _ = save_evicted(&self.handle, evicted);
                    }
                }
            }
        }
        transferred
    }

    /// Reads an object's payload length without copying the payload.
    pub fn object_len(&self, id: ObjectId) -> Result<usize> {
        let (pool_idx, addr) = self.resolve(id)?;
        let mut ps = self.lock_pool(pool_idx);
        with_segment_read(&self.handle, &self.recorder, &mut ps, addr, |pool, seg| {
            match pool.locate(seg.bytes(), id) {
                LocateResult::Found(r) => Ok(r.len()),
                LocateResult::Deleted => Err(MnemeError::ObjectDeleted(id)),
                LocateResult::Absent => Err(MnemeError::NoSuchObject(id)),
            }
        })?
    }

    /// The pool an object belongs to.
    pub fn pool_of(&self, id: ObjectId) -> Result<PoolId> {
        let (pool_idx, _) = self.resolve(id)?;
        Ok(self.configs[pool_idx].id)
    }

    /// Overwrites an object's payload. Updates happen in place when the new
    /// payload fits; otherwise the object is relocated to a fresh physical
    /// segment and recorded as a location-table exception.
    pub fn update(&mut self, id: ObjectId, data: &[u8]) -> Result<()> {
        let MnemeFile { handle, configs, pools, meta, recorder } = self;
        let meta = meta.get_mut();
        meta.dirty = true;
        ensure_bucket_loaded(handle, meta, id.segment())?;
        let (pool_idx, addr) = resolve_in(meta, configs, id)?;
        let ps = pools[pool_idx].get_mut();
        if let Some(max) = ps.pool.max_object_len() {
            if data.len() > max {
                return Err(MnemeError::ObjectTooLarge { len: data.len(), max });
            }
        }
        let in_place = with_segment_in(handle, recorder, ps, addr, |pool, seg| {
            match pool.locate(seg.bytes(), id) {
                LocateResult::Found(_) => Ok(pool.try_update_in_place(seg, id, data)),
                LocateResult::Deleted => Err(MnemeError::ObjectDeleted(id)),
                LocateResult::Absent => Err(MnemeError::NoSuchObject(id)),
            }
        })??;
        if in_place {
            return Ok(());
        }
        // Relocate: tombstone the old copy, then write a fresh single-object
        // segment and shadow the slot with an exception entry.
        let old_len = with_segment_in(handle, recorder, ps, addr, |pool, seg| {
            let len = match pool.locate(seg.bytes(), id) {
                LocateResult::Found(r) => r.len(),
                _ => 0,
            };
            pool.delete(seg, id);
            len
        })?;
        meta.garbage_bytes += old_len as u64;
        let mut image = ps.pool.new_segment(id, data.len());
        let outcome = ps.pool.try_append(&mut image, id, data);
        debug_assert_eq!(outcome, AppendOutcome::Appended, "fresh segment must accept its object");
        let new_addr = allocate_segment(meta, image.len());
        let evicted = ps.buffer.insert(new_addr, image);
        note_evictions(recorder, ps.pool.id(), &evicted);
        save_evicted(handle, evicted)?;
        let pool_id = ps.pool.id();
        ensure_bucket_loaded(handle, meta, id.segment())?;
        meta.table.entry_mut(id.segment(), pool_id)?.set_exception(id.slot(), new_addr);
        Ok(())
    }

    /// Deletes an object. The slot is tombstoned; space is reclaimed by
    /// compaction (see [`crate::gc`]).
    pub fn delete(&mut self, id: ObjectId) -> Result<()> {
        let MnemeFile { handle, configs, pools, meta, recorder } = self;
        let meta = meta.get_mut();
        meta.dirty = true;
        ensure_bucket_loaded(handle, meta, id.segment())?;
        let (pool_idx, addr) = resolve_in(meta, configs, id)?;
        let ps = pools[pool_idx].get_mut();
        let freed = with_segment_in(handle, recorder, ps, addr, |pool, seg| {
            match pool.locate(seg.bytes(), id) {
                LocateResult::Found(r) => {
                    let len = r.len();
                    pool.delete(seg, id);
                    Ok(len)
                }
                LocateResult::Deleted => Err(MnemeError::ObjectDeleted(id)),
                LocateResult::Absent => Err(MnemeError::NoSuchObject(id)),
            }
        })??;
        meta.garbage_bytes += freed as u64;
        Ok(())
    }

    /// Pins the segments of any of `ids` that are already resident, so query
    /// evaluation cannot evict them — the paper's pre-evaluation query-tree
    /// reservation pass. Non-resident objects are *not* faulted in.
    pub fn reserve(&self, ids: &[ObjectId]) {
        let meta = self.lock_meta_read();
        for &id in ids {
            // Never perform I/O here: if the bucket is unloaded the segment
            // cannot be resident either.
            if !meta.table.is_loaded(meta.table.bucket_of(id.segment())) {
                continue;
            }
            let Ok(Some(entry)) = meta.table.entry(id.segment()) else { continue };
            let pool_id = entry.pool;
            let Some(addr) = entry.segment_for(id.slot()) else { continue };
            let Ok(pool_idx) = self.pool_index(pool_id) else { continue };
            if self.lock_pool(pool_idx).buffer.reserve(addr) {
                self.recorder.pool_incr(pool_id.0 as usize, PoolEvent::Reservation);
            }
        }
    }

    /// Releases every reservation placed by [`MnemeFile::reserve`].
    pub fn release_reservations(&self) {
        for pool_idx in 0..self.pools.len() {
            self.lock_pool(pool_idx).buffer.release_reservations();
        }
    }

    /// Attaches a buffer to a pool, replacing (and saving the contents of)
    /// the previous one.
    pub fn attach_buffer(&mut self, pool: PoolId, buffer: Box<dyn Buffer>) -> Result<()> {
        let pool_idx = self.pool_index(pool)?;
        let ps = self.pools[pool_idx].get_mut();
        let mut old = std::mem::replace(&mut ps.buffer, buffer);
        save_evicted(&self.handle, old.drain())?;
        Ok(())
    }

    /// Reference/hit counters of a pool's buffer (Table 6).
    pub fn buffer_stats(&self, pool: PoolId) -> Result<BufferStats> {
        Ok(self.pools[self.pool_index(pool)?].lock().buffer.stats())
    }

    /// Resets every pool buffer's counters.
    pub fn reset_buffer_stats(&self) {
        for ps in &self.pools {
            ps.lock().buffer.reset_stats();
        }
    }

    /// Writes all dirty state (building segments, buffered segments,
    /// location tables, header) to the file and truncates it to its exact
    /// size. Buffers are cold afterwards.
    pub fn flush(&mut self) -> Result<()> {
        if !self.meta.get_mut().dirty {
            return Ok(());
        }
        for pool_idx in 0..self.pools.len() {
            // Seal building segments by writing them directly; they stay
            // retrievable through their registered location runs.
            let ps = self.pools[pool_idx].get_mut();
            if let Some((addr, mut image)) = ps.building.take() {
                save_segment(&self.handle, addr, &mut image)?;
            }
            let drained = ps.buffer.drain();
            save_evicted(&self.handle, drained)?;
        }
        // Every bucket must be resident to rewrite the tables. The table
        // region is copy-on-write: it is appended after the data and
        // `data_end` moves past it, so the previous generation of tables
        // stays readable until this flush's header write commits the new
        // one (crashes mid-flush recover against the old generation).
        let meta = self.meta.get_mut();
        load_all_buckets(&self.handle, meta)?;
        let num_buckets = meta.table.num_buckets();
        let dir_offset = meta.data_end;
        let dir_len = num_buckets as usize * DIR_ENTRY_LEN;
        let mut bucket_blobs = Vec::with_capacity(num_buckets as usize);
        let mut cursor = dir_offset + dir_len as u64;
        let mut directory_bytes_out = Vec::with_capacity(dir_len);
        for b in 0..num_buckets {
            let blob = meta.table.serialize_bucket(b);
            directory_bytes_out.extend_from_slice(&cursor.to_le_bytes());
            directory_bytes_out.extend_from_slice(&(blob.len() as u32).to_le_bytes());
            meta.directory[b as usize] = (cursor, blob.len() as u32);
            cursor += blob.len() as u64;
            bucket_blobs.push(blob);
        }
        self.handle.write(dir_offset, &directory_bytes_out)?;
        let mut offset = dir_offset + dir_len as u64;
        for blob in &bucket_blobs {
            self.handle.write(offset, blob)?;
            offset += blob.len() as u64;
        }
        meta.aux_bytes = offset - dir_offset;
        self.handle.truncate(offset)?;
        // Future appends go after the tables; commit via one header write.
        meta.data_end = offset;
        self.write_header_with_directory(dir_offset, dir_len as u32)?;
        self.handle.sync()?;
        self.meta.get_mut().dirty = false;
        Ok(())
    }

    /// Total size of the file in bytes (Table 1's "Mneme Size" column).
    pub fn file_size(&self) -> Result<u64> {
        Ok(self.handle.len()?)
    }

    /// Bytes of serialized location tables at the last flush.
    pub fn aux_table_bytes(&self) -> u64 {
        self.meta.read().aux_bytes
    }

    /// Payload bytes orphaned by updates/deletes since open.
    pub fn garbage_bytes(&self) -> u64 {
        self.meta.read().garbage_bytes
    }

    /// The storage handle backing this file.
    pub fn handle(&self) -> &FileHandle {
        &self.handle
    }

    /// Summary statistics of the file's current state.
    pub fn stats(&mut self) -> Result<FileStats> {
        let inventory = self.segment_inventory()?;
        let mut per_pool: Vec<PoolStats> = self
            .pool_ids()
            .into_iter()
            .map(|id| PoolStats { pool: id, segments: 0, live_objects: 0, payload_bytes: 0 })
            .collect();
        for (pool_id, addr) in inventory {
            let live = self.segment_live_objects(pool_id, addr)?;
            if let Some(ps) = per_pool.iter_mut().find(|p| p.pool == pool_id) {
                ps.segments += 1;
                ps.live_objects += live.len() as u64;
                ps.payload_bytes += live.iter().map(|(_, r)| r.len() as u64).sum::<u64>();
            }
        }
        let meta = self.meta.get_mut();
        Ok(FileStats {
            file_bytes: self.handle.len()?,
            aux_table_bytes: meta.aux_bytes,
            garbage_bytes: meta.garbage_bytes,
            pools: per_pool,
        })
    }

    /// Outgoing references of an object, as extracted by its pool.
    pub fn references_of(&self, id: ObjectId) -> Result<Vec<u64>> {
        let (pool_idx, addr) = self.resolve(id)?;
        let mut ps = self.lock_pool(pool_idx);
        with_segment_read(&self.handle, &self.recorder, &mut ps, addr, |pool, seg| {
            match pool.locate(seg.bytes(), id) {
                LocateResult::Found(r) => Ok(pool.references(&seg.bytes()[r])),
                LocateResult::Deleted => Err(MnemeError::ObjectDeleted(id)),
                LocateResult::Absent => Err(MnemeError::NoSuchObject(id)),
            }
        })?
    }

    /// Enumerates the ids of every live object. Loads all buckets and scans
    /// every physical segment — intended for validation and GC, not queries.
    pub fn live_object_ids(&mut self) -> Result<Vec<ObjectId>> {
        let segments = self.segment_inventory()?;
        let mut out = Vec::new();
        for (pool_id, addr) in segments {
            let pool_idx = self.pool_index(pool_id)?;
            let ps = self.pools[pool_idx].get_mut();
            let mut ids =
                with_segment_read(&self.handle, &self.recorder, ps, addr, |pool, seg| {
                    pool.live_objects(seg.bytes()).into_iter().map(|(id, _)| id).collect::<Vec<_>>()
                })?;
            // An object relocated by update() is live in its new segment and
            // tombstoned in the old, so no dedup is needed — but an object
            // whose exception points elsewhere must not be double-counted if
            // the old copy was not tombstoned. delete()/update() always
            // tombstone, so simply collect.
            out.append(&mut ids);
        }
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }
}

impl MnemeFile {
    /// Every `(pool, segment)` pair referenced by the location tables,
    /// deduplicated. Loads all buckets.
    pub(crate) fn segment_inventory(&mut self) -> Result<Vec<(PoolId, SegmentAddr)>> {
        let meta = self.meta.get_mut();
        load_all_buckets(&self.handle, meta)?;
        let mut out = Vec::new();
        for lseg in meta.table.loaded_lsegs() {
            let entry = meta.table.entry(lseg)?.expect("listed lseg exists");
            for addr in entry.segments() {
                out.push((entry.pool, addr));
            }
        }
        out.sort_unstable_by_key(|&(pool, addr)| (addr, pool));
        out.dedup();
        Ok(out)
    }

    /// The segment-kind byte of the segment at `addr`, straight from disk.
    pub(crate) fn segment_header_kind(
        &mut self,
        addr: SegmentAddr,
    ) -> Result<Option<crate::segment::SegmentKind>> {
        let byte = self.handle.read(addr.offset, 1)?;
        Ok(crate::segment::SegmentKind::from_u8(byte[0]))
    }

    /// The segment kind pool `pool` writes.
    pub(crate) fn pool_kind(&self, pool: PoolId) -> Result<crate::segment::SegmentKind> {
        let config =
            self.configs.iter().find(|c| c.id == pool).ok_or(MnemeError::NoSuchPool(pool))?;
        Ok(crate::validate::kind_of_config(&config.kind))
    }

    /// Live objects of the segment at `addr` (which belongs to `pool`).
    pub(crate) fn segment_live_objects(
        &mut self,
        pool: PoolId,
        addr: SegmentAddr,
    ) -> Result<Vec<(ObjectId, std::ops::Range<usize>)>> {
        let pool_idx = self.pool_index(pool)?;
        let ps = self.pools[pool_idx].get_mut();
        with_segment_read(&self.handle, &self.recorder, ps, addr, |p, seg| {
            p.live_objects(seg.bytes())
        })
    }

    /// Where the tables place `id`, or `None` when unmapped.
    pub(crate) fn locate_for_validation(&mut self, id: ObjectId) -> Result<Option<SegmentAddr>> {
        let meta = self.meta.get_mut();
        ensure_bucket_loaded(&self.handle, meta, id.segment())?;
        Ok(meta.table.entry(id.segment())?.and_then(|e| e.segment_for(id.slot())))
    }

    /// Looks `id` up inside the specific segment at `addr`.
    pub(crate) fn locate_in_segment(
        &mut self,
        pool: PoolId,
        addr: SegmentAddr,
        id: ObjectId,
    ) -> Result<LocateResult> {
        let pool_idx = self.pool_index(pool)?;
        let ps = self.pools[pool_idx].get_mut();
        with_segment_read(&self.handle, &self.recorder, ps, addr, |p, seg| {
            p.locate(seg.bytes(), id)
        })
    }

    /// The head object of every run and every exception across all loaded
    /// logical segments — ids guaranteed to have been allocated.
    pub(crate) fn run_heads(&mut self) -> Result<Vec<(ObjectId, SegmentAddr)>> {
        let meta = self.meta.get_mut();
        load_all_buckets(&self.handle, meta)?;
        let mut out = Vec::new();
        for lseg in meta.table.loaded_lsegs() {
            let entry = meta.table.entry(lseg)?.expect("listed lseg exists");
            for &(slot, addr) in entry.runs().iter().chain(entry.exceptions()) {
                out.push((ObjectId::new(lseg, slot), addr));
            }
        }
        Ok(out)
    }
}

/// Bytes consumed by an on-disk directory of `num_buckets` entries.
fn directory_bytes(num_buckets: u32) -> u64 {
    num_buckets as u64 * DIR_ENTRY_LEN as u64
}

/// Per-pool occupancy summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// The pool.
    pub pool: PoolId,
    /// Physical segments the pool owns.
    pub segments: usize,
    /// Live objects in those segments.
    pub live_objects: u64,
    /// Total live payload bytes.
    pub payload_bytes: u64,
}

/// Whole-file occupancy summary (see [`MnemeFile::stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileStats {
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// Bytes of serialized location tables at the last flush.
    pub aux_table_bytes: u64,
    /// Payload bytes orphaned by updates/deletes since open.
    pub garbage_bytes: u64,
    /// Per-pool breakdown, in declaration order.
    pub pools: Vec<PoolStats>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use poir_storage::Device;

    fn packed_file(segment_size: u32) -> MnemeFile {
        let device = Device::with_defaults();
        MnemeFile::create(
            device.create_file(),
            &[PoolConfig {
                id: PoolId(0),
                kind: crate::pool::PoolKindConfig::Packed { segment_size },
            }],
            8,
        )
        .unwrap()
    }

    #[test]
    fn file_is_sync_for_shared_readers() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<MnemeFile>();
    }

    #[test]
    fn get_batch_matches_serial_gets() {
        let mut file = packed_file(512);
        let payloads: Vec<Vec<u8>> = (0..60u8).map(|i| vec![i; 40 + i as usize]).collect();
        let ids: Vec<ObjectId> =
            payloads.iter().map(|p| file.create_object(PoolId(0), p).unwrap()).collect();
        file.flush().unwrap();
        file.attach_buffer(PoolId(0), Box::new(LruBuffer::new(16 * 1024))).unwrap();
        // Batch in a scrambled order, including duplicates.
        let mut order: Vec<usize> = (0..ids.len()).rev().collect();
        order.extend([3, 3, 17]);
        let batch_ids: Vec<ObjectId> = order.iter().map(|&i| ids[i]).collect();
        let batch = file.get_batch(&batch_ids);
        for (slot, &i) in order.iter().enumerate() {
            assert_eq!(batch[slot].as_ref().unwrap(), &payloads[i], "object {i}");
        }
        // And serial reads agree.
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(file.get(*id).unwrap(), payloads[i]);
        }
    }

    #[test]
    fn get_batch_coalesces_adjacent_segments_into_one_access() {
        let mut file = packed_file(512);
        // Enough objects to span several physically adjacent 512-byte
        // segments, written contiguously by construction.
        let payloads: Vec<Vec<u8>> = (0..40u8).map(|i| vec![i; 100]).collect();
        let ids: Vec<ObjectId> =
            payloads.iter().map(|p| file.create_object(PoolId(0), p).unwrap()).collect();
        file.flush().unwrap();
        file.attach_buffer(PoolId(0), Box::new(LruBuffer::new(64 * 1024))).unwrap();
        let device = file.handle().device().clone();
        device.chill();
        let before = device.stats().snapshot();
        let results = file.get_batch(&ids);
        assert!(results.iter().all(|r| r.is_ok()));
        let batch_delta = device.stats().snapshot().since(&before);
        // All data segments are adjacent: the whole batch needs very few
        // gathered reads (bucket loads were done before the snapshot by
        // flush's load_all_buckets).
        assert!(
            batch_delta.file_accesses <= 2,
            "expected coalesced runs, got {} accesses",
            batch_delta.file_accesses
        );
        // Serial baseline on a cold twin: one access per segment.
        let mut serial = packed_file(512);
        let ids2: Vec<ObjectId> =
            payloads.iter().map(|p| serial.create_object(PoolId(0), p).unwrap()).collect();
        serial.flush().unwrap();
        serial.attach_buffer(PoolId(0), Box::new(LruBuffer::new(64 * 1024))).unwrap();
        let dev2 = serial.handle().device().clone();
        dev2.chill();
        let before2 = dev2.stats().snapshot();
        for id in &ids2 {
            serial.get(*id).unwrap();
        }
        let serial_delta = dev2.stats().snapshot().since(&before2);
        assert!(
            batch_delta.file_accesses < serial_delta.file_accesses,
            "batch {} accesses should beat serial {}",
            batch_delta.file_accesses,
            serial_delta.file_accesses
        );
    }

    #[test]
    fn get_batch_reports_per_object_errors() {
        let mut file = packed_file(512);
        let good = file.create_object(PoolId(0), b"alive").unwrap();
        let doomed = file.create_object(PoolId(0), b"doomed").unwrap();
        file.delete(doomed).unwrap();
        let bogus = ObjectId::new(LogicalSegment(7), 9);
        let results = file.get_batch(&[good, doomed, bogus]);
        assert_eq!(results[0].as_ref().unwrap(), b"alive");
        assert!(matches!(results[1], Err(MnemeError::ObjectDeleted(_))));
        assert!(matches!(results[2], Err(MnemeError::NoSuchObject(_))));
    }

    #[test]
    fn prefetch_makes_later_gets_buffer_hits() {
        let mut file = packed_file(512);
        let payloads: Vec<Vec<u8>> = (0..30u8).map(|i| vec![i; 90]).collect();
        let ids: Vec<ObjectId> =
            payloads.iter().map(|p| file.create_object(PoolId(0), p).unwrap()).collect();
        file.flush().unwrap();
        file.attach_buffer(PoolId(0), Box::new(LruBuffer::new(64 * 1024))).unwrap();
        let transferred = file.prefetch(&ids);
        assert!(transferred > 0);
        file.reset_buffer_stats();
        let device = file.handle().device().clone();
        let before = device.stats().snapshot();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(file.get(*id).unwrap(), payloads[i]);
        }
        let delta = device.stats().snapshot().since(&before);
        assert_eq!(delta.file_accesses, 0, "prefetched gets must not touch the file");
        let stats = file.buffer_stats(PoolId(0)).unwrap();
        assert_eq!(stats.refs, ids.len() as u64);
        assert_eq!(stats.hits, ids.len() as u64);
    }

    #[test]
    fn prefetch_skips_zero_capacity_buffers() {
        let mut file = packed_file(512);
        let ids: Vec<ObjectId> =
            (0..10u8).map(|i| file.create_object(PoolId(0), &[i; 50]).unwrap()).collect();
        file.flush().unwrap();
        let device = file.handle().device().clone();
        let before = device.stats().snapshot();
        assert_eq!(file.prefetch(&ids), 0);
        let delta = device.stats().snapshot().since(&before);
        assert_eq!(delta.file_accesses, 0, "nothing to retain, nothing to read");
    }

    #[test]
    fn concurrent_shared_gets_see_consistent_data() {
        let mut file = packed_file(512);
        let payloads: Vec<Vec<u8>> = (0..80u8).map(|i| vec![i; 64]).collect();
        let ids: Vec<ObjectId> =
            payloads.iter().map(|p| file.create_object(PoolId(0), p).unwrap()).collect();
        file.flush().unwrap();
        file.attach_buffers_for_test();
        let file = &file;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..4usize {
                let ids = &ids;
                let payloads = &payloads;
                handles.push(scope.spawn(move || {
                    for round in 0..5 {
                        for i in (t..ids.len()).step_by(4) {
                            let got = file.get(ids[i]).unwrap();
                            assert_eq!(got, payloads[i], "thread {t} round {round}");
                        }
                        let shard: Vec<ObjectId> =
                            (t..ids.len()).step_by(4).map(|i| ids[i]).collect();
                        for (j, r) in file.get_batch(&shard).into_iter().enumerate() {
                            assert_eq!(r.unwrap(), payloads[t + j * 4]);
                        }
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
        });
    }

    impl MnemeFile {
        fn attach_buffers_for_test(&mut self) {
            for id in self.pool_ids() {
                self.attach_buffer(id, Box::new(LruBuffer::new(32 * 1024))).unwrap();
            }
        }
    }

    fn huge_file() -> MnemeFile {
        let device = Device::with_defaults();
        MnemeFile::create(
            device.create_file(),
            &[PoolConfig {
                id: PoolId(0),
                kind: crate::pool::PoolKindConfig::SegmentPerObject { embedded_refs: false },
            }],
            8,
        )
        .unwrap()
    }

    #[test]
    fn get_range_on_packed_pool_declines() {
        let mut file = packed_file(512);
        let id = file.create_object(PoolId(0), b"small record").unwrap();
        assert_eq!(file.get_range(id, 0, 4).unwrap(), None);
    }

    #[test]
    fn get_range_slices_huge_objects() {
        let mut file = huge_file();
        let payload: Vec<u8> = (0..40_000u32).map(|i| (i % 251) as u8).collect();
        let id = file.create_object(PoolId(0), &payload).unwrap();
        // Building-segment service, before any flush.
        assert_eq!(file.get_range(id, 0, 100).unwrap().unwrap(), &payload[..100]);
        file.flush().unwrap();
        file.attach_buffer(PoolId(0), Box::new(LruBuffer::new(0))).unwrap();
        // Opening read clamps to the requested prefix.
        assert_eq!(file.get_range(id, 0, 8192).unwrap().unwrap(), &payload[..8192]);
        // Continuation read lands mid-payload.
        assert_eq!(file.get_range(id, 10_000, 500).unwrap().unwrap(), &payload[10_000..10_500]);
        // Ranges past the end come back truncated, not padded.
        let tail = file.get_range(id, 39_900, 8192).unwrap().unwrap();
        assert_eq!(tail, &payload[39_900..]);
        // A range read of one block transfers fewer device blocks than a
        // whole-object fetch.
        let device = file.handle().device().clone();
        device.chill();
        let before = device.stats().snapshot();
        file.get_range(id, 16_384, 1024).unwrap().unwrap();
        let partial = device.stats().snapshot().since(&before);
        let before = device.stats().snapshot();
        file.get(id).unwrap();
        let whole = device.stats().snapshot().since(&before);
        assert!(
            partial.io_inputs < whole.io_inputs,
            "range read moved {} blocks, whole fetch {}",
            partial.io_inputs,
            whole.io_inputs
        );
    }

    #[test]
    fn get_range_reports_deleted_objects() {
        let mut file = huge_file();
        let payload = vec![7u8; 20_000];
        let id = file.create_object(PoolId(0), &payload).unwrap();
        file.flush().unwrap();
        file.delete(id).unwrap();
        file.flush().unwrap();
        assert!(matches!(file.get_range(id, 0, 64), Err(MnemeError::ObjectDeleted(_))));
    }
}

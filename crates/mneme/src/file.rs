//! A Mneme file: objects, pools, physical segments, and location tables.
//!
//! "Objects are grouped into files supported by the operating system. An
//! object's identifier is unique only within the object's file." (Section
//! 3.2). A [`MnemeFile`] owns:
//!
//! * the pool set it was created with (persisted in the header),
//! * one segment buffer per pool ("Each object pool was attached to a
//!   separate buffer, allowing the global buffer space to be divided
//!   between the object pools", Section 3.3),
//! * the multi-level location tables ([`crate::table`]), loaded lazily and
//!   then retained — the paper's permanently-cached auxiliary tables,
//! * the id allocator handing out logical segments to pools.
//!
//! ## On-disk layout
//!
//! ```text
//! [ header block (8 KB) ][ physical segments ... ][ directory ][ buckets ]
//! ```
//!
//! The header records where the data region ends and where the serialized
//! location tables begin. Tables are rewritten at every [`MnemeFile::flush`];
//! between flushes the on-disk tables may be stale (see [`crate::recovery`]
//! for the redo-log extension that closes this window).
//!
//! ```
//! use poir_mneme::{MnemeFile, PoolConfig, PoolId, PoolKindConfig};
//! use poir_storage::Device;
//!
//! let device = Device::with_defaults();
//! let pools = [PoolConfig {
//!     id: PoolId(0),
//!     kind: PoolKindConfig::Packed { segment_size: 8192 },
//! }];
//! let mut file = MnemeFile::create(device.create_file(), &pools, 16).unwrap();
//! let id = file.create_object(PoolId(0), b"a chunk of contiguous bytes").unwrap();
//! assert_eq!(file.get(id).unwrap(), b"a chunk of contiguous bytes");
//! file.flush().unwrap();
//! ```

use poir_storage::FileHandle;

use crate::buffer::{Buffer, BufferStats, LruBuffer};
use crate::error::{MnemeError, Result};
use crate::id::{LogicalSegment, ObjectId, PoolId, MAX_LOGICAL_SEGMENTS, SLOTS_PER_SEGMENT};
use crate::pool::{AppendOutcome, LocateResult, Pool, PoolConfig};
use crate::segment::{SegmentAddr, SegmentImage};
use crate::table::LocationTable;

const MAGIC: &[u8; 4] = b"MNEM";
const VERSION: u16 = 1;
/// The header occupies one full device block so data segments start aligned.
const HEADER_LEN: u64 = 8192;
/// Byte offset where pool configurations begin within the header.
const POOLS_OFFSET: usize = 40;
/// Bytes per on-disk directory entry: bucket offset (u64) + length (u32).
const DIR_ENTRY_LEN: usize = 12;

struct PoolState {
    pool: Box<dyn Pool>,
    buffer: Box<dyn Buffer>,
    current_lseg: Option<LogicalSegment>,
    next_slot: u32,
    building: Option<(SegmentAddr, SegmentImage)>,
}

/// One Mneme file holding objects in pools.
pub struct MnemeFile {
    handle: FileHandle,
    configs: Vec<PoolConfig>,
    pools: Vec<PoolState>,
    table: LocationTable,
    /// Per-bucket on-disk location `(offset, len)`; empty lengths mean the
    /// bucket has never been written.
    directory: Vec<(u64, u32)>,
    data_end: u64,
    next_lseg: u32,
    /// Whether there are logical changes not yet committed by a flush.
    dirty: bool,
    /// Bytes occupied by the serialized location tables at the last flush —
    /// the "auxiliary table" size (about 512 Kbytes for TIPSTER).
    aux_bytes: u64,
    /// Payload bytes orphaned by relocating updates and deletions.
    garbage_bytes: u64,
}

impl std::fmt::Debug for MnemeFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MnemeFile")
            .field("pools", &self.pools.len())
            .field("data_end", &self.data_end)
            .field("next_lseg", &self.next_lseg)
            .finish_non_exhaustive()
    }
}

impl MnemeFile {
    /// Creates a new Mneme file with the given pools on `handle` (which must
    /// be empty). `num_buckets` sizes the location-table directory.
    pub fn create(handle: FileHandle, configs: &[PoolConfig], num_buckets: u32) -> Result<Self> {
        assert!(!configs.is_empty(), "a Mneme file needs at least one pool");
        assert!(num_buckets > 0, "at least one directory bucket is required");
        assert!(
            POOLS_OFFSET + configs.len() * 8 <= HEADER_LEN as usize,
            "too many pools for the header block"
        );
        for (i, c) in configs.iter().enumerate() {
            for other in &configs[..i] {
                assert_ne!(c.id, other.id, "pool ids must be unique");
            }
        }
        let mut file = MnemeFile {
            handle,
            configs: configs.to_vec(),
            pools: configs.iter().map(Self::fresh_pool_state).collect(),
            table: LocationTable::new_empty(num_buckets),
            directory: vec![(0, 0); num_buckets as usize],
            data_end: HEADER_LEN,
            next_lseg: 0,
            dirty: true,
            aux_bytes: 0,
            garbage_bytes: 0,
        };
        file.write_header()?;
        Ok(file)
    }

    /// Opens an existing Mneme file, reconstructing its pools from the
    /// header. Reads the header and directory eagerly; location-table
    /// buckets load on first touch and stay resident.
    pub fn open(handle: FileHandle) -> Result<Self> {
        let header = handle.read(0, HEADER_LEN as usize)?;
        if &header[0..4] != MAGIC {
            return Err(MnemeError::Corrupt("bad magic".into()));
        }
        let version = u16::from_le_bytes(header[4..6].try_into().unwrap());
        if version != VERSION {
            return Err(MnemeError::Corrupt(format!("unsupported version {version}")));
        }
        let num_pools = u16::from_le_bytes(header[6..8].try_into().unwrap()) as usize;
        let data_end = u64::from_le_bytes(header[8..16].try_into().unwrap());
        let next_lseg = u32::from_le_bytes(header[16..20].try_into().unwrap());
        let num_buckets = u32::from_le_bytes(header[20..24].try_into().unwrap());
        let dir_offset = u64::from_le_bytes(header[24..32].try_into().unwrap());
        let dir_len = u32::from_le_bytes(header[32..36].try_into().unwrap());
        if num_buckets == 0 || num_pools == 0 {
            return Err(MnemeError::Corrupt("empty pool set or directory".into()));
        }
        let mut configs = Vec::with_capacity(num_pools);
        for i in 0..num_pools {
            let start = POOLS_OFFSET + i * 8;
            let raw: [u8; 8] = header[start..start + 8].try_into().unwrap();
            configs.push(
                PoolConfig::decode(&raw)
                    .ok_or_else(|| MnemeError::Corrupt(format!("bad pool config {i}")))?,
            );
        }
        let directory = if dir_offset == 0 {
            vec![(0u64, 0u32); num_buckets as usize]
        } else {
            if dir_len as usize != num_buckets as usize * DIR_ENTRY_LEN {
                return Err(MnemeError::Corrupt("directory length mismatch".into()));
            }
            let raw = handle.read(dir_offset, dir_len as usize)?;
            raw.chunks_exact(DIR_ENTRY_LEN)
                .map(|c| {
                    (
                        u64::from_le_bytes(c[0..8].try_into().unwrap()),
                        u32::from_le_bytes(c[8..12].try_into().unwrap()),
                    )
                })
                .collect()
        };
        let aux_bytes = directory_bytes(num_buckets)
            + directory.iter().map(|&(_, len)| len as u64).sum::<u64>();
        Ok(MnemeFile {
            handle,
            pools: configs.iter().map(Self::fresh_pool_state).collect(),
            configs,
            table: LocationTable::new_unloaded(num_buckets),
            directory,
            data_end,
            next_lseg,
            dirty: false,
            aux_bytes,
            garbage_bytes: 0,
        })
    }

    fn fresh_pool_state(config: &PoolConfig) -> PoolState {
        PoolState {
            pool: config.build(),
            // Pools start with a zero-capacity buffer: nothing is cached
            // across accesses until a sized buffer is attached.
            buffer: Box::new(LruBuffer::new(0)),
            current_lseg: None,
            next_slot: SLOTS_PER_SEGMENT,
            building: None,
        }
    }

    /// The pool ids configured in this file, in declaration order.
    pub fn pool_ids(&self) -> Vec<PoolId> {
        self.pools.iter().map(|p| p.pool.id()).collect()
    }

    /// Largest object accepted by `pool`, if bounded.
    pub fn pool_max_object_len(&self, pool: PoolId) -> Result<Option<usize>> {
        Ok(self.pools[self.pool_index(pool)?].pool.max_object_len())
    }

    fn pool_index(&self, pool: PoolId) -> Result<usize> {
        self.pools
            .iter()
            .position(|p| p.pool.id() == pool)
            .ok_or(MnemeError::NoSuchPool(pool))
    }

    fn write_header(&mut self) -> Result<()> {
        self.write_header_with_directory(0, 0)
    }

    /// Writes the complete header in a single block write — the commit
    /// point of a flush. A zero `dir_offset` means "no tables on disk".
    fn write_header_with_directory(&mut self, dir_offset: u64, dir_len: u32) -> Result<()> {
        let mut header = vec![0u8; HEADER_LEN as usize];
        header[0..4].copy_from_slice(MAGIC);
        header[4..6].copy_from_slice(&VERSION.to_le_bytes());
        header[6..8].copy_from_slice(&(self.configs.len() as u16).to_le_bytes());
        header[8..16].copy_from_slice(&self.data_end.to_le_bytes());
        header[16..20].copy_from_slice(&self.next_lseg.to_le_bytes());
        header[20..24].copy_from_slice(&self.table.num_buckets().to_le_bytes());
        header[24..32].copy_from_slice(&dir_offset.to_le_bytes());
        header[32..36].copy_from_slice(&dir_len.to_le_bytes());
        for (i, c) in self.configs.iter().enumerate() {
            let start = POOLS_OFFSET + i * 8;
            header[start..start + 8].copy_from_slice(&c.encode());
        }
        self.handle.write(0, &header)?;
        Ok(())
    }

    /// Allocates file space for a new physical segment. Segments append at
    /// `data_end`; flushed location tables live *before* `data_end` (the
    /// table region is copy-on-write — each flush writes a fresh region and
    /// bumps `data_end` past it), so appends never clobber valid tables.
    fn allocate_segment(&mut self, len: usize) -> Result<SegmentAddr> {
        let addr = SegmentAddr { offset: self.data_end, len: len as u32 };
        self.data_end += len as u64;
        Ok(addr)
    }

    /// Reads every not-yet-resident location bucket into memory.
    fn load_all_buckets(&mut self) -> Result<()> {
        for bucket in self.table.unloaded_buckets() {
            let (offset, len) = self.directory[bucket as usize];
            if len == 0 {
                self.table.load_bucket(bucket, &0u32.to_le_bytes())?;
            } else {
                let bytes = self.handle.read(offset, len as usize)?;
                self.table.load_bucket(bucket, &bytes)?;
            }
        }
        Ok(())
    }

    fn ensure_bucket_loaded(&mut self, lseg: LogicalSegment) -> Result<()> {
        let bucket = self.table.bucket_of(lseg);
        if self.table.is_loaded(bucket) {
            return Ok(());
        }
        let (offset, len) = self.directory[bucket as usize];
        if len == 0 {
            // Never written: install an empty bucket.
            self.table.load_bucket(bucket, &0u32.to_le_bytes())?;
        } else {
            let bytes = self.handle.read(offset, len as usize)?;
            self.table.load_bucket(bucket, &bytes)?;
        }
        Ok(())
    }

    /// Allocates the next object id for `pool`, starting a new logical
    /// segment when the current one is exhausted.
    fn allocate_id(&mut self, pool_idx: usize) -> Result<ObjectId> {
        if self.pools[pool_idx].current_lseg.is_none()
            || self.pools[pool_idx].next_slot >= SLOTS_PER_SEGMENT
        {
            if self.next_lseg >= MAX_LOGICAL_SEGMENTS {
                return Err(MnemeError::IdSpaceExhausted);
            }
            let lseg = LogicalSegment(self.next_lseg);
            self.next_lseg += 1;
            let pool_id = self.pools[pool_idx].pool.id();
            self.ensure_bucket_loaded(lseg)?;
            self.table.entry_mut(lseg, pool_id)?;
            let ps = &mut self.pools[pool_idx];
            ps.current_lseg = Some(lseg);
            ps.next_slot = 0;
        }
        let ps = &mut self.pools[pool_idx];
        let id = ObjectId::new(ps.current_lseg.unwrap(), ps.next_slot as u8);
        ps.next_slot += 1;
        Ok(id)
    }

    fn save_segment(handle: &FileHandle, addr: SegmentAddr, image: &mut SegmentImage) -> Result<()> {
        debug_assert_eq!(image.len(), addr.len as usize);
        handle.write(addr.offset, image.bytes())?;
        image.mark_clean();
        Ok(())
    }

    fn save_evicted(
        handle: &FileHandle,
        evicted: Vec<(SegmentAddr, SegmentImage)>,
    ) -> Result<()> {
        for (addr, mut image) in evicted {
            if image.is_dirty() {
                Self::save_segment(handle, addr, &mut image)?;
            }
        }
        Ok(())
    }

    /// Seals a pool's building segment: it becomes a regular segment served
    /// through the pool's buffer (written out when evicted or flushed).
    fn seal_building(&mut self, pool_idx: usize) -> Result<()> {
        let ps = &mut self.pools[pool_idx];
        if let Some((addr, image)) = ps.building.take() {
            let evicted = ps.buffer.insert(addr, image);
            Self::save_evicted(&self.handle, evicted)?;
        }
        Ok(())
    }

    /// Creates a new object with `data` in `pool`, returning its id.
    pub fn create_object(&mut self, pool: PoolId, data: &[u8]) -> Result<ObjectId> {
        self.dirty = true;
        let pool_idx = self.pool_index(pool)?;
        if let Some(max) = self.pools[pool_idx].pool.max_object_len() {
            if data.len() > max {
                return Err(MnemeError::ObjectTooLarge { len: data.len(), max });
            }
        }
        let id = self.allocate_id(pool_idx)?;
        let addr = loop {
            if self.pools[pool_idx].building.is_none() {
                let image = self.pools[pool_idx].pool.new_segment(id, data.len());
                let addr = self.allocate_segment(image.len())?;
                self.pools[pool_idx].building = Some((addr, image));
            }
            let ps = &mut self.pools[pool_idx];
            let (addr, image) = ps.building.as_mut().unwrap();
            match ps.pool.try_append(image, id, data) {
                AppendOutcome::Appended => break *addr,
                AppendOutcome::Full => self.seal_building(pool_idx)?,
            }
        };
        self.ensure_bucket_loaded(id.segment())?;
        let entry = self.table.entry_mut(id.segment(), pool)?;
        entry.push_run(id.slot(), addr);
        Ok(id)
    }

    /// The id the next [`MnemeFile::create_object`] call for `pool` will
    /// return, or `None` when a fresh logical segment will be started.
    pub(crate) fn next_id_hint(&self, pool: PoolId) -> Result<Option<ObjectId>> {
        let ps = &self.pools[self.pool_index(pool)?];
        Ok(match ps.current_lseg {
            Some(lseg) if ps.next_slot < SLOTS_PER_SEGMENT => {
                Some(ObjectId::new(lseg, ps.next_slot as u8))
            }
            _ => None,
        })
    }

    /// Moves `pool`'s allocation cursor so the next created object receives
    /// exactly `id`. Used by log replay ([`crate::recovery`]) to reproduce
    /// the pre-crash id sequence. The current building segment is sealed
    /// because objects before the cursor may already live on disk.
    pub(crate) fn force_allocation_cursor(&mut self, pool: PoolId, id: ObjectId) -> Result<()> {
        let pool_idx = self.pool_index(pool)?;
        self.seal_building(pool_idx)?;
        self.ensure_bucket_loaded(id.segment())?;
        self.table.entry_mut(id.segment(), pool)?;
        self.next_lseg = self.next_lseg.max(id.segment().0 + 1);
        let ps = &mut self.pools[pool_idx];
        ps.current_lseg = Some(id.segment());
        ps.next_slot = id.slot() as u32;
        Ok(())
    }

    /// Resolves an object id to its pool and physical segment.
    fn resolve(&mut self, id: ObjectId) -> Result<(usize, SegmentAddr)> {
        self.ensure_bucket_loaded(id.segment())?;
        let entry = self
            .table
            .entry(id.segment())?
            .ok_or(MnemeError::NoSuchObject(id))?;
        let pool_id = entry.pool;
        let addr = entry.segment_for(id.slot()).ok_or(MnemeError::NoSuchObject(id))?;
        Ok((self.pool_index(pool_id)?, addr))
    }

    /// Runs `f` against the segment at `addr`, serving it from the pool's
    /// building segment, its buffer, or the file (in that order). One object
    /// reference is recorded against the pool's buffer.
    fn with_segment<R>(
        &mut self,
        pool_idx: usize,
        addr: SegmentAddr,
        f: impl FnOnce(&dyn Pool, &mut SegmentImage) -> R,
    ) -> Result<R> {
        let handle = self.handle.clone();
        let ps = &mut self.pools[pool_idx];
        if let Some((baddr, image)) = ps.building.as_mut() {
            if *baddr == addr {
                ps.buffer.record_ref(true);
                return Ok(f(ps.pool.as_ref(), image));
            }
        }
        if ps.buffer.is_resident(addr) {
            ps.buffer.record_ref(true);
            let image = ps.buffer.lookup(addr).expect("resident segment");
            return Ok(f(ps.pool.as_ref(), image));
        }
        ps.buffer.record_ref(false);
        let mut image = SegmentImage::from_disk(handle.read(addr.offset, addr.len as usize)?);
        let result = f(ps.pool.as_ref(), &mut image);
        let evicted = ps.buffer.insert(addr, image);
        Self::save_evicted(&handle, evicted)?;
        Ok(result)
    }

    /// Reads an object's payload.
    pub fn get(&mut self, id: ObjectId) -> Result<Vec<u8>> {
        let (pool_idx, addr) = self.resolve(id)?;
        self.with_segment(pool_idx, addr, |pool, seg| match pool.locate(seg.bytes(), id) {
            LocateResult::Found(r) => Ok(seg.bytes()[r].to_vec()),
            LocateResult::Deleted => Err(MnemeError::ObjectDeleted(id)),
            LocateResult::Absent => Err(MnemeError::NoSuchObject(id)),
        })?
    }

    /// Reads an object's payload length without copying the payload.
    pub fn object_len(&mut self, id: ObjectId) -> Result<usize> {
        let (pool_idx, addr) = self.resolve(id)?;
        self.with_segment(pool_idx, addr, |pool, seg| match pool.locate(seg.bytes(), id) {
            LocateResult::Found(r) => Ok(r.len()),
            LocateResult::Deleted => Err(MnemeError::ObjectDeleted(id)),
            LocateResult::Absent => Err(MnemeError::NoSuchObject(id)),
        })?
    }

    /// The pool an object belongs to.
    pub fn pool_of(&mut self, id: ObjectId) -> Result<PoolId> {
        self.ensure_bucket_loaded(id.segment())?;
        Ok(self
            .table
            .entry(id.segment())?
            .ok_or(MnemeError::NoSuchObject(id))?
            .pool)
    }

    /// Overwrites an object's payload. Updates happen in place when the new
    /// payload fits; otherwise the object is relocated to a fresh physical
    /// segment and recorded as a location-table exception.
    pub fn update(&mut self, id: ObjectId, data: &[u8]) -> Result<()> {
        self.dirty = true;
        let (pool_idx, addr) = self.resolve(id)?;
        if let Some(max) = self.pools[pool_idx].pool.max_object_len() {
            if data.len() > max {
                return Err(MnemeError::ObjectTooLarge { len: data.len(), max });
            }
        }
        let in_place = self.with_segment(pool_idx, addr, |pool, seg| {
            match pool.locate(seg.bytes(), id) {
                LocateResult::Found(_) => Ok(pool.try_update_in_place(seg, id, data)),
                LocateResult::Deleted => Err(MnemeError::ObjectDeleted(id)),
                LocateResult::Absent => Err(MnemeError::NoSuchObject(id)),
            }
        })??;
        if in_place {
            return Ok(());
        }
        // Relocate: tombstone the old copy, then write a fresh single-object
        // segment and shadow the slot with an exception entry.
        let old_len = self.with_segment(pool_idx, addr, |pool, seg| {
            let len = match pool.locate(seg.bytes(), id) {
                LocateResult::Found(r) => r.len(),
                _ => 0,
            };
            pool.delete(seg, id);
            len
        })?;
        self.garbage_bytes += old_len as u64;
        let ps = &mut self.pools[pool_idx];
        let mut image = ps.pool.new_segment(id, data.len());
        let outcome = ps.pool.try_append(&mut image, id, data);
        debug_assert_eq!(outcome, AppendOutcome::Appended, "fresh segment must accept its object");
        let new_addr = self.allocate_segment(image.len())?;
        let ps = &mut self.pools[pool_idx];
        let evicted = ps.buffer.insert(new_addr, image);
        Self::save_evicted(&self.handle, evicted)?;
        let pool_id = ps.pool.id();
        self.ensure_bucket_loaded(id.segment())?;
        self.table.entry_mut(id.segment(), pool_id)?.set_exception(id.slot(), new_addr);
        Ok(())
    }

    /// Deletes an object. The slot is tombstoned; space is reclaimed by
    /// compaction (see [`crate::gc`]).
    pub fn delete(&mut self, id: ObjectId) -> Result<()> {
        self.dirty = true;
        let (pool_idx, addr) = self.resolve(id)?;
        let freed = self.with_segment(pool_idx, addr, |pool, seg| {
            match pool.locate(seg.bytes(), id) {
                LocateResult::Found(r) => {
                    let len = r.len();
                    pool.delete(seg, id);
                    Ok(len)
                }
                LocateResult::Deleted => Err(MnemeError::ObjectDeleted(id)),
                LocateResult::Absent => Err(MnemeError::NoSuchObject(id)),
            }
        })??;
        self.garbage_bytes += freed as u64;
        Ok(())
    }

    /// Pins the segments of any of `ids` that are already resident, so query
    /// evaluation cannot evict them — the paper's pre-evaluation query-tree
    /// reservation pass. Non-resident objects are *not* faulted in.
    pub fn reserve(&mut self, ids: &[ObjectId]) {
        for &id in ids {
            // Never perform I/O here: if the bucket is unloaded the segment
            // cannot be resident either.
            if !self.table.is_loaded(self.table.bucket_of(id.segment())) {
                continue;
            }
            let Ok(Some(entry)) = self.table.entry(id.segment()) else { continue };
            let pool_id = entry.pool;
            let Some(addr) = entry.segment_for(id.slot()) else { continue };
            let Ok(pool_idx) = self.pool_index(pool_id) else { continue };
            self.pools[pool_idx].buffer.reserve(addr);
        }
    }

    /// Releases every reservation placed by [`MnemeFile::reserve`].
    pub fn release_reservations(&mut self) {
        for ps in &mut self.pools {
            ps.buffer.release_reservations();
        }
    }

    /// Attaches a buffer to a pool, replacing (and saving the contents of)
    /// the previous one.
    pub fn attach_buffer(&mut self, pool: PoolId, buffer: Box<dyn Buffer>) -> Result<()> {
        let pool_idx = self.pool_index(pool)?;
        let mut old = std::mem::replace(&mut self.pools[pool_idx].buffer, buffer);
        Self::save_evicted(&self.handle, old.drain())?;
        Ok(())
    }

    /// Reference/hit counters of a pool's buffer (Table 6).
    pub fn buffer_stats(&self, pool: PoolId) -> Result<BufferStats> {
        Ok(self.pools[self.pool_index(pool)?].buffer.stats())
    }

    /// Resets every pool buffer's counters.
    pub fn reset_buffer_stats(&mut self) {
        for ps in &mut self.pools {
            ps.buffer.reset_stats();
        }
    }

    /// Writes all dirty state (building segments, buffered segments,
    /// location tables, header) to the file and truncates it to its exact
    /// size. Buffers are cold afterwards.
    pub fn flush(&mut self) -> Result<()> {
        if !self.dirty {
            return Ok(());
        }
        for pool_idx in 0..self.pools.len() {
            // Seal building segments by writing them directly; they stay
            // retrievable through their registered location runs.
            let ps = &mut self.pools[pool_idx];
            if let Some((addr, mut image)) = ps.building.take() {
                Self::save_segment(&self.handle, addr, &mut image)?;
            }
            let drained = self.pools[pool_idx].buffer.drain();
            Self::save_evicted(&self.handle, drained)?;
        }
        // Every bucket must be resident to rewrite the tables. The table
        // region is copy-on-write: it is appended after the data and
        // `data_end` moves past it, so the previous generation of tables
        // stays readable until this flush's header write commits the new
        // one (crashes mid-flush recover against the old generation).
        self.load_all_buckets()?;
        let num_buckets = self.table.num_buckets();
        let dir_offset = self.data_end;
        let dir_len = num_buckets as usize * DIR_ENTRY_LEN;
        let mut bucket_blobs = Vec::with_capacity(num_buckets as usize);
        let mut cursor = dir_offset + dir_len as u64;
        let mut directory_bytes_out = Vec::with_capacity(dir_len);
        for b in 0..num_buckets {
            let blob = self.table.serialize_bucket(b);
            directory_bytes_out.extend_from_slice(&cursor.to_le_bytes());
            directory_bytes_out.extend_from_slice(&(blob.len() as u32).to_le_bytes());
            self.directory[b as usize] = (cursor, blob.len() as u32);
            cursor += blob.len() as u64;
            bucket_blobs.push(blob);
        }
        self.handle.write(dir_offset, &directory_bytes_out)?;
        let mut offset = dir_offset + dir_len as u64;
        for blob in &bucket_blobs {
            self.handle.write(offset, blob)?;
            offset += blob.len() as u64;
        }
        self.aux_bytes = offset - dir_offset;
        self.handle.truncate(offset)?;
        // Future appends go after the tables; commit via one header write.
        self.data_end = offset;
        self.write_header_with_directory(dir_offset, dir_len as u32)?;
        self.handle.sync()?;
        self.dirty = false;
        Ok(())
    }

    /// Total size of the file in bytes (Table 1's "Mneme Size" column).
    pub fn file_size(&self) -> Result<u64> {
        Ok(self.handle.len()?)
    }

    /// Bytes of serialized location tables at the last flush.
    pub fn aux_table_bytes(&self) -> u64 {
        self.aux_bytes
    }

    /// Payload bytes orphaned by updates/deletes since open.
    pub fn garbage_bytes(&self) -> u64 {
        self.garbage_bytes
    }

    /// The storage handle backing this file.
    pub fn handle(&self) -> &FileHandle {
        &self.handle
    }

    /// Summary statistics of the file's current state.
    pub fn stats(&mut self) -> Result<FileStats> {
        let inventory = self.segment_inventory()?;
        let mut per_pool: Vec<PoolStats> = self
            .pool_ids()
            .into_iter()
            .map(|id| PoolStats { pool: id, segments: 0, live_objects: 0, payload_bytes: 0 })
            .collect();
        for (pool_id, addr) in inventory {
            let live = self.segment_live_objects(pool_id, addr)?;
            if let Some(ps) = per_pool.iter_mut().find(|p| p.pool == pool_id) {
                ps.segments += 1;
                ps.live_objects += live.len() as u64;
                ps.payload_bytes += live.iter().map(|(_, r)| r.len() as u64).sum::<u64>();
            }
        }
        Ok(FileStats {
            file_bytes: self.file_size()?,
            aux_table_bytes: self.aux_bytes,
            garbage_bytes: self.garbage_bytes,
            pools: per_pool,
        })
    }

    /// Outgoing references of an object, as extracted by its pool.
    pub fn references_of(&mut self, id: ObjectId) -> Result<Vec<u64>> {
        let (pool_idx, addr) = self.resolve(id)?;
        self.with_segment(pool_idx, addr, |pool, seg| match pool.locate(seg.bytes(), id) {
            LocateResult::Found(r) => Ok(pool.references(&seg.bytes()[r])),
            LocateResult::Deleted => Err(MnemeError::ObjectDeleted(id)),
            LocateResult::Absent => Err(MnemeError::NoSuchObject(id)),
        })?
    }

    /// Enumerates the ids of every live object. Loads all buckets and scans
    /// every physical segment — intended for validation and GC, not queries.
    pub fn live_object_ids(&mut self) -> Result<Vec<ObjectId>> {
        self.load_all_buckets()?;
        let mut segments: Vec<(PoolId, SegmentAddr)> = Vec::new();
        for lseg in self.table.loaded_lsegs() {
            let entry = self.table.entry(lseg)?.expect("listed lseg exists");
            for addr in entry.segments() {
                segments.push((entry.pool, addr));
            }
        }
        segments.sort_unstable_by_key(|&(_, a)| a);
        segments.dedup();
        let mut out = Vec::new();
        for (pool_id, addr) in segments {
            let pool_idx = self.pool_index(pool_id)?;
            let mut ids = self.with_segment(pool_idx, addr, |pool, seg| {
                pool.live_objects(seg.bytes()).into_iter().map(|(id, _)| id).collect::<Vec<_>>()
            })?;
            // An object relocated by update() is live in its new segment and
            // tombstoned in the old, so no dedup is needed — but an object
            // whose exception points elsewhere must not be double-counted if
            // the old copy was not tombstoned. delete()/update() always
            // tombstone, so simply collect.
            out.append(&mut ids);
        }
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }
}

impl MnemeFile {
    /// Every `(pool, segment)` pair referenced by the location tables,
    /// deduplicated. Loads all buckets.
    pub(crate) fn segment_inventory(&mut self) -> Result<Vec<(PoolId, SegmentAddr)>> {
        self.load_all_buckets()?;
        let mut out = Vec::new();
        for lseg in self.table.loaded_lsegs() {
            let entry = self.table.entry(lseg)?.expect("listed lseg exists");
            for addr in entry.segments() {
                out.push((entry.pool, addr));
            }
        }
        out.sort_unstable_by_key(|&(pool, addr)| (addr, pool));
        out.dedup();
        Ok(out)
    }

    /// The segment-kind byte of the segment at `addr`, straight from disk.
    pub(crate) fn segment_header_kind(
        &mut self,
        addr: SegmentAddr,
    ) -> Result<Option<crate::segment::SegmentKind>> {
        let byte = self.handle.read(addr.offset, 1)?;
        Ok(crate::segment::SegmentKind::from_u8(byte[0]))
    }

    /// The segment kind pool `pool` writes.
    pub(crate) fn pool_kind(&self, pool: PoolId) -> Result<crate::segment::SegmentKind> {
        let config = self
            .configs
            .iter()
            .find(|c| c.id == pool)
            .ok_or(MnemeError::NoSuchPool(pool))?;
        Ok(crate::validate::kind_of_config(&config.kind))
    }

    /// Live objects of the segment at `addr` (which belongs to `pool`).
    pub(crate) fn segment_live_objects(
        &mut self,
        pool: PoolId,
        addr: SegmentAddr,
    ) -> Result<Vec<(ObjectId, std::ops::Range<usize>)>> {
        let pool_idx = self.pool_index(pool)?;
        self.with_segment(pool_idx, addr, |p, seg| p.live_objects(seg.bytes()))
    }

    /// Where the tables place `id`, or `None` when unmapped.
    pub(crate) fn locate_for_validation(&mut self, id: ObjectId) -> Result<Option<SegmentAddr>> {
        self.ensure_bucket_loaded(id.segment())?;
        Ok(self.table.entry(id.segment())?.and_then(|e| e.segment_for(id.slot())))
    }

    /// Looks `id` up inside the specific segment at `addr`.
    pub(crate) fn locate_in_segment(
        &mut self,
        pool: PoolId,
        addr: SegmentAddr,
        id: ObjectId,
    ) -> Result<LocateResult> {
        let pool_idx = self.pool_index(pool)?;
        self.with_segment(pool_idx, addr, |p, seg| p.locate(seg.bytes(), id))
    }

    /// The head object of every run and every exception across all loaded
    /// logical segments — ids guaranteed to have been allocated.
    pub(crate) fn run_heads(&mut self) -> Result<Vec<(ObjectId, SegmentAddr)>> {
        self.load_all_buckets()?;
        let mut out = Vec::new();
        for lseg in self.table.loaded_lsegs() {
            let entry = self.table.entry(lseg)?.expect("listed lseg exists");
            for &(slot, addr) in entry.runs().iter().chain(entry.exceptions()) {
                out.push((ObjectId::new(lseg, slot), addr));
            }
        }
        Ok(out)
    }
}

/// Bytes consumed by an on-disk directory of `num_buckets` entries.
fn directory_bytes(num_buckets: u32) -> u64 {
    num_buckets as u64 * DIR_ENTRY_LEN as u64
}

/// Per-pool occupancy summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// The pool.
    pub pool: PoolId,
    /// Physical segments the pool owns.
    pub segments: usize,
    /// Live objects in those segments.
    pub live_objects: u64,
    /// Total live payload bytes.
    pub payload_bytes: u64,
}

/// Whole-file occupancy summary (see [`MnemeFile::stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileStats {
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// Bytes of serialized location tables at the last flush.
    pub aux_table_bytes: u64,
    /// Payload bytes orphaned by updates/deletes since open.
    pub garbage_bytes: u64,
    /// Per-pool breakdown, in declaration order.
    pub pools: Vec<PoolStats>,
}

//! Object location: compact multi-level hash tables over logical segments.
//!
//! "Mneme locates objects based on their logical segments using compact
//! multi-level hash tables. This lookup mechanism requires slightly more
//! computation, but the reduced table size allows the auxiliary tables to
//! remain permanently cached after their first access." (Section 4.3)
//!
//! Level one is a fixed directory of buckets (held in the file header
//! region); level two is one serialized bucket per directory entry, holding
//! the entries of every logical segment that hashes to it. The file layer
//! reads a bucket the first time any of its logical segments is touched and
//! keeps it in memory for the life of the file — the paper's "permanently
//! cached" behaviour (about 512 Kbytes total for TIPSTER).
//!
//! A logical segment's entry maps slots to physical segments with a run
//! list: run *(s, addr)* says "slots ≥ s (until the next run) live in the
//! segment at *addr*". Sequential id allocation makes runs short — one run
//! per physical segment that holds part of the logical segment. Objects
//! relocated by updates are recorded as per-slot exceptions.

use std::collections::HashMap;

use crate::error::{MnemeError, Result};
use crate::id::{LogicalSegment, PoolId};
use crate::segment::SegmentAddr;

/// Location information for one logical segment.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LsegEntry {
    /// The pool whose objects populate this logical segment.
    pub pool: PoolId,
    /// `(first_slot, segment)` runs, sorted by `first_slot`.
    runs: Vec<(u8, SegmentAddr)>,
    /// Relocated slots overriding the runs, sorted by slot.
    exceptions: Vec<(u8, SegmentAddr)>,
}

impl LsegEntry {
    /// Creates an empty entry for objects of `pool`.
    pub fn new(pool: PoolId) -> Self {
        LsegEntry { pool, runs: Vec::new(), exceptions: Vec::new() }
    }

    /// The physical segment holding `slot`, if any.
    pub fn segment_for(&self, slot: u8) -> Option<SegmentAddr> {
        if let Ok(i) = self.exceptions.binary_search_by_key(&slot, |e| e.0) {
            return Some(self.exceptions[i].1);
        }
        match self.runs.binary_search_by_key(&slot, |r| r.0) {
            Ok(i) => Some(self.runs[i].1),
            Err(0) => None,
            Err(i) => Some(self.runs[i - 1].1),
        }
    }

    /// Registers that slots from `first_slot` onward live in `addr`.
    ///
    /// Runs must be appended in ascending slot order (the allocation order).
    pub fn push_run(&mut self, first_slot: u8, addr: SegmentAddr) {
        if let Some(&(last_slot, last_addr)) = self.runs.last() {
            assert!(first_slot > last_slot, "runs must be appended in slot order");
            if last_addr == addr {
                return; // same segment continues; no new run needed
            }
        }
        self.runs.push((first_slot, addr));
    }

    /// Records that `slot` was relocated to `addr` (or updates an existing
    /// relocation).
    pub fn set_exception(&mut self, slot: u8, addr: SegmentAddr) {
        match self.exceptions.binary_search_by_key(&slot, |e| e.0) {
            Ok(i) => self.exceptions[i].1 = addr,
            Err(i) => self.exceptions.insert(i, (slot, addr)),
        }
    }

    /// Drops the relocation for `slot`, if any.
    pub fn clear_exception(&mut self, slot: u8) {
        if let Ok(i) = self.exceptions.binary_search_by_key(&slot, |e| e.0) {
            self.exceptions.remove(i);
        }
    }

    /// Every distinct physical segment referenced by this entry.
    pub fn segments(&self) -> Vec<SegmentAddr> {
        let mut out: Vec<SegmentAddr> =
            self.runs.iter().chain(self.exceptions.iter()).map(|&(_, a)| a).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Whether the entry references no physical segments.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty() && self.exceptions.is_empty()
    }

    /// The `(first_slot, segment)` runs, in slot order. The first slot of a
    /// run is always an allocated object (runs are pushed at creation).
    pub fn runs(&self) -> &[(u8, SegmentAddr)] {
        &self.runs
    }

    /// The per-slot relocation exceptions, in slot order.
    pub fn exceptions(&self) -> &[(u8, SegmentAddr)] {
        &self.exceptions
    }

    fn encoded_len(&self) -> usize {
        4 + 1 + 2 + 2 + (self.runs.len() + self.exceptions.len()) * 13
    }

    fn encode(&self, lseg: u32, out: &mut Vec<u8>) {
        out.extend_from_slice(&lseg.to_le_bytes());
        out.push(self.pool.0);
        out.extend_from_slice(&(self.runs.len() as u16).to_le_bytes());
        out.extend_from_slice(&(self.exceptions.len() as u16).to_le_bytes());
        for &(slot, addr) in self.runs.iter().chain(self.exceptions.iter()) {
            out.push(slot);
            out.extend_from_slice(&addr.offset.to_le_bytes());
            out.extend_from_slice(&addr.len.to_le_bytes());
        }
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Result<(u32, LsegEntry)> {
        let need = |pos: usize, n: usize, len: usize| -> Result<()> {
            if pos + n > len {
                Err(MnemeError::Corrupt("truncated location bucket".into()))
            } else {
                Ok(())
            }
        };
        need(*pos, 9, buf.len())?;
        let lseg = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().unwrap());
        let pool = PoolId(buf[*pos + 4]);
        let n_runs = u16::from_le_bytes(buf[*pos + 5..*pos + 7].try_into().unwrap()) as usize;
        let n_exc = u16::from_le_bytes(buf[*pos + 7..*pos + 9].try_into().unwrap()) as usize;
        *pos += 9;
        need(*pos, (n_runs + n_exc) * 13, buf.len())?;
        let read_list = |n: usize, pos: &mut usize| {
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                let slot = buf[*pos];
                let offset = u64::from_le_bytes(buf[*pos + 1..*pos + 9].try_into().unwrap());
                let len = u32::from_le_bytes(buf[*pos + 9..*pos + 13].try_into().unwrap());
                v.push((slot, SegmentAddr { offset, len }));
                *pos += 13;
            }
            v
        };
        let runs = read_list(n_runs, pos);
        let exceptions = read_list(n_exc, pos);
        Ok((lseg, LsegEntry { pool, runs, exceptions }))
    }
}

/// State of one directory bucket.
#[derive(Debug, Clone)]
enum BucketState {
    /// Present on disk but not yet read.
    Unloaded,
    /// Resident; will stay resident for the life of the file.
    Loaded(HashMap<u32, LsegEntry>),
}

/// The in-memory face of the multi-level location tables.
#[derive(Debug)]
pub struct LocationTable {
    buckets: Vec<BucketState>,
}

impl LocationTable {
    /// Table for a freshly created file: every bucket exists and is empty.
    pub fn new_empty(num_buckets: u32) -> Self {
        assert!(num_buckets > 0);
        LocationTable {
            buckets: (0..num_buckets).map(|_| BucketState::Loaded(HashMap::new())).collect(),
        }
    }

    /// Table for a reopened file: buckets load lazily on first touch.
    pub fn new_unloaded(num_buckets: u32) -> Self {
        assert!(num_buckets > 0);
        LocationTable { buckets: (0..num_buckets).map(|_| BucketState::Unloaded).collect() }
    }

    /// Number of directory buckets.
    pub fn num_buckets(&self) -> u32 {
        self.buckets.len() as u32
    }

    /// Directory hash: which bucket holds `lseg`.
    pub fn bucket_of(&self, lseg: LogicalSegment) -> u32 {
        lseg.0 % self.num_buckets()
    }

    /// Whether the bucket is resident.
    pub fn is_loaded(&self, bucket: u32) -> bool {
        matches!(self.buckets[bucket as usize], BucketState::Loaded(_))
    }

    /// Installs a bucket read from disk.
    pub fn load_bucket(&mut self, bucket: u32, bytes: &[u8]) -> Result<()> {
        let mut map = HashMap::new();
        if bytes.len() < 4 {
            return Err(MnemeError::Corrupt("location bucket shorter than header".into()));
        }
        let count = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let mut pos = 4;
        for _ in 0..count {
            let (lseg, entry) = LsegEntry::decode(bytes, &mut pos)?;
            map.insert(lseg, entry);
        }
        self.buckets[bucket as usize] = BucketState::Loaded(map);
        Ok(())
    }

    /// Serializes a (loaded) bucket for writing to disk.
    ///
    /// # Panics
    /// Panics if the bucket is not loaded — the file layer loads every
    /// bucket before flushing the tables.
    pub fn serialize_bucket(&self, bucket: u32) -> Vec<u8> {
        let BucketState::Loaded(map) = &self.buckets[bucket as usize] else {
            panic!("bucket {bucket} not loaded");
        };
        let mut entries: Vec<(&u32, &LsegEntry)> = map.iter().collect();
        entries.sort_by_key(|(lseg, _)| **lseg);
        let mut out =
            Vec::with_capacity(4 + entries.iter().map(|(_, e)| e.encoded_len()).sum::<usize>());
        out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        for (lseg, entry) in entries {
            entry.encode(*lseg, &mut out);
        }
        out
    }

    /// Read access to an entry. The bucket must already be loaded.
    pub fn entry(&self, lseg: LogicalSegment) -> Result<Option<&LsegEntry>> {
        match &self.buckets[self.bucket_of(lseg) as usize] {
            BucketState::Loaded(map) => Ok(map.get(&lseg.0)),
            BucketState::Unloaded => {
                Err(MnemeError::Corrupt(format!("bucket for lseg {} not loaded", lseg.0)))
            }
        }
    }

    /// Mutable access to an entry, creating it (for `pool`) if absent.
    /// The bucket must already be loaded.
    pub fn entry_mut(&mut self, lseg: LogicalSegment, pool: PoolId) -> Result<&mut LsegEntry> {
        let bucket = self.bucket_of(lseg) as usize;
        match &mut self.buckets[bucket] {
            BucketState::Loaded(map) => {
                Ok(map.entry(lseg.0).or_insert_with(|| LsegEntry::new(pool)))
            }
            BucketState::Unloaded => {
                Err(MnemeError::Corrupt(format!("bucket for lseg {} not loaded", lseg.0)))
            }
        }
    }

    /// All logical segments recorded in loaded buckets.
    pub fn loaded_lsegs(&self) -> Vec<LogicalSegment> {
        let mut out = Vec::new();
        for b in &self.buckets {
            if let BucketState::Loaded(map) = b {
                out.extend(map.keys().map(|&l| LogicalSegment(l)));
            }
        }
        out.sort_unstable();
        out
    }

    /// Indices of buckets not yet resident.
    pub fn unloaded_buckets(&self) -> Vec<u32> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, b)| matches!(b, BucketState::Unloaded))
            .map(|(i, _)| i as u32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(offset: u64) -> SegmentAddr {
        SegmentAddr { offset, len: 4096 }
    }

    #[test]
    fn runs_resolve_slots() {
        let mut e = LsegEntry::new(PoolId(1));
        e.push_run(0, addr(100));
        e.push_run(40, addr(200));
        e.push_run(200, addr(300));
        assert_eq!(e.segment_for(0), Some(addr(100)));
        assert_eq!(e.segment_for(39), Some(addr(100)));
        assert_eq!(e.segment_for(40), Some(addr(200)));
        assert_eq!(e.segment_for(199), Some(addr(200)));
        assert_eq!(e.segment_for(254), Some(addr(300)));
        assert_eq!(e.segments().len(), 3);
    }

    #[test]
    fn empty_entry_resolves_nothing() {
        let e = LsegEntry::new(PoolId(0));
        assert!(e.is_empty());
        assert_eq!(e.segment_for(0), None);
        assert_eq!(e.segment_for(254), None);
    }

    #[test]
    fn run_starting_past_slot_resolves_none() {
        let mut e = LsegEntry::new(PoolId(0));
        e.push_run(10, addr(1));
        assert_eq!(e.segment_for(9), None);
        assert_eq!(e.segment_for(10), Some(addr(1)));
    }

    #[test]
    fn duplicate_consecutive_segment_is_coalesced() {
        let mut e = LsegEntry::new(PoolId(0));
        e.push_run(0, addr(1));
        e.push_run(100, addr(1)); // same segment: coalesced
        assert_eq!(e.segments().len(), 1);
        e.push_run(150, addr(2));
        assert_eq!(e.segments().len(), 2);
    }

    #[test]
    fn exceptions_override_runs() {
        let mut e = LsegEntry::new(PoolId(2));
        e.push_run(0, addr(1));
        e.set_exception(7, addr(9));
        assert_eq!(e.segment_for(7), Some(addr(9)));
        assert_eq!(e.segment_for(6), Some(addr(1)));
        e.set_exception(7, addr(11)); // update existing
        assert_eq!(e.segment_for(7), Some(addr(11)));
        e.clear_exception(7);
        assert_eq!(e.segment_for(7), Some(addr(1)));
    }

    #[test]
    fn bucket_serialization_round_trips() {
        let mut t = LocationTable::new_empty(4);
        for lseg in [0u32, 4, 8, 1, 5] {
            let entry = t.entry_mut(LogicalSegment(lseg), PoolId((lseg % 3) as u8)).unwrap();
            entry.push_run(0, addr(lseg as u64 * 1000));
            if lseg % 2 == 0 {
                entry.set_exception(3, addr(77));
            }
        }
        // Buckets 0 and 1 have entries; round-trip each into a fresh table.
        let mut t2 = LocationTable::new_unloaded(4);
        for b in 0..4 {
            let bytes = t.serialize_bucket(b);
            t2.load_bucket(b, &bytes).unwrap();
        }
        for lseg in [0u32, 4, 8, 1, 5] {
            assert_eq!(
                t2.entry(LogicalSegment(lseg)).unwrap(),
                t.entry(LogicalSegment(lseg)).unwrap(),
                "lseg {lseg} mismatch"
            );
        }
        assert_eq!(t2.loaded_lsegs(), t.loaded_lsegs());
    }

    #[test]
    fn unloaded_bucket_access_is_an_error() {
        let t = LocationTable::new_unloaded(2);
        assert!(t.entry(LogicalSegment(0)).is_err());
        assert_eq!(t.unloaded_buckets(), vec![0, 1]);
        assert!(!t.is_loaded(0));
    }

    #[test]
    fn corrupt_buckets_are_rejected() {
        let mut t = LocationTable::new_unloaded(1);
        assert!(t.load_bucket(0, &[]).is_err());
        // Declares 1 entry but provides none.
        assert!(t.load_bucket(0, &1u32.to_le_bytes()).is_err());
        // Declares runs it does not contain.
        let mut bad = 1u32.to_le_bytes().to_vec();
        bad.extend_from_slice(&7u32.to_le_bytes()); // lseg
        bad.push(0); // pool
        bad.extend_from_slice(&5u16.to_le_bytes()); // 5 runs
        bad.extend_from_slice(&0u16.to_le_bytes());
        assert!(t.load_bucket(0, &bad).is_err());
    }

    #[test]
    fn empty_bucket_round_trips() {
        let t = LocationTable::new_empty(1);
        let bytes = t.serialize_bucket(0);
        let mut t2 = LocationTable::new_unloaded(1);
        t2.load_bucket(0, &bytes).unwrap();
        assert!(t2.loaded_lsegs().is_empty());
    }

    #[test]
    #[should_panic(expected = "runs must be appended in slot order")]
    fn out_of_order_runs_panic() {
        let mut e = LsegEntry::new(PoolId(0));
        e.push_run(10, addr(1));
        e.push_run(5, addr(2));
    }
}

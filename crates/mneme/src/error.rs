//! Error type for the Mneme persistent object store.

use std::fmt;

use crate::id::{ObjectId, PoolId};

/// Errors surfaced by Mneme operations.
#[derive(Debug)]
pub enum MnemeError {
    /// The object id is syntactically invalid (bad slot) or was never
    /// allocated in this file.
    NoSuchObject(ObjectId),
    /// The referenced pool does not exist in this file.
    NoSuchPool(PoolId),
    /// The object was deleted.
    ObjectDeleted(ObjectId),
    /// The file's 2^28 object-identifier space is exhausted; a new file must
    /// be allocated (Section 3.2 of the paper).
    IdSpaceExhausted,
    /// An object exceeds the pool's maximum object size.
    ObjectTooLarge { len: usize, max: usize },
    /// The file content is corrupt or was written by an incompatible
    /// version.
    Corrupt(String),
    /// An error from the storage substrate.
    Storage(poir_storage::StorageError),
    /// The store-level global-id table is full (2^28 simultaneous objects).
    GlobalIdsExhausted,
    /// The referenced file slot is not open in this store.
    NoSuchFile(u16),
}

impl fmt::Display for MnemeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MnemeError::NoSuchObject(id) => write!(f, "no such object {id:?}"),
            MnemeError::NoSuchPool(p) => write!(f, "no such pool {p:?}"),
            MnemeError::ObjectDeleted(id) => write!(f, "object {id:?} was deleted"),
            MnemeError::IdSpaceExhausted => write!(f, "file object-id space (2^28) exhausted"),
            MnemeError::ObjectTooLarge { len, max } => {
                write!(f, "object of {len} bytes exceeds pool maximum {max}")
            }
            MnemeError::Corrupt(msg) => write!(f, "corrupt mneme file: {msg}"),
            MnemeError::Storage(e) => write!(f, "storage error: {e}"),
            MnemeError::GlobalIdsExhausted => write!(f, "global id space exhausted"),
            MnemeError::NoSuchFile(slot) => write!(f, "no file open at store slot {slot}"),
        }
    }
}

impl std::error::Error for MnemeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MnemeError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<poir_storage::StorageError> for MnemeError {
    fn from(e: poir_storage::StorageError) -> Self {
        MnemeError::Storage(e)
    }
}

/// Result alias for Mneme operations.
pub type Result<T> = std::result::Result<T, MnemeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_the_offender() {
        let e = MnemeError::ObjectTooLarge { len: 10, max: 4 };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('4'));
        assert!(MnemeError::IdSpaceExhausted.to_string().contains("2^28"));
    }

    #[test]
    fn storage_errors_convert() {
        let s = poir_storage::StorageError::UnknownFile(3);
        let m: MnemeError = s.into();
        assert!(matches!(m, MnemeError::Storage(_)));
        assert!(std::error::Error::source(&m).is_some());
    }
}

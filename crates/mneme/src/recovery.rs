//! Write-ahead redo logging — the paper's future-work durability service.
//!
//! "The current version of Mneme is a prototype and does not provide all of
//! the services one might expect from a mature data management system, such
//! as concurrency control and transaction support. ... We expect that the
//! addition of these services would not introduce excessive overhead or
//! change the results reported above. For future work we plan to implement
//! some of the standard data management services not currently provided by
//! Mneme and verify the above claim." (Section 6)
//!
//! [`RecoverableFile`] wraps a [`MnemeFile`] and logs every mutation to a
//! separate redo log *before* applying it. A [`RecoverableFile::checkpoint`]
//! flushes the data file and truncates the log; after a crash,
//! [`RecoverableFile::recover`] reopens the data file (whose on-disk state
//! is the last checkpoint) and replays the log. Torn tail records are
//! detected by a per-record checksum and discarded.
//!
//! The `ablation_recovery` bench measures the overhead of logging on the
//! paper's read-dominated workload, validating the "no excessive overhead"
//! claim: lookups never touch the log.

use poir_storage::FileHandle;

use crate::error::{MnemeError, Result};
use crate::file::MnemeFile;
use crate::id::{ObjectId, PoolId};

const OP_CREATE: u8 = 1;
const OP_UPDATE: u8 = 2;
const OP_DELETE: u8 = 3;

/// FNV-1a, used as the log record checksum (self-contained; no external
/// dependency).
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x01000193);
    }
    h
}

/// A Mneme file with write-ahead redo logging.
pub struct RecoverableFile {
    inner: MnemeFile,
    log: FileHandle,
    log_end: u64,
}

impl RecoverableFile {
    /// Wraps a fresh or checkpoint-consistent file with an empty log.
    pub fn new(inner: MnemeFile, log: FileHandle) -> Result<Self> {
        log.truncate(0)?;
        Ok(RecoverableFile { inner, log, log_end: 0 })
    }

    /// Reopens `data` (at its last checkpoint) and replays the redo log,
    /// reproducing every mutation that was logged after that checkpoint.
    /// Replay stops at the first torn or corrupt record.
    pub fn recover(data: FileHandle, log: FileHandle) -> Result<Self> {
        let mut inner = MnemeFile::open(data)?;
        let log_len = log.len()?;
        let mut pos = 0u64;
        while pos < log_len {
            let Some((record, next)) = read_record(&log, pos, log_len)? else { break };
            match record {
                Record::Create { pool, id, data } => {
                    if inner.next_id_hint(pool)? != Some(id) {
                        inner.force_allocation_cursor(pool, id)?;
                    }
                    let created = inner.create_object(pool, &data)?;
                    if created != id {
                        return Err(MnemeError::Corrupt(format!(
                            "replay allocated {created:?}, log says {id:?}"
                        )));
                    }
                }
                Record::Update { id, data } => inner.update(id, &data)?,
                Record::Delete { id } => inner.delete(id)?,
            }
            pos = next;
        }
        // The replayed tail becomes durable at the next checkpoint; keep the
        // log as-is so a crash during recovery is harmless.
        Ok(RecoverableFile { inner, log, log_end: pos })
    }

    /// Read access to the wrapped file (reads are not logged).
    pub fn file(&mut self) -> &mut MnemeFile {
        &mut self.inner
    }

    fn append_record(&mut self, op: u8, pool: u8, id: u32, data: &[u8]) -> Result<()> {
        let mut rec = Vec::with_capacity(14 + data.len());
        rec.push(op);
        rec.push(pool);
        rec.extend_from_slice(&id.to_le_bytes());
        rec.extend_from_slice(&(data.len() as u32).to_le_bytes());
        rec.extend_from_slice(data);
        let sum = fnv1a(&rec);
        rec.extend_from_slice(&sum.to_le_bytes());
        self.log.write(self.log_end, &rec)?;
        self.log_end += rec.len() as u64;
        Ok(())
    }

    /// Creates an object, logging it first.
    pub fn create_object(&mut self, pool: PoolId, data: &[u8]) -> Result<ObjectId> {
        // The id the create will be assigned is deterministic; log it before
        // applying so the log always leads the data file.
        let hint = self.inner.next_id_hint(pool)?;
        match hint {
            Some(id) => {
                self.append_record(OP_CREATE, pool.0, id.raw(), data)?;
                let created = self.inner.create_object(pool, data)?;
                debug_assert_eq!(created, id);
                Ok(created)
            }
            None => {
                // A fresh logical segment will be allocated; create first,
                // then log the assigned id, then make the log durable before
                // acknowledging. (The data write is idempotent on replay.)
                let created = self.inner.create_object(pool, data)?;
                self.append_record(OP_CREATE, pool.0, created.raw(), data)?;
                Ok(created)
            }
        }
    }

    /// Updates an object, logging it first.
    pub fn update(&mut self, id: ObjectId, data: &[u8]) -> Result<()> {
        self.append_record(OP_UPDATE, 0, id.raw(), data)?;
        self.inner.update(id, data)
    }

    /// Deletes an object, logging it first.
    pub fn delete(&mut self, id: ObjectId) -> Result<()> {
        self.append_record(OP_DELETE, 0, id.raw(), &[])?;
        self.inner.delete(id)
    }

    /// Reads an object (never touches the log).
    pub fn get(&mut self, id: ObjectId) -> Result<crate::ObjectBytes> {
        self.inner.get(id)
    }

    /// Makes all logged mutations durable in the data file and truncates the
    /// log.
    pub fn checkpoint(&mut self) -> Result<()> {
        self.inner.flush()?;
        self.log.truncate(0)?;
        self.log.sync()?;
        self.log_end = 0;
        Ok(())
    }

    /// Current length of the redo log in bytes.
    pub fn log_bytes(&self) -> u64 {
        self.log_end
    }

    /// Unwraps the inner file (checkpointing first).
    pub fn into_inner(mut self) -> Result<MnemeFile> {
        self.checkpoint()?;
        Ok(self.inner)
    }
}

enum Record {
    Create { pool: PoolId, id: ObjectId, data: Vec<u8> },
    Update { id: ObjectId, data: Vec<u8> },
    Delete { id: ObjectId },
}

/// Reads one record at `pos`; returns `None` for a torn/corrupt tail.
fn read_record(log: &FileHandle, pos: u64, log_len: u64) -> Result<Option<(Record, u64)>> {
    if pos + 10 > log_len {
        return Ok(None);
    }
    let head = log.read(pos, 10)?;
    let op = head[0];
    let pool = head[1];
    let raw_id = u32::from_le_bytes(head[2..6].try_into().unwrap());
    let data_len = u32::from_le_bytes(head[6..10].try_into().unwrap()) as u64;
    let total = 10 + data_len + 4;
    if pos + total > log_len {
        return Ok(None);
    }
    let body = log.read(pos, (10 + data_len) as usize)?;
    let stored_sum = u32::from_le_bytes(log.read(pos + 10 + data_len, 4)?.try_into().unwrap());
    if fnv1a(&body) != stored_sum {
        return Ok(None);
    }
    let Some(id) = ObjectId::from_raw(raw_id) else {
        return Ok(None);
    };
    let data = body[10..].to_vec();
    let record = match op {
        OP_CREATE => Record::Create { pool: PoolId(pool), id, data },
        OP_UPDATE => Record::Update { id, data },
        OP_DELETE => Record::Delete { id },
        _ => return Ok(None),
    };
    Ok(Some((record, pos + total)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{PoolConfig, PoolKindConfig};
    use poir_storage::Device;

    fn configs() -> Vec<PoolConfig> {
        vec![
            PoolConfig { id: PoolId(0), kind: PoolKindConfig::Small },
            PoolConfig { id: PoolId(1), kind: PoolKindConfig::Packed { segment_size: 512 } },
            PoolConfig {
                id: PoolId(2),
                kind: PoolKindConfig::SegmentPerObject { embedded_refs: false },
            },
        ]
    }

    fn fresh(dev: &std::sync::Arc<Device>) -> (RecoverableFile, FileHandle, FileHandle) {
        let data = dev.create_file();
        let log = dev.create_file();
        let inner = MnemeFile::create(data.clone(), &configs(), 8).unwrap();
        (RecoverableFile::new(inner, log.clone()).unwrap(), data, log)
    }

    #[test]
    fn mutations_after_checkpoint_survive_a_crash() {
        let dev = Device::with_defaults();
        let (mut rf, data, log) = fresh(&dev);
        let a = rf.create_object(PoolId(1), b"before checkpoint").unwrap();
        rf.checkpoint().unwrap();
        let b = rf.create_object(PoolId(1), b"after checkpoint").unwrap();
        rf.update(a, b"before checkpoint, updated").unwrap();
        let c = rf.create_object(PoolId(0), b"small").unwrap();
        rf.delete(c).unwrap();
        assert!(rf.log_bytes() > 0);
        drop(rf); // crash: no checkpoint

        let mut recovered = RecoverableFile::recover(data, log).unwrap();
        assert_eq!(recovered.get(a).unwrap(), b"before checkpoint, updated");
        assert_eq!(recovered.get(b).unwrap(), b"after checkpoint");
        assert!(matches!(recovered.get(c), Err(MnemeError::ObjectDeleted(_))));
    }

    #[test]
    fn replay_reproduces_exact_ids() {
        let dev = Device::with_defaults();
        let (mut rf, data, log) = fresh(&dev);
        let mut ids = Vec::new();
        for i in 0..600u32 {
            // Interleave pools so logical segments interleave too.
            let pool = PoolId((i % 3) as u8);
            let payload = vec![i as u8; (i % 10) as usize + 1];
            ids.push((rf.create_object(pool, &payload).unwrap(), payload));
        }
        drop(rf);
        let mut recovered = RecoverableFile::recover(data, log).unwrap();
        for (id, payload) in &ids {
            assert_eq!(&recovered.get(*id).unwrap(), payload);
        }
    }

    #[test]
    fn torn_tail_record_is_ignored() {
        let dev = Device::with_defaults();
        let (mut rf, data, log) = fresh(&dev);
        let a = rf.create_object(PoolId(1), b"intact").unwrap();
        rf.create_object(PoolId(1), b"this record will be torn").unwrap();
        drop(rf);
        // Tear the final record's checksum.
        let len = log.len().unwrap();
        log.truncate(len - 2).unwrap();
        let mut recovered = RecoverableFile::recover(data, log).unwrap();
        assert_eq!(recovered.get(a).unwrap(), b"intact");
        // The torn create never happened; a new create proceeds normally.
        let b = recovered.create_object(PoolId(1), b"fresh").unwrap();
        assert_eq!(recovered.get(b).unwrap(), b"fresh");
    }

    #[test]
    fn checkpoint_truncates_log_and_reads_skip_it() {
        let dev = Device::with_defaults();
        let (mut rf, _data, log) = fresh(&dev);
        let a = rf.create_object(PoolId(2), &vec![9u8; 5000]).unwrap();
        assert!(rf.log_bytes() >= 5000);
        rf.checkpoint().unwrap();
        assert_eq!(rf.log_bytes(), 0);
        assert_eq!(log.len().unwrap(), 0);
        let before = log.len().unwrap();
        rf.get(a).unwrap();
        assert_eq!(log.len().unwrap(), before, "reads never touch the log");
    }

    #[test]
    fn recover_from_empty_log_is_a_plain_open() {
        let dev = Device::with_defaults();
        let (mut rf, data, log) = fresh(&dev);
        let a = rf.create_object(PoolId(1), b"persisted").unwrap();
        rf.checkpoint().unwrap();
        drop(rf);
        let mut recovered = RecoverableFile::recover(data, log).unwrap();
        assert_eq!(recovered.get(a).unwrap(), b"persisted");
    }

    #[test]
    fn into_inner_checkpoints() {
        let dev = Device::with_defaults();
        let (mut rf, data, log) = fresh(&dev);
        let a = rf.create_object(PoolId(1), b"x").unwrap();
        let inner = rf.into_inner().unwrap();
        assert_eq!(inner.get(a).unwrap(), b"x");
        assert_eq!(log.len().unwrap(), 0);
        drop(inner);
        let reopened = MnemeFile::open(data).unwrap();
        assert_eq!(reopened.get(a).unwrap(), b"x");
    }
}

//! Write-ahead redo logging — the paper's future-work durability service.
//!
//! "The current version of Mneme is a prototype and does not provide all of
//! the services one might expect from a mature data management system, such
//! as concurrency control and transaction support. ... We expect that the
//! addition of these services would not introduce excessive overhead or
//! change the results reported above. For future work we plan to implement
//! some of the standard data management services not currently provided by
//! Mneme and verify the above claim." (Section 6)
//!
//! [`RecoverableFile`] wraps a [`MnemeFile`] and logs every mutation to a
//! separate redo log *before* applying it. A [`RecoverableFile::checkpoint`]
//! flushes the data file and truncates the log; after a crash,
//! [`RecoverableFile::recover`] reopens the data file (whose on-disk state
//! is the last checkpoint) and replays the log. Torn tail records are
//! detected by a per-record checksum and discarded.
//!
//! The `ablation_recovery` bench measures the overhead of logging on the
//! paper's read-dominated workload, validating the "no excessive overhead"
//! claim: lookups never touch the log.

use poir_storage::FileHandle;

use crate::error::{MnemeError, Result};
use crate::file::MnemeFile;
use crate::id::{ObjectId, PoolId};

const OP_CREATE: u8 = 1;
const OP_UPDATE: u8 = 2;
const OP_DELETE: u8 = 3;

/// FNV-1a, used as the log record checksum (self-contained; no external
/// dependency).
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x01000193);
    }
    h
}

/// A Mneme file with write-ahead redo logging.
pub struct RecoverableFile {
    inner: MnemeFile,
    log: FileHandle,
    log_end: u64,
}

impl RecoverableFile {
    /// Wraps a fresh or checkpoint-consistent file with an empty log.
    pub fn new(inner: MnemeFile, log: FileHandle) -> Result<Self> {
        log.truncate(0)?;
        Ok(RecoverableFile { inner, log, log_end: 0 })
    }

    /// Reopens `data` (at its last checkpoint) and replays the redo log,
    /// reproducing every mutation that was logged after that checkpoint.
    /// Replay stops at the first torn or corrupt record.
    ///
    /// Replay is **idempotent** and **self-correcting**. Two kinds of
    /// already-applied state can greet a replayed record:
    ///
    /// * a crash between [`Self::checkpoint`]'s data flush and its log
    ///   truncation leaves the data file at the *new* checkpoint with the
    ///   full log still present — every record is already durable;
    /// * dirty-segment evictions between checkpoints write mutated
    ///   segment images back over their checkpointed bytes, so individual
    ///   objects can be *ahead* of the checkpoint (updated in place, or
    ///   tombstoned by a relocation or delete that ran after the
    ///   checkpoint).
    ///
    /// Both are safe because every mutation syncs its log record before
    /// touching the data file (see [`Self::append_record`]): any leaked
    /// data write is covered by a durable log record, so replaying the
    /// surviving log always revisits every leaked object. Each record
    /// classifies the object's current state and forces it to the logged
    /// payload — resurrecting spuriously-tombstoned objects — so the
    /// recovered file is exactly the state at the last durable record.
    pub fn recover(data: FileHandle, log: FileHandle) -> Result<Self> {
        let mut inner = MnemeFile::open(data)?;
        let log_len = log.len()?;
        let mut pos = 0u64;
        while pos < log_len {
            let Some((record, next)) = read_record(&log, pos, log_len)? else { break };
            match record {
                Record::Create { pool, id, data } => match probe(&inner, id)? {
                    // Already created by a flushed-but-unacknowledged
                    // checkpoint; rewrite so the payload tracks the log
                    // (a later logged update will move it forward again).
                    Probe::Live => inner.update(id, &data)?,
                    // Either the create *and* a later delete are already
                    // durable, or a post-checkpoint tombstone leaked into
                    // the checkpointed segment. Indistinguishable — force
                    // the logged payload back; if a delete truly follows,
                    // its own record re-deletes downstream.
                    Probe::Deleted => inner.resurrect(id, &data)?,
                    Probe::Absent => {
                        if inner.next_id_hint(pool)? != Some(id) {
                            inner.force_allocation_cursor(pool, id)?;
                        }
                        let created = inner.create_object(pool, &data)?;
                        if created != id {
                            return Err(MnemeError::Corrupt(format!(
                                "replay allocated {created:?}, log says {id:?}"
                            )));
                        }
                    }
                },
                Record::Update { id, data } => match probe(&inner, id)? {
                    Probe::Live => inner.update(id, &data)?,
                    // A later logged delete already reached the data file,
                    // or a leaked tombstone shadows the object; either way
                    // the log is authoritative from here on.
                    Probe::Deleted => inner.resurrect(id, &data)?,
                    Probe::Absent => {
                        return Err(MnemeError::Corrupt(format!(
                            "log updates {id:?}, which the data file never saw"
                        )))
                    }
                },
                Record::Delete { id } => match probe(&inner, id)? {
                    Probe::Live => inner.delete(id)?,
                    Probe::Deleted => {}
                    Probe::Absent => {
                        return Err(MnemeError::Corrupt(format!(
                            "log deletes {id:?}, which the data file never saw"
                        )))
                    }
                },
            }
            pos = next;
        }
        // The replayed tail becomes durable at the next checkpoint; keep the
        // log as-is so a crash during recovery is harmless.
        Ok(RecoverableFile { inner, log, log_end: pos })
    }

    /// Read access to the wrapped file (reads are not logged).
    pub fn file(&mut self) -> &mut MnemeFile {
        &mut self.inner
    }

    /// Appends one record and syncs the log — the write-ahead rule. The
    /// sync must land *before* the mutation touches the data file: applying
    /// an op can evict dirty segments, overwriting checkpointed bytes in
    /// place, and [`Self::recover`] can only repair such leaks for ops
    /// whose log records survived the crash.
    fn append_record(&mut self, op: u8, pool: u8, id: u32, data: &[u8]) -> Result<()> {
        let mut rec = Vec::with_capacity(14 + data.len());
        rec.push(op);
        rec.push(pool);
        rec.extend_from_slice(&id.to_le_bytes());
        rec.extend_from_slice(&(data.len() as u32).to_le_bytes());
        rec.extend_from_slice(data);
        let sum = fnv1a(&rec);
        rec.extend_from_slice(&sum.to_le_bytes());
        self.log.write(self.log_end, &rec)?;
        self.log.sync()?;
        self.log_end += rec.len() as u64;
        Ok(())
    }

    /// Creates an object, logging it first.
    pub fn create_object(&mut self, pool: PoolId, data: &[u8]) -> Result<ObjectId> {
        // The id the create will be assigned is deterministic; log it before
        // applying so the log always leads the data file.
        let hint = self.inner.next_id_hint(pool)?;
        match hint {
            Some(id) => {
                self.append_record(OP_CREATE, pool.0, id.raw(), data)?;
                let created = self.inner.create_object(pool, data)?;
                debug_assert_eq!(created, id);
                Ok(created)
            }
            None => {
                // A fresh logical segment will be allocated; create first,
                // then log the assigned id, then make the log durable before
                // acknowledging. (The data write is idempotent on replay.)
                let created = self.inner.create_object(pool, data)?;
                self.append_record(OP_CREATE, pool.0, created.raw(), data)?;
                Ok(created)
            }
        }
    }

    /// Updates an object, logging it first.
    pub fn update(&mut self, id: ObjectId, data: &[u8]) -> Result<()> {
        self.append_record(OP_UPDATE, 0, id.raw(), data)?;
        self.inner.update(id, data)
    }

    /// Deletes an object, logging it first.
    pub fn delete(&mut self, id: ObjectId) -> Result<()> {
        self.append_record(OP_DELETE, 0, id.raw(), &[])?;
        self.inner.delete(id)
    }

    /// Reads an object (never touches the log).
    pub fn get(&mut self, id: ObjectId) -> Result<crate::ObjectBytes> {
        self.inner.get(id)
    }

    /// Makes all logged mutations durable in the data file and truncates the
    /// log.
    ///
    /// Ordering is load-bearing: the data file must be durably flushed
    /// *before* the log shrinks, otherwise a crash between the two would
    /// leave mutations in neither place. `flush` early-returns when the
    /// file is clean, so the data handle is synced explicitly — covering
    /// the case where replayed-or-logged records exist but the in-memory
    /// state was already flushed.
    pub fn checkpoint(&mut self) -> Result<()> {
        self.inner.flush()?;
        self.inner.handle().sync()?;
        self.log.truncate(0)?;
        self.log.sync()?;
        self.log_end = 0;
        Ok(())
    }

    /// Current length of the redo log in bytes.
    pub fn log_bytes(&self) -> u64 {
        self.log_end
    }

    /// Unwraps the inner file (checkpointing first).
    pub fn into_inner(mut self) -> Result<MnemeFile> {
        self.checkpoint()?;
        Ok(self.inner)
    }
}

enum Record {
    Create { pool: PoolId, id: ObjectId, data: Vec<u8> },
    Update { id: ObjectId, data: Vec<u8> },
    Delete { id: ObjectId },
}

/// What the data file currently knows about an object, used to classify
/// log records during idempotent replay.
enum Probe {
    /// The object exists with some payload.
    Live,
    /// The object existed and carries a delete tombstone.
    Deleted,
    /// The data file has never seen this id.
    Absent,
}

fn probe(inner: &MnemeFile, id: ObjectId) -> Result<Probe> {
    match inner.get(id) {
        Ok(_) => Ok(Probe::Live),
        Err(MnemeError::ObjectDeleted(_)) => Ok(Probe::Deleted),
        Err(MnemeError::NoSuchObject(_)) => Ok(Probe::Absent),
        Err(e) => Err(e),
    }
}

/// Reads one record at `pos`; returns `None` for a torn/corrupt tail.
fn read_record(log: &FileHandle, pos: u64, log_len: u64) -> Result<Option<(Record, u64)>> {
    if pos + 10 > log_len {
        return Ok(None);
    }
    let head = log.read(pos, 10)?;
    let op = head[0];
    let pool = head[1];
    let raw_id = u32::from_le_bytes(head[2..6].try_into().unwrap());
    let data_len = u32::from_le_bytes(head[6..10].try_into().unwrap()) as u64;
    let total = 10 + data_len + 4;
    if pos + total > log_len {
        return Ok(None);
    }
    let body = log.read(pos, (10 + data_len) as usize)?;
    let stored_sum = u32::from_le_bytes(log.read(pos + 10 + data_len, 4)?.try_into().unwrap());
    if fnv1a(&body) != stored_sum {
        return Ok(None);
    }
    let Some(id) = ObjectId::from_raw(raw_id) else {
        return Ok(None);
    };
    let data = body[10..].to_vec();
    let record = match op {
        OP_CREATE => Record::Create { pool: PoolId(pool), id, data },
        OP_UPDATE => Record::Update { id, data },
        OP_DELETE => Record::Delete { id },
        _ => return Ok(None),
    };
    Ok(Some((record, pos + total)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{PoolConfig, PoolKindConfig};
    use poir_storage::Device;

    fn configs() -> Vec<PoolConfig> {
        vec![
            PoolConfig { id: PoolId(0), kind: PoolKindConfig::Small },
            PoolConfig { id: PoolId(1), kind: PoolKindConfig::Packed { segment_size: 512 } },
            PoolConfig {
                id: PoolId(2),
                kind: PoolKindConfig::SegmentPerObject { embedded_refs: false },
            },
        ]
    }

    fn fresh(dev: &std::sync::Arc<Device>) -> (RecoverableFile, FileHandle, FileHandle) {
        let data = dev.create_file();
        let log = dev.create_file();
        let inner = MnemeFile::create(data.clone(), &configs(), 8).unwrap();
        (RecoverableFile::new(inner, log.clone()).unwrap(), data, log)
    }

    #[test]
    fn mutations_after_checkpoint_survive_a_crash() {
        let dev = Device::with_defaults();
        let (mut rf, data, log) = fresh(&dev);
        let a = rf.create_object(PoolId(1), b"before checkpoint").unwrap();
        rf.checkpoint().unwrap();
        let b = rf.create_object(PoolId(1), b"after checkpoint").unwrap();
        rf.update(a, b"before checkpoint, updated").unwrap();
        let c = rf.create_object(PoolId(0), b"small").unwrap();
        rf.delete(c).unwrap();
        assert!(rf.log_bytes() > 0);
        drop(rf); // crash: no checkpoint

        let mut recovered = RecoverableFile::recover(data, log).unwrap();
        assert_eq!(recovered.get(a).unwrap(), b"before checkpoint, updated");
        assert_eq!(recovered.get(b).unwrap(), b"after checkpoint");
        assert!(matches!(recovered.get(c), Err(MnemeError::ObjectDeleted(_))));
    }

    #[test]
    fn replay_reproduces_exact_ids() {
        let dev = Device::with_defaults();
        let (mut rf, data, log) = fresh(&dev);
        let mut ids = Vec::new();
        for i in 0..600u32 {
            // Interleave pools so logical segments interleave too.
            let pool = PoolId((i % 3) as u8);
            let payload = vec![i as u8; (i % 10) as usize + 1];
            ids.push((rf.create_object(pool, &payload).unwrap(), payload));
        }
        drop(rf);
        let mut recovered = RecoverableFile::recover(data, log).unwrap();
        for (id, payload) in &ids {
            assert_eq!(&recovered.get(*id).unwrap(), payload);
        }
    }

    #[test]
    fn torn_tail_record_is_ignored() {
        let dev = Device::with_defaults();
        let (mut rf, data, log) = fresh(&dev);
        let a = rf.create_object(PoolId(1), b"intact").unwrap();
        rf.create_object(PoolId(1), b"this record will be torn").unwrap();
        drop(rf);
        // Tear the final record's checksum.
        let len = log.len().unwrap();
        log.truncate(len - 2).unwrap();
        let mut recovered = RecoverableFile::recover(data, log).unwrap();
        assert_eq!(recovered.get(a).unwrap(), b"intact");
        // The torn create never happened; a new create proceeds normally.
        let b = recovered.create_object(PoolId(1), b"fresh").unwrap();
        assert_eq!(recovered.get(b).unwrap(), b"fresh");
    }

    #[test]
    fn checkpoint_truncates_log_and_reads_skip_it() {
        let dev = Device::with_defaults();
        let (mut rf, _data, log) = fresh(&dev);
        let a = rf.create_object(PoolId(2), &vec![9u8; 5000]).unwrap();
        assert!(rf.log_bytes() >= 5000);
        rf.checkpoint().unwrap();
        assert_eq!(rf.log_bytes(), 0);
        assert_eq!(log.len().unwrap(), 0);
        let before = log.len().unwrap();
        rf.get(a).unwrap();
        assert_eq!(log.len().unwrap(), before, "reads never touch the log");
    }

    #[test]
    fn crash_between_data_flush_and_log_truncate_replays_idempotently() {
        // Simulates checkpoint() dying between its two halves: the data
        // file is durably at the *new* checkpoint, but the log was never
        // truncated, so recovery replays records that are already applied.
        let dev = Device::with_defaults();
        let (mut rf, data, log) = fresh(&dev);
        let a = rf.create_object(PoolId(1), b"will be updated").unwrap();
        let b = rf.create_object(PoolId(1), b"will be deleted").unwrap();
        rf.update(a, b"updated once").unwrap();
        rf.delete(b).unwrap();
        let c = rf.create_object(PoolId(0), b"small").unwrap();
        let d = rf.create_object(PoolId(2), &vec![4u8; 3000]).unwrap();
        // First half of checkpoint only: flush data, leave the log intact.
        rf.file().flush().unwrap();
        assert!(rf.log_bytes() > 0, "log must still hold every record");
        drop(rf);

        let mut recovered = RecoverableFile::recover(data, log).unwrap();
        assert_eq!(recovered.get(a).unwrap(), b"updated once");
        assert!(matches!(recovered.get(b), Err(MnemeError::ObjectDeleted(_))));
        assert_eq!(recovered.get(c).unwrap(), b"small");
        assert_eq!(recovered.get(d).unwrap(), vec![4u8; 3000]);
        let report = recovered.file().validate().unwrap();
        assert!(report.is_clean(), "problems: {:?}", report.problems);
        // New allocations continue past the replayed ids.
        let e = recovered.create_object(PoolId(1), b"fresh").unwrap();
        assert!(![a, b, c, d].contains(&e));
    }

    #[test]
    fn leaked_tombstone_from_dirty_eviction_is_resurrected() {
        // Post-checkpoint relocations tombstone the old copy inside the
        // *checkpointed* segment image; with a small buffer that dirty
        // image is evicted and written back in place, so after a crash the
        // data file says "deleted" for an object the log says is live.
        // Replay must resurrect it from the logged payload.
        let dev = Device::with_defaults();
        let (mut rf, data, log) = fresh(&dev);
        let o0 = rf.create_object(PoolId(1), &[0u8; 28]).unwrap();
        rf.update(o0, &[1u8; 53]).unwrap();
        let o1 = rf.create_object(PoolId(1), &[2u8; 101]).unwrap();
        rf.update(o1, &[3u8; 23]).unwrap();
        let o2 = rf.create_object(PoolId(1), &[4u8; 100]).unwrap();
        let o3 = rf.create_object(PoolId(1), &[5u8; 15]).unwrap();
        rf.delete(o2).unwrap();
        rf.checkpoint().unwrap();
        rf.update(o1, &[6u8; 69]).unwrap();
        rf.update(o1, &[7u8; 59]).unwrap();
        let o4 = rf.create_object(PoolId(1), &[8u8; 83]).unwrap();
        rf.update(o1, &[9u8; 104]).unwrap();
        rf.update(o3, &[10u8; 35]).unwrap();
        drop(rf);
        // The tombstone really leaked: a plain open (= the checkpoint plus
        // any in-place leaks) sees o1 deleted even though the log replays
        // it to 104 bytes.
        let leaked = MnemeFile::open(data.clone()).unwrap();
        assert!(matches!(leaked.get(o1), Err(MnemeError::ObjectDeleted(_))));
        drop(leaked);

        let mut recovered = RecoverableFile::recover(data, log).unwrap();
        assert_eq!(recovered.get(o0).unwrap(), vec![1u8; 53]);
        assert_eq!(recovered.get(o1).unwrap(), vec![9u8; 104]);
        assert!(matches!(recovered.get(o2), Err(MnemeError::ObjectDeleted(_))));
        assert_eq!(recovered.get(o3).unwrap(), vec![10u8; 35]);
        assert_eq!(recovered.get(o4).unwrap(), vec![8u8; 83]);
        let report = recovered.file().validate().unwrap();
        assert!(report.is_clean(), "problems: {:?}", report.problems);
    }

    #[test]
    fn recover_from_empty_log_is_a_plain_open() {
        let dev = Device::with_defaults();
        let (mut rf, data, log) = fresh(&dev);
        let a = rf.create_object(PoolId(1), b"persisted").unwrap();
        rf.checkpoint().unwrap();
        drop(rf);
        let mut recovered = RecoverableFile::recover(data, log).unwrap();
        assert_eq!(recovered.get(a).unwrap(), b"persisted");
    }

    #[test]
    fn into_inner_checkpoints() {
        let dev = Device::with_defaults();
        let (mut rf, data, log) = fresh(&dev);
        let a = rf.create_object(PoolId(1), b"x").unwrap();
        let inner = rf.into_inner().unwrap();
        assert_eq!(inner.get(a).unwrap(), b"x");
        assert_eq!(log.len().unwrap(), 0);
        drop(inner);
        let reopened = MnemeFile::open(data).unwrap();
        assert_eq!(reopened.get(a).unwrap(), b"x");
    }
}

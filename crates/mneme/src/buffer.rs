//! The extensible buffering mechanism.
//!
//! "Support for sophisticated buffer management is provided by an extensible
//! buffering mechanism. Buffers may be defined by supplying a number of
//! standard buffer operations (e.g., allocate and free) in a system defined
//! format. How these operations are implemented determines the policies used
//! to manage the buffer. A pool attaches to a buffer in order to make use of
//! the buffer." (Section 3.2)
//!
//! [`Buffer`] is the "system defined format"; [`LruBuffer`] implements the
//! policy the paper used: "least recently used (LRU) with a slight
//! optimization" — the optimization being query-tree *reservation* of
//! already-resident segments before evaluation begins (Section 3.3).
//!
//! Dirty segments evicted by a buffer are handed back to the caller, which
//! plays the role of the pool's "modified segment save routine" call-back.

use std::collections::HashMap;

use crate::segment::{SegmentAddr, SegmentImage};

/// Reference/hit counters for one buffer — the raw data behind Table 6.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Object accesses routed through this buffer.
    pub refs: u64,
    /// Accesses satisfied by a resident segment.
    pub hits: u64,
}

impl BufferStats {
    /// Hit rate as the paper reports it (0 when there were no references).
    pub fn hit_rate(&self) -> f64 {
        if self.refs == 0 {
            0.0
        } else {
            self.hits as f64 / self.refs as f64
        }
    }
}

/// The standard buffer operations a pool is written against.
pub trait Buffer: Send {
    /// Buffer capacity in bytes. Zero means "retain only the segment most
    /// recently inserted", i.e. no caching across accesses.
    fn capacity(&self) -> usize;

    /// Returns the resident segment at `addr`, promoting it in the
    /// replacement order. Needed only by mutating paths — read paths use
    /// [`Buffer::touch`] + [`Buffer::probe`] so the promotion bookkeeping
    /// and the (potentially long) read of the image are decoupled.
    fn lookup(&mut self, addr: SegmentAddr) -> Option<&mut SegmentImage>;

    /// Promotion bookkeeping only: marks `addr` as just-referenced in the
    /// replacement order and reports whether it is resident. Splitting this
    /// from [`Buffer::probe`] lets read paths finish the exclusive part of
    /// the access in O(1) instead of holding a `&mut` borrow across the
    /// whole segment read.
    fn touch(&mut self, addr: SegmentAddr) -> bool;

    /// Shared, non-promoting access to the resident segment at `addr` — the
    /// read-path counterpart of [`Buffer::lookup`].
    fn probe(&self, addr: SegmentAddr) -> Option<&SegmentImage>;

    /// Whether `addr` is resident (no promotion, no stats).
    fn is_resident(&self, addr: SegmentAddr) -> bool;

    /// Makes `image` resident at `addr`, evicting as needed. Evicted
    /// segments are returned so the caller can save the dirty ones — the
    /// "modified segment save" call-back. Other segments are evicted first,
    /// but if the buffer is still over capacity the just-inserted segment
    /// itself is evicted (so a zero-capacity buffer caches nothing at all,
    /// and a segment larger than the whole buffer is never cached — callers
    /// must extract what they need *before* inserting).
    fn insert(
        &mut self,
        addr: SegmentAddr,
        image: SegmentImage,
    ) -> Vec<(SegmentAddr, SegmentImage)>;

    /// Removes and returns the segment at `addr`, if resident.
    fn remove(&mut self, addr: SegmentAddr) -> Option<SegmentImage>;

    /// Pins `addr` if resident so it cannot be evicted until
    /// [`Buffer::release_reservations`]. Returns whether a pin was placed.
    fn reserve(&mut self, addr: SegmentAddr) -> bool;

    /// Clears all reservations placed by [`Buffer::reserve`].
    fn release_reservations(&mut self);

    /// Removes every resident segment (used at flush/close time).
    fn drain(&mut self) -> Vec<(SegmentAddr, SegmentImage)>;

    /// Records one object access and whether it hit. Kept separate from
    /// [`Buffer::lookup`] because a single object access may involve no
    /// lookup at all once its segment is known resident.
    fn record_ref(&mut self, hit: bool);

    /// Current counters.
    fn stats(&self) -> BufferStats;

    /// Resets counters (between query sets).
    fn reset_stats(&mut self);

    /// Bytes of segment data currently resident.
    fn resident_bytes(&self) -> usize;
}

/// Which replacement policy a pool's buffer should use.
///
/// The paper's extensible buffering mechanism exists so "other store and
/// buffer organizations" can be investigated; this enum names the three
/// organizations the repo ships and lets callers select one per pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BufferPolicy {
    /// The paper's policy: strict LRU ([`LruBuffer`]).
    #[default]
    Lru,
    /// Clock / second-chance approximation ([`crate::ClockBuffer`]).
    Clock,
    /// Scan-resistant S3-FIFO ([`crate::S3FifoBuffer`]).
    S3Fifo,
}

impl BufferPolicy {
    /// Builds a buffer of `capacity` bytes implementing this policy.
    pub fn build(self, capacity: usize) -> Box<dyn Buffer> {
        match self {
            BufferPolicy::Lru => Box::new(LruBuffer::new(capacity)),
            BufferPolicy::Clock => Box::new(crate::ClockBuffer::new(capacity)),
            BufferPolicy::S3Fifo => Box::new(crate::S3FifoBuffer::new(capacity)),
        }
    }
}

impl std::fmt::Display for BufferPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BufferPolicy::Lru => "lru",
            BufferPolicy::Clock => "clock",
            BufferPolicy::S3Fifo => "s3fifo",
        })
    }
}

impl std::str::FromStr for BufferPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "lru" => Ok(BufferPolicy::Lru),
            "clock" => Ok(BufferPolicy::Clock),
            "s3fifo" | "s3-fifo" => Ok(BufferPolicy::S3Fifo),
            other => Err(format!("unknown buffer policy: {other} (expected lru|clock|s3fifo)")),
        }
    }
}

const NIL: usize = usize::MAX;

struct Node {
    addr: SegmentAddr,
    image: Option<SegmentImage>,
    pinned: bool,
    prev: usize,
    next: usize,
}

/// Byte-capacity LRU buffer with reservation support.
pub struct LruBuffer {
    capacity: usize,
    map: HashMap<SegmentAddr, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    resident_bytes: usize,
    stats: BufferStats,
}

impl std::fmt::Debug for LruBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LruBuffer")
            .field("capacity", &self.capacity)
            .field("resident_segments", &self.map.len())
            .field("resident_bytes", &self.resident_bytes)
            .field("stats", &self.stats)
            .finish()
    }
}

impl LruBuffer {
    /// Creates a buffer of `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        LruBuffer {
            capacity,
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            resident_bytes: 0,
            stats: BufferStats::default(),
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn evict_node(&mut self, idx: usize) -> (SegmentAddr, SegmentImage) {
        self.unlink(idx);
        let addr = self.nodes[idx].addr;
        let image = self.nodes[idx].image.take().expect("resident node has image");
        self.map.remove(&addr);
        self.free.push(idx);
        self.resident_bytes -= image.len();
        (addr, image)
    }

    /// Evicts unpinned LRU segments until within capacity. `last_resort` is
    /// evicted only after every other unpinned segment — it is the segment
    /// whose insertion triggered enforcement.
    fn enforce_capacity(&mut self, last_resort: usize) -> Vec<(SegmentAddr, SegmentImage)> {
        let mut evicted = Vec::new();
        while self.resident_bytes > self.capacity {
            // Walk from the LRU end to find an evictable node.
            let mut cur = self.tail;
            while cur != NIL && (cur == last_resort || self.nodes[cur].pinned) {
                cur = self.nodes[cur].prev;
            }
            if cur == NIL {
                // Only the newcomer and pinned segments remain. Evict the
                // newcomer itself unless it is pinned.
                if !self.nodes[last_resort].pinned
                    && self.map.contains_key(&self.nodes[last_resort].addr)
                {
                    evicted.push(self.evict_node(last_resort));
                }
                break;
            }
            evicted.push(self.evict_node(cur));
        }
        evicted
    }
}

impl Buffer for LruBuffer {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn lookup(&mut self, addr: SegmentAddr) -> Option<&mut SegmentImage> {
        let idx = self.map.get(&addr).copied()?;
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
        self.nodes[idx].image.as_mut()
    }

    fn touch(&mut self, addr: SegmentAddr) -> bool {
        let Some(idx) = self.map.get(&addr).copied() else {
            return false;
        };
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
        true
    }

    fn probe(&self, addr: SegmentAddr) -> Option<&SegmentImage> {
        let idx = self.map.get(&addr).copied()?;
        self.nodes[idx].image.as_ref()
    }

    fn is_resident(&self, addr: SegmentAddr) -> bool {
        self.map.contains_key(&addr)
    }

    fn insert(
        &mut self,
        addr: SegmentAddr,
        image: SegmentImage,
    ) -> Vec<(SegmentAddr, SegmentImage)> {
        // Replace any existing image at this address.
        let mut evicted = Vec::new();
        if let Some(idx) = self.map.get(&addr).copied() {
            let old = self.nodes[idx].image.replace(image);
            if let Some(old) = old {
                self.resident_bytes -= old.len();
            }
            self.resident_bytes += self.nodes[idx].image.as_ref().unwrap().len();
            if self.head != idx {
                self.unlink(idx);
                self.push_front(idx);
            }
            evicted.extend(self.enforce_capacity(idx));
            return evicted;
        }
        self.resident_bytes += image.len();
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i] =
                    Node { addr, image: Some(image), pinned: false, prev: NIL, next: NIL };
                i
            }
            None => {
                self.nodes.push(Node {
                    addr,
                    image: Some(image),
                    pinned: false,
                    prev: NIL,
                    next: NIL,
                });
                self.nodes.len() - 1
            }
        };
        self.push_front(idx);
        self.map.insert(addr, idx);
        evicted.extend(self.enforce_capacity(idx));
        evicted
    }

    fn remove(&mut self, addr: SegmentAddr) -> Option<SegmentImage> {
        let idx = self.map.get(&addr).copied()?;
        Some(self.evict_node(idx).1)
    }

    fn reserve(&mut self, addr: SegmentAddr) -> bool {
        match self.map.get(&addr).copied() {
            Some(idx) => {
                self.nodes[idx].pinned = true;
                true
            }
            None => false,
        }
    }

    fn release_reservations(&mut self) {
        for node in &mut self.nodes {
            node.pinned = false;
        }
    }

    fn drain(&mut self) -> Vec<(SegmentAddr, SegmentImage)> {
        let mut out = Vec::with_capacity(self.map.len());
        while self.tail != NIL {
            let idx = self.tail;
            out.push(self.evict_node(idx));
        }
        debug_assert_eq!(self.resident_bytes, 0);
        out
    }

    fn record_ref(&mut self, hit: bool) {
        self.stats.refs += 1;
        if hit {
            self.stats.hits += 1;
        }
    }

    fn stats(&self) -> BufferStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = BufferStats::default();
    }

    fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(offset: u64) -> SegmentAddr {
        SegmentAddr { offset, len: 0 }
    }

    fn image(len: usize, fill: u8) -> SegmentImage {
        SegmentImage::from_disk(vec![fill; len])
    }

    #[test]
    fn lookup_hits_resident_segments() {
        let mut b = LruBuffer::new(100);
        b.insert(addr(0), image(10, 1));
        assert!(b.lookup(addr(0)).is_some());
        assert!(b.lookup(addr(8)).is_none());
        assert!(b.is_resident(addr(0)));
        assert_eq!(b.resident_bytes(), 10);
    }

    #[test]
    fn byte_capacity_evicts_lru() {
        let mut b = LruBuffer::new(25);
        assert!(b.insert(addr(0), image(10, 0)).is_empty());
        assert!(b.insert(addr(1), image(10, 1)).is_empty());
        b.lookup(addr(0)); // promote 0; 1 is now LRU
        let evicted = b.insert(addr(2), image(10, 2));
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].0, addr(1));
        assert!(b.is_resident(addr(0)));
        assert!(b.is_resident(addr(2)));
        assert_eq!(b.resident_bytes(), 20);
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut b = LruBuffer::new(0);
        let evicted = b.insert(addr(0), image(10, 0));
        assert_eq!(evicted.len(), 1, "zero-capacity buffer bounces the newcomer");
        assert_eq!(evicted[0].0, addr(0));
        assert!(!b.is_resident(addr(0)));
        assert_eq!(b.resident_bytes(), 0);
    }

    #[test]
    fn oversized_segment_is_not_cached() {
        let mut b = LruBuffer::new(15);
        b.insert(addr(0), image(10, 0));
        let evicted = b.insert(addr(1), image(100, 1));
        // Both the old resident and the oversized newcomer are evicted.
        assert_eq!(evicted.len(), 2);
        assert_eq!(evicted[0].0, addr(0));
        assert_eq!(evicted[1].0, addr(1));
        assert!(!b.is_resident(addr(1)));
        assert_eq!(b.resident_bytes(), 0);
    }

    #[test]
    fn pinned_segments_survive_eviction_pressure() {
        let mut b = LruBuffer::new(20);
        b.insert(addr(0), image(10, 0));
        b.insert(addr(1), image(10, 1));
        assert!(b.reserve(addr(0)));
        assert!(!b.reserve(addr(9)), "reserving an absent segment is a no-op");
        // addr(0) is LRU but pinned; addr(1) gets evicted instead.
        let evicted = b.insert(addr(2), image(10, 2));
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].0, addr(1));
        assert!(b.is_resident(addr(0)));
        b.release_reservations();
        let evicted = b.insert(addr(3), image(10, 3));
        assert_eq!(evicted[0].0, addr(0), "after release the old pin is evictable");
    }

    #[test]
    fn pinned_residents_bounce_unpinned_newcomers() {
        let mut b = LruBuffer::new(10);
        b.insert(addr(0), image(10, 0));
        b.reserve(addr(0));
        let evicted = b.insert(addr(1), image(10, 1));
        // addr(0) is pinned, so the newcomer itself is bounced.
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].0, addr(1));
        assert!(b.is_resident(addr(0)));
        assert_eq!(b.resident_bytes(), 10);
    }

    #[test]
    fn released_pins_become_evictable_again() {
        let mut b = LruBuffer::new(10);
        b.insert(addr(0), image(10, 0));
        b.reserve(addr(0));
        b.release_reservations();
        let evicted = b.insert(addr(1), image(10, 1));
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].0, addr(0));
        assert!(b.is_resident(addr(1)));
    }

    #[test]
    fn dirty_images_round_trip_through_eviction() {
        let mut b = LruBuffer::new(10);
        let mut img = image(10, 7);
        img.bytes_mut()[0] = 99;
        assert!(img.is_dirty());
        b.insert(addr(0), img);
        let evicted = b.insert(addr(1), image(10, 1));
        assert_eq!(evicted.len(), 1);
        assert!(evicted[0].1.is_dirty(), "dirty flag must survive for save call-back");
        assert_eq!(evicted[0].1.bytes()[0], 99);
    }

    #[test]
    fn reinsert_replaces_image_and_adjusts_bytes() {
        let mut b = LruBuffer::new(100);
        b.insert(addr(0), image(10, 0));
        b.insert(addr(0), image(30, 1));
        assert_eq!(b.resident_bytes(), 30);
        assert_eq!(b.lookup(addr(0)).unwrap().bytes()[0], 1);
    }

    #[test]
    fn drain_returns_everything() {
        let mut b = LruBuffer::new(100);
        for i in 0..5 {
            b.insert(addr(i), image(10, i as u8));
        }
        let drained = b.drain();
        assert_eq!(drained.len(), 5);
        assert_eq!(b.resident_bytes(), 0);
        assert!(!b.is_resident(addr(0)));
    }

    #[test]
    fn remove_specific_segment() {
        let mut b = LruBuffer::new(100);
        b.insert(addr(0), image(10, 0));
        b.insert(addr(1), image(10, 1));
        let removed = b.remove(addr(0)).unwrap();
        assert_eq!(removed.bytes()[0], 0);
        assert!(b.remove(addr(0)).is_none());
        assert_eq!(b.resident_bytes(), 10);
    }

    #[test]
    fn stats_track_refs_and_hits() {
        let mut b = LruBuffer::new(100);
        b.record_ref(true);
        b.record_ref(false);
        b.record_ref(true);
        let s = b.stats();
        assert_eq!(s, BufferStats { refs: 3, hits: 2 });
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        b.reset_stats();
        assert_eq!(b.stats().refs, 0);
        assert_eq!(BufferStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn node_slots_are_recycled() {
        let mut b = LruBuffer::new(10);
        for i in 0..50 {
            b.insert(addr(i), image(10, i as u8));
        }
        assert!(b.nodes.len() <= 3, "arena must not grow without bound");
    }
}

//! The pool abstraction: Mneme's primary extensibility mechanism.
//!
//! "Objects are also logically grouped into pools, where a pool defines a
//! number of management policies for the objects contained in the pool, such
//! as how large the physical segments are, how the objects are laid out in a
//! physical segment, how objects are located within a file, and how objects
//! are created." (Section 3.2)
//!
//! A [`Pool`] implementation owns the byte layout of its physical segments;
//! the file layer ([`crate::MnemeFile`]) only ever manipulates segments
//! through this trait. Three built-in pools implement the paper's
//! three-group partition of inverted lists:
//!
//! * [`crate::SmallPool`] — 16-byte fixed slots, one whole logical segment
//!   (255 objects) per 4 Kbyte physical segment;
//! * [`crate::PackedPool`] — medium objects packed into fixed-size (default
//!   8 Kbyte) slotted segments;
//! * [`crate::HugePool`] — one object per physical segment.

use std::ops::Range;

use crate::id::{ObjectId, PoolId};
use crate::segment::{SegmentImage, SegmentKind};

/// Fixed common header at the start of every physical segment.
///
/// Layout (little-endian):
/// ```text
/// [0]      segment kind (SegmentKind)
/// [1]      pool id
/// [2..4]   live object count (u16)
/// [4..8]   pool-specific word (packed: payload end; huge: object length)
/// [8..12]  raw id of the first object placed in the segment
/// [12..16] reserved (zero)
/// ```
pub const SEGMENT_HEADER_LEN: usize = 16;

/// Result of attempting to place an object into a segment image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendOutcome {
    /// The object was written into the segment.
    Appended,
    /// The segment has no room (or no free slot) for this object; the caller
    /// must start a new segment.
    Full,
}

/// Result of looking an object up inside a segment image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocateResult {
    /// Byte range of the object's payload within the segment.
    Found(Range<usize>),
    /// The slot exists but the object was deleted.
    Deleted,
    /// The object was never stored in this segment.
    Absent,
}

/// Management policies for one group of objects.
///
/// All methods operate on segment *images*; pools never perform I/O
/// themselves — that separation is what lets the file layer route segments
/// through per-pool buffers.
pub trait Pool: Send {
    /// This pool's identifier within its file.
    fn id(&self) -> PoolId;

    /// The segment layout this pool writes.
    fn kind(&self) -> SegmentKind;

    /// Largest object this pool accepts, if bounded.
    fn max_object_len(&self) -> Option<usize>;

    /// Creates a fresh segment image ready to receive `first` (whose payload
    /// will be `first_len` bytes — only the single-object pool needs it).
    fn new_segment(&self, first: ObjectId, first_len: usize) -> SegmentImage;

    /// Attempts to write `data` as object `id` into `seg`.
    ///
    /// Objects must be appended in ascending id order within a segment; the
    /// file layer's sequential id allocation guarantees this.
    fn try_append(&self, seg: &mut SegmentImage, id: ObjectId, data: &[u8]) -> AppendOutcome;

    /// Finds object `id` inside `seg`.
    fn locate(&self, seg: &[u8], id: ObjectId) -> LocateResult;

    /// Overwrites object `id` in place if the new payload fits; returns
    /// `false` when the object must be relocated instead.
    fn try_update_in_place(&self, seg: &mut SegmentImage, id: ObjectId, data: &[u8]) -> bool;

    /// Marks object `id` deleted. Returns whether it was present and live.
    fn delete(&self, seg: &mut SegmentImage, id: ObjectId) -> bool;

    /// Lists the live objects in a segment (id and payload range).
    fn live_objects(&self, seg: &[u8]) -> Vec<(ObjectId, Range<usize>)>;

    /// Extracts packed [`crate::GlobalId`] references embedded in an
    /// object's payload, for garbage collection and chunked large objects.
    /// Pools whose objects hold no references return an empty list.
    fn references(&self, _object: &[u8]) -> Vec<u64> {
        Vec::new()
    }
}

/// Serializable description of a pool, stored in the file header so a file
/// reopens with the pools it was created with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolConfig {
    /// Pool identifier, unique within the file.
    pub id: PoolId,
    /// Layout policy.
    pub kind: PoolKindConfig,
}

/// The layout policy choices for built-in pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolKindConfig {
    /// 16-byte slots (4-byte size field + up to 12 data bytes), 255 per
    /// 4 Kbyte segment.
    Small,
    /// Objects packed into fixed segments of the given size.
    Packed { segment_size: u32 },
    /// One object per segment. When `embedded_refs` is true the first bytes
    /// of each object are a reference table (see [`crate::refs`]).
    SegmentPerObject { embedded_refs: bool },
}

impl PoolConfig {
    /// Encodes to the 8-byte header representation.
    pub(crate) fn encode(&self) -> [u8; 8] {
        let mut out = [0u8; 8];
        out[0] = self.id.0;
        match self.kind {
            PoolKindConfig::Small => out[1] = 1,
            PoolKindConfig::Packed { segment_size } => {
                out[1] = 2;
                out[2..6].copy_from_slice(&segment_size.to_le_bytes());
            }
            PoolKindConfig::SegmentPerObject { embedded_refs } => {
                out[1] = 3;
                out[2] = embedded_refs as u8;
            }
        }
        out
    }

    /// Decodes the 8-byte header representation.
    pub(crate) fn decode(raw: &[u8; 8]) -> Option<PoolConfig> {
        let id = PoolId(raw[0]);
        let kind = match raw[1] {
            1 => PoolKindConfig::Small,
            2 => PoolKindConfig::Packed {
                segment_size: u32::from_le_bytes(raw[2..6].try_into().unwrap()),
            },
            3 => PoolKindConfig::SegmentPerObject { embedded_refs: raw[2] != 0 },
            _ => return None,
        };
        Some(PoolConfig { id, kind })
    }

    /// Instantiates the pool this configuration describes.
    pub fn build(&self) -> Box<dyn Pool> {
        match self.kind {
            PoolKindConfig::Small => Box::new(crate::small_pool::SmallPool::new(self.id)),
            PoolKindConfig::Packed { segment_size } => {
                Box::new(crate::packed_pool::PackedPool::new(self.id, segment_size as usize))
            }
            PoolKindConfig::SegmentPerObject { embedded_refs } => {
                Box::new(crate::huge_pool::HugePool::new(self.id, embedded_refs))
            }
        }
    }
}

/// Writes the common segment header into a fresh buffer.
pub(crate) fn write_header(
    buf: &mut [u8],
    kind: SegmentKind,
    pool: PoolId,
    count: u16,
    word: u32,
    first: ObjectId,
) {
    buf[0] = kind as u8;
    buf[1] = pool.0;
    buf[2..4].copy_from_slice(&count.to_le_bytes());
    buf[4..8].copy_from_slice(&word.to_le_bytes());
    buf[8..12].copy_from_slice(&first.raw().to_le_bytes());
    buf[12..16].fill(0);
}

/// Reads the live-object count from a segment header.
pub(crate) fn header_count(seg: &[u8]) -> u16 {
    u16::from_le_bytes(seg[2..4].try_into().unwrap())
}

/// Adjusts the live-object count in a segment header.
pub(crate) fn set_header_count(seg: &mut [u8], count: u16) {
    seg[2..4].copy_from_slice(&count.to_le_bytes());
}

/// Reads the pool-specific header word.
pub(crate) fn header_word(seg: &[u8]) -> u32 {
    u32::from_le_bytes(seg[4..8].try_into().unwrap())
}

/// Writes the pool-specific header word.
pub(crate) fn set_header_word(seg: &mut [u8], word: u32) {
    seg[4..8].copy_from_slice(&word.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::LogicalSegment;

    #[test]
    fn pool_config_round_trips() {
        let configs = [
            PoolConfig { id: PoolId(0), kind: PoolKindConfig::Small },
            PoolConfig { id: PoolId(1), kind: PoolKindConfig::Packed { segment_size: 8192 } },
            PoolConfig {
                id: PoolId(2),
                kind: PoolKindConfig::SegmentPerObject { embedded_refs: false },
            },
            PoolConfig {
                id: PoolId(3),
                kind: PoolKindConfig::SegmentPerObject { embedded_refs: true },
            },
        ];
        for c in &configs {
            assert_eq!(PoolConfig::decode(&c.encode()).as_ref(), Some(c));
        }
        assert_eq!(PoolConfig::decode(&[0, 9, 0, 0, 0, 0, 0, 0]), None);
    }

    #[test]
    fn header_fields_round_trip() {
        let mut buf = vec![0u8; SEGMENT_HEADER_LEN];
        let first = ObjectId::new(LogicalSegment(77), 3);
        write_header(&mut buf, SegmentKind::Packed, PoolId(2), 42, 1234, first);
        assert_eq!(buf[0], SegmentKind::Packed as u8);
        assert_eq!(buf[1], 2);
        assert_eq!(header_count(&buf), 42);
        assert_eq!(header_word(&buf), 1234);
        set_header_count(&mut buf, 43);
        set_header_word(&mut buf, 99);
        assert_eq!(header_count(&buf), 43);
        assert_eq!(header_word(&buf), 99);
    }

    #[test]
    fn build_constructs_matching_pool() {
        let c = PoolConfig { id: PoolId(5), kind: PoolKindConfig::Packed { segment_size: 4096 } };
        let p = c.build();
        assert_eq!(p.id(), PoolId(5));
        assert_eq!(p.kind(), SegmentKind::Packed);
    }
}

//! A scan-resistant buffer policy: S3-FIFO (small / main / ghost queues).
//!
//! The paper's buffering mechanism is deliberately extensible — "How these
//! operations are implemented determines the policies used to manage the
//! buffer" (Section 3.2) — and its conclusions invite investigating "other
//! store and buffer organizations". [`S3FifoBuffer`] is the organization
//! that matters most for an IR workload: posting-list scans touch long runs
//! of segments exactly once, and under LRU every such scan flushes the hot
//! working set (the high-frequency terms of the Zipfian query mix) out of
//! the buffer.
//!
//! S3-FIFO fixes that with three structures:
//!
//! * a **small** probationary FIFO (~10% of capacity) where every new
//!   segment lands first;
//! * a **main** FIFO holding segments that proved themselves by being
//!   re-referenced while probationary (or by returning soon after
//!   eviction);
//! * a bounded **ghost** history of recently evicted probationary
//!   addresses — metadata only, no segment bytes — so a segment that
//!   returns shortly after eviction is admitted straight into main.
//!
//! One-shot scan segments enter small, are never re-referenced, and are
//! evicted from small without ever displacing main. Hot segments collect
//! reference counts and migrate to main, where eviction gives second
//! chances (decrementing the count) before letting go.
//!
//! Byte-capacity, pinning (query-tree reservation, Section 3.3), dirty
//! hand-back, and the newcomer-bounce edge semantics all match
//! [`crate::LruBuffer`] so the policies are drop-in interchangeable.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::buffer::{Buffer, BufferStats};
use crate::segment::{SegmentAddr, SegmentImage};

const NIL: usize = usize::MAX;

/// Saturating cap on the per-segment re-reference counter. Small on
/// purpose: it bounds how long a once-hot segment can linger in main after
/// going cold (each main-queue second chance costs one decrement).
const FREQ_MAX: u8 = 3;

/// Fraction of capacity (as a divisor) given to the probationary queue.
const SMALL_FRACTION: usize = 10;

struct Node {
    addr: SegmentAddr,
    image: Option<SegmentImage>,
    pinned: bool,
    freq: u8,
    in_main: bool,
    prev: usize,
    next: usize,
}

/// Byte-capacity scan-resistant S3-FIFO buffer with reservation support.
pub struct S3FifoBuffer {
    capacity: usize,
    /// Byte budget of the probationary queue (~capacity / 10).
    small_target: usize,
    map: HashMap<SegmentAddr, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    small_head: usize,
    small_tail: usize,
    main_head: usize,
    main_tail: usize,
    small_bytes: usize,
    resident_bytes: usize,
    /// FIFO of addresses recently evicted from the probationary queue.
    ghost: VecDeque<SegmentAddr>,
    ghost_set: HashSet<SegmentAddr>,
    stats: BufferStats,
}

impl std::fmt::Debug for S3FifoBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("S3FifoBuffer")
            .field("capacity", &self.capacity)
            .field("resident_segments", &self.map.len())
            .field("resident_bytes", &self.resident_bytes)
            .field("small_bytes", &self.small_bytes)
            .field("ghost_len", &self.ghost_set.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl S3FifoBuffer {
    /// Creates a buffer of `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        S3FifoBuffer {
            capacity,
            small_target: capacity / SMALL_FRACTION,
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            small_head: NIL,
            small_tail: NIL,
            main_head: NIL,
            main_tail: NIL,
            small_bytes: 0,
            resident_bytes: 0,
            ghost: VecDeque::new(),
            ghost_set: HashSet::new(),
            stats: BufferStats::default(),
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next, in_main) =
            (self.nodes[idx].prev, self.nodes[idx].next, self.nodes[idx].in_main);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else if in_main {
            self.main_head = next;
        } else {
            self.small_head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else if in_main {
            self.main_tail = prev;
        } else {
            self.small_tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize, to_main: bool) {
        let head = if to_main { self.main_head } else { self.small_head };
        self.nodes[idx].in_main = to_main;
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = head;
        if head != NIL {
            self.nodes[head].prev = idx;
        }
        if to_main {
            self.main_head = idx;
            if self.main_tail == NIL {
                self.main_tail = idx;
            }
        } else {
            self.small_head = idx;
            if self.small_tail == NIL {
                self.small_tail = idx;
            }
        }
    }

    fn evict_node(&mut self, idx: usize) -> (SegmentAddr, SegmentImage) {
        let in_main = self.nodes[idx].in_main;
        self.unlink(idx);
        let addr = self.nodes[idx].addr;
        let image = self.nodes[idx].image.take().expect("resident node has image");
        self.map.remove(&addr);
        self.free.push(idx);
        self.resident_bytes -= image.len();
        if !in_main {
            self.small_bytes -= image.len();
        }
        (addr, image)
    }

    /// Records `addr` in the ghost history, trimming to a bound proportional
    /// to the number of resident segments (metadata stays O(residents)).
    fn remember_ghost(&mut self, addr: SegmentAddr) {
        if self.ghost_set.insert(addr) {
            self.ghost.push_back(addr);
        }
        let bound = (2 * self.map.len()).max(16);
        while self.ghost.len() > bound {
            if let Some(old) = self.ghost.pop_front() {
                self.ghost_set.remove(&old);
            }
        }
    }

    /// Consumes a ghost entry for `addr`, reporting whether one existed.
    fn take_ghost(&mut self, addr: SegmentAddr) -> bool {
        if self.ghost_set.remove(&addr) {
            self.ghost.retain(|a| *a != addr);
            true
        } else {
            false
        }
    }

    /// Walks a queue from its tail looking for a node that is neither
    /// pinned nor the protected newcomer.
    fn tail_candidate(&self, mut cur: usize, last_resort: usize) -> usize {
        while cur != NIL && (cur == last_resort || self.nodes[cur].pinned) {
            cur = self.nodes[cur].prev;
        }
        cur
    }

    /// Evicts until within capacity. Probationary segments are evicted
    /// first while the small queue is over its target; re-referenced
    /// probationary segments are promoted to main instead of evicted, and
    /// main evictions give second chances by decrementing the reference
    /// count. `last_resort` (the newcomer) is evicted only when nothing
    /// else is evictable.
    fn enforce_capacity(&mut self, last_resort: usize) -> Vec<(SegmentAddr, SegmentImage)> {
        let mut evicted = Vec::new();
        // Promotions (≤ residents) and second chances (≤ FREQ_MAX ×
        // residents) strictly consume a finite budget between evictions, so
        // the loop terminates; the spin bound is a belt-and-braces bail.
        let mut spins = 0usize;
        while self.resident_bytes > self.capacity {
            spins += 1;
            let bail = spins > (FREQ_MAX as usize + 2) * self.map.len() + 4;
            // Prefer the probationary queue while it is over its target (or
            // main is empty); otherwise evict from main, falling back to the
            // other queue when the preferred one has no evictable node.
            let prefer_small = self.small_tail != NIL
                && (self.small_bytes > self.small_target || self.main_tail == NIL);
            let mut from_small = prefer_small;
            let mut cur = if prefer_small {
                self.tail_candidate(self.small_tail, last_resort)
            } else {
                self.tail_candidate(self.main_tail, last_resort)
            };
            if cur == NIL {
                from_small = !prefer_small;
                cur = if from_small {
                    self.tail_candidate(self.small_tail, last_resort)
                } else {
                    self.tail_candidate(self.main_tail, last_resort)
                };
            }
            if cur == NIL || bail {
                // Nothing evictable anywhere: bounce the newcomer itself
                // unless it is pinned.
                if !self.nodes[last_resort].pinned
                    && self.map.contains_key(&self.nodes[last_resort].addr)
                {
                    evicted.push(self.evict_node(last_resort));
                }
                break;
            }
            if from_small {
                if self.nodes[cur].freq > 0 {
                    // Re-referenced while probationary: promote to main.
                    let len =
                        self.nodes[cur].image.as_ref().expect("resident node has image").len();
                    self.unlink(cur);
                    self.small_bytes -= len;
                    self.push_front(cur, true);
                } else {
                    // One-hit wonder: evict and remember the address.
                    let (addr, image) = self.evict_node(cur);
                    self.remember_ghost(addr);
                    evicted.push((addr, image));
                }
            } else if self.nodes[cur].freq > 0 {
                // Second chance.
                self.nodes[cur].freq -= 1;
                self.unlink(cur);
                self.push_front(cur, true);
            } else {
                evicted.push(self.evict_node(cur));
            }
        }
        evicted
    }
}

impl Buffer for S3FifoBuffer {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn lookup(&mut self, addr: SegmentAddr) -> Option<&mut SegmentImage> {
        let idx = self.map.get(&addr).copied()?;
        self.nodes[idx].freq = (self.nodes[idx].freq + 1).min(FREQ_MAX);
        self.nodes[idx].image.as_mut()
    }

    fn touch(&mut self, addr: SegmentAddr) -> bool {
        match self.map.get(&addr).copied() {
            Some(idx) => {
                self.nodes[idx].freq = (self.nodes[idx].freq + 1).min(FREQ_MAX);
                true
            }
            None => false,
        }
    }

    fn probe(&self, addr: SegmentAddr) -> Option<&SegmentImage> {
        let idx = self.map.get(&addr).copied()?;
        self.nodes[idx].image.as_ref()
    }

    fn is_resident(&self, addr: SegmentAddr) -> bool {
        self.map.contains_key(&addr)
    }

    fn insert(
        &mut self,
        addr: SegmentAddr,
        image: SegmentImage,
    ) -> Vec<(SegmentAddr, SegmentImage)> {
        // Replace any existing image at this address in place.
        if let Some(idx) = self.map.get(&addr).copied() {
            let old = self.nodes[idx].image.replace(image);
            if let Some(old) = &old {
                self.resident_bytes -= old.len();
                if !self.nodes[idx].in_main {
                    self.small_bytes -= old.len();
                }
            }
            let new_len = self.nodes[idx].image.as_ref().unwrap().len();
            self.resident_bytes += new_len;
            if !self.nodes[idx].in_main {
                self.small_bytes += new_len;
            }
            self.nodes[idx].freq = (self.nodes[idx].freq + 1).min(FREQ_MAX);
            return self.enforce_capacity(idx);
        }
        // A returning segment (ghost hit) is admitted straight into main;
        // a cold one starts in the probationary queue.
        let to_main = self.take_ghost(addr);
        self.resident_bytes += image.len();
        if !to_main {
            self.small_bytes += image.len();
        }
        let node = Node {
            addr,
            image: Some(image),
            pinned: false,
            freq: 0,
            in_main: to_main,
            prev: NIL,
            next: NIL,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = node;
                i
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        self.push_front(idx, to_main);
        self.map.insert(addr, idx);
        self.enforce_capacity(idx)
    }

    fn remove(&mut self, addr: SegmentAddr) -> Option<SegmentImage> {
        let idx = self.map.get(&addr).copied()?;
        Some(self.evict_node(idx).1)
    }

    fn reserve(&mut self, addr: SegmentAddr) -> bool {
        match self.map.get(&addr).copied() {
            Some(idx) => {
                self.nodes[idx].pinned = true;
                true
            }
            None => false,
        }
    }

    fn release_reservations(&mut self) {
        for node in &mut self.nodes {
            node.pinned = false;
        }
    }

    fn drain(&mut self) -> Vec<(SegmentAddr, SegmentImage)> {
        let mut out = Vec::with_capacity(self.map.len());
        while self.small_tail != NIL {
            let idx = self.small_tail;
            out.push(self.evict_node(idx));
        }
        while self.main_tail != NIL {
            let idx = self.main_tail;
            out.push(self.evict_node(idx));
        }
        debug_assert_eq!(self.resident_bytes, 0);
        debug_assert_eq!(self.small_bytes, 0);
        out
    }

    fn record_ref(&mut self, hit: bool) {
        self.stats.refs += 1;
        if hit {
            self.stats.hits += 1;
        }
    }

    fn stats(&self) -> BufferStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = BufferStats::default();
    }

    fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(offset: u64) -> SegmentAddr {
        SegmentAddr { offset, len: 0 }
    }

    fn image(len: usize, fill: u8) -> SegmentImage {
        SegmentImage::from_disk(vec![fill; len])
    }

    #[test]
    fn lookup_probe_and_touch_hit_residents() {
        let mut b = S3FifoBuffer::new(100);
        b.insert(addr(0), image(10, 1));
        assert!(b.lookup(addr(0)).is_some());
        assert!(b.lookup(addr(8)).is_none());
        assert!(b.probe(addr(0)).is_some());
        assert!(b.probe(addr(8)).is_none());
        assert!(b.touch(addr(0)));
        assert!(!b.touch(addr(8)));
        assert!(b.is_resident(addr(0)));
        assert_eq!(b.resident_bytes(), 10);
        assert_eq!(b.capacity(), 100);
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut b = S3FifoBuffer::new(0);
        let evicted = b.insert(addr(0), image(10, 0));
        assert_eq!(evicted.len(), 1, "zero-capacity buffer bounces the newcomer");
        assert_eq!(evicted[0].0, addr(0));
        assert!(!b.is_resident(addr(0)));
        assert_eq!(b.resident_bytes(), 0);
    }

    #[test]
    fn oversized_segment_is_not_cached() {
        let mut b = S3FifoBuffer::new(15);
        b.insert(addr(0), image(10, 0));
        let evicted = b.insert(addr(1), image(100, 1));
        assert_eq!(evicted.len(), 2);
        assert_eq!(evicted[0].0, addr(0));
        assert_eq!(evicted[1].0, addr(1));
        assert!(!b.is_resident(addr(1)));
        assert_eq!(b.resident_bytes(), 0);
    }

    #[test]
    fn pinned_segments_survive_eviction_pressure() {
        let mut b = S3FifoBuffer::new(20);
        b.insert(addr(0), image(10, 0));
        b.insert(addr(1), image(10, 1));
        assert!(b.reserve(addr(0)));
        assert!(!b.reserve(addr(9)), "reserving an absent segment is a no-op");
        let evicted = b.insert(addr(2), image(10, 2));
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].0, addr(1));
        assert!(b.is_resident(addr(0)));
        b.release_reservations();
        let evicted = b.insert(addr(3), image(10, 3));
        assert!(
            evicted.iter().any(|(a, _)| *a == addr(0)),
            "after release the old pin is evictable"
        );
    }

    #[test]
    fn pinned_residents_bounce_unpinned_newcomers() {
        let mut b = S3FifoBuffer::new(10);
        b.insert(addr(0), image(10, 0));
        b.reserve(addr(0));
        let evicted = b.insert(addr(1), image(10, 1));
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].0, addr(1));
        assert!(b.is_resident(addr(0)));
        assert_eq!(b.resident_bytes(), 10);
    }

    #[test]
    fn dirty_images_round_trip_through_eviction() {
        let mut b = S3FifoBuffer::new(10);
        let mut img = image(10, 7);
        img.bytes_mut()[0] = 99;
        assert!(img.is_dirty());
        b.insert(addr(0), img);
        let evicted = b.insert(addr(1), image(10, 1));
        assert_eq!(evicted.len(), 1);
        assert!(evicted[0].1.is_dirty(), "dirty flag must survive for save call-back");
        assert_eq!(evicted[0].1.bytes()[0], 99);
    }

    #[test]
    fn reinsert_replaces_image_and_adjusts_bytes() {
        let mut b = S3FifoBuffer::new(100);
        b.insert(addr(0), image(10, 0));
        b.insert(addr(0), image(30, 1));
        assert_eq!(b.resident_bytes(), 30);
        assert_eq!(b.lookup(addr(0)).unwrap().bytes()[0], 1);
    }

    #[test]
    fn drain_returns_everything() {
        let mut b = S3FifoBuffer::new(1000);
        for i in 0..5 {
            b.insert(addr(i), image(10, i as u8));
        }
        let drained = b.drain();
        assert_eq!(drained.len(), 5);
        assert_eq!(b.resident_bytes(), 0);
        assert!(!b.is_resident(addr(0)));
    }

    #[test]
    fn remove_specific_segment() {
        let mut b = S3FifoBuffer::new(100);
        b.insert(addr(0), image(10, 0));
        b.insert(addr(1), image(10, 1));
        let removed = b.remove(addr(0)).unwrap();
        assert_eq!(removed.bytes()[0], 0);
        assert!(b.remove(addr(0)).is_none());
        assert_eq!(b.resident_bytes(), 10);
    }

    #[test]
    fn stats_track_refs_and_hits() {
        let mut b = S3FifoBuffer::new(100);
        b.record_ref(true);
        b.record_ref(false);
        b.record_ref(true);
        assert_eq!(b.stats(), BufferStats { refs: 3, hits: 2 });
        b.reset_stats();
        assert_eq!(b.stats().refs, 0);
    }

    #[test]
    fn node_slots_are_recycled() {
        let mut b = S3FifoBuffer::new(10);
        for i in 0..50 {
            b.insert(addr(i), image(10, i as u8));
        }
        assert!(b.nodes.len() <= 3, "arena must not grow without bound");
    }

    #[test]
    fn byte_bound_never_exceeded_under_churn() {
        let mut b = S3FifoBuffer::new(100);
        for round in 0..20u64 {
            for i in 0..10u64 {
                b.insert(addr(i * 7 + round), image(10 + (i as usize % 3) * 5, i as u8));
                assert!(b.resident_bytes() <= 100, "byte bound violated");
            }
        }
    }

    #[test]
    fn re_referenced_segments_are_promoted_to_main() {
        let mut b = S3FifoBuffer::new(100); // small target = 10 bytes
        b.insert(addr(0), image(10, 0));
        b.touch(addr(0)); // freq > 0: survives probation
                          // Push enough one-shot segments through to overflow the buffer.
        for i in 1..=10u64 {
            b.insert(addr(i), image(10, i as u8));
        }
        assert!(b.is_resident(addr(0)), "re-referenced segment must be promoted, not evicted");
        let idx = b.map[&addr(0)];
        assert!(b.nodes[idx].in_main, "promotion lands in the main queue");
    }

    #[test]
    fn one_shot_scan_does_not_evict_hot_set() {
        // Hot set: 4 segments of 10 bytes, referenced repeatedly. The scan
        // is 40 one-shot segments. Under LRU the scan flushes the hot set;
        // S3-FIFO keeps it.
        let mut b = S3FifoBuffer::new(100);
        for i in 0..4u64 {
            b.insert(addr(i), image(10, i as u8));
            b.touch(addr(i));
        }
        // Warm the hot set into main.
        for i in 100..110u64 {
            b.insert(addr(i), image(10, 0));
        }
        for i in 0..4u64 {
            assert!(b.is_resident(addr(i)), "hot segment {i} evicted during warmup");
            b.touch(addr(i));
        }
        // The scan: one-shot segments, never re-referenced.
        for i in 1000..1040u64 {
            b.insert(addr(i), image(10, 0));
        }
        for i in 0..4u64 {
            assert!(b.is_resident(addr(i)), "hot segment {i} evicted by one-shot scan");
        }

        // Contrast: LRU loses the entire hot set to the same trace.
        let mut lru = crate::LruBuffer::new(100);
        for i in 0..4u64 {
            lru.insert(addr(i), image(10, i as u8));
            lru.touch(addr(i));
        }
        for i in 1000..1040u64 {
            lru.insert(addr(i), image(10, 0));
        }
        for i in 0..4u64 {
            assert!(!lru.is_resident(addr(i)), "LRU baseline unexpectedly kept the hot set");
        }
    }

    #[test]
    fn ghost_hit_readmits_straight_to_main() {
        let mut b = S3FifoBuffer::new(100);
        b.insert(addr(0), image(10, 0));
        // Evict addr(0) from probation with a scan.
        for i in 1..=10u64 {
            b.insert(addr(i), image(10, i as u8));
        }
        assert!(!b.is_resident(addr(0)));
        assert!(b.ghost_set.contains(&addr(0)), "probationary eviction recorded in ghost");
        // Reinsertion after a ghost hit bypasses probation.
        b.insert(addr(0), image(10, 0));
        let idx = b.map[&addr(0)];
        assert!(b.nodes[idx].in_main, "ghost hit admits straight into main");
        assert!(!b.ghost_set.contains(&addr(0)), "ghost entry is consumed");
    }

    #[test]
    fn ghost_history_is_bounded() {
        let mut b = S3FifoBuffer::new(50);
        for i in 0..500u64 {
            b.insert(addr(i), image(10, i as u8));
        }
        let bound = (2 * b.map.len()).max(16);
        assert!(b.ghost.len() <= bound, "ghost history must stay O(residents)");
        assert_eq!(b.ghost.len(), b.ghost_set.len());
    }

    #[test]
    fn works_as_a_mneme_pool_buffer() {
        use crate::pool::{PoolConfig, PoolKindConfig};
        use crate::{MnemeFile, PoolId};
        let dev = poir_storage::Device::with_defaults();
        let handle = dev.create_file();
        let mut ids = Vec::new();
        {
            let mut f = MnemeFile::create(
                handle.clone(),
                &[PoolConfig {
                    id: PoolId(0),
                    kind: PoolKindConfig::SegmentPerObject { embedded_refs: false },
                }],
                8,
            )
            .unwrap();
            for i in 0..10u32 {
                ids.push(f.create_object(PoolId(0), &vec![i as u8; 5000]).unwrap());
            }
            f.flush().unwrap();
        }
        let mut f = MnemeFile::open(handle).unwrap();
        f.attach_buffer(PoolId(0), Box::new(S3FifoBuffer::new(1 << 20))).unwrap();
        for _ in 0..3 {
            for id in &ids {
                f.get(*id).unwrap();
            }
        }
        let stats = f.buffer_stats(PoolId(0)).unwrap();
        assert_eq!(stats.refs, 30);
        assert_eq!(stats.hits, 20, "all repeat passes hit under s3fifo too");
    }

    #[test]
    fn buffer_policy_parses_and_builds() {
        use crate::buffer::BufferPolicy;
        for (s, want) in [
            ("lru", BufferPolicy::Lru),
            ("clock", BufferPolicy::Clock),
            ("s3fifo", BufferPolicy::S3Fifo),
            ("s3-fifo", BufferPolicy::S3Fifo),
        ] {
            let p: BufferPolicy = s.parse().unwrap();
            assert_eq!(p, want);
            assert_eq!(p.build(64).capacity(), 64);
        }
        assert!("arc".parse::<BufferPolicy>().is_err());
        assert_eq!(BufferPolicy::S3Fifo.to_string(), "s3fifo");
        assert_eq!(BufferPolicy::default(), BufferPolicy::Lru);
    }
}

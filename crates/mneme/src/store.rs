//! The store: multiple Mneme files under one global id space.
//!
//! "Multiple files may be open simultaneously, however, so object
//! identifiers are mapped to globally unique identifiers when the objects
//! are accessed. This allows a potentially unlimited number of objects to be
//! created by allocating a new file when the previous file's object
//! identifiers have been exhausted. The number of objects that may be
//! accessed simultaneously is bounded by the number of globally unique
//! identifiers (currently 2^28)." (Section 3.2)
//!
//! A [`Store`] owns a set of open [`MnemeFile`]s, assigns each a
//! [`FileSlot`], and routes [`GlobalId`] operations to the right file. It
//! enforces the 2^28 bound on simultaneously accessible objects by capping
//! the sum of per-file id-space consumption across open files.

use crate::error::{MnemeError, Result};
use crate::file::MnemeFile;
use crate::id::{FileSlot, GlobalId, ObjectId, PoolId};

/// Upper bound on simultaneously accessible objects (2^28).
pub const MAX_GLOBAL_OBJECTS: u64 = 1 << 28;

/// A collection of open Mneme files sharing a global id space.
pub struct Store {
    files: Vec<Option<MnemeFile>>,
}

impl Default for Store {
    fn default() -> Self {
        Self::new()
    }
}

impl Store {
    /// Creates an empty store.
    pub fn new() -> Self {
        Store { files: Vec::new() }
    }

    /// Number of currently open files.
    pub fn open_files(&self) -> usize {
        self.files.iter().flatten().count()
    }

    /// Registers an open file, returning the slot used to form global ids.
    pub fn mount(&mut self, file: MnemeFile) -> Result<FileSlot> {
        if self.files.iter().flatten().count() as u64 * crate::id::MAX_LOGICAL_SEGMENTS as u64
            >= MAX_GLOBAL_OBJECTS
        {
            return Err(MnemeError::GlobalIdsExhausted);
        }
        if let Some(free) = self.files.iter().position(Option::is_none) {
            self.files[free] = Some(file);
            return Ok(FileSlot(free as u16));
        }
        if self.files.len() >= u16::MAX as usize {
            return Err(MnemeError::GlobalIdsExhausted);
        }
        self.files.push(Some(file));
        Ok(FileSlot((self.files.len() - 1) as u16))
    }

    /// Unmounts a file (flushing it first) and frees its slot.
    pub fn unmount(&mut self, slot: FileSlot) -> Result<MnemeFile> {
        let entry = self.files.get_mut(slot.0 as usize).ok_or(MnemeError::NoSuchFile(slot.0))?;
        let mut file = entry.take().ok_or(MnemeError::NoSuchFile(slot.0))?;
        file.flush()?;
        Ok(file)
    }

    /// Borrows the file mounted at `slot`.
    pub fn file(&mut self, slot: FileSlot) -> Result<&mut MnemeFile> {
        self.files
            .get_mut(slot.0 as usize)
            .and_then(Option::as_mut)
            .ok_or(MnemeError::NoSuchFile(slot.0))
    }

    /// Creates an object in the given file and pool, returning a global id.
    pub fn create_object(&mut self, slot: FileSlot, pool: PoolId, data: &[u8]) -> Result<GlobalId> {
        let object = self.file(slot)?.create_object(pool, data)?;
        Ok(GlobalId { file: slot, object })
    }

    /// Reads an object by global id.
    pub fn get(&mut self, id: GlobalId) -> Result<crate::ObjectBytes> {
        self.file(id.file)?.get(id.object)
    }

    /// Updates an object by global id.
    pub fn update(&mut self, id: GlobalId, data: &[u8]) -> Result<()> {
        self.file(id.file)?.update(id.object, data)
    }

    /// Deletes an object by global id.
    pub fn delete(&mut self, id: GlobalId) -> Result<()> {
        self.file(id.file)?.delete(id.object)
    }

    /// Follows the references embedded in an object, returning the ids it
    /// points at (within any mounted file).
    pub fn references_of(&mut self, id: GlobalId) -> Result<Vec<GlobalId>> {
        let raw = self.file(id.file)?.references_of(id.object)?;
        Ok(raw.into_iter().filter_map(GlobalId::unpack).collect())
    }

    /// Flushes every mounted file.
    pub fn flush_all(&mut self) -> Result<()> {
        for file in self.files.iter_mut().flatten() {
            file.flush()?;
        }
        Ok(())
    }
}

/// Resolves a file-local id into a global id for a given slot — the mapping
/// the paper performs "when the objects are accessed".
pub fn globalize(slot: FileSlot, object: ObjectId) -> GlobalId {
    GlobalId { file: slot, object }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{PoolConfig, PoolKindConfig};
    use poir_storage::Device;

    fn new_file(dev: &std::sync::Arc<poir_storage::Device>) -> MnemeFile {
        let configs = [
            PoolConfig { id: PoolId(0), kind: PoolKindConfig::Small },
            PoolConfig { id: PoolId(1), kind: PoolKindConfig::Packed { segment_size: 1024 } },
        ];
        MnemeFile::create(dev.create_file(), &configs, 8).unwrap()
    }

    #[test]
    fn objects_route_to_their_files() {
        let dev = Device::with_defaults();
        let mut store = Store::new();
        let a = store.mount(new_file(&dev)).unwrap();
        let b = store.mount(new_file(&dev)).unwrap();
        assert_ne!(a, b);
        assert_eq!(store.open_files(), 2);

        let ga = store.create_object(a, PoolId(0), b"in file a").unwrap();
        let gb = store.create_object(b, PoolId(1), b"this one lives in file b").unwrap();
        assert_eq!(store.get(ga).unwrap(), b"in file a");
        assert_eq!(store.get(gb).unwrap(), b"this one lives in file b");
        // Same file-local id space in both files; the slot disambiguates.
        assert_eq!(ga.object, gb.object);
    }

    #[test]
    fn unmount_frees_the_slot_for_reuse() {
        let dev = Device::with_defaults();
        let mut store = Store::new();
        let a = store.mount(new_file(&dev)).unwrap();
        let _b = store.mount(new_file(&dev)).unwrap();
        store.unmount(a).unwrap();
        assert_eq!(store.open_files(), 1);
        assert!(matches!(
            store.get(globalize(a, ObjectId::from_raw(0).unwrap())),
            Err(MnemeError::NoSuchFile(_))
        ));
        let c = store.mount(new_file(&dev)).unwrap();
        assert_eq!(c, a, "freed slot is reused");
    }

    #[test]
    fn update_and_delete_through_global_ids() {
        let dev = Device::with_defaults();
        let mut store = Store::new();
        let slot = store.mount(new_file(&dev)).unwrap();
        let id = store.create_object(slot, PoolId(1), b"v1").unwrap();
        store.update(id, b"version two").unwrap();
        assert_eq!(store.get(id).unwrap(), b"version two");
        store.delete(id).unwrap();
        assert!(matches!(store.get(id), Err(MnemeError::ObjectDeleted(_))));
    }

    #[test]
    fn flush_all_persists_mounted_files() {
        let dev = Device::with_defaults();
        let mut store = Store::new();
        let slot = store.mount(new_file(&dev)).unwrap();
        let id = store.create_object(slot, PoolId(0), b"tiny").unwrap();
        store.flush_all().unwrap();
        let file = store.unmount(slot).unwrap();
        let handle = file.handle().clone();
        drop(file);
        let reopened = MnemeFile::open(handle).unwrap();
        assert_eq!(reopened.get(id.object).unwrap(), b"tiny");
    }
}

//! Physical segments: the unit of transfer between disk and main memory.
//!
//! "Objects are physically grouped into physical segments within a file. A
//! physical segment is the unit of transfer between disk and main memory and
//! is of arbitrary size." (Section 3.2). The layout of objects *within* a
//! segment is pool-specific (Section 3.2: "object format is determined by
//! the pool"); this module only defines the segment's identity on disk and
//! its in-memory image.

/// Location of a physical segment within a Mneme file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegmentAddr {
    /// Byte offset of the segment within the file.
    pub offset: u64,
    /// Length of the segment in bytes.
    pub len: u32,
}

impl SegmentAddr {
    /// A sentinel address used for never-written segments.
    pub const NULL: SegmentAddr = SegmentAddr { offset: u64::MAX, len: 0 };

    /// Whether this is the null sentinel.
    pub fn is_null(&self) -> bool {
        *self == SegmentAddr::NULL
    }
}

/// An in-memory image of one physical segment.
///
/// Images are produced by pools ([`crate::pool::Pool::new_segment`]),
/// mutated through pool methods, cached in [`crate::buffer`] buffers
/// and written back to the file when dirty.
///
/// The bytes sit behind an `Arc` so the read path can hand out zero-copy
/// payload slices ([`crate::ObjectBytes`]) that outlive buffer eviction.
/// Mutation is copy-on-write: [`SegmentImage::bytes_mut`] clones the
/// buffer only when an outstanding reader still shares it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentImage {
    bytes: std::sync::Arc<Vec<u8>>,
    dirty: bool,
}

impl SegmentImage {
    /// Wraps freshly initialised segment bytes (marked dirty: it has never
    /// been written to the file).
    pub fn new_dirty(bytes: Vec<u8>) -> Self {
        SegmentImage { bytes: std::sync::Arc::new(bytes), dirty: true }
    }

    /// Wraps bytes read from the file (clean).
    pub fn from_disk(bytes: Vec<u8>) -> Self {
        SegmentImage { bytes: std::sync::Arc::new(bytes), dirty: false }
    }

    /// Read-only view of the segment bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// A reference-counted handle on the segment buffer, for carving out
    /// zero-copy payload slices.
    pub fn share(&self) -> std::sync::Arc<Vec<u8>> {
        std::sync::Arc::clone(&self.bytes)
    }

    /// Mutable view; marks the segment dirty. Copy-on-write: clones the
    /// buffer if a shared payload slice still holds it.
    pub fn bytes_mut(&mut self) -> &mut Vec<u8> {
        self.dirty = true;
        std::sync::Arc::make_mut(&mut self.bytes)
    }

    /// Segment length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the image holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Whether the image differs from its on-disk copy.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Marks the image clean after it has been written back.
    pub fn mark_clean(&mut self) {
        self.dirty = false;
    }

    /// Consumes the image, returning its bytes (copying only when a shared
    /// payload slice still holds the buffer).
    pub fn into_bytes(self) -> Vec<u8> {
        std::sync::Arc::try_unwrap(self.bytes).unwrap_or_else(|shared| (*shared).clone())
    }
}

/// Discriminates the built-in pool layouts inside segment headers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SegmentKind {
    /// Fixed 16-byte slots, 255 per segment (small object pool).
    FixedSlots = 1,
    /// Variable objects packed into a fixed-size slotted segment.
    Packed = 2,
    /// Exactly one object per segment.
    SingleObject = 3,
}

impl SegmentKind {
    /// Parses the discriminant byte.
    pub fn from_u8(v: u8) -> Option<SegmentKind> {
        match v {
            1 => Some(SegmentKind::FixedSlots),
            2 => Some(SegmentKind::Packed),
            3 => Some(SegmentKind::SingleObject),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirty_tracking_follows_mutation() {
        let mut img = SegmentImage::from_disk(vec![0; 8]);
        assert!(!img.is_dirty());
        let _ = img.bytes(); // reads do not dirty
        assert!(!img.is_dirty());
        img.bytes_mut()[0] = 1;
        assert!(img.is_dirty());
        img.mark_clean();
        assert!(!img.is_dirty());
        assert_eq!(img.len(), 8);
        assert!(!img.is_empty());
    }

    #[test]
    fn new_images_start_dirty() {
        let img = SegmentImage::new_dirty(vec![1, 2, 3]);
        assert!(img.is_dirty());
        assert_eq!(img.into_bytes(), vec![1, 2, 3]);
    }

    #[test]
    fn null_addr_sentinel() {
        assert!(SegmentAddr::NULL.is_null());
        assert!(!SegmentAddr { offset: 0, len: 1 }.is_null());
    }

    #[test]
    fn segment_kind_round_trips() {
        for k in [SegmentKind::FixedSlots, SegmentKind::Packed, SegmentKind::SingleObject] {
            assert_eq!(SegmentKind::from_u8(k as u8), Some(k));
        }
        assert_eq!(SegmentKind::from_u8(0), None);
        assert_eq!(SegmentKind::from_u8(9), None);
    }
}

//! The large object pool: one object per physical segment.
//!
//! "A number of inverted lists are so large, it is not reasonable to cluster
//! them with other objects in the same physical segment. Instead, these
//! lists are allocated in their own physical segment. All inverted lists
//! larger than 4 Kbytes were allocated in this fashion in a large object
//! pool." (Section 3.3)
//!
//! Physical segments are "of arbitrary size" (Section 3.2), so each segment
//! here is exactly `HEADER + payload` bytes. The pool-specific header word
//! stores the payload length, allowing in-place updates that shrink (or grow
//! within the originally allocated capacity) without touching the location
//! tables.
//!
//! With `embedded_refs`, objects begin with a table of packed
//! [`crate::GlobalId`] references (see [`crate::refs`]), satisfying the
//! paper's requirement that pools "locate for Mneme any identifiers stored
//! in the objects managed by the pool".

use std::ops::Range;

use crate::id::{ObjectId, PoolId};
use crate::pool::{
    header_word, set_header_count, set_header_word, write_header, AppendOutcome, LocateResult,
    Pool, SEGMENT_HEADER_LEN,
};
use crate::refs;
use crate::segment::{SegmentImage, SegmentKind};

/// Payload length sentinel marking a deleted object.
const LEN_DELETED: u32 = u32::MAX;

/// The large object pool policy.
#[derive(Debug, Clone)]
pub struct HugePool {
    id: PoolId,
    embedded_refs: bool,
}

impl HugePool {
    /// Creates the policy for pool `id`. When `embedded_refs` is true,
    /// object payloads are expected to start with a packed reference table.
    pub fn new(id: PoolId, embedded_refs: bool) -> Self {
        HugePool { id, embedded_refs }
    }

    fn stored_id(seg: &[u8]) -> u32 {
        u32::from_le_bytes(seg[8..12].try_into().unwrap())
    }
}

impl Pool for HugePool {
    fn id(&self) -> PoolId {
        self.id
    }

    fn kind(&self) -> SegmentKind {
        SegmentKind::SingleObject
    }

    fn max_object_len(&self) -> Option<usize> {
        None
    }

    fn new_segment(&self, first: ObjectId, first_len: usize) -> SegmentImage {
        let mut bytes = vec![0u8; SEGMENT_HEADER_LEN + first_len];
        write_header(&mut bytes, SegmentKind::SingleObject, self.id, 0, 0, first);
        SegmentImage::new_dirty(bytes)
    }

    fn try_append(&self, seg: &mut SegmentImage, id: ObjectId, data: &[u8]) -> AppendOutcome {
        if crate::pool::header_count(seg.bytes()) != 0 || Self::stored_id(seg.bytes()) != id.raw() {
            return AppendOutcome::Full;
        }
        if seg.len() < SEGMENT_HEADER_LEN + data.len() {
            return AppendOutcome::Full;
        }
        let bytes = seg.bytes_mut();
        bytes[SEGMENT_HEADER_LEN..SEGMENT_HEADER_LEN + data.len()].copy_from_slice(data);
        set_header_word(bytes, data.len() as u32);
        set_header_count(bytes, 1);
        AppendOutcome::Appended
    }

    fn locate(&self, seg: &[u8], id: ObjectId) -> LocateResult {
        if Self::stored_id(seg) != id.raw() {
            return LocateResult::Absent;
        }
        let len = header_word(seg);
        if len == LEN_DELETED {
            return LocateResult::Deleted;
        }
        if crate::pool::header_count(seg) == 0 {
            return LocateResult::Absent;
        }
        LocateResult::Found(SEGMENT_HEADER_LEN..SEGMENT_HEADER_LEN + len as usize)
    }

    fn try_update_in_place(&self, seg: &mut SegmentImage, id: ObjectId, data: &[u8]) -> bool {
        match self.locate(seg.bytes(), id) {
            LocateResult::Found(_) => {}
            _ => return false,
        }
        let capacity = seg.len() - SEGMENT_HEADER_LEN;
        if data.len() > capacity {
            return false;
        }
        let bytes = seg.bytes_mut();
        bytes[SEGMENT_HEADER_LEN..SEGMENT_HEADER_LEN + data.len()].copy_from_slice(data);
        set_header_word(bytes, data.len() as u32);
        true
    }

    fn delete(&self, seg: &mut SegmentImage, id: ObjectId) -> bool {
        match self.locate(seg.bytes(), id) {
            LocateResult::Found(_) => {
                let bytes = seg.bytes_mut();
                set_header_word(bytes, LEN_DELETED);
                set_header_count(bytes, 0);
                true
            }
            _ => false,
        }
    }

    fn live_objects(&self, seg: &[u8]) -> Vec<(ObjectId, Range<usize>)> {
        if crate::pool::header_count(seg) == 0 || header_word(seg) == LEN_DELETED {
            return Vec::new();
        }
        let id = ObjectId::from_raw(Self::stored_id(seg)).expect("stored ids are valid");
        vec![(id, SEGMENT_HEADER_LEN..SEGMENT_HEADER_LEN + header_word(seg) as usize)]
    }

    fn references(&self, object: &[u8]) -> Vec<u64> {
        if self.embedded_refs {
            refs::parse_reference_table(object).map(|(refs, _)| refs).unwrap_or_default()
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::LogicalSegment;

    fn oid(slot: u8) -> ObjectId {
        ObjectId::new(LogicalSegment(2), slot)
    }

    #[test]
    fn one_object_per_segment() {
        let p = HugePool::new(PoolId(2), false);
        let data = vec![0x5A; 10_000];
        let mut seg = p.new_segment(oid(0), data.len());
        assert_eq!(seg.len(), SEGMENT_HEADER_LEN + 10_000);
        assert_eq!(p.try_append(&mut seg, oid(0), &data), AppendOutcome::Appended);
        assert_eq!(p.try_append(&mut seg, oid(1), b"more"), AppendOutcome::Full);
        match p.locate(seg.bytes(), oid(0)) {
            LocateResult::Found(r) => assert_eq!(&seg.bytes()[r], &data[..]),
            o => panic!("{o:?}"),
        }
        assert_eq!(p.locate(seg.bytes(), oid(1)), LocateResult::Absent);
        assert_eq!(p.live_objects(seg.bytes()).len(), 1);
    }

    #[test]
    fn append_requires_matching_id() {
        let p = HugePool::new(PoolId(2), false);
        let mut seg = p.new_segment(oid(0), 4);
        assert_eq!(p.try_append(&mut seg, oid(5), b"data"), AppendOutcome::Full);
    }

    #[test]
    fn update_within_capacity_and_shrink() {
        let p = HugePool::new(PoolId(2), false);
        let mut seg = p.new_segment(oid(3), 8);
        p.try_append(&mut seg, oid(3), b"12345678");
        assert!(p.try_update_in_place(&mut seg, oid(3), b"abc"));
        match p.locate(seg.bytes(), oid(3)) {
            LocateResult::Found(r) => assert_eq!(&seg.bytes()[r], b"abc"),
            o => panic!("{o:?}"),
        }
        // Growing back up to original capacity works...
        assert!(p.try_update_in_place(&mut seg, oid(3), b"ABCDEFGH"));
        // ...but exceeding it does not.
        assert!(!p.try_update_in_place(&mut seg, oid(3), b"ABCDEFGHI"));
    }

    #[test]
    fn delete_then_queries_report_deleted() {
        let p = HugePool::new(PoolId(2), false);
        let mut seg = p.new_segment(oid(3), 4);
        p.try_append(&mut seg, oid(3), b"live");
        assert!(p.delete(&mut seg, oid(3)));
        assert!(!p.delete(&mut seg, oid(3)));
        assert_eq!(p.locate(seg.bytes(), oid(3)), LocateResult::Deleted);
        assert!(p.live_objects(seg.bytes()).is_empty());
        assert!(!p.try_update_in_place(&mut seg, oid(3), b"x"));
    }

    #[test]
    fn empty_object_is_storable() {
        let p = HugePool::new(PoolId(2), false);
        let mut seg = p.new_segment(oid(0), 0);
        assert_eq!(p.try_append(&mut seg, oid(0), b""), AppendOutcome::Appended);
        match p.locate(seg.bytes(), oid(0)) {
            LocateResult::Found(r) => assert!(r.is_empty()),
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn references_empty_without_flag() {
        let p = HugePool::new(PoolId(2), false);
        assert!(p.references(&[1, 2, 3]).is_empty());
    }
}

//! The small object pool: 16-byte slots, 255 objects per 4 Kbyte segment.
//!
//! "In all of the test collections, approximately 50% of the inverted lists
//! are 12 bytes or less. By allocating a 16 byte object (4 bytes for a size
//! field) for every inverted list less than or equal to 12 bytes, we can
//! conveniently fit a whole logical segment (255 objects) in one 4 Kbyte
//! physical segment. This greatly simplifies both the indexing strategy used
//! to locate these objects in the file and the buffer management strategy
//! for these segments." (Section 3.3)
//!
//! Because slot position is a pure function of the object id, the segment
//! needs no object table: slot `s` lives at `HEADER + 16*s`, its first four
//! bytes are the payload length, and two length sentinels mark
//! never-allocated and deleted slots.

use std::ops::Range;

use crate::id::{ObjectId, PoolId};
use crate::pool::{
    header_count, set_header_count, write_header, AppendOutcome, LocateResult, Pool,
    SEGMENT_HEADER_LEN,
};
use crate::segment::{SegmentImage, SegmentKind};

/// Bytes per slot: a 4-byte size field plus up to 12 payload bytes.
pub const SLOT_LEN: usize = 16;

/// Largest payload a small object can hold.
pub const MAX_SMALL_OBJECT: usize = SLOT_LEN - 4;

/// Total physical segment size: header + 255 slots, padded to 4 Kbytes.
pub const SMALL_SEGMENT_LEN: usize = 4096;

const LEN_UNALLOCATED: u32 = u32::MAX;
const LEN_DELETED: u32 = u32::MAX - 1;

/// The small object pool policy.
#[derive(Debug, Clone)]
pub struct SmallPool {
    id: PoolId,
}

impl SmallPool {
    /// Creates the policy for pool `id`.
    pub fn new(id: PoolId) -> Self {
        SmallPool { id }
    }

    fn slot_range(slot: u8) -> Range<usize> {
        let start = SEGMENT_HEADER_LEN + slot as usize * SLOT_LEN;
        start..start + SLOT_LEN
    }

    fn slot_len(seg: &[u8], slot: u8) -> u32 {
        let r = Self::slot_range(slot);
        u32::from_le_bytes(seg[r.start..r.start + 4].try_into().unwrap())
    }

    fn write_slot(seg: &mut [u8], slot: u8, data: &[u8]) {
        let r = Self::slot_range(slot);
        seg[r.start..r.start + 4].copy_from_slice(&(data.len() as u32).to_le_bytes());
        seg[r.start + 4..r.start + 4 + data.len()].copy_from_slice(data);
        // Zero the slack so segments are deterministic byte-for-byte.
        seg[r.start + 4 + data.len()..r.end].fill(0);
    }
}

impl Pool for SmallPool {
    fn id(&self) -> PoolId {
        self.id
    }

    fn kind(&self) -> SegmentKind {
        SegmentKind::FixedSlots
    }

    fn max_object_len(&self) -> Option<usize> {
        Some(MAX_SMALL_OBJECT)
    }

    fn new_segment(&self, first: ObjectId, _first_len: usize) -> SegmentImage {
        let mut bytes = vec![0u8; SMALL_SEGMENT_LEN];
        write_header(&mut bytes, SegmentKind::FixedSlots, self.id, 0, 0, first);
        // Mark every slot unallocated.
        for slot in 0..crate::id::SLOTS_PER_SEGMENT as u8 {
            let r = Self::slot_range(slot);
            bytes[r.start..r.start + 4].copy_from_slice(&LEN_UNALLOCATED.to_le_bytes());
        }
        SegmentImage::new_dirty(bytes)
    }

    fn try_append(&self, seg: &mut SegmentImage, id: ObjectId, data: &[u8]) -> AppendOutcome {
        assert!(data.len() <= MAX_SMALL_OBJECT, "caller must respect max_object_len");
        let slot = id.slot();
        if Self::slot_len(seg.bytes(), slot) != LEN_UNALLOCATED {
            return AppendOutcome::Full;
        }
        let bytes = seg.bytes_mut();
        Self::write_slot(bytes, slot, data);
        let count = header_count(bytes) + 1;
        set_header_count(bytes, count);
        AppendOutcome::Appended
    }

    fn locate(&self, seg: &[u8], id: ObjectId) -> LocateResult {
        match Self::slot_len(seg, id.slot()) {
            LEN_UNALLOCATED => LocateResult::Absent,
            LEN_DELETED => LocateResult::Deleted,
            len => {
                let r = Self::slot_range(id.slot());
                LocateResult::Found(r.start + 4..r.start + 4 + len as usize)
            }
        }
    }

    fn try_update_in_place(&self, seg: &mut SegmentImage, id: ObjectId, data: &[u8]) -> bool {
        if data.len() > MAX_SMALL_OBJECT {
            return false;
        }
        match Self::slot_len(seg.bytes(), id.slot()) {
            LEN_UNALLOCATED | LEN_DELETED => false,
            _ => {
                Self::write_slot(seg.bytes_mut(), id.slot(), data);
                true
            }
        }
    }

    fn delete(&self, seg: &mut SegmentImage, id: ObjectId) -> bool {
        let slot = id.slot();
        match Self::slot_len(seg.bytes(), slot) {
            LEN_UNALLOCATED | LEN_DELETED => false,
            _ => {
                let bytes = seg.bytes_mut();
                let r = Self::slot_range(slot);
                bytes[r.start..r.start + 4].copy_from_slice(&LEN_DELETED.to_le_bytes());
                let count = header_count(bytes) - 1;
                set_header_count(bytes, count);
                true
            }
        }
    }

    fn live_objects(&self, seg: &[u8]) -> Vec<(ObjectId, Range<usize>)> {
        let first = ObjectId::from_raw(u32::from_le_bytes(seg[8..12].try_into().unwrap()))
            .expect("segment header holds a valid first id");
        let lseg = first.segment();
        let mut out = Vec::new();
        for slot in 0..crate::id::SLOTS_PER_SEGMENT as u8 {
            let len = Self::slot_len(seg, slot);
            if len != LEN_UNALLOCATED && len != LEN_DELETED {
                let r = Self::slot_range(slot);
                out.push((ObjectId::new(lseg, slot), r.start + 4..r.start + 4 + len as usize));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::LogicalSegment;

    fn pool() -> SmallPool {
        SmallPool::new(PoolId(0))
    }

    fn oid(slot: u8) -> ObjectId {
        ObjectId::new(LogicalSegment(7), slot)
    }

    #[test]
    fn segment_is_exactly_4k_and_holds_255_objects() {
        let p = pool();
        let mut seg = p.new_segment(oid(0), 3);
        assert_eq!(seg.len(), 4096);
        for slot in 0..255u16 {
            let data = [slot as u8; 12];
            assert_eq!(p.try_append(&mut seg, oid(slot as u8), &data), AppendOutcome::Appended);
        }
        assert_eq!(header_count(seg.bytes()), 255);
        assert_eq!(p.live_objects(seg.bytes()).len(), 255);
    }

    #[test]
    fn append_then_locate_round_trips() {
        let p = pool();
        let mut seg = p.new_segment(oid(0), 0);
        p.try_append(&mut seg, oid(9), b"hello");
        match p.locate(seg.bytes(), oid(9)) {
            LocateResult::Found(r) => assert_eq!(&seg.bytes()[r], b"hello"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(p.locate(seg.bytes(), oid(10)), LocateResult::Absent);
    }

    #[test]
    fn empty_payload_is_allowed() {
        let p = pool();
        let mut seg = p.new_segment(oid(0), 0);
        p.try_append(&mut seg, oid(0), b"");
        match p.locate(seg.bytes(), oid(0)) {
            LocateResult::Found(r) => assert!(r.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn double_append_to_same_slot_reports_full() {
        let p = pool();
        let mut seg = p.new_segment(oid(0), 0);
        assert_eq!(p.try_append(&mut seg, oid(4), b"a"), AppendOutcome::Appended);
        assert_eq!(p.try_append(&mut seg, oid(4), b"b"), AppendOutcome::Full);
    }

    #[test]
    fn update_in_place_overwrites_and_respects_limits() {
        let p = pool();
        let mut seg = p.new_segment(oid(0), 0);
        p.try_append(&mut seg, oid(3), b"abcdef");
        assert!(p.try_update_in_place(&mut seg, oid(3), b"xy"));
        match p.locate(seg.bytes(), oid(3)) {
            LocateResult::Found(r) => assert_eq!(&seg.bytes()[r], b"xy"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(!p.try_update_in_place(&mut seg, oid(3), &[0u8; 13]), "13 bytes exceeds slot");
        assert!(!p.try_update_in_place(&mut seg, oid(8), b"q"), "absent object");
    }

    #[test]
    fn delete_marks_slot_and_updates_count() {
        let p = pool();
        let mut seg = p.new_segment(oid(0), 0);
        p.try_append(&mut seg, oid(1), b"abc");
        p.try_append(&mut seg, oid(2), b"def");
        assert!(p.delete(&mut seg, oid(1)));
        assert!(!p.delete(&mut seg, oid(1)), "double delete is false");
        assert_eq!(p.locate(seg.bytes(), oid(1)), LocateResult::Deleted);
        assert_eq!(header_count(seg.bytes()), 1);
        let live = p.live_objects(seg.bytes());
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].0, oid(2));
    }

    #[test]
    fn max_payload_fits_exactly() {
        let p = pool();
        let mut seg = p.new_segment(oid(0), 0);
        let data = [0xAB; MAX_SMALL_OBJECT];
        assert_eq!(p.try_append(&mut seg, oid(250), &data), AppendOutcome::Appended);
        match p.locate(seg.bytes(), oid(250)) {
            LocateResult::Found(r) => assert_eq!(&seg.bytes()[r], &data),
            other => panic!("unexpected {other:?}"),
        }
    }
}

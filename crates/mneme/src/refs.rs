//! Inter-object references.
//!
//! "The only structure Mneme is aware of is that objects may contain the
//! identifiers of other objects, resulting in inter-object references."
//! (Section 3.2). The paper's conclusions highlight that such references
//! "allow structures such as linked lists to be used to break large objects
//! into more manageable pieces ... and allow incremental retrieval of large
//! aggregate objects" — implemented here and used by the chunked
//! inverted-list extension in `poir-core`.
//!
//! An object that carries references uses the payload format
//!
//! ```text
//! [ref count u32 LE][count x packed GlobalId (u64 LE)][application bytes]
//! ```
//!
//! so any pool flagged with `embedded_refs` can enumerate outgoing edges for
//! garbage collection without understanding the application data.

use crate::id::GlobalId;

/// Encodes a payload carrying `refs` outgoing references.
pub fn encode_with_references(refs: &[GlobalId], payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + refs.len() * 8 + payload.len());
    out.extend_from_slice(&(refs.len() as u32).to_le_bytes());
    for r in refs {
        out.extend_from_slice(&r.pack().to_le_bytes());
    }
    out.extend_from_slice(payload);
    out
}

/// Splits an object encoded by [`encode_with_references`] into its packed
/// reference list and its application payload. Returns `None` if the bytes
/// are too short to contain the declared table.
pub fn parse_reference_table(object: &[u8]) -> Option<(Vec<u64>, &[u8])> {
    if object.len() < 4 {
        return None;
    }
    let n = u32::from_le_bytes(object[0..4].try_into().unwrap()) as usize;
    let table_end = 4usize.checked_add(n.checked_mul(8)?)?;
    if object.len() < table_end {
        return None;
    }
    let mut refs = Vec::with_capacity(n);
    for i in 0..n {
        let start = 4 + i * 8;
        refs.push(u64::from_le_bytes(object[start..start + 8].try_into().unwrap()));
    }
    Some((refs, &object[table_end..]))
}

/// Decodes the reference table into [`GlobalId`]s, skipping malformed
/// entries.
pub fn decode_references(object: &[u8]) -> Vec<GlobalId> {
    parse_reference_table(object)
        .map(|(raw, _)| raw.into_iter().filter_map(GlobalId::unpack).collect())
        .unwrap_or_default()
}

/// Returns just the application payload of a reference-carrying object.
pub fn payload(object: &[u8]) -> Option<&[u8]> {
    parse_reference_table(object).map(|(_, p)| p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{FileSlot, LogicalSegment, ObjectId};

    fn gid(seg: u32, slot: u8) -> GlobalId {
        GlobalId { file: FileSlot(1), object: ObjectId::new(LogicalSegment(seg), slot) }
    }

    #[test]
    fn round_trip_with_references() {
        let refs = vec![gid(0, 1), gid(9, 200), gid(123, 0)];
        let obj = encode_with_references(&refs, b"payload bytes");
        let (raw, body) = parse_reference_table(&obj).unwrap();
        assert_eq!(raw.len(), 3);
        assert_eq!(body, b"payload bytes");
        assert_eq!(decode_references(&obj), refs);
        assert_eq!(payload(&obj), Some(&b"payload bytes"[..]));
    }

    #[test]
    fn empty_reference_table() {
        let obj = encode_with_references(&[], b"x");
        assert_eq!(decode_references(&obj), Vec::new());
        assert_eq!(payload(&obj), Some(&b"x"[..]));
    }

    #[test]
    fn truncated_objects_are_rejected() {
        assert!(parse_reference_table(b"").is_none());
        assert!(parse_reference_table(&[1, 0]).is_none());
        // Declares 2 refs (16 bytes) but holds only 8.
        let mut bad = 2u32.to_le_bytes().to_vec();
        bad.extend_from_slice(&[0u8; 8]);
        assert!(parse_reference_table(&bad).is_none());
    }

    #[test]
    fn huge_declared_count_does_not_overflow() {
        let mut bad = u32::MAX.to_le_bytes().to_vec();
        bad.extend_from_slice(&[0u8; 32]);
        assert!(parse_reference_table(&bad).is_none());
    }
}

//! Object identifiers and logical-segment arithmetic.
//!
//! Mneme assigns each object "a unique identifier ... unique only within
//! the object's file" and bounds the number of simultaneously accessible
//! objects by the 2^28 globally unique identifiers (Section 3.2). Object
//! lookup is "facilitated by logical segments, which contain 255 objects
//! logically grouped together to assist in identification, indexing, and
//! location".
//!
//! We encode a file-local id in 28 bits as `(logical segment << 8) | slot`
//! where `slot` ranges over `0..255` (value 255 is reserved so a byte of
//! all ones never denotes a live slot). This gives 2^20 logical segments of
//! 255 objects each per file.

/// Number of object slots in one logical segment.
pub const SLOTS_PER_SEGMENT: u32 = 255;

/// Number of logical segments in one file (20 bits).
pub const MAX_LOGICAL_SEGMENTS: u32 = 1 << 20;

/// A file-local object identifier (28 bits used).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(u32);

impl std::fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ObjectId({}:{})", self.segment().0, self.slot())
    }
}

impl ObjectId {
    /// Builds an id from a logical segment and a slot.
    ///
    /// # Panics
    /// Panics if `slot >= 255` or the segment is out of range.
    pub fn new(segment: LogicalSegment, slot: u8) -> Self {
        assert!((slot as u32) < SLOTS_PER_SEGMENT, "slot {slot} out of range");
        assert!(segment.0 < MAX_LOGICAL_SEGMENTS, "segment out of range");
        ObjectId((segment.0 << 8) | slot as u32)
    }

    /// Reconstructs an id from its raw 28-bit representation, validating the
    /// slot field.
    pub fn from_raw(raw: u32) -> Option<Self> {
        let id = ObjectId(raw);
        if raw >> 28 != 0 && raw != u32::MAX {
            return None;
        }
        if raw == u32::MAX || (raw & 0xFF) >= SLOTS_PER_SEGMENT {
            return None;
        }
        Some(id)
    }

    /// The raw 28-bit representation.
    pub fn raw(&self) -> u32 {
        self.0
    }

    /// The logical segment this object belongs to.
    pub fn segment(&self) -> LogicalSegment {
        LogicalSegment(self.0 >> 8)
    }

    /// The slot within the logical segment (`0..255`).
    pub fn slot(&self) -> u8 {
        (self.0 & 0xFF) as u8
    }
}

/// Index of a logical segment within a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LogicalSegment(pub u32);

impl LogicalSegment {
    /// Ids of all slots in this segment, in order.
    pub fn object_ids(&self) -> impl Iterator<Item = ObjectId> + '_ {
        let seg = *self;
        (0..SLOTS_PER_SEGMENT as u8).map(move |slot| ObjectId::new(seg, slot))
    }
}

/// Identifier of a pool within a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PoolId(pub u8);

/// Slot of an open file within a [`crate::Store`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileSlot(pub u16);

/// A store-wide ("globally unique") object identifier: an open file plus a
/// file-local object id. The paper maps file-local ids to global ids when
/// objects are accessed so multiple files can be open simultaneously.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId {
    pub file: FileSlot,
    pub object: ObjectId,
}

impl GlobalId {
    /// Packs into a u64 (for storing references inside objects).
    pub fn pack(&self) -> u64 {
        ((self.file.0 as u64) << 32) | self.object.raw() as u64
    }

    /// Unpacks a reference produced by [`GlobalId::pack`].
    pub fn unpack(raw: u64) -> Option<GlobalId> {
        let object = ObjectId::from_raw((raw & 0xFFFF_FFFF) as u32)?;
        Some(GlobalId { file: FileSlot((raw >> 32) as u16), object })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_round_trips_segment_and_slot() {
        let seg = LogicalSegment(12345);
        for slot in [0u8, 1, 100, 254] {
            let id = ObjectId::new(seg, slot);
            assert_eq!(id.segment(), seg);
            assert_eq!(id.slot(), slot);
            assert_eq!(ObjectId::from_raw(id.raw()), Some(id));
        }
    }

    #[test]
    #[should_panic(expected = "slot 255 out of range")]
    fn slot_255_is_reserved() {
        ObjectId::new(LogicalSegment(0), 255);
    }

    #[test]
    #[should_panic(expected = "segment out of range")]
    fn segment_must_fit_20_bits() {
        ObjectId::new(LogicalSegment(MAX_LOGICAL_SEGMENTS), 0);
    }

    #[test]
    fn from_raw_rejects_invalid() {
        assert!(ObjectId::from_raw(0x00FF).is_none()); // slot 255
        assert!(ObjectId::from_raw(u32::MAX).is_none()); // sentinel
        assert!(ObjectId::from_raw(1 << 29).is_none()); // beyond 28 bits
        assert!(ObjectId::from_raw(0).is_some());
    }

    #[test]
    fn segment_enumerates_255_ids() {
        let seg = LogicalSegment(3);
        let ids: Vec<_> = seg.object_ids().collect();
        assert_eq!(ids.len(), 255);
        assert_eq!(ids[0].slot(), 0);
        assert_eq!(ids[254].slot(), 254);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn global_id_packs_and_unpacks() {
        let gid = GlobalId { file: FileSlot(7), object: ObjectId::new(LogicalSegment(99), 42) };
        assert_eq!(GlobalId::unpack(gid.pack()), Some(gid));
        assert!(GlobalId::unpack(0x0000_0001_0000_00FF).is_none()); // slot 255
    }

    #[test]
    fn id_space_is_2_to_28() {
        let top = ObjectId::new(LogicalSegment(MAX_LOGICAL_SEGMENTS - 1), 254);
        assert!(top.raw() < (1 << 28));
    }
}

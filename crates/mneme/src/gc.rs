//! Offline compaction ("garbage collection of the persistent store").
//!
//! Deletions and relocating updates leave tombstoned payloads behind
//! (tracked by [`MnemeFile::garbage_bytes`]). [`compact`] rewrites a file's
//! live objects into a fresh file, reclaiming that space. Object ids are
//! reassigned densely in the new file; the returned [`IdMap`] lets the
//! application (e.g. the INQUERY hash dictionary, which stores an object id
//! per term) rebind its references.
//!
//! Pools are preserved: every object lands in the pool it came from, so the
//! paper's small/medium/large clustering survives compaction.

use std::collections::HashMap;

use poir_storage::FileHandle;

use crate::error::Result;
use crate::file::MnemeFile;
use crate::id::ObjectId;
use crate::pool::PoolConfig;

/// Mapping from pre-compaction to post-compaction object ids.
pub type IdMap = HashMap<ObjectId, ObjectId>;

/// Statistics reported by a compaction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionStats {
    /// Live objects copied.
    pub objects_copied: u64,
    /// Size of the source file in bytes.
    pub bytes_before: u64,
    /// Size of the compacted file in bytes.
    pub bytes_after: u64,
}

/// Rewrites the live objects of `source` into a new file on `dest`,
/// preserving pool membership. Returns the new file, the id remapping, and
/// statistics. `configs` must be the pool set `source` was created with.
pub fn compact(
    source: &mut MnemeFile,
    dest: FileHandle,
    configs: &[PoolConfig],
    num_buckets: u32,
) -> Result<(MnemeFile, IdMap, CompactionStats)> {
    source.flush()?;
    let bytes_before = source.file_size()?;
    let mut out = MnemeFile::create(dest, configs, num_buckets)?;
    let mut map = IdMap::new();
    // Copy in id order so each pool's objects stay in their original
    // relative order (and packed segments refill densely).
    for old_id in source.live_object_ids()? {
        let pool = source.pool_of(old_id)?;
        let payload = source.get(old_id)?;
        let new_id = out.create_object(pool, &payload)?;
        map.insert(old_id, new_id);
    }
    out.flush()?;
    let stats = CompactionStats {
        objects_copied: map.len() as u64,
        bytes_before,
        bytes_after: out.file_size()?,
    };
    Ok((out, map, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::PoolId;
    use crate::pool::PoolKindConfig;
    use poir_storage::Device;

    fn configs() -> Vec<PoolConfig> {
        vec![
            PoolConfig { id: PoolId(0), kind: PoolKindConfig::Small },
            PoolConfig { id: PoolId(1), kind: PoolKindConfig::Packed { segment_size: 512 } },
            PoolConfig {
                id: PoolId(2),
                kind: PoolKindConfig::SegmentPerObject { embedded_refs: false },
            },
        ]
    }

    #[test]
    fn compaction_reclaims_tombstoned_space() {
        let dev = Device::with_defaults();
        let mut file = MnemeFile::create(dev.create_file(), &configs(), 8).unwrap();
        let mut keep = Vec::new();
        let mut drop_ids = Vec::new();
        for i in 0..200u32 {
            let id = file.create_object(PoolId(1), &[i as u8; 40]).unwrap();
            if i % 2 == 0 {
                keep.push((id, i as u8));
            } else {
                drop_ids.push(id);
            }
        }
        let big = file.create_object(PoolId(2), &vec![7u8; 20_000]).unwrap();
        for id in drop_ids {
            file.delete(id).unwrap();
        }
        let (out, map, stats) = compact(&mut file, dev.create_file(), &configs(), 8).unwrap();
        assert_eq!(stats.objects_copied, 101);
        assert!(
            stats.bytes_after < stats.bytes_before,
            "compaction must shrink the file: {} -> {}",
            stats.bytes_before,
            stats.bytes_after
        );
        for (old, fill) in keep {
            let new = map[&old];
            assert_eq!(out.get(new).unwrap(), vec![fill; 40]);
            assert_eq!(out.pool_of(new).unwrap(), PoolId(1), "pool preserved");
        }
        assert_eq!(out.get(map[&big]).unwrap(), vec![7u8; 20_000]);
        assert_eq!(out.pool_of(map[&big]).unwrap(), PoolId(2));
    }

    #[test]
    fn compacting_an_untouched_file_is_lossless() {
        let dev = Device::with_defaults();
        let mut file = MnemeFile::create(dev.create_file(), &configs(), 4).unwrap();
        let mut ids = Vec::new();
        for i in 0..50u32 {
            let pool = PoolId((i % 3) as u8);
            let data = vec![i as u8; (i as usize % 11) + 1];
            ids.push((file.create_object(pool, &data).unwrap(), data));
        }
        let (out, map, stats) = compact(&mut file, dev.create_file(), &configs(), 4).unwrap();
        assert_eq!(stats.objects_copied, 50);
        for (old, data) in ids {
            assert_eq!(out.get(map[&old]).unwrap(), data);
        }
    }

    #[test]
    fn compacted_file_reopens() {
        let dev = Device::with_defaults();
        let mut file = MnemeFile::create(dev.create_file(), &configs(), 4).unwrap();
        let id = file.create_object(PoolId(0), b"tiny").unwrap();
        let dest = dev.create_file();
        let (out, map, _) = compact(&mut file, dest.clone(), &configs(), 4).unwrap();
        drop(out);
        let reopened = MnemeFile::open(dest).unwrap();
        assert_eq!(reopened.get(map[&id]).unwrap(), b"tiny");
    }
}

//! Engine-level integration tests: the three storage configurations must
//! agree on retrieval results while exhibiting the paper's distinct I/O
//! profiles.

use std::sync::Arc;

use poir_core::{BackendKind, Engine};
use poir_inquery::{Index, IndexBuilder, StopWords};
use poir_storage::{CostModel, Device, DeviceConfig};

fn build_index(num_docs: usize) -> Index {
    let mut b = IndexBuilder::new(StopWords::default());
    // Deterministic pseudo-corpus with skewed term frequencies and some
    // topical repetition so different operators have work to do.
    for d in 0..num_docs {
        let mut text = String::new();
        for t in 0..60 {
            let rank = (d * 31 + t * 17) % 211; // common terms
            text.push_str(&format!("w{rank} "));
            if (d + t) % 7 == 0 {
                text.push_str(&format!("rare{d} ", d = d % 37));
            }
        }
        if d % 5 == 0 {
            text.push_str("object store performance ");
        }
        b.add_document(&format!("DOC-{d:04}"), &text);
    }
    b.finish()
}

fn device() -> Arc<Device> {
    Device::new(DeviceConfig {
        block_size: 8192,
        os_cache_blocks: 128,
        cost_model: CostModel::default(),
    })
}

fn engines(num_docs: usize) -> Vec<Engine> {
    BackendKind::all()
        .into_iter()
        .map(|backend| {
            let dev = device();
            Engine::builder(&dev).backend(backend).build(build_index(num_docs)).unwrap()
        })
        .collect()
}

const QUERIES: &[&str] = &[
    "w3 w17 w50",
    "#and(w3 w17)",
    "#or(w100 rare5)",
    "#wsum(3 w7 1 w9 2 rare11)",
    "#phrase(object store)",
    "#and(#or(w1 w2) #not(w3))",
    "#uw10(object performance)",
    "#max(w5 w6 w7)",
];

#[test]
fn all_backends_return_identical_rankings() {
    let mut engines = engines(150);
    for q in QUERIES {
        let mut results = engines.iter_mut().map(|e| e.query(q, 20).unwrap());
        let reference = results.next().unwrap();
        for r in results {
            assert_eq!(r.len(), reference.len(), "query {q}");
            for (a, b) in reference.iter().zip(r.iter()) {
                assert_eq!(a.doc, b.doc, "query {q}");
                assert_eq!(a.name, b.name, "query {q}");
                assert!((a.score - b.score).abs() < 1e-12, "query {q}");
            }
        }
    }
}

#[test]
fn mneme_needs_fewer_accesses_per_lookup_than_btree() {
    let mut engines = engines(400);
    let queries: Vec<String> =
        (0..40).map(|i| format!("w{} w{} w{}", i * 5 % 211, i * 7 % 211, i * 11 % 211)).collect();
    let reports: Vec<_> =
        engines.iter_mut().map(|e| e.run_query_set(&queries, 10).unwrap()).collect();
    let (btree, nocache, cache) = (&reports[0], &reports[1], &reports[2]);
    // Table 5's shape: the B-tree needs > 1 access per lookup; plain Mneme
    // is close to 1; cached Mneme drops below the no-cache version.
    assert!(btree.accesses_per_lookup() > 1.0, "B-tree A = {}", btree.accesses_per_lookup());
    assert!(
        nocache.accesses_per_lookup() < btree.accesses_per_lookup(),
        "Mneme no-cache A = {} must beat B-tree {}",
        nocache.accesses_per_lookup(),
        btree.accesses_per_lookup()
    );
    assert!(
        cache.accesses_per_lookup() < nocache.accesses_per_lookup(),
        "cache A = {} must beat no-cache {}",
        cache.accesses_per_lookup(),
        nocache.accesses_per_lookup()
    );
    // And caching reduces bytes read.
    assert!(cache.kbytes_read() <= nocache.kbytes_read());
    // Simulated system + I/O time follows the same order.
    assert!(cache.sys_io_time <= nocache.sys_io_time);
    // Lookup counts are identical across configurations.
    assert_eq!(btree.record_lookups, nocache.record_lookups);
    assert_eq!(btree.record_lookups, cache.record_lookups);
}

#[test]
fn buffer_stats_present_only_for_mneme() {
    let mut engines = engines(100);
    let queries = vec!["w1 w2 w3"; 5];
    let reports: Vec<_> =
        engines.iter_mut().map(|e| e.run_query_set(&queries, 10).unwrap()).collect();
    assert!(reports[0].buffer_stats.is_none());
    assert!(reports[1].buffer_stats.is_some());
    let stats = reports[2].buffer_stats.unwrap();
    let total_refs: u64 = stats.iter().map(|s| s.refs).sum();
    assert_eq!(total_refs, reports[2].record_lookups, "every lookup is a buffer ref");
    // Repeated identical queries must produce cache hits.
    assert!(stats.iter().map(|s| s.hits).sum::<u64>() > 0);
}

#[test]
fn repeated_queries_hit_the_record_cache() {
    let dev = device();
    let mut engine =
        Engine::builder(&dev).backend(BackendKind::MnemeCache).build(build_index(200)).unwrap();
    let queries = vec!["w10 w20 w30"; 10];
    let report = engine.run_query_set(&queries, 10).unwrap();
    let stats = report.buffer_stats.unwrap();
    let refs: u64 = stats.iter().map(|s| s.refs).sum();
    let hits: u64 = stats.iter().map(|s| s.hits).sum();
    // 10 identical queries: everything after the first pass hits.
    assert_eq!(refs, 30);
    assert!(hits >= 27, "hits {hits} of {refs}");
}

#[test]
fn save_and_reopen_round_trips() {
    let dev = device();
    for backend in BackendKind::all() {
        let mut engine = Engine::builder(&dev).backend(backend).build(build_index(80)).unwrap();
        let expected = engine.query("w3 w17 object", 10).unwrap();
        let meta = dev.create_file();
        engine.save(&meta).unwrap();
        let store_handle = engine.store_handle().clone();
        drop(engine);
        let mut reopened = Engine::builder(&dev).open(store_handle, &meta).unwrap();
        assert_eq!(reopened.backend(), backend);
        let got = reopened.query("w3 w17 object", 10).unwrap();
        assert_eq!(expected, got, "backend {}", backend.label());
    }
}

#[test]
fn incremental_add_makes_documents_findable() {
    let dev = device();
    let mut engine =
        Engine::builder(&dev).backend(BackendKind::MnemeCache).build(build_index(50)).unwrap();
    assert!(engine.query("zyzzyva", 5).unwrap().is_empty());
    let doc = engine.add_document("NEW-0001", "the zyzzyva weevil object store").unwrap();
    let hits = engine.query("zyzzyva", 5).unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].doc, doc);
    assert_eq!(hits[0].name, "NEW-0001");
    // Existing terms got the new document appended.
    let hits = engine.query("#phrase(object store)", 100).unwrap();
    assert!(hits.iter().any(|h| h.doc == doc));
    // Statistics were maintained.
    let id = engine.dictionary().lookup("zyzzyva").unwrap();
    assert_eq!(engine.dictionary().entry(id).df, 1);
}

#[test]
fn incremental_add_matches_full_reindex_scores() {
    // Build A: 60 docs indexed in batch. Build B: 50 docs + 10 added
    // incrementally. Rankings must agree.
    let dev = device();
    let full = build_index(60);
    let mut batch = Engine::builder(&dev).backend(BackendKind::MnemeCache).build(full).unwrap();

    let partial = build_index(50);
    let mut incremental =
        Engine::builder(&dev).backend(BackendKind::MnemeCache).build(partial).unwrap();
    // Regenerate documents 50..60 exactly as build_index does.
    for d in 50..60 {
        let mut text = String::new();
        for t in 0..60 {
            let rank = (d * 31 + t * 17) % 211;
            text.push_str(&format!("w{rank} "));
            if (d + t) % 7 == 0 {
                text.push_str(&format!("rare{d} ", d = d % 37));
            }
        }
        if d % 5 == 0 {
            text.push_str("object store performance ");
        }
        incremental.add_document(&format!("DOC-{d:04}"), &text).unwrap();
    }
    for q in QUERIES {
        let a = batch.query(q, 15).unwrap();
        let b = incremental.query(q, 15).unwrap();
        assert_eq!(a.len(), b.len(), "query {q}");
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.doc, y.doc, "query {q}");
            assert!((x.score - y.score).abs() < 1e-12, "query {q}");
        }
    }
}

#[test]
fn remove_document_hides_it_from_results() {
    let dev = device();
    let mut engine =
        Engine::builder(&dev).backend(BackendKind::MnemeCache).build(build_index(50)).unwrap();
    let text = "unique removable document text zanzibar";
    let doc = engine.add_document("TEMP-1", text).unwrap();
    assert_eq!(engine.query("zanzibar", 5).unwrap().len(), 1);
    engine.remove_document(doc, text).unwrap();
    assert!(engine.query("zanzibar", 5).unwrap().is_empty());
}

#[test]
fn btree_backend_rejects_updates() {
    let dev = device();
    let mut engine =
        Engine::builder(&dev).backend(BackendKind::BTree).build(build_index(30)).unwrap();
    assert!(engine.add_document("X", "some text").is_err());
    assert!(engine.set_buffer_sizes(poir_core::BufferSizes::NONE).is_err());
    assert!(engine.paper_buffer_sizes().is_err());
}

#[test]
fn daat_agrees_with_taat_through_the_engine() {
    let dev = device();
    let mut engine =
        Engine::builder(&dev).backend(BackendKind::MnemeCache).build(build_index(120)).unwrap();
    let taat = engine.query("w3 w17 w50 rare5", 15).unwrap();
    let daat = engine.query_daat("w3 w17 w50 rare5", 15).unwrap();
    assert_eq!(taat.len(), daat.len());
    for (a, b) in taat.iter().zip(daat.iter()) {
        assert_eq!(a.doc, b.doc);
        assert!((a.score - b.score).abs() < 1e-9);
    }
    // Structured queries are rejected by the DAAT path.
    assert!(engine.query_daat("#and(w1 w2)", 5).is_err());
}

#[test]
fn store_file_sizes_are_reported() {
    let mut engines = engines(100);
    for e in &mut engines {
        let size = e.store_file_size().unwrap();
        assert!(size > 8192, "{}: {size}", e.backend().label());
    }
}

//! Serving-path cache hierarchy: integration behaviour across the three
//! tiers — buffer replacement policy, decoded-block cache, query-result
//! cache. The invariant under test everywhere: caches change timing, never
//! rankings.

use std::sync::Arc;

use poir_core::{BackendKind, Engine, ExecMode, QueryRequest, ServiceConfig, ShardSpec};
use poir_inquery::{Index, IndexBuilder, StopWords};
use poir_mneme::BufferPolicy;
use poir_storage::{CostModel, Device, DeviceConfig};
use poir_telemetry::MetricValue;

fn build_index(num_docs: usize) -> Index {
    let mut b = IndexBuilder::new(StopWords::default());
    for d in 0..num_docs {
        let mut text = String::new();
        for t in 0..60 {
            let rank = (d * 31 + t * 17) % 211;
            text.push_str(&format!("w{rank} "));
            if (d + t) % 7 == 0 {
                text.push_str(&format!("rare{d} ", d = d % 37));
            }
        }
        b.add_document(&format!("DOC-{d:04}"), &text);
    }
    b.finish()
}

fn device() -> Arc<Device> {
    Device::new(DeviceConfig {
        block_size: 8192,
        os_cache_blocks: 128,
        cost_model: CostModel::default(),
    })
}

/// Lifetime record count of a shard-eval histogram in the service registry
/// — the direct witness that a request did (or did not) evaluate shards.
fn eval_count(stats: &poir_core::ServiceStats, shard: usize) -> u64 {
    match stats.registry.get(&format!("shard{shard}_eval_micros")) {
        Some(MetricValue::Histogram { lifetime, .. }) => lifetime.count,
        other => panic!("shard{shard}_eval_micros missing or wrong kind: {other:?}"),
    }
}

fn assert_same_ranking(a: &poir_core::QueryResponse, b: &poir_core::QueryResponse) {
    assert_eq!(a.hits.len(), b.hits.len());
    for (x, y) in a.hits.iter().zip(b.hits.iter()) {
        assert_eq!(x.doc, y.doc);
        assert_eq!(x.name, y.name);
        assert_eq!(x.score.to_bits(), y.score.to_bits(), "scores must be bit-identical");
    }
}

#[test]
fn service_result_cache_hit_skips_shard_evaluation() {
    let dev = device();
    let service = Engine::builder(&dev)
        .sharding(ShardSpec::new(2, 2))
        .service_config(ServiceConfig { result_cache_entries: 8, ..ServiceConfig::default() })
        .build_service(build_index(200))
        .unwrap();
    let q = || QueryRequest::new("w3 w17 w50", 10);

    let first = service.query(q()).unwrap();
    assert!(!first.cached, "first evaluation cannot be a cache hit");
    let after_first = service.stats();
    let evals_after_first: Vec<u64> = (0..2).map(|s| eval_count(&after_first, s)).collect();
    assert!(evals_after_first.iter().all(|&c| c > 0), "first request evaluated every shard");

    let second = service.query(q()).unwrap();
    assert!(second.cached, "repeat under an unchanged epoch must hit");
    assert_same_ranking(&first, &second);
    let after_second = service.stats();
    for (s, &evals) in evals_after_first.iter().enumerate() {
        assert_eq!(eval_count(&after_second, s), evals, "a cache hit must not evaluate shard {s}");
    }
    let cache = after_second.result_cache.expect("cache configured");
    assert_eq!((cache.hits, cache.misses), (1, 1));
    assert!(cache.hit_rate() > 0.0);
    assert_eq!(after_second.completed, 2, "hits still count as completions");
    service.shutdown();
}

#[test]
fn service_epoch_bump_invalidates_result_cache() {
    let dev = device();
    let service = Engine::builder(&dev)
        .sharding(ShardSpec::new(2, 2))
        .service_config(ServiceConfig { result_cache_entries: 8, ..ServiceConfig::default() })
        .build_service(build_index(200))
        .unwrap();
    let q = || QueryRequest::new("w7 rare11", 10);

    let first = service.query(q()).unwrap();
    assert!(!first.cached);
    assert!(service.query(q()).unwrap().cached, "warm entry hits");

    service.invalidate_caches();
    let after_bump = service.query(q()).unwrap();
    assert!(!after_bump.cached, "epoch bump must invalidate the entry");
    assert_same_ranking(&first, &after_bump);
    let stats = service.result_cache_stats().unwrap();
    assert!(stats.evicts >= 1, "the stale entry is dropped on lookup");
    assert!(service.query(q()).unwrap().cached, "fresh entry under the new epoch hits again");
    service.shutdown();
}

#[test]
fn service_distinct_requests_do_not_share_entries() {
    let dev = device();
    let service = Engine::builder(&dev)
        .service_config(ServiceConfig { result_cache_entries: 8, ..ServiceConfig::default() })
        .build_service(build_index(120))
        .unwrap();
    assert!(!service.query(QueryRequest::new("w3 w17", 10)).unwrap().cached);
    // Same text, different k: a different key, so a miss.
    assert!(!service.query(QueryRequest::new("w3 w17", 5)).unwrap().cached);
    // Same text and k, different mode: also a miss.
    let mut daat = QueryRequest::new("w3 w17", 10);
    daat.mode = Some(ExecMode::Daat);
    assert!(!service.query(daat).unwrap().cached);
    // Whitespace-normalized repeat of the first request: a hit.
    assert!(service.query(QueryRequest::new("  w3 w17  ", 10)).unwrap().cached);
    service.shutdown();
}

#[test]
fn block_cache_rankings_are_bit_identical_and_hit_on_repeats() {
    // Big enough that common terms exceed BLOCK_SIZE = 128 postings and
    // get the blocked bit-packed layout the cache keys on.
    let index = build_index(700);
    let dev_plain = device();
    let mut plain = Engine::builder(&dev_plain)
        .backend(BackendKind::MnemeCache)
        .exec_mode(ExecMode::DaatPruned)
        .build(build_index(700))
        .unwrap();
    let dev_cached = device();
    let mut cached = Engine::builder(&dev_cached)
        .backend(BackendKind::MnemeCache)
        .exec_mode(ExecMode::DaatPruned)
        .block_cache_bytes(4 << 20)
        .build(index)
        .unwrap();
    assert!(plain.block_cache_stats().is_none());
    assert!(cached.block_cache_stats().is_some());

    let queries = ["w3 w17 w50", "w7 w9 rare11", "w100 rare5", "w5 w6 w7"];
    // Three passes: the first decodes cold, the second re-references
    // ghosts into residency (admission-on-second-reference), the third
    // hits. Pruned document-at-a-time is the block-cursor path.
    for _ in 0..3 {
        for q in &queries {
            let mut req = QueryRequest::new(*q, 20);
            req.mode = Some(ExecMode::DaatPruned);
            let a = plain.execute(&req).unwrap();
            let b = cached.execute(&req).unwrap();
            assert_same_ranking(&a, &b);
        }
    }
    let stats = cached.block_cache_stats().unwrap();
    assert!(stats.hits > 0, "repeated queries must hit the decoded-block cache: {stats:?}");
    assert!(stats.bytes <= stats.capacity, "byte bound respected: {stats:?}");
}

#[test]
fn buffer_policies_agree_on_rankings() {
    let reference: Vec<_> = {
        let dev = device();
        let mut e = Engine::builder(&dev).build(build_index(150)).unwrap();
        e.query("w3 w17 w50", 20).unwrap()
    };
    for policy in [BufferPolicy::Lru, BufferPolicy::Clock, BufferPolicy::S3Fifo] {
        let dev = device();
        let mut e = Engine::builder(&dev).buffer_policy(policy).build(build_index(150)).unwrap();
        let got = e.query("w3 w17 w50", 20).unwrap();
        assert_eq!(got.len(), reference.len(), "{policy:?}");
        for (a, b) in reference.iter().zip(got.iter()) {
            assert_eq!(a.doc, b.doc, "{policy:?}");
            assert_eq!(a.score.to_bits(), b.score.to_bits(), "{policy:?}");
        }
    }
}

#[test]
fn engine_mutation_bumps_store_epoch() {
    let dev = device();
    let mut e = Engine::builder(&dev).build(build_index(50)).unwrap();
    let before = e.store_epoch();
    e.add_document("NEW-DOC", "object store performance w3").unwrap();
    let after = e.store_epoch();
    assert!(after > before, "add_document must advance the epoch ({before} -> {after})");
    assert_eq!(after >> 32, before >> 32, "store id (high bits) is stable");
}

//! Uniform observability surface over the inverted-file backends.
//!
//! Bench and report code used to match on the concrete store type to pull
//! lookup counters, buffer statistics, or file sizes. [`StoreInstrumentation`]
//! is the one trait all three backends implement, so callers (including
//! [`crate::Engine`] itself) handle every backend through the same few
//! methods and attach telemetry without special cases.

use poir_mneme::BufferStats;
use poir_telemetry::Recorder;

use crate::btree_store::BTreeInvertedFile;
use crate::error::Result;
use crate::mneme_store::MnemeInvertedFile;
use crate::multi_file::MultiFileInvertedFile;

/// Instrumentation hooks common to every inverted-file backend.
pub trait StoreInstrumentation {
    /// Human-readable backend label for reports.
    fn backend_label(&self) -> &'static str;

    /// Attaches a telemetry recorder to the store and its substrate
    /// (B-tree node cache or Mneme pool buffers).
    fn attach_recorder(&mut self, recorder: Recorder);

    /// Inverted-record lookups performed so far.
    fn record_lookups(&self) -> u64;

    /// Per-pool buffer statistics (small, medium, large), when the backend
    /// keeps user-space buffers. `None` for unbuffered backends.
    fn buffer_stats(&self) -> Result<Option<[BufferStats; 3]>>;

    /// Resets buffer statistics between query sets (no-op when unbuffered).
    fn reset_buffer_stats(&self);

    /// Total on-disk size in bytes.
    fn file_size(&self) -> Result<u64>;
}

impl StoreInstrumentation for BTreeInvertedFile {
    fn backend_label(&self) -> &'static str {
        "B-Tree"
    }

    fn attach_recorder(&mut self, recorder: Recorder) {
        BTreeInvertedFile::attach_recorder(self, recorder);
    }

    fn record_lookups(&self) -> u64 {
        poir_inquery::InvertedFileStore::record_lookups(self)
    }

    fn buffer_stats(&self) -> Result<Option<[BufferStats; 3]>> {
        Ok(None)
    }

    fn reset_buffer_stats(&self) {}

    fn file_size(&self) -> Result<u64> {
        Ok(BTreeInvertedFile::file_size(self))
    }
}

impl StoreInstrumentation for MnemeInvertedFile {
    fn backend_label(&self) -> &'static str {
        "Mneme"
    }

    fn attach_recorder(&mut self, recorder: Recorder) {
        MnemeInvertedFile::attach_recorder(self, recorder);
    }

    fn record_lookups(&self) -> u64 {
        poir_inquery::InvertedFileStore::record_lookups(self)
    }

    fn buffer_stats(&self) -> Result<Option<[BufferStats; 3]>> {
        MnemeInvertedFile::buffer_stats(self).map(Some)
    }

    fn reset_buffer_stats(&self) {
        MnemeInvertedFile::reset_buffer_stats(self);
    }

    fn file_size(&self) -> Result<u64> {
        MnemeInvertedFile::file_size(self)
    }
}

impl StoreInstrumentation for MultiFileInvertedFile {
    fn backend_label(&self) -> &'static str {
        "Mneme, Multi-File"
    }

    fn attach_recorder(&mut self, recorder: Recorder) {
        MultiFileInvertedFile::attach_recorder(self, recorder);
    }

    fn record_lookups(&self) -> u64 {
        poir_inquery::InvertedFileStore::record_lookups(self)
    }

    fn buffer_stats(&self) -> Result<Option<[BufferStats; 3]>> {
        Ok(None)
    }

    fn reset_buffer_stats(&self) {}

    fn file_size(&self) -> Result<u64> {
        MultiFileInvertedFile::total_size(self)
    }
}

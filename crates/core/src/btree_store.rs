//! The baseline backend: inverted records in the custom B-tree keyed file.
//!
//! "INQUERY ... originally used a custom B-tree package to provide the
//! inverted file index support" (Section 1). The store reference deposited
//! in the hash dictionary is simply the term id — the B-tree key. No
//! user-space record caching is performed: "the B-tree version of INQUERY
//! does no user space main memory caching of inverted list records across
//! record accesses" (Section 4.2).

use poir_btree::{BTreeConfig, BTreeFile};
use poir_inquery::{Dictionary, InvertedFileStore, TermId};
use poir_storage::FileHandle;
use poir_telemetry::{Event, Recorder, TraceOp};

use crate::error::{CoreError, Result};

/// The B-tree-backed inverted file.
pub struct BTreeInvertedFile {
    tree: BTreeFile,
    lookups: u64,
    recorder: Recorder,
}

impl std::fmt::Debug for BTreeInvertedFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BTreeInvertedFile").field("lookups", &self.lookups).finish_non_exhaustive()
    }
}

impl BTreeInvertedFile {
    /// Bulk-loads the index records into a fresh B-tree file and deposits
    /// each term's store reference (its term id) in the dictionary.
    pub fn build(
        handle: FileHandle,
        config: BTreeConfig,
        records: &[(TermId, Vec<u8>)],
        dict: &mut Dictionary,
    ) -> Result<Self> {
        let tree =
            BTreeFile::bulk_build(handle, config, records.iter().map(|(t, r)| (t.0, r.clone())))?;
        for (term, _) in records {
            dict.entry_mut(*term).store_ref = term.0 as u64;
        }
        Ok(BTreeInvertedFile { tree, lookups: 0, recorder: Recorder::disabled() })
    }

    /// Opens an existing B-tree inverted file.
    pub fn open(handle: FileHandle, cache_nodes: usize) -> Result<Self> {
        Ok(BTreeInvertedFile {
            tree: BTreeFile::open(handle, cache_nodes)?,
            lookups: 0,
            recorder: Recorder::disabled(),
        })
    }

    /// Attaches a telemetry recorder to the store and the underlying tree
    /// (node descents, node-cache hits/misses).
    pub fn attach_recorder(&mut self, recorder: Recorder) {
        self.tree.attach_recorder(recorder.clone());
        self.recorder = recorder;
    }

    /// Total file size in bytes (Table 1's "B-Tree Size").
    pub fn file_size(&self) -> u64 {
        self.tree.file_size()
    }

    /// Number of records stored.
    pub fn record_count(&self) -> u64 {
        self.tree.record_count()
    }

    /// Height of the index tree (drives the baseline's per-lookup accesses).
    pub fn height(&self) -> u32 {
        self.tree.height()
    }

    /// Flushes the tree header.
    pub fn flush(&self) -> Result<()> {
        Ok(self.tree.flush()?)
    }
}

impl InvertedFileStore for BTreeInvertedFile {
    fn fetch(&mut self, store_ref: u64) -> poir_inquery::Result<poir_inquery::RecordBytes> {
        let traced = self.recorder.trace_start();
        self.lookups += 1;
        self.recorder.incr(Event::RecordLookup);
        let record = self
            .tree
            .lookup(store_ref as u32)
            .map_err(CoreError::from)?
            .ok_or(CoreError::DanglingRef(store_ref))?;
        self.recorder.incr(Event::RecordDecoded);
        self.recorder.add(Event::RecordBytesDecoded, record.len() as u64);
        self.recorder.trace_end(traced, TraceOp::PoolFetch, store_ref, None, record.len() as u64);
        Ok(record.into())
    }

    fn record_lookups(&self) -> u64 {
        self.lookups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poir_storage::Device;

    fn sample_records() -> (Dictionary, Vec<(TermId, Vec<u8>)>) {
        let mut dict = Dictionary::new();
        let mut records = Vec::new();
        for i in 0..300u32 {
            let id = dict.intern(&format!("term{i}"));
            records.push((id, vec![(i % 251) as u8; (i as usize % 700) + 1]));
        }
        (dict, records)
    }

    #[test]
    fn build_then_fetch_by_dictionary_ref() {
        let dev = Device::with_defaults();
        let (mut dict, records) = sample_records();
        let mut store = BTreeInvertedFile::build(
            dev.create_file(),
            BTreeConfig { page_size: 1024, cache_nodes: 4 },
            &records,
            &mut dict,
        )
        .unwrap();
        assert_eq!(store.record_count(), 300);
        for (term, bytes) in &records {
            let r = dict.entry(*term).store_ref;
            assert_eq!(&store.fetch(r).unwrap(), bytes);
        }
        assert_eq!(store.record_lookups(), 300);
        assert!(store.height() >= 2);
    }

    #[test]
    fn dangling_ref_is_an_error() {
        let dev = Device::with_defaults();
        let (mut dict, records) = sample_records();
        let mut store = BTreeInvertedFile::build(
            dev.create_file(),
            BTreeConfig::default(),
            &records,
            &mut dict,
        )
        .unwrap();
        assert!(store.fetch(999_999).is_err());
    }

    #[test]
    fn survives_reopen() {
        let dev = Device::with_defaults();
        let handle = dev.create_file();
        let (mut dict, records) = sample_records();
        {
            let store = BTreeInvertedFile::build(
                handle.clone(),
                BTreeConfig { page_size: 1024, cache_nodes: 4 },
                &records,
                &mut dict,
            )
            .unwrap();
            store.flush().unwrap();
        }
        let mut store = BTreeInvertedFile::open(handle, 4).unwrap();
        for (term, bytes) in records.iter().take(20) {
            assert_eq!(&store.fetch(dict.entry(*term).store_ref).unwrap(), bytes);
        }
        assert!(store.file_size() > 0);
    }
}

//! Inverted files spanning multiple Mneme files.
//!
//! "This allows a potentially unlimited number of objects to be created by
//! allocating a new file when the previous file's object identifiers have
//! been exhausted." (Section 3.2)
//!
//! A single Mneme file holds at most 2^28 objects; a web-scale inverted
//! index would exceed that. [`MultiFileInvertedFile`] implements the
//! paper's growth path: records are created in the current file until its
//! id budget is spent, then a fresh file (with the same three-pool
//! configuration) is allocated. Store references are packed
//! [`GlobalId`]s, so the dictionary needs no schema change.
//!
//! The per-file budget is configurable so tests can exercise multi-file
//! behaviour without creating 2^28 objects.

use poir_inquery::{Dictionary, InvertedFileStore, TermId};
use poir_mneme::{FileSlot, GlobalId, MnemeFile, ObjectId, PoolConfig, PoolKindConfig};
use poir_storage::{Device, FileHandle};
use poir_telemetry::{Event, Recorder};
use std::sync::Arc;

use crate::error::{CoreError, Result};
use crate::mneme_store::{pool_for, LARGE_POOL, MEDIUM_POOL, SMALL_POOL};

fn pool_configs(medium_segment: usize) -> Vec<PoolConfig> {
    vec![
        PoolConfig { id: SMALL_POOL, kind: PoolKindConfig::Small },
        PoolConfig {
            id: MEDIUM_POOL,
            kind: PoolKindConfig::Packed { segment_size: medium_segment as u32 },
        },
        PoolConfig {
            id: LARGE_POOL,
            kind: PoolKindConfig::SegmentPerObject { embedded_refs: false },
        },
    ]
}

/// Options for a multi-file inverted file.
#[derive(Debug, Clone)]
pub struct MultiFileOptions {
    /// Medium-pool segment size.
    pub medium_segment: usize,
    /// Objects per file before a new file is allocated. The real bound is
    /// 2^28; the default keeps it, tests lower it.
    pub objects_per_file: u64,
    /// Location-table buckets per file.
    pub num_buckets: u32,
}

impl Default for MultiFileOptions {
    fn default() -> Self {
        MultiFileOptions {
            medium_segment: 8192,
            objects_per_file: poir_mneme::store::MAX_GLOBAL_OBJECTS,
            num_buckets: 64,
        }
    }
}

/// An inverted file spread across as many Mneme files as its record count
/// requires.
pub struct MultiFileInvertedFile {
    device: Arc<Device>,
    options: MultiFileOptions,
    files: Vec<MnemeFile>,
    handles: Vec<FileHandle>,
    current_count: u64,
    lookups: u64,
    recorder: Recorder,
}

impl std::fmt::Debug for MultiFileInvertedFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiFileInvertedFile")
            .field("files", &self.files.len())
            .field("lookups", &self.lookups)
            .finish_non_exhaustive()
    }
}

impl MultiFileInvertedFile {
    /// Creates an empty multi-file store on `device`.
    pub fn create(device: &Arc<Device>, options: MultiFileOptions) -> Result<Self> {
        assert!(options.objects_per_file > 0, "per-file budget must be positive");
        let mut store = MultiFileInvertedFile {
            device: Arc::clone(device),
            options,
            files: Vec::new(),
            handles: Vec::new(),
            current_count: 0,
            lookups: 0,
            recorder: Recorder::disabled(),
        };
        store.allocate_file()?;
        Ok(store)
    }

    fn allocate_file(&mut self) -> Result<()> {
        let handle = self.device.create_file();
        let mut file = MnemeFile::create(
            handle.clone(),
            &pool_configs(self.options.medium_segment),
            self.options.num_buckets,
        )?;
        file.attach_recorder(self.recorder.clone());
        self.files.push(file);
        self.handles.push(handle);
        self.current_count = 0;
        Ok(())
    }

    /// Number of Mneme files allocated so far.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Total size across all files, in bytes.
    pub fn total_size(&self) -> Result<u64> {
        let mut total = 0;
        for f in &self.files {
            total += f.file_size()?;
        }
        Ok(total)
    }

    /// Loads the index records, depositing packed [`GlobalId`] references
    /// in the dictionary.
    pub fn build(
        device: &Arc<Device>,
        options: MultiFileOptions,
        records: &[(TermId, Vec<u8>)],
        dict: &mut Dictionary,
    ) -> Result<Self> {
        let mut store = Self::create(device, options)?;
        for (term, bytes) in records {
            let gid = store.insert_record(bytes)?;
            dict.entry_mut(*term).store_ref = gid;
        }
        store.flush()?;
        Ok(store)
    }

    /// Inserts a record, rolling over to a new file when the current one's
    /// id budget is exhausted. Returns the packed global reference.
    pub fn insert_record(&mut self, bytes: &[u8]) -> Result<u64> {
        if self.current_count >= self.options.objects_per_file {
            // "allocating a new file when the previous file's object
            // identifiers have been exhausted"
            self.allocate_file()?;
        }
        let slot = FileSlot((self.files.len() - 1) as u16);
        let file = self.files.last_mut().expect("at least one file");
        let object = file.create_object(pool_for(bytes.len()), bytes)?;
        self.current_count += 1;
        Ok(GlobalId { file: slot, object }.pack())
    }

    fn resolve(store_ref: u64) -> Result<(usize, ObjectId)> {
        let gid = GlobalId::unpack(store_ref).ok_or(CoreError::DanglingRef(store_ref))?;
        Ok((gid.file.0 as usize, gid.object))
    }

    /// Flushes every file.
    pub fn flush(&mut self) -> Result<()> {
        for f in &mut self.files {
            f.flush()?;
        }
        Ok(())
    }

    /// Reopens a multi-file store from its handles (in allocation order).
    pub fn open(
        device: &Arc<Device>,
        options: MultiFileOptions,
        handles: Vec<FileHandle>,
    ) -> Result<Self> {
        let mut files = Vec::with_capacity(handles.len());
        for h in &handles {
            files.push(MnemeFile::open(h.clone())?);
        }
        Ok(MultiFileInvertedFile {
            device: Arc::clone(device),
            options,
            current_count: u64::MAX, // unknown: force a new file on insert
            files,
            handles,
            lookups: 0,
            recorder: Recorder::disabled(),
        })
    }

    /// Attaches a telemetry recorder to every file, present and future.
    pub fn attach_recorder(&mut self, recorder: Recorder) {
        for f in &mut self.files {
            f.attach_recorder(recorder.clone());
        }
        self.recorder = recorder;
    }

    /// Handles of every file, for persistence.
    pub fn handles(&self) -> &[FileHandle] {
        &self.handles
    }
}

impl InvertedFileStore for MultiFileInvertedFile {
    fn fetch(&mut self, store_ref: u64) -> poir_inquery::Result<poir_inquery::RecordBytes> {
        self.lookups += 1;
        self.recorder.incr(Event::RecordLookup);
        let (slot, object) = Self::resolve(store_ref)?;
        let file = self.files.get_mut(slot).ok_or(CoreError::DanglingRef(store_ref))?;
        let bytes = file.get(object).map_err(CoreError::from)?;
        self.recorder.incr(Event::RecordDecoded);
        self.recorder.add(Event::RecordBytesDecoded, bytes.len() as u64);
        Ok(crate::mneme_store::to_record_bytes(bytes))
    }

    fn reserve(&mut self, store_refs: &[u64]) {
        for &r in store_refs {
            if let Ok((slot, object)) = Self::resolve(r) {
                if let Some(file) = self.files.get_mut(slot) {
                    file.reserve(&[object]);
                }
            }
        }
    }

    fn release_reservations(&mut self) {
        for f in &mut self.files {
            f.release_reservations();
        }
    }

    fn record_lookups(&self) -> u64 {
        self.lookups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poir_storage::Device;

    fn records(n: u32) -> (Dictionary, Vec<(TermId, Vec<u8>)>) {
        let mut dict = Dictionary::new();
        let mut out = Vec::new();
        for i in 0..n {
            let id = dict.intern(&format!("term{i}"));
            out.push((id, vec![(i % 251) as u8; (i as usize % 300) + 1]));
        }
        (dict, out)
    }

    #[test]
    fn rolls_over_to_new_files() {
        let dev = Device::with_defaults();
        let (mut dict, recs) = records(1000);
        let options = MultiFileOptions { objects_per_file: 300, ..Default::default() };
        let mut store = MultiFileInvertedFile::build(&dev, options, &recs, &mut dict).unwrap();
        assert_eq!(store.file_count(), 4, "1000 records / 300 per file");
        for (term, bytes) in &recs {
            assert_eq!(&store.fetch(dict.entry(*term).store_ref).unwrap(), bytes);
        }
        assert_eq!(store.record_lookups(), 1000);
        assert!(store.total_size().unwrap() > 0);
    }

    #[test]
    fn single_file_when_budget_suffices() {
        let dev = Device::with_defaults();
        let (mut dict, recs) = records(100);
        let store =
            MultiFileInvertedFile::build(&dev, MultiFileOptions::default(), &recs, &mut dict)
                .unwrap();
        assert_eq!(store.file_count(), 1);
    }

    #[test]
    fn survives_reopen() {
        let dev = Device::with_defaults();
        let (mut dict, recs) = records(500);
        let options = MultiFileOptions { objects_per_file: 200, ..Default::default() };
        let handles;
        {
            let store =
                MultiFileInvertedFile::build(&dev, options.clone(), &recs, &mut dict).unwrap();
            handles = store.handles().to_vec();
        }
        let mut store = MultiFileInvertedFile::open(&dev, options, handles).unwrap();
        assert_eq!(store.file_count(), 3);
        for (term, bytes) in recs.iter().rev().take(50) {
            assert_eq!(&store.fetch(dict.entry(*term).store_ref).unwrap(), bytes);
        }
    }

    #[test]
    fn reservation_spans_files() {
        let dev = Device::with_defaults();
        let (mut dict, recs) = records(400);
        let options = MultiFileOptions { objects_per_file: 150, ..Default::default() };
        let mut store = MultiFileInvertedFile::build(&dev, options, &recs, &mut dict).unwrap();
        let refs: Vec<u64> = recs.iter().map(|(t, _)| dict.entry(*t).store_ref).collect();
        store.reserve(&refs);
        store.release_reservations();
        // References from different files resolve distinctly.
        let g0 = GlobalId::unpack(refs[0]).unwrap();
        let g_last = GlobalId::unpack(*refs.last().unwrap()).unwrap();
        assert_ne!(g0.file, g_last.file);
    }

    #[test]
    fn dangling_refs_error() {
        let dev = Device::with_defaults();
        let (mut dict, recs) = records(10);
        let mut store =
            MultiFileInvertedFile::build(&dev, MultiFileOptions::default(), &recs, &mut dict)
                .unwrap();
        // A reference into a file slot that does not exist.
        let bogus = GlobalId { file: FileSlot(9), object: ObjectId::from_raw(0).unwrap() }.pack();
        assert!(store.fetch(bogus).is_err());
    }
}

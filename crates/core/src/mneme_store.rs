//! The paper's contribution: inverted records in the Mneme object store.
//!
//! "The Mneme version of the inverted index was created by allocating an
//! object for each inverted list record in the B-tree file. The Mneme
//! identifier assigned to the object was stored in the INQUERY hash
//! dictionary entry for the associated term." (Section 3.3)
//!
//! The three-group partition of Section 3.3:
//!
//! * lists of **≤ 12 bytes** (≈50% of all lists) → the small object pool,
//!   16-byte slots, one whole logical segment per 4 Kbyte physical segment;
//! * lists **larger than 4 Kbytes** → the large object pool, one object per
//!   physical segment;
//! * the rest → the medium object pool, packed into 8 Kbyte segments
//!   (tuned to the disk I/O block size).
//!
//! Each pool attaches to a separate LRU buffer so "the global buffer space
//! \[is\] divided between the object pools based on expected access patterns
//! and memory requirements"; the query processor reserves already-resident
//! objects before evaluation.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use poir_inquery::{BlockCache, Dictionary, InvertedFileStore, RecordBytes, TermId};
use poir_mneme::{
    BufferPolicy, MnemeFile, ObjectBytes, ObjectId, PoolConfig, PoolId, PoolKindConfig,
};
use poir_storage::FileHandle;
use poir_telemetry::{Event, Recorder};

use crate::buffer_sizing::BufferSizes;
use crate::error::{CoreError, Result};

/// Pool id of the small object pool.
pub const SMALL_POOL: PoolId = PoolId(0);
/// Pool id of the medium object pool.
pub const MEDIUM_POOL: PoolId = PoolId(1);
/// Pool id of the large object pool.
pub const LARGE_POOL: PoolId = PoolId(2);

/// Largest record placed in the small pool ("12 bytes or less").
pub const SMALL_MAX: usize = 12;
/// Records strictly larger than this go to the large pool ("larger than
/// 4 Kbytes").
pub const LARGE_MIN: usize = 4096;

/// Build-time options for the Mneme inverted file.
#[derive(Debug, Clone)]
pub struct MnemeOptions {
    /// Medium-pool physical segment size ("based on the disk I/O block
    /// size").
    pub medium_segment: usize,
    /// Location-table directory buckets (0 = derive from record count).
    pub num_buckets: u32,
}

impl Default for MnemeOptions {
    fn default() -> Self {
        MnemeOptions { medium_segment: 8192, num_buckets: 0 }
    }
}

/// Which pool a record of `len` bytes belongs to, with the paper's 4 KB
/// medium/large boundary.
pub fn pool_for(len: usize) -> PoolId {
    pool_for_with(len, LARGE_MIN)
}

/// Which pool a record of `len` bytes belongs to, with an explicit
/// medium/large boundary.
pub fn pool_for_with(len: usize, large_min: usize) -> PoolId {
    if len <= SMALL_MAX {
        SMALL_POOL
    } else if len > large_min {
        LARGE_POOL
    } else {
        MEDIUM_POOL
    }
}

/// Converts a Mneme payload into the store boundary's byte type without
/// copying: shared cache slices stay shared, owned reads stay owned.
pub(crate) fn to_record_bytes(bytes: ObjectBytes) -> RecordBytes {
    match bytes {
        ObjectBytes::Owned(v) => RecordBytes::Owned(v),
        ObjectBytes::Shared { buf, start, end } => RecordBytes::Shared { buf, start, end },
    }
}

fn pool_configs(medium_segment: usize) -> Vec<PoolConfig> {
    vec![
        PoolConfig { id: SMALL_POOL, kind: PoolKindConfig::Small },
        PoolConfig {
            id: MEDIUM_POOL,
            kind: PoolKindConfig::Packed { segment_size: medium_segment as u32 },
        },
        PoolConfig {
            id: LARGE_POOL,
            kind: PoolKindConfig::SegmentPerObject { embedded_refs: false },
        },
    ]
}

/// Allocates process-unique store ids, folded into the high half of the
/// decoded-block-cache epoch so one [`BlockCache`] shared across shard
/// workers never aliases equal object ids from different physical stores.
static STORE_IDS: AtomicU32 = AtomicU32::new(1);

/// The Mneme-backed inverted file.
pub struct MnemeInvertedFile {
    file: MnemeFile,
    /// Record-lookup counter, shared with every [`SharedMnemeView`] so the
    /// "A" statistic aggregates across parallel query threads.
    lookups: AtomicU64,
    largest_record: usize,
    /// Records above this size go to the large pool. Usually [`LARGE_MIN`];
    /// lower when the medium segment is too small to hold 4 KB objects
    /// (segment-size ablations).
    large_min: usize,
    recorder: Recorder,
    /// Tier-2 decoded-block cache, shared with every cursor the evaluators
    /// open against this store (`None` = disabled).
    block_cache: Option<Arc<BlockCache>>,
    /// Local mutation epoch: bumped by every record mutation so cached
    /// decoded blocks from older record versions become unreachable.
    epoch: AtomicU64,
    /// This store's process-unique id (see [`STORE_IDS`]).
    store_id: u32,
}

impl std::fmt::Debug for MnemeInvertedFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MnemeInvertedFile")
            .field("lookups", &self.lookups)
            .field("largest_record", &self.largest_record)
            .finish_non_exhaustive()
    }
}

impl MnemeInvertedFile {
    /// Loads the index records into a fresh Mneme file, partitioning them
    /// into the three pools and depositing each object id in the dictionary.
    pub fn build(
        handle: FileHandle,
        options: MnemeOptions,
        records: &[(TermId, Vec<u8>)],
        dict: &mut Dictionary,
    ) -> Result<Self> {
        let num_buckets = if options.num_buckets > 0 {
            options.num_buckets
        } else {
            // Aim for ~64 logical segments per bucket; records/255 lsegs.
            ((records.len() as u32 / 255 / 64) + 1).next_power_of_two().max(16)
        };
        let mut file =
            MnemeFile::create(handle, &pool_configs(options.medium_segment), num_buckets)?;
        // The medium pool cannot hold objects beyond its segment payload;
        // shrink the boundary when an ablation uses tiny segments.
        let large_min = LARGE_MIN.min(options.medium_segment - 28);
        let mut largest = 0usize;
        for (term, bytes) in records {
            largest = largest.max(bytes.len());
            let id = file.create_object(pool_for_with(bytes.len(), large_min), bytes)?;
            dict.entry_mut(*term).store_ref = id.raw() as u64;
        }
        file.flush()?;
        Ok(MnemeInvertedFile {
            file,
            lookups: AtomicU64::new(0),
            largest_record: largest,
            large_min,
            recorder: Recorder::disabled(),
            block_cache: None,
            epoch: AtomicU64::new(0),
            store_id: STORE_IDS.fetch_add(1, Ordering::Relaxed),
        })
    }

    /// Opens an existing Mneme inverted file. `largest_record` (persisted by
    /// the engine alongside the dictionary) drives buffer sizing.
    pub fn open(handle: FileHandle, largest_record: usize) -> Result<Self> {
        let file = MnemeFile::open(handle)?;
        let large_min =
            file.pool_max_object_len(MEDIUM_POOL)?.map_or(LARGE_MIN, |m| LARGE_MIN.min(m));
        Ok(MnemeInvertedFile {
            file,
            lookups: AtomicU64::new(0),
            largest_record,
            large_min,
            recorder: Recorder::disabled(),
            block_cache: None,
            epoch: AtomicU64::new(0),
            store_id: STORE_IDS.fetch_add(1, Ordering::Relaxed),
        })
    }

    /// Attaches a telemetry recorder to the store and the underlying Mneme
    /// file (per-pool buffer refs/hits/misses/evictions/reservations).
    pub fn attach_recorder(&mut self, recorder: Recorder) {
        self.file.attach_recorder(recorder.clone());
        self.recorder = recorder;
    }

    /// Size in bytes of the collection's largest inverted record.
    pub fn largest_record(&self) -> usize {
        self.largest_record
    }

    /// Attaches per-pool LRU buffers of the given capacities (zeros = the
    /// "Mneme, no cache" configuration).
    pub fn attach_buffers(&mut self, sizes: BufferSizes) -> Result<()> {
        self.attach_buffers_with(sizes, BufferPolicy::Lru)
    }

    /// Attaches per-pool buffers of the given capacities under an explicit
    /// replacement policy (the paper's LRU, clock, or scan-resistant
    /// S3-FIFO).
    pub fn attach_buffers_with(&mut self, sizes: BufferSizes, policy: BufferPolicy) -> Result<()> {
        self.file.attach_buffer(SMALL_POOL, policy.build(sizes.small))?;
        self.file.attach_buffer(MEDIUM_POOL, policy.build(sizes.medium))?;
        self.file.attach_buffer(LARGE_POOL, policy.build(sizes.large))?;
        Ok(())
    }

    /// Attaches a tier-2 decoded-block cache; evaluators pick it up through
    /// [`InvertedFileStore::decoded_block_cache`] on every cursor they
    /// open. One cache may be shared across stores (shard workers): the
    /// store id folded into the epoch keeps their keys disjoint.
    pub fn attach_block_cache(&mut self, cache: Arc<BlockCache>) {
        self.block_cache = Some(cache);
    }

    /// The attached decoded-block cache, if any.
    pub fn block_cache(&self) -> Option<&Arc<BlockCache>> {
        self.block_cache.as_ref()
    }

    /// The cache-key epoch: this store's process-unique id in the high 32
    /// bits, its local mutation counter in the low 32.
    fn combined_epoch(&self) -> u64 {
        ((self.store_id as u64) << 32) | (self.epoch.load(Ordering::Relaxed) & 0xFFFF_FFFF)
    }

    /// Records an out-of-band mutation: bumps the store epoch so every
    /// epoch-keyed cache entry (decoded blocks, query results) computed
    /// against the current contents becomes unreachable. The record
    /// mutators call this implicitly; shared-view deployments (the query
    /// service) expose it as their cache-invalidation hook.
    pub fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Per-pool buffer reference/hit statistics (Table 6), ordered small,
    /// medium, large.
    pub fn buffer_stats(&self) -> Result<[poir_mneme::BufferStats; 3]> {
        Ok([
            self.file.buffer_stats(SMALL_POOL)?,
            self.file.buffer_stats(MEDIUM_POOL)?,
            self.file.buffer_stats(LARGE_POOL)?,
        ])
    }

    /// Resets the buffer statistics (between query sets).
    pub fn reset_buffer_stats(&self) {
        self.file.reset_buffer_stats();
    }

    /// Total file size in bytes (Table 1's "Mneme Size").
    pub fn file_size(&self) -> Result<u64> {
        Ok(self.file.file_size()?)
    }

    /// Bytes of permanently cached auxiliary (location) tables.
    pub fn aux_table_bytes(&self) -> u64 {
        self.file.aux_table_bytes()
    }

    /// Flushes all dirty state.
    pub fn flush(&mut self) -> Result<()> {
        Ok(self.file.flush()?)
    }

    /// Direct access to the underlying Mneme file (ablations, GC).
    pub fn mneme(&mut self) -> &mut MnemeFile {
        &mut self.file
    }

    fn object_id(store_ref: u64) -> Result<ObjectId> {
        ObjectId::from_raw(store_ref as u32).ok_or(CoreError::DanglingRef(store_ref))
    }

    /// Replaces a record, migrating it between pools when its new size
    /// crosses a pool boundary. Returns the (possibly new) store reference
    /// the dictionary must hold.
    pub fn update_record(&mut self, store_ref: u64, bytes: &[u8]) -> Result<u64> {
        self.epoch.fetch_add(1, Ordering::Relaxed);
        let id = Self::object_id(store_ref)?;
        let current = self.file.pool_of(id)?;
        let target = pool_for_with(bytes.len(), self.large_min);
        if current == target {
            self.file.update(id, bytes)?;
            return Ok(store_ref);
        }
        self.file.delete(id)?;
        let new_id = self.file.create_object(target, bytes)?;
        Ok(new_id.raw() as u64)
    }

    /// Inserts a brand-new record (a term first seen by an incremental
    /// document addition), returning its store reference.
    pub fn insert_record(&mut self, bytes: &[u8]) -> Result<u64> {
        // Deleted object ids can be reused, so creation also invalidates.
        self.epoch.fetch_add(1, Ordering::Relaxed);
        let id = self.file.create_object(pool_for_with(bytes.len(), self.large_min), bytes)?;
        Ok(id.raw() as u64)
    }

    /// Deletes a record.
    pub fn delete_record(&mut self, store_ref: u64) -> Result<()> {
        self.epoch.fetch_add(1, Ordering::Relaxed);
        let id = Self::object_id(store_ref)?;
        self.file.delete(id)?;
        Ok(())
    }
}

/// Fetches many records through a shared `MnemeFile`, resolving references
/// up front and letting the file coalesce adjacent-segment runs into single
/// gathered reads. One record lookup is counted per reference.
fn fetch_batch_via(
    file: &MnemeFile,
    lookups: &AtomicU64,
    recorder: &Recorder,
    store_refs: &[u64],
) -> Vec<poir_inquery::Result<RecordBytes>> {
    lookups.fetch_add(store_refs.len() as u64, Ordering::Relaxed);
    recorder.add(Event::RecordLookup, store_refs.len() as u64);
    let ids: Vec<Option<ObjectId>> =
        store_refs.iter().map(|&r| ObjectId::from_raw(r as u32)).collect();
    let good: Vec<ObjectId> = ids.iter().copied().flatten().collect();
    let mut fetched = file.get_batch(&good).into_iter();
    store_refs
        .iter()
        .zip(&ids)
        .map(|(&r, id)| match id {
            Some(_) => {
                let bytes = fetched
                    .next()
                    .expect("one result per resolved id")
                    .map_err(|e| poir_inquery::InqueryError::from(CoreError::from(e)))?;
                recorder.incr(Event::RecordDecoded);
                recorder.add(Event::RecordBytesDecoded, bytes.len() as u64);
                Ok(to_record_bytes(bytes))
            }
            None => Err(CoreError::DanglingRef(r).into()),
        })
        .collect()
}

/// Serves a byte range through a shared `MnemeFile`. Opening reads
/// (`start == 0`) count one record lookup exactly like a whole fetch;
/// continuation reads (`start > 0`) count none, keeping the "A"
/// statistic's denominator comparable across fetch protocols. Pools
/// without a physical range path (small, medium) fall back to the whole
/// record — returning more than asked, which the trait contract permits.
fn fetch_range_via(
    file: &MnemeFile,
    lookups: &AtomicU64,
    recorder: &Recorder,
    store_ref: u64,
    start: u64,
    len: usize,
) -> poir_inquery::Result<RecordBytes> {
    if start == 0 {
        lookups.fetch_add(1, Ordering::Relaxed);
        recorder.incr(Event::RecordLookup);
    }
    let id = MnemeInvertedFile::object_id(store_ref)?;
    match file.get_range(id, start, len).map_err(CoreError::from)? {
        Some(bytes) => {
            recorder.incr(Event::RangeRead);
            if start == 0 {
                recorder.incr(Event::RecordDecoded);
            }
            recorder.add(Event::RecordBytesDecoded, bytes.len() as u64);
            Ok(to_record_bytes(bytes))
        }
        None => {
            let bytes = file.get(id).map_err(CoreError::from)?;
            if start == 0 {
                recorder.incr(Event::RecordDecoded);
                recorder.add(Event::RecordBytesDecoded, bytes.len() as u64);
                Ok(to_record_bytes(bytes))
            } else {
                let from = (start.min(bytes.len() as u64)) as usize;
                let to = from.saturating_add(len).min(bytes.len());
                Ok(to_record_bytes(bytes).slice(from, to))
            }
        }
    }
}

fn prefetch_via(file: &MnemeFile, store_refs: &[u64]) {
    let ids: Vec<ObjectId> =
        store_refs.iter().filter_map(|&r| ObjectId::from_raw(r as u32)).collect();
    file.prefetch(&ids);
}

impl InvertedFileStore for MnemeInvertedFile {
    fn fetch(&mut self, store_ref: u64) -> poir_inquery::Result<RecordBytes> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        self.recorder.incr(Event::RecordLookup);
        let id = Self::object_id(store_ref)?;
        let bytes = self.file.get(id).map_err(CoreError::from)?;
        self.recorder.incr(Event::RecordDecoded);
        self.recorder.add(Event::RecordBytesDecoded, bytes.len() as u64);
        Ok(to_record_bytes(bytes))
    }

    fn fetch_batch(&mut self, store_refs: &[u64]) -> Vec<poir_inquery::Result<RecordBytes>> {
        fetch_batch_via(&self.file, &self.lookups, &self.recorder, store_refs)
    }

    fn prefetch(&mut self, store_refs: &[u64]) {
        prefetch_via(&self.file, store_refs);
    }

    fn fetch_range(
        &mut self,
        store_ref: u64,
        start: u64,
        len: usize,
    ) -> poir_inquery::Result<RecordBytes> {
        fetch_range_via(&self.file, &self.lookups, &self.recorder, store_ref, start, len)
    }

    fn supports_range_read(&self) -> bool {
        true
    }

    fn record_len_hint(&self, store_ref: u64) -> Option<u64> {
        let id = Self::object_id(store_ref).ok()?;
        self.file.object_len_hint(id)
    }

    fn reserve(&mut self, store_refs: &[u64]) {
        let ids: Vec<ObjectId> =
            store_refs.iter().filter_map(|&r| ObjectId::from_raw(r as u32)).collect();
        self.file.reserve(&ids);
    }

    fn release_reservations(&mut self) {
        self.file.release_reservations();
    }

    fn decoded_block_cache(&self) -> Option<Arc<BlockCache>> {
        self.block_cache.as_ref().map(Arc::clone)
    }

    fn store_epoch(&self) -> u64 {
        self.combined_epoch()
    }

    fn record_lookups(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }
}

/// A read-only view of a [`MnemeInvertedFile`] usable from multiple threads
/// at once: the Mneme read path takes `&self`, so any number of views can
/// fetch concurrently. Lookup counts feed the owner's shared counter.
#[derive(Clone, Copy)]
pub struct SharedMnemeView<'a> {
    file: &'a MnemeFile,
    lookups: &'a AtomicU64,
    recorder: &'a Recorder,
    block_cache: Option<&'a Arc<BlockCache>>,
    epoch: &'a AtomicU64,
    store_id: u32,
}

impl MnemeInvertedFile {
    /// A concurrently usable read-only store view (see [`SharedMnemeView`]).
    pub fn shared_view(&self) -> SharedMnemeView<'_> {
        SharedMnemeView {
            file: &self.file,
            lookups: &self.lookups,
            recorder: &self.recorder,
            block_cache: self.block_cache.as_ref(),
            epoch: &self.epoch,
            store_id: self.store_id,
        }
    }
}

impl InvertedFileStore for SharedMnemeView<'_> {
    fn fetch(&mut self, store_ref: u64) -> poir_inquery::Result<RecordBytes> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        self.recorder.incr(Event::RecordLookup);
        let id = MnemeInvertedFile::object_id(store_ref)?;
        let bytes = self.file.get(id).map_err(CoreError::from)?;
        self.recorder.incr(Event::RecordDecoded);
        self.recorder.add(Event::RecordBytesDecoded, bytes.len() as u64);
        Ok(to_record_bytes(bytes))
    }

    fn fetch_batch(&mut self, store_refs: &[u64]) -> Vec<poir_inquery::Result<RecordBytes>> {
        fetch_batch_via(self.file, self.lookups, self.recorder, store_refs)
    }

    fn prefetch(&mut self, store_refs: &[u64]) {
        prefetch_via(self.file, store_refs);
    }

    fn fetch_range(
        &mut self,
        store_ref: u64,
        start: u64,
        len: usize,
    ) -> poir_inquery::Result<RecordBytes> {
        fetch_range_via(self.file, self.lookups, self.recorder, store_ref, start, len)
    }

    fn supports_range_read(&self) -> bool {
        true
    }

    fn record_len_hint(&self, store_ref: u64) -> Option<u64> {
        let id = MnemeInvertedFile::object_id(store_ref).ok()?;
        self.file.object_len_hint(id)
    }

    fn reserve(&mut self, store_refs: &[u64]) {
        let ids: Vec<ObjectId> =
            store_refs.iter().filter_map(|&r| ObjectId::from_raw(r as u32)).collect();
        self.file.reserve(&ids);
    }

    fn release_reservations(&mut self) {
        self.file.release_reservations();
    }

    fn decoded_block_cache(&self) -> Option<Arc<BlockCache>> {
        self.block_cache.map(Arc::clone)
    }

    fn store_epoch(&self) -> u64 {
        ((self.store_id as u64) << 32) | (self.epoch.load(Ordering::Relaxed) & 0xFFFF_FFFF)
    }

    fn record_lookups(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poir_storage::Device;

    fn sample_records() -> (Dictionary, Vec<(TermId, Vec<u8>)>) {
        let mut dict = Dictionary::new();
        let mut records = Vec::new();
        for i in 0..400u32 {
            let id = dict.intern(&format!("term{i}"));
            // Mix of small (≤12), medium, and large (>4096) records.
            let len = match i % 4 {
                0 => i as usize % 13,
                1 | 2 => 100 + (i as usize * 7) % 3000,
                _ => 5000 + (i as usize * 31) % 20_000,
            };
            records.push((id, vec![(i % 251) as u8; len]));
        }
        (dict, records)
    }

    #[test]
    fn partition_rules_match_the_paper() {
        assert_eq!(pool_for(0), SMALL_POOL);
        assert_eq!(pool_for(12), SMALL_POOL);
        assert_eq!(pool_for(13), MEDIUM_POOL);
        assert_eq!(pool_for(4096), MEDIUM_POOL);
        assert_eq!(pool_for(4097), LARGE_POOL);
        assert_eq!(pool_for(2_000_000), LARGE_POOL);
    }

    #[test]
    fn build_then_fetch_every_record() {
        let dev = Device::with_defaults();
        let (mut dict, records) = sample_records();
        let mut store = MnemeInvertedFile::build(
            dev.create_file(),
            MnemeOptions::default(),
            &records,
            &mut dict,
        )
        .unwrap();
        for (term, bytes) in &records {
            let r = dict.entry(*term).store_ref;
            assert_eq!(&store.fetch(r).unwrap(), bytes);
        }
        assert_eq!(store.record_lookups(), 400);
        assert!(store.largest_record() >= 5000);
    }

    #[test]
    fn records_land_in_their_pools() {
        let dev = Device::with_defaults();
        let (mut dict, records) = sample_records();
        let mut store = MnemeInvertedFile::build(
            dev.create_file(),
            MnemeOptions::default(),
            &records,
            &mut dict,
        )
        .unwrap();
        for (term, bytes) in &records {
            let id = ObjectId::from_raw(dict.entry(*term).store_ref as u32).unwrap();
            assert_eq!(store.mneme().pool_of(id).unwrap(), pool_for(bytes.len()));
        }
    }

    #[test]
    fn caching_hits_on_repeated_fetches() {
        let dev = Device::with_defaults();
        let (mut dict, records) = sample_records();
        let handle = dev.create_file();
        let largest;
        {
            let store = MnemeInvertedFile::build(
                handle.clone(),
                MnemeOptions::default(),
                &records,
                &mut dict,
            )
            .unwrap();
            largest = store.largest_record();
        }
        let mut store = MnemeInvertedFile::open(handle, largest).unwrap();
        store.attach_buffers(crate::buffer_sizing::paper_heuristic(largest, 8192)).unwrap();
        let some_large = records.iter().find(|(_, b)| b.len() > LARGE_MIN).unwrap();
        let r = dict.entry(some_large.0).store_ref;
        store.fetch(r).unwrap();
        store.fetch(r).unwrap();
        store.fetch(r).unwrap();
        let [_, _, large] = store.buffer_stats().unwrap();
        assert_eq!(large.refs, 3);
        assert_eq!(large.hits, 2);
        store.reset_buffer_stats();
        assert_eq!(store.buffer_stats().unwrap()[2].refs, 0);
    }

    #[test]
    fn update_within_pool_keeps_the_reference() {
        let dev = Device::with_defaults();
        let (mut dict, records) = sample_records();
        let mut store = MnemeInvertedFile::build(
            dev.create_file(),
            MnemeOptions::default(),
            &records,
            &mut dict,
        )
        .unwrap();
        let (term, _) = records.iter().find(|(_, b)| b.len() > 100 && b.len() < 4000).unwrap();
        let r = dict.entry(*term).store_ref;
        let new_bytes = vec![9u8; 200];
        let r2 = store.update_record(r, &new_bytes).unwrap();
        assert_eq!(r, r2);
        assert_eq!(store.fetch(r2).unwrap(), new_bytes);
    }

    #[test]
    fn update_across_pools_migrates() {
        let dev = Device::with_defaults();
        let (mut dict, records) = sample_records();
        let mut store = MnemeInvertedFile::build(
            dev.create_file(),
            MnemeOptions::default(),
            &records,
            &mut dict,
        )
        .unwrap();
        let (term, _) = records.iter().find(|(_, b)| b.len() <= 12).unwrap();
        let r = dict.entry(*term).store_ref;
        // A small record grows past the small pool's 12-byte limit.
        let grown = vec![5u8; 500];
        let r2 = store.update_record(r, &grown).unwrap();
        assert_ne!(r, r2, "cross-pool growth must produce a new object");
        assert_eq!(store.fetch(r2).unwrap(), grown);
        assert!(store.fetch(r).is_err(), "old object was deleted");
        // And back down into the small pool.
        let shrunk = vec![1u8; 4];
        let r3 = store.update_record(r2, &shrunk).unwrap();
        assert_ne!(r2, r3);
        assert_eq!(store.fetch(r3).unwrap(), shrunk);
    }

    #[test]
    fn insert_and_delete_records() {
        let dev = Device::with_defaults();
        let (mut dict, records) = sample_records();
        let mut store = MnemeInvertedFile::build(
            dev.create_file(),
            MnemeOptions::default(),
            &records,
            &mut dict,
        )
        .unwrap();
        let r = store.insert_record(&[3u8; 50]).unwrap();
        assert_eq!(store.fetch(r).unwrap(), vec![3u8; 50]);
        store.delete_record(r).unwrap();
        assert!(store.fetch(r).is_err());
    }

    #[test]
    fn fetch_range_serves_large_records_partially() {
        let dev = Device::with_defaults();
        let (mut dict, records) = sample_records();
        let mut store = MnemeInvertedFile::build(
            dev.create_file(),
            MnemeOptions::default(),
            &records,
            &mut dict,
        )
        .unwrap();
        assert!(store.supports_range_read());
        let (term, bytes) = records.iter().find(|(_, b)| b.len() > LARGE_MIN).unwrap();
        let r = dict.entry(*term).store_ref;
        let before = store.record_lookups();
        let prefix = store.fetch_range(r, 0, 8192).unwrap();
        assert_eq!(&prefix[..], &bytes[..8192.min(bytes.len())]);
        assert_eq!(store.record_lookups(), before + 1, "opening range counts one lookup");
        let mid = store.fetch_range(r, 100, 50).unwrap();
        assert_eq!(&mid[..], &bytes[100..150]);
        assert_eq!(store.record_lookups(), before + 1, "continuation counts no lookup");
        // Small and medium pools fall back to the whole record.
        let (term, small) = records.iter().find(|(_, b)| !b.is_empty() && b.len() <= 12).unwrap();
        let whole = store.fetch_range(dict.entry(*term).store_ref, 0, 4).unwrap();
        assert_eq!(&whole, small, "small pool serves the whole record");
    }

    #[test]
    fn reopen_after_flush() {
        let dev = Device::with_defaults();
        let handle = dev.create_file();
        let (mut dict, records) = sample_records();
        let largest;
        {
            let mut store = MnemeInvertedFile::build(
                handle.clone(),
                MnemeOptions::default(),
                &records,
                &mut dict,
            )
            .unwrap();
            largest = store.largest_record();
            store.flush().unwrap();
        }
        let mut store = MnemeInvertedFile::open(handle, largest).unwrap();
        for (term, bytes) in records.iter().rev().take(30) {
            assert_eq!(&store.fetch(dict.entry(*term).store_ref).unwrap(), bytes);
        }
        assert!(store.file_size().unwrap() > 0);
        assert!(store.aux_table_bytes() > 0);
    }
}

//! The integrated system: INQUERY over a pluggable inverted-file backend.
//!
//! [`Engine`] wires together the hash dictionary, document table, belief
//! functions, query processor, and one of the three storage configurations
//! the paper compares (Section 4):
//!
//! * [`BackendKind::BTree`] — the original custom B-tree package,
//! * [`BackendKind::MnemeNoCache`] — Mneme with zero-capacity buffers
//!   ("no user space main memory caching of inverted list records"),
//! * [`BackendKind::MnemeCache`] — Mneme with the Table 2 buffer sizes.
//!
//! [`Engine::run_query_set`] reproduces the paper's measurement procedure:
//! purge the simulated OS cache (the "chill file"), process the whole query
//! set in batch mode, and report wall-clock, system + I/O time, and the
//! Table 5 I/O statistics.

use std::str::FromStr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use poir_inquery::query::daat;
use poir_inquery::{
    rank_score_list, BeliefParams, BlockCache, Dictionary, DocId, DocTable, Evaluator, Index,
    InvertedFileStore, StopWords,
};
use poir_mneme::BufferStats;
use poir_storage::{Device, FileHandle, IoSnapshot, SimTime};
use poir_telemetry::trace::tag_query;
use poir_telemetry::{
    Event, LatencyBreakdown, MetricsReport, Phase, QueryTrace, Recorder, TelemetrySnapshot,
    TraceOp, Tracer,
};

use crate::btree_store::BTreeInvertedFile;
use crate::buffer_sizing::{paper_heuristic, BufferSizes};
use crate::builder::EngineBuilder;
use crate::error::{CoreError, Result};
use crate::instrument::StoreInstrumentation;
use crate::mneme_store::MnemeInvertedFile;

/// How [`Engine::run_query_set_mode`] schedules record I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// One store fetch per leaf term during evaluation (the paper's
    /// original procedure).
    Serial,
    /// A prefetch pass hands every leaf term's reference to the store
    /// before evaluation, so the store can coalesce adjacent segments into
    /// gathered reads and evaluation fetches become buffer hits.
    BatchedPrefetch,
    /// Document-at-a-time evaluation (Section 3.1 extension): one cursor
    /// per term, merged by ascending document id. Structured queries fall
    /// back to the serial term-at-a-time pipeline.
    Daat,
    /// Document-at-a-time with max-score top-k pruning: terms whose belief
    /// upper bound cannot lift a document into the current top `k` are
    /// probed lazily, skipping posting blocks via the skip directory and —
    /// on stores with [`range-read`](poir_inquery::InvertedFileStore::fetch_range)
    /// support — fetching only the blocks it actually decodes. Returned
    /// rankings are bit-identical to [`ExecMode::Daat`].
    DaatPruned,
}

impl std::fmt::Display for ExecMode {
    /// Stable CLI/JSON name; round-trips through [`ExecMode::from_str`].
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ExecMode::Serial => "serial",
            ExecMode::BatchedPrefetch => "batched_prefetch",
            ExecMode::Daat => "daat",
            ExecMode::DaatPruned => "daat_pruned",
        })
    }
}

impl FromStr for ExecMode {
    type Err = CoreError;

    fn from_str(s: &str) -> Result<ExecMode> {
        match s.replace('-', "_").as_str() {
            "serial" => Ok(ExecMode::Serial),
            "batched_prefetch" | "batched" | "prefetch" => Ok(ExecMode::BatchedPrefetch),
            "daat" => Ok(ExecMode::Daat),
            "daat_pruned" | "pruned" => Ok(ExecMode::DaatPruned),
            _ => Err(CoreError::UnknownName { kind: "execution mode", value: s.to_string() }),
        }
    }
}

/// The three storage configurations of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Custom B-tree keyed file (the baseline).
    BTree,
    /// Mneme persistent object store, no record caching.
    MnemeNoCache,
    /// Mneme with the Table 2 per-pool buffer sizes.
    MnemeCache,
}

impl BackendKind {
    /// Display label used in the reproduction tables.
    pub fn label(&self) -> &'static str {
        match self {
            BackendKind::BTree => "B-Tree",
            BackendKind::MnemeNoCache => "Mneme, No Cache",
            BackendKind::MnemeCache => "Mneme, Cache",
        }
    }

    /// All three configurations in the paper's column order.
    pub fn all() -> [BackendKind; 3] {
        [BackendKind::BTree, BackendKind::MnemeNoCache, BackendKind::MnemeCache]
    }
}

impl std::fmt::Display for BackendKind {
    /// Stable CLI/JSON name; round-trips through [`BackendKind::from_str`].
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BackendKind::BTree => "btree",
            BackendKind::MnemeNoCache => "mneme_nocache",
            BackendKind::MnemeCache => "mneme_cache",
        })
    }
}

impl FromStr for BackendKind {
    type Err = CoreError;

    fn from_str(s: &str) -> Result<BackendKind> {
        match s.replace('-', "_").as_str() {
            "btree" | "b_tree" => Ok(BackendKind::BTree),
            "mneme_nocache" | "mneme_no_cache" => Ok(BackendKind::MnemeNoCache),
            "mneme_cache" | "mneme" => Ok(BackendKind::MnemeCache),
            _ => Err(CoreError::UnknownName { kind: "backend", value: s.to_string() }),
        }
    }
}

enum StoreImpl {
    BTree(BTreeInvertedFile),
    Mneme(MnemeInvertedFile),
}

impl StoreImpl {
    fn as_store(&mut self) -> &mut dyn InvertedFileStore {
        match self {
            StoreImpl::BTree(s) => s,
            StoreImpl::Mneme(s) => s,
        }
    }

    fn as_instrumented(&self) -> &dyn StoreInstrumentation {
        match self {
            StoreImpl::BTree(s) => s,
            StoreImpl::Mneme(s) => s,
        }
    }

    fn as_instrumented_mut(&mut self) -> &mut dyn StoreInstrumentation {
        match self {
            StoreImpl::BTree(s) => s,
            StoreImpl::Mneme(s) => s,
        }
    }
}

/// One ranked search result.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedResult {
    /// Ordinal document id.
    pub doc: DocId,
    /// External document name.
    pub name: String,
    /// Final belief.
    pub score: f64,
}

/// A typed query request — the one argument of [`Engine::execute`],
/// [`crate::ShardedEngine::execute`], and the query service, replacing the
/// ad-hoc `run_one*` call patterns.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// The query text (structured or bag-of-words).
    pub text: String,
    /// How many results to return.
    pub k: usize,
    /// Execution-mode override; `None` uses the executor's default.
    pub mode: Option<ExecMode>,
    /// Deadline budget, measured from submission. Checked at phase
    /// boundaries; an expired budget yields
    /// [`CoreError::DeadlineExceeded`] with partial results.
    pub deadline: Option<Duration>,
    /// Caller-chosen stable id, propagated through trace records, the
    /// latency breakdown, and the slow-query flight recorder so a slow
    /// entry can be joined against the Perfetto trace export. `None`
    /// falls back to the executor's own numbering (the service uses its
    /// sequence number).
    pub id: Option<u32>,
}

impl QueryRequest {
    /// A request for the top `k` hits of `text` with no mode override and
    /// no deadline.
    pub fn new(text: impl Into<String>, k: usize) -> Self {
        QueryRequest { text: text.into(), k, mode: None, deadline: None, id: None }
    }

    /// Overrides the execution mode.
    pub fn mode(mut self, mode: ExecMode) -> Self {
        self.mode = Some(mode);
        self
    }

    /// Sets the deadline budget.
    pub fn deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Sets the stable query id.
    pub fn id(mut self, id: u32) -> Self {
        self.id = Some(id);
        self
    }
}

/// How long one shard spent evaluating a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardTiming {
    /// Shard ordinal.
    pub shard: usize,
    /// Host microseconds the shard's evaluation took.
    pub micros: u64,
    /// Hits the shard contributed to the merge candidate set.
    pub hits: usize,
}

/// A typed query response: the hits plus per-shard timings and the
/// request's telemetry delta.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The merged top-k ranking.
    pub hits: Vec<RankedResult>,
    /// Per-shard evaluation timings (one entry on an unsharded engine).
    pub shards: Vec<ShardTiming>,
    /// Per-phase timings and telemetry event deltas for this query (event
    /// counters are zero unless telemetry is enabled; on a shared-recorder
    /// service they are set-level, not per-query).
    pub trace: QueryTrace,
    /// Host microseconds the request waited in the service's admission
    /// queue (zero when executed directly).
    pub queue_micros: u64,
    /// The execution mode that actually ran (the request's override or
    /// the executor's resolved default).
    pub mode: ExecMode,
    /// Where the request's end-to-end time went (queue / eval / merge /
    /// other); the service folds this into its p99 attribution.
    pub breakdown: LatencyBreakdown,
    /// Present when one or more shards failed and the response was served
    /// from the shards that survived. `None` on a complete response.
    pub degraded: Option<Degraded>,
    /// Whether the response was served from the service's query-result
    /// cache instead of a fresh evaluation. The ranking is the stored
    /// output of a real evaluation, bit-identical to what re-evaluating
    /// would produce under the same store epoch.
    pub cached: bool,
}

/// Degradation summary for a response served without every shard: the
/// typed partial that per-shard failure isolation produces instead of
/// failing the whole request.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Degraded {
    /// Indices of the shards whose evaluation failed after bounded
    /// retries; their documents are absent from `hits`.
    pub missing_shards: Vec<usize>,
    /// Shard-evaluation retries this request consumed across all shards.
    pub retries: u32,
}

/// Measurements from processing one query set — the raw data behind
/// Tables 3, 4, 5, and 6.
#[derive(Debug, Clone)]
pub struct QuerySetReport {
    /// Number of queries processed.
    pub queries: usize,
    /// Real (host) time spent in parsing, evaluation, and ranking.
    pub engine_time: Duration,
    /// Simulated system CPU + I/O time (Table 4).
    pub sys_io_time: SimTime,
    /// I/O counter deltas for the run (Table 5's raw data).
    pub io: IoSnapshot,
    /// Inverted-record lookups performed.
    pub record_lookups: u64,
    /// Per-pool buffer stats (Table 6) — Mneme backends only.
    pub buffer_stats: Option<[BufferStats; 3]>,
    /// Telemetry-derived metrics and per-query traces; present when the
    /// engine was built with telemetry enabled.
    pub metrics: Option<MetricsReport>,
}

impl QuerySetReport {
    /// Simulated wall-clock seconds: engine time plus system + I/O time
    /// (Table 3).
    pub fn wall_clock_secs(&self) -> f64 {
        self.engine_time.as_secs_f64() + self.sys_io_time.as_secs_f64()
    }

    /// Table 5 column "I": blocks actually read from disk.
    pub fn io_inputs(&self) -> u64 {
        self.io.io_inputs
    }

    /// Table 5 column "A": average file accesses per record lookup.
    pub fn accesses_per_lookup(&self) -> f64 {
        if self.record_lookups == 0 {
            0.0
        } else {
            self.io.file_accesses as f64 / self.record_lookups as f64
        }
    }

    /// Table 5 column "B": total Kbytes read from the files.
    pub fn kbytes_read(&self) -> u64 {
        self.io.kbytes_read()
    }
}

/// Measurements and results from a parallel query-set run
/// (see [`Engine::run_query_set_parallel`]).
#[derive(Debug, Clone)]
pub struct ParallelSetReport {
    /// The usual per-set measurements (I/O counters cover all threads).
    pub report: QuerySetReport,
    /// Worker threads used.
    pub threads: usize,
    /// Each query's ranking, in query order.
    pub rankings: Vec<Vec<RankedResult>>,
}

impl ParallelSetReport {
    /// Simulated wall-clock seconds: real engine time plus the simulated
    /// system + I/O time divided across threads — each worker drives its
    /// own I/O channel, so device time overlaps instead of serializing.
    pub fn wall_clock_secs(&self) -> f64 {
        self.report.engine_time.as_secs_f64()
            + self.report.sys_io_time.as_secs_f64() / self.threads as f64
    }

    /// Queries per simulated wall-clock second.
    pub fn qps(&self) -> f64 {
        let wall = self.wall_clock_secs();
        if wall == 0.0 {
            0.0
        } else {
            self.report.queries as f64 / wall
        }
    }
}

/// One worker thread's output: `(query_index, scored_docs)` pairs plus the
/// thread's dictionary-lookup count (for telemetry).
type ThreadResults = (Vec<(usize, Vec<poir_inquery::ScoredDoc>)>, u64);

/// An [`Engine`] decomposed for the query service's worker pool (see
/// [`Engine::into_parts`]).
pub(crate) struct EngineParts {
    pub(crate) dict: Dictionary,
    pub(crate) docs: DocTable,
    pub(crate) stop: StopWords,
    pub(crate) params: BeliefParams,
    pub(crate) store: MnemeInvertedFile,
}

/// The integrated IR system.
pub struct Engine {
    device: Arc<Device>,
    backend: BackendKind,
    dict: Dictionary,
    docs: DocTable,
    stop: StopWords,
    params: BeliefParams,
    store: StoreImpl,
    store_handle: FileHandle,
    reserve_enabled: bool,
    exec_mode: ExecMode,
    recorder: Recorder,
    trace_queries: bool,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("backend", &self.backend.label())
            .field("terms", &self.dict.len())
            .field("docs", &self.docs.len())
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Starts a typed [`EngineBuilder`] on `device`. The defaults
    /// reproduce the paper's primary configuration: Mneme with the Table 2
    /// buffer heuristic, serial execution, reservation enabled, telemetry
    /// off.
    pub fn builder(device: &Arc<Device>) -> EngineBuilder {
        EngineBuilder::new(device)
    }

    /// Builds the engine's recorder from the builder's telemetry options:
    /// disabled, counting, or counting plus a structured tracer.
    pub(crate) fn recorder_for(options: &poir_telemetry::TelemetryOptions) -> Recorder {
        if !options.enabled {
            return Recorder::disabled();
        }
        let recorder = Recorder::enabled();
        if options.trace_capacity > 0 {
            recorder.with_tracer(Arc::new(Tracer::new(options.trace_capacity)))
        } else {
            recorder
        }
    }

    pub(crate) fn from_builder_build(b: EngineBuilder, index: Index) -> Result<Engine> {
        let Index { mut dictionary, documents, records } = index;
        let store_handle = b.device.create_file();
        let mut store = match b.backend {
            BackendKind::BTree => StoreImpl::BTree(BTreeInvertedFile::build(
                store_handle.clone(),
                b.btree.clone(),
                &records,
                &mut dictionary,
            )?),
            BackendKind::MnemeNoCache | BackendKind::MnemeCache => {
                let mut store = MnemeInvertedFile::build(
                    store_handle.clone(),
                    b.mneme.clone(),
                    &records,
                    &mut dictionary,
                )?;
                if b.backend == BackendKind::MnemeCache {
                    let sizes =
                        b.buffers.unwrap_or_else(|| paper_heuristic(store.largest_record(), 8192));
                    store.attach_buffers_with(sizes, b.buffer_policy)?;
                }
                if let Some(cache) = b.shared_block_cache.clone() {
                    store.attach_block_cache(cache);
                } else if b.block_cache_bytes > 0 {
                    store.attach_block_cache(Arc::new(BlockCache::new(b.block_cache_bytes)));
                }
                StoreImpl::Mneme(store)
            }
        };
        // Shard engines built onto one device must share one recorder —
        // each engine attaching a fresh recorder would overwrite the
        // device's, and per-shard counter deltas would double-count or
        // vanish. The sharded builder injects the shared instance here.
        let recorder =
            b.shared_recorder.clone().unwrap_or_else(|| Self::recorder_for(&b.telemetry));
        if recorder.is_enabled() {
            b.device.attach_recorder(recorder.clone());
            store.as_instrumented_mut().attach_recorder(recorder.clone());
        }
        Ok(Engine {
            device: b.device,
            backend: b.backend,
            dict: dictionary,
            docs: documents,
            stop: b.stop,
            params: b.params,
            store,
            store_handle,
            reserve_enabled: b.reservation,
            exec_mode: b.exec_mode,
            recorder,
            trace_queries: b.telemetry.trace_queries,
        })
    }

    /// Enables or disables the pre-evaluation reservation pass (on by
    /// default; the off setting exists for the ablation study).
    pub fn set_reservation_enabled(&mut self, enabled: bool) {
        self.reserve_enabled = enabled;
    }

    /// The default I/O scheduling mode used by [`Engine::run_query_set`].
    pub fn exec_mode(&self) -> ExecMode {
        self.exec_mode
    }

    /// Overrides the default I/O scheduling mode.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.exec_mode = mode;
    }

    /// The engine's telemetry recorder (disabled unless the engine was
    /// built with [`poir_telemetry::TelemetryOptions::enabled`]).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Whether telemetry is being collected.
    pub fn telemetry_enabled(&self) -> bool {
        self.recorder.is_enabled()
    }

    /// The structured tracer, when the engine was built with
    /// [`poir_telemetry::TelemetryOptions::tracing`].
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.recorder.tracer()
    }

    /// The active backend.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// The hash dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// The document table.
    pub fn documents(&self) -> &DocTable {
        &self.docs
    }

    /// The stop-word list queries are parsed with.
    pub fn stop_words(&self) -> &StopWords {
        &self.stop
    }

    /// Record lookups the store has served so far (monotone counter).
    pub(crate) fn store_record_lookups(&self) -> u64 {
        self.store.as_instrumented().record_lookups()
    }

    /// Counters from the decoded-block cache, when one is attached
    /// ([`EngineBuilder::block_cache_bytes`] on a Mneme backend).
    pub fn block_cache_stats(&self) -> Option<poir_inquery::BlockCacheStats> {
        match &self.store {
            StoreImpl::Mneme(s) => s.block_cache().map(|c| c.stats()),
            StoreImpl::BTree(_) => None,
        }
    }

    /// The store's combined mutation epoch (store id in the high bits;
    /// every incremental update bumps the low bits). The result cache keys
    /// its entries on this value, so any mutation invalidates them. The
    /// archival B-tree backend cannot mutate and reports a constant 0.
    pub fn store_epoch(&self) -> u64 {
        match &self.store {
            StoreImpl::Mneme(s) => InvertedFileStore::store_epoch(s),
            StoreImpl::BTree(_) => 0,
        }
    }

    /// Decomposes the engine into the pieces a query-service worker pool
    /// shares (Mneme backends only — workers fetch through
    /// [`MnemeInvertedFile::shared_view`], which the B-tree store lacks).
    pub(crate) fn into_parts(self) -> Result<EngineParts> {
        let Engine { dict, docs, stop, params, store, .. } = self;
        let StoreImpl::Mneme(store) = store else {
            return Err(CoreError::Unsupported("the query service on the B-tree backend"));
        };
        Ok(EngineParts { dict, docs, stop, params, store })
    }

    /// The simulated device everything runs on.
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    /// The handle of the inverted-file store (for reopening).
    pub fn store_handle(&self) -> &FileHandle {
        &self.store_handle
    }

    /// Size of the inverted file on disk (Table 1's size columns).
    pub fn store_file_size(&mut self) -> Result<u64> {
        self.store.as_instrumented().file_size()
    }

    /// Overrides the Mneme buffer sizes (Figure 3's sweep). Errors on the
    /// B-tree backend.
    pub fn set_buffer_sizes(&mut self, sizes: BufferSizes) -> Result<()> {
        match &mut self.store {
            StoreImpl::Mneme(s) => s.attach_buffers(sizes),
            StoreImpl::BTree(_) => {
                Err(CoreError::Unsupported("buffer sizing on the B-tree backend"))
            }
        }
    }

    /// The Table 2 buffer sizes this collection would use.
    pub fn paper_buffer_sizes(&self) -> Result<BufferSizes> {
        match &self.store {
            StoreImpl::Mneme(s) => Ok(paper_heuristic(s.largest_record(), 8192)),
            StoreImpl::BTree(_) => {
                Err(CoreError::Unsupported("buffer sizing on the B-tree backend"))
            }
        }
    }

    /// Parses and runs one query term-at-a-time, returning the top `k`
    /// documents. Thin wrapper over [`Engine::run_one`]'s uninstrumented
    /// serial path.
    pub fn query(&mut self, text: &str, k: usize) -> Result<Vec<RankedResult>> {
        let (scored, _) = self.run_one(0, text, k, ExecMode::Serial, false)?;
        Ok(self.to_ranked_results(scored))
    }

    /// Explains the belief `text` assigns to one document, node by node.
    pub fn explain(&mut self, text: &str, doc: DocId) -> Result<poir_inquery::query::Explanation> {
        let parsed = poir_inquery::parse_query(text, &self.stop)?;
        let store = self.store.as_store();
        let mut ev = Evaluator::new(store, &self.dict, &self.docs, &self.stop, self.params);
        Ok(ev.explain(&parsed, doc)?)
    }

    /// Runs a bag-of-words query document-at-a-time (the Section 3.1
    /// extension). Errors when the query is not a flat `#sum`/`#wsum`
    /// (unlike [`Engine::run_one`], which falls back to term-at-a-time).
    /// Thin wrapper over the uninstrumented DAAT path.
    pub fn query_daat(&mut self, text: &str, k: usize) -> Result<Vec<RankedResult>> {
        let parsed = poir_inquery::parse_query(text, &self.stop)?;
        if daat::flatten_bag(&parsed).is_none() {
            return Err(CoreError::Unsupported("document-at-a-time on structured queries"));
        }
        let (scored, _) = self.run_one(0, text, k, ExecMode::Daat, false)?;
        Ok(self.to_ranked_results(scored))
    }

    /// Processes a query set in batch mode, reproducing the paper's
    /// measurement procedure (Section 4.2): chill the OS cache, process all
    /// queries, report times and I/O statistics. Uses the engine's default
    /// [`ExecMode`] (serial unless configured otherwise by the builder).
    pub fn run_query_set<S: AsRef<str>>(
        &mut self,
        queries: &[S],
        k: usize,
    ) -> Result<QuerySetReport> {
        self.run_query_set_mode(queries, k, self.exec_mode).map(|(report, _)| report)
    }

    /// Runs one query with per-phase timing, returning the ranking and its
    /// [`QueryTrace`]. Phase durations are always measured; the trace's
    /// event counters are zero unless the engine was built with telemetry
    /// enabled. Thin wrapper over [`Engine::execute`]'s code path.
    pub fn query_traced(
        &mut self,
        text: &str,
        k: usize,
    ) -> Result<(Vec<RankedResult>, QueryTrace)> {
        let mode = self.exec_mode;
        let (scored, trace) = self.run_one(0, text, k, mode, true)?;
        Ok((self.to_ranked_results(scored), trace.expect("instrumented run returns a trace")))
    }

    /// Runs one typed [`QueryRequest`] through the full pipeline — the
    /// single entry point the service and the batch path share.
    ///
    /// The request's `mode` (default: the engine's configured
    /// [`ExecMode`]) picks the I/O schedule; its `deadline`, when set, is
    /// checked after evaluation and turns an over-budget query into
    /// [`CoreError::DeadlineExceeded`] carrying the computed hits as the
    /// partial result. The response always carries per-phase timings; its
    /// telemetry event delta is zero unless the engine was built with
    /// telemetry enabled.
    pub fn execute(&mut self, req: &QueryRequest) -> Result<QueryResponse> {
        let mode = req.mode.unwrap_or(self.exec_mode);
        let qid = req.id.unwrap_or(0);
        let start = Instant::now();
        let (scored, trace) = self.run_one(qid as usize, &req.text, req.k, mode, true)?;
        let elapsed = start.elapsed();
        let hits = self.to_ranked_results(scored);
        if let Some(budget) = req.deadline {
            if elapsed > budget {
                return Err(CoreError::DeadlineExceeded { budget, elapsed, partial: hits });
            }
        }
        let micros = elapsed.as_micros() as u64;
        let shards = vec![ShardTiming { shard: 0, micros, hits: hits.len() }];
        let trace = trace.expect("instrumented run returns a trace");
        // Direct execution has no queue and no cross-shard merge: the
        // whole elapsed time is evaluation.
        let breakdown = LatencyBreakdown::from_parts(qid, 0, micros, 0, micros);
        Ok(QueryResponse {
            hits,
            shards,
            trace,
            queue_micros: 0,
            mode,
            breakdown,
            degraded: None,
            cached: false,
        })
    }

    /// One query through the full pipeline — the one code path behind
    /// [`Engine::execute`], [`Engine::query_traced`], and the batch
    /// runners. With `instrumented` set, each phase gets per-phase
    /// [`Instant`] timing, trace slices, and a per-query telemetry delta;
    /// with it clear the function takes no timestamps and touches no
    /// recorder beyond the store's single-branch no-ops, keeping the
    /// measured batch path free of observation overhead.
    pub(crate) fn run_one(
        &mut self,
        query_index: usize,
        text: &str,
        k: usize,
        mode: ExecMode,
        instrumented: bool,
    ) -> Result<(Vec<poir_inquery::ScoredDoc>, Option<QueryTrace>)> {
        // Tag the thread so every trace record emitted below — device
        // reads, buffer refs, lock waits — carries this query's index.
        let _tag = instrumented.then(|| tag_query(query_index as u32));
        let query_span = instrumented.then(|| self.recorder.trace_start());
        let before = instrumented.then(|| self.recorder.snapshot());
        let mut phase_micros = [0u64; Phase::COUNT];
        // Each phase's trace slice is emitted right after the phase ends so
        // its start timestamp (now - duration) nests the I/O it contains.
        let trace_phase = |phase: Phase, micros: u64| {
            self.recorder.trace(
                TraceOp::QueryPhase,
                phase as u64,
                None,
                0,
                Duration::from_micros(micros),
            );
        };
        let t = instrumented.then(Instant::now);
        let parsed = poir_inquery::parse_query(text, &self.stop)?;
        if let Some(t) = t {
            phase_micros[Phase::Parse as usize] = t.elapsed().as_micros() as u64;
            trace_phase(Phase::Parse, phase_micros[Phase::Parse as usize]);
        }
        // The document-at-a-time modes bypass the Evaluator on flat
        // bag-of-words queries; structured queries fall back to the serial
        // term-at-a-time pipeline below.
        let daat_bag = match mode {
            ExecMode::Daat | ExecMode::DaatPruned => daat::flatten_bag(&parsed),
            ExecMode::Serial | ExecMode::BatchedPrefetch => None,
        };
        let (scored, dict_lookups) = if let Some(bag) = daat_bag {
            let store = self.store.as_store();
            if self.reserve_enabled {
                let t = instrumented.then(Instant::now);
                let refs: Vec<u64> = bag
                    .iter()
                    .filter_map(|(_, term)| self.dict.lookup(term))
                    .map(|id| self.dict.entry(id).store_ref)
                    .collect();
                store.reserve(&refs);
                if let Some(t) = t {
                    phase_micros[Phase::Reserve as usize] = t.elapsed().as_micros() as u64;
                    trace_phase(Phase::Reserve, phase_micros[Phase::Reserve as usize]);
                }
            }
            let t = instrumented.then(Instant::now);
            let result = if mode == ExecMode::DaatPruned {
                daat::rank_daat_pruned(store, &self.dict, &self.docs, self.params, &bag, k).map(
                    |(scored, stats)| {
                        if instrumented {
                            self.recorder.add(Event::PostingsDecoded, stats.postings_decoded);
                            self.recorder.add(Event::PostingsSkipped, stats.postings_skipped);
                            self.recorder.add(Event::BlocksSkipped, stats.blocks_skipped);
                            self.recorder.add(Event::BytesDecoded, stats.bytes_decoded);
                            self.recorder.add(Event::BlocksBitpacked, stats.blocks_bitpacked);
                            if stats.bytes_decoded > 0 {
                                // One aggregate slice per query: object =
                                // bit-packed blocks decoded, bytes = posting
                                // payload bytes decoded.
                                self.recorder.trace(
                                    TraceOp::BlockDecode,
                                    stats.blocks_bitpacked,
                                    None,
                                    stats.bytes_decoded,
                                    Duration::ZERO,
                                );
                            }
                            self.recorder.add(Event::BlockCacheHit, stats.block_cache_hits);
                            self.recorder.add(Event::BlockCacheMiss, stats.block_cache_misses);
                            if stats.block_cache_hits + stats.block_cache_misses > 0 {
                                // One aggregate slice per query: object =
                                // decoded-block cache hits, bytes = misses.
                                self.recorder.trace(
                                    TraceOp::BlockCache,
                                    stats.block_cache_hits,
                                    None,
                                    stats.block_cache_misses,
                                    Duration::ZERO,
                                );
                            }
                            if stats.cursor_seeks > 0 {
                                // One aggregate slice per query: object = seeks
                                // that jumped blocks, bytes = postings bypassed.
                                self.recorder.trace(
                                    TraceOp::CursorSeek,
                                    stats.cursor_seeks,
                                    None,
                                    stats.postings_skipped,
                                    Duration::ZERO,
                                );
                            }
                        }
                        scored
                    },
                )
            } else {
                daat::rank_daat(store, &self.dict, &self.docs, self.params, &bag, k)
            };
            store.release_reservations();
            // The cursor merge fetches, decodes, and ranks in one pass, so
            // the whole loop is charged to Evaluate; Rank stays zero.
            if let Some(t) = t {
                phase_micros[Phase::Evaluate as usize] = t.elapsed().as_micros() as u64;
                trace_phase(Phase::Evaluate, phase_micros[Phase::Evaluate as usize]);
            }
            (result?, bag.len() as u64)
        } else {
            let store = self.store.as_store();
            let mut ev = Evaluator::new(store, &self.dict, &self.docs, &self.stop, self.params);
            if mode == ExecMode::BatchedPrefetch {
                let t = instrumented.then(Instant::now);
                ev.prefetch(&parsed);
                if let Some(t) = t {
                    phase_micros[Phase::Prefetch as usize] = t.elapsed().as_micros() as u64;
                    trace_phase(Phase::Prefetch, phase_micros[Phase::Prefetch as usize]);
                }
            }
            if self.reserve_enabled {
                let t = instrumented.then(Instant::now);
                ev.reserve(&parsed);
                if let Some(t) = t {
                    phase_micros[Phase::Reserve as usize] = t.elapsed().as_micros() as u64;
                    trace_phase(Phase::Reserve, phase_micros[Phase::Reserve as usize]);
                }
            }
            let t = instrumented.then(Instant::now);
            let list = ev.evaluate(&parsed);
            if let Some(t) = t {
                phase_micros[Phase::Evaluate as usize] = t.elapsed().as_micros() as u64;
                trace_phase(Phase::Evaluate, phase_micros[Phase::Evaluate as usize]);
            }
            let dict_lookups = ev.dict_lookups();
            ev.release_reservations();
            let list = list?;
            let t = instrumented.then(Instant::now);
            let scored = rank_score_list(list, k);
            if let Some(t) = t {
                phase_micros[Phase::Rank as usize] = t.elapsed().as_micros() as u64;
                trace_phase(Phase::Rank, phase_micros[Phase::Rank as usize]);
            }
            (scored, dict_lookups)
        };
        if !instrumented {
            return Ok((scored, None));
        }
        self.recorder.add(Event::DictLookup, dict_lookups);
        for phase in Phase::ALL {
            self.recorder.record_phase(phase, phase_micros[phase as usize]);
        }
        if let Some(span) = query_span {
            self.recorder.trace_end(span, TraceOp::Query, query_index as u64, None, 0);
        }
        let before = before.expect("instrumented run snapshots the recorder");
        let delta = self.recorder.snapshot().since(&before);
        let trace = QueryTrace {
            query: query_index,
            results: scored.len(),
            phase_micros,
            events: delta.events,
        };
        Ok((scored, Some(trace)))
    }

    /// Assembles the telemetry-derived [`MetricsReport`] for one query-set
    /// run: raw counter deltas, per-query traces, and the cost-model time
    /// recomputed purely from telemetry (equal to the `IoStats` charge
    /// because the device records both at the same call sites).
    fn metrics_report(
        &self,
        queries: usize,
        tel_before: &TelemetrySnapshot,
        traces: Vec<QueryTrace>,
        engine_time: Duration,
    ) -> Option<MetricsReport> {
        if !self.recorder.is_enabled() {
            return None;
        }
        let delta = self.recorder.snapshot().since(tel_before);
        let sim_io_micros = self.device.cost_model().charge_telemetry(&delta).as_micros();
        Some(MetricsReport {
            queries,
            delta,
            traces,
            engine_micros: engine_time.as_micros() as u64,
            sim_io_micros,
        })
    }

    /// [`Engine::run_query_set`] with an explicit I/O scheduling mode,
    /// additionally returning each query's ranking (for cross-mode equality
    /// checks).
    pub fn run_query_set_mode<S: AsRef<str>>(
        &mut self,
        queries: &[S],
        k: usize,
        mode: ExecMode,
    ) -> Result<(QuerySetReport, Vec<Vec<RankedResult>>)> {
        // Parse outside the timed region is NOT what the paper does —
        // "timing was begun just before query processing started" — parsing
        // is part of query processing, so it stays inside.
        self.device.chill();
        self.store.as_instrumented().reset_buffer_stats();
        let lookups_before = self.store.as_instrumented().record_lookups();
        let io_before = self.device.stats().snapshot();
        let tel_before = self.recorder.snapshot();
        let mut traces = Vec::new();
        let mut rankings = Vec::with_capacity(queries.len());
        let start = Instant::now();
        // One shared code path: with telemetry off, run_one takes no
        // timestamps and touches no recorder beyond the store's
        // single-branch no-ops, so the measured path stays overhead-free.
        let instrumented = self.recorder.is_enabled();
        for (qi, q) in queries.iter().enumerate() {
            let (scored, trace) = self.run_one(qi, q.as_ref(), k, mode, instrumented)?;
            if self.trace_queries {
                if let Some(trace) = trace {
                    traces.push(trace);
                }
            }
            rankings.push(scored);
        }
        let engine_time = start.elapsed();
        let io = self.device.stats().snapshot().since(&io_before);
        // Saturating: a caller resetting store counters between runs must
        // read as "no lookups", not underflow.
        let record_lookups =
            self.store.as_instrumented().record_lookups().saturating_sub(lookups_before);
        let buffer_stats = self.store.as_instrumented().buffer_stats()?;
        let metrics = self.metrics_report(queries.len(), &tel_before, traces, engine_time);
        let report = QuerySetReport {
            queries: queries.len(),
            engine_time,
            sys_io_time: self.device.cost_model().charge(&io),
            io,
            record_lookups,
            buffer_stats,
            metrics,
        };
        let rankings = rankings.into_iter().map(|r| self.to_ranked_results(r)).collect();
        Ok((report, rankings))
    }

    pub(crate) fn to_ranked_results(
        &self,
        scored: Vec<poir_inquery::ScoredDoc>,
    ) -> Vec<RankedResult> {
        scored
            .into_iter()
            .map(|s| RankedResult {
                doc: s.doc,
                name: self.docs.info(s.doc).name.clone(),
                score: s.score,
            })
            .collect()
    }

    /// Processes a query set on `threads` scoped worker threads sharing one
    /// read-only store view (Mneme backends only — the B-tree store has no
    /// concurrent read path).
    ///
    /// Queries are dealt round-robin across threads; each thread runs the
    /// batched-prefetch pipeline against [`MnemeInvertedFile::shared_view`],
    /// whose fetches take `&self` and synchronize on per-pool buffer locks.
    /// Rankings come back in query order. Timing and I/O statistics are
    /// measured exactly as in the serial modes;
    /// [`ParallelSetReport::wall_clock_secs`] divides the simulated I/O time
    /// across threads (striped I/O channels).
    pub fn run_query_set_parallel<S: AsRef<str> + Sync>(
        &mut self,
        queries: &[S],
        k: usize,
        threads: usize,
    ) -> Result<ParallelSetReport> {
        let threads = threads.max(1);
        self.device.chill();
        let StoreImpl::Mneme(store) = &mut self.store else {
            return Err(CoreError::Unsupported("parallel query execution on the B-tree backend"));
        };
        store.reset_buffer_stats();
        let store: &MnemeInvertedFile = store;
        let lookups_before = StoreInstrumentation::record_lookups(store);
        let io_before = self.device.stats().snapshot();
        let tel_before = self.recorder.snapshot();
        let dict = &self.dict;
        let docs = &self.docs;
        let stop = &self.stop;
        let params = self.params;
        let recorder = &self.recorder;
        let start = Instant::now();
        let mut per_thread: Vec<Result<ThreadResults>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    scope.spawn(move || {
                        let mut view = store.shared_view();
                        let mut out = Vec::new();
                        let mut dict_lookups = 0u64;
                        for qi in (t..queries.len()).step_by(threads) {
                            // Tag + whole-query slice: each worker gets its
                            // own trace track, with per-query attribution.
                            let _tag = tag_query(qi as u32);
                            let query_span = recorder.trace_start();
                            let parsed = poir_inquery::parse_query(queries[qi].as_ref(), stop)?;
                            let mut ev = Evaluator::new(&mut view, dict, docs, stop, params);
                            ev.prefetch(&parsed);
                            let ranking = ev.rank(&parsed, k);
                            dict_lookups += ev.dict_lookups();
                            recorder.trace_end(query_span, TraceOp::Query, qi as u64, None, 0);
                            out.push((qi, ranking?));
                        }
                        Ok((out, dict_lookups))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("query thread panicked")).collect()
        });
        let engine_time = start.elapsed();
        let mut merged: Vec<Vec<poir_inquery::ScoredDoc>> = vec![Vec::new(); queries.len()];
        for shard in per_thread.drain(..) {
            let (shard, dict_lookups) = shard?;
            self.recorder.add(Event::DictLookup, dict_lookups);
            for (qi, ranking) in shard {
                merged[qi] = ranking;
            }
        }
        let io = self.device.stats().snapshot().since(&io_before);
        let record_lookups =
            StoreInstrumentation::record_lookups(store).saturating_sub(lookups_before);
        let buffer_stats = Some(store.buffer_stats()?);
        // Per-query traces need serial phase attribution; a parallel run
        // reports set-level counters only.
        let metrics = self.metrics_report(queries.len(), &tel_before, Vec::new(), engine_time);
        let report = QuerySetReport {
            queries: queries.len(),
            engine_time,
            sys_io_time: self.device.cost_model().charge(&io),
            io,
            record_lookups,
            buffer_stats,
            metrics,
        };
        let rankings = merged.into_iter().map(|r| self.to_ranked_results(r)).collect();
        Ok(ParallelSetReport { report, threads, rankings })
    }

    /// Incrementally adds a document to the collection — the dynamic-update
    /// service the paper's conclusions call for, enabled by the object
    /// store (Mneme backends only; the archival B-tree configuration
    /// requires re-indexing, as in the original INQUERY).
    pub fn add_document(&mut self, name: &str, text: &str) -> Result<DocId> {
        let StoreImpl::Mneme(store) = &mut self.store else {
            return Err(CoreError::Unsupported("incremental update on the B-tree backend"));
        };
        let raw_tokens =
            text.split(|c: char| !c.is_ascii_alphanumeric()).filter(|t| !t.is_empty()).count();
        let doc = self.docs.push(name.to_string(), raw_tokens as u32);
        let mut by_term: std::collections::HashMap<String, Vec<u32>> =
            std::collections::HashMap::new();
        for (token, pos) in poir_inquery::tokenize(text, &self.stop) {
            by_term.entry(token).or_default().push(pos);
        }
        for (token, positions) in by_term {
            let tf = positions.len() as u32;
            let posting = poir_inquery::Posting { doc, tf, positions };
            match self.dict.lookup(&token) {
                Some(id) => {
                    let store_ref = self.dict.entry(id).store_ref;
                    let bytes = store.fetch(store_ref)?;
                    let mut record = poir_inquery::InvertedRecord::decode(&bytes)
                        .ok_or_else(|| CoreError::CorruptRecord(format!("record for {token:?}")))?;
                    record.cf += tf as u64;
                    record.max_tf = record.max_tf.max(tf);
                    record.postings.push(posting);
                    let new_ref = store.update_record(store_ref, &record.encode())?;
                    let entry = self.dict.entry_mut(id);
                    entry.store_ref = new_ref;
                    entry.df += 1;
                    entry.cf += tf as u64;
                }
                None => {
                    let record = poir_inquery::InvertedRecord::from_postings(vec![posting]);
                    let store_ref = store.insert_record(&record.encode())?;
                    let id = self.dict.intern(&token);
                    let entry = self.dict.entry_mut(id);
                    entry.store_ref = store_ref;
                    entry.df = 1;
                    entry.cf = tf as u64;
                }
            }
        }
        Ok(doc)
    }

    /// Incrementally removes a document, given its original text (the
    /// deletion side of dynamic update; leaves holes that [`poir_mneme::gc`]
    /// reclaims). Mneme backends only.
    pub fn remove_document(&mut self, doc: DocId, text: &str) -> Result<()> {
        let StoreImpl::Mneme(store) = &mut self.store else {
            return Err(CoreError::Unsupported("incremental update on the B-tree backend"));
        };
        let mut terms: Vec<String> =
            poir_inquery::tokenize(text, &self.stop).map(|(t, _)| t).collect();
        terms.sort_unstable();
        terms.dedup();
        for token in terms {
            let Some(id) = self.dict.lookup(&token) else { continue };
            let store_ref = self.dict.entry(id).store_ref;
            let bytes = store.fetch(store_ref)?;
            let Some(mut record) = poir_inquery::InvertedRecord::decode(&bytes) else {
                continue;
            };
            let Ok(i) = record.postings.binary_search_by_key(&doc, |p| p.doc) else {
                continue;
            };
            let removed = record.postings.remove(i);
            record.cf = record.cf.saturating_sub(removed.tf as u64);
            record.max_tf = record.postings.iter().map(|p| p.tf).max().unwrap_or(0);
            let new_ref = store.update_record(store_ref, &record.encode())?;
            let entry = self.dict.entry_mut(id);
            entry.store_ref = new_ref;
            entry.df = entry.df.saturating_sub(1);
            entry.cf = entry.cf.saturating_sub(removed.tf as u64);
        }
        Ok(())
    }

    /// Flushes the inverted file and writes the dictionary + document table
    /// + engine metadata to `meta`.
    pub fn save(&mut self, meta: &FileHandle) -> Result<()> {
        match &mut self.store {
            StoreImpl::BTree(s) => s.flush()?,
            StoreImpl::Mneme(s) => s.flush()?,
        }
        let dict_bytes = self.dict.to_bytes();
        let docs_bytes = self.docs.to_bytes();
        let largest = match &self.store {
            StoreImpl::Mneme(s) => s.largest_record() as u64,
            StoreImpl::BTree(_) => 0,
        };
        let mut out = Vec::with_capacity(32 + dict_bytes.len() + docs_bytes.len());
        out.extend_from_slice(b"IQME");
        out.push(match self.backend {
            BackendKind::BTree => 1,
            BackendKind::MnemeNoCache => 2,
            BackendKind::MnemeCache => 3,
        });
        out.extend_from_slice(&largest.to_le_bytes());
        out.extend_from_slice(&(dict_bytes.len() as u64).to_le_bytes());
        out.extend_from_slice(&dict_bytes);
        out.extend_from_slice(&docs_bytes);
        meta.truncate(0)?;
        meta.write(0, &out)?;
        meta.sync()?;
        Ok(())
    }

    pub(crate) fn from_builder_open(
        b: EngineBuilder,
        store_handle: FileHandle,
        meta: &FileHandle,
    ) -> Result<Engine> {
        let bytes = meta.read(0, meta.len()? as usize)?;
        if bytes.len() < 21 || &bytes[0..4] != b"IQME" {
            return Err(CoreError::CorruptMetadata("missing IQME header"));
        }
        let backend = match bytes[4] {
            1 => BackendKind::BTree,
            2 => BackendKind::MnemeNoCache,
            3 => BackendKind::MnemeCache,
            _ => return Err(CoreError::CorruptMetadata("unknown backend tag")),
        };
        let largest = u64::from_le_bytes(bytes[5..13].try_into().unwrap()) as usize;
        let dict_len = u64::from_le_bytes(bytes[13..21].try_into().unwrap()) as usize;
        if bytes.len() < 21 + dict_len {
            return Err(CoreError::CorruptMetadata("truncated dictionary"));
        }
        let dict = Dictionary::from_bytes(&bytes[21..21 + dict_len])
            .ok_or(CoreError::CorruptMetadata("dictionary failed to decode"))?;
        let docs = DocTable::from_bytes(&bytes[21 + dict_len..])
            .ok_or(CoreError::CorruptMetadata("document table failed to decode"))?;
        let mut store = match backend {
            BackendKind::BTree => StoreImpl::BTree(BTreeInvertedFile::open(
                store_handle.clone(),
                b.btree.cache_nodes,
            )?),
            BackendKind::MnemeNoCache | BackendKind::MnemeCache => {
                let mut s = MnemeInvertedFile::open(store_handle.clone(), largest)?;
                if backend == BackendKind::MnemeCache {
                    s.attach_buffers_with(
                        b.buffers.unwrap_or_else(|| paper_heuristic(largest, 8192)),
                        b.buffer_policy,
                    )?;
                }
                if let Some(cache) = b.shared_block_cache.clone() {
                    s.attach_block_cache(cache);
                } else if b.block_cache_bytes > 0 {
                    s.attach_block_cache(Arc::new(BlockCache::new(b.block_cache_bytes)));
                }
                StoreImpl::Mneme(s)
            }
        };
        let recorder = Self::recorder_for(&b.telemetry);
        if recorder.is_enabled() {
            b.device.attach_recorder(recorder.clone());
            store.as_instrumented_mut().attach_recorder(recorder.clone());
        }
        Ok(Engine {
            device: b.device,
            backend,
            dict,
            docs,
            stop: b.stop,
            params: b.params,
            store,
            store_handle,
            reserve_enabled: b.reservation,
            exec_mode: b.exec_mode,
            recorder,
            trace_queries: b.telemetry.trace_queries,
        })
    }
}

//! Chunked large objects through inter-object references.
//!
//! "Inter-object references allow structures such as linked lists to be
//! used to break large objects into more manageable pieces. This could
//! provide better support for inverted list updates and allow incremental
//! retrieval of large aggregate objects." (Section 6)
//!
//! A chunked record is a *root* object in a reference-carrying pool whose
//! reference table points at fixed-size chunk objects. Readers can fetch
//! the whole record ([`load`]) or stream it chunk by chunk
//! ([`ChunkCursor`]) — the incremental retrieval the paper anticipates; the
//! document-at-a-time evaluator only needs a prefix of a long list to start
//! producing candidates.

use poir_mneme::{refs, FileSlot, GlobalId, MnemeFile, ObjectId, PoolId};

use crate::error::{CoreError, Result};

/// Default chunk payload size: one medium segment's worth of bytes.
pub const DEFAULT_CHUNK: usize = 8192;

/// Stores `bytes` as a root + chunk chain. `root_pool` must be a
/// `SegmentPerObject` pool with `embedded_refs: true`; `chunk_pool` holds
/// the chunk objects. Returns the root object id.
pub fn store(
    file: &mut MnemeFile,
    root_pool: PoolId,
    chunk_pool: PoolId,
    bytes: &[u8],
    chunk_size: usize,
) -> Result<ObjectId> {
    assert!(chunk_size > 0, "chunk size must be positive");
    let mut chunk_ids = Vec::with_capacity(bytes.len() / chunk_size + 1);
    for chunk in bytes.chunks(chunk_size) {
        let id = file.create_object(chunk_pool, chunk)?;
        chunk_ids.push(GlobalId { file: FileSlot(0), object: id });
    }
    // The root's payload records the total length so readers can
    // pre-allocate; its reference table is the chunk chain.
    let root_payload = (bytes.len() as u64).to_le_bytes();
    let root_bytes = refs::encode_with_references(&chunk_ids, &root_payload);
    Ok(file.create_object(root_pool, &root_bytes)?)
}

/// Loads a whole chunked record.
pub fn load(file: &mut MnemeFile, root: ObjectId) -> Result<Vec<u8>> {
    let mut cursor = ChunkCursor::open(file, root)?;
    let mut out = Vec::with_capacity(cursor.total_len());
    while let Some(chunk) = cursor.next_chunk(file)? {
        out.extend_from_slice(&chunk);
    }
    Ok(out)
}

/// Streams a chunked record one chunk at a time.
pub struct ChunkCursor {
    chunks: Vec<ObjectId>,
    next: usize,
    total_len: usize,
}

impl ChunkCursor {
    /// Opens the root object and decodes its chunk chain (one object fetch).
    pub fn open(file: &mut MnemeFile, root: ObjectId) -> Result<Self> {
        let root_bytes = file.get(root)?;
        let (raw_refs, payload) = refs::parse_reference_table(&root_bytes)
            .ok_or(CoreError::DanglingRef(root.raw() as u64))?;
        if payload.len() != 8 {
            return Err(CoreError::DanglingRef(root.raw() as u64));
        }
        let total_len = u64::from_le_bytes(payload.try_into().unwrap()) as usize;
        let chunks = raw_refs.into_iter().filter_map(GlobalId::unpack).map(|g| g.object).collect();
        Ok(ChunkCursor { chunks, next: 0, total_len })
    }

    /// Total record length in bytes.
    pub fn total_len(&self) -> usize {
        self.total_len
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Chunks not yet read.
    pub fn remaining(&self) -> usize {
        self.chunks.len() - self.next
    }

    /// Fetches the next chunk (one object fetch), or `None` at the end.
    /// Buffer-resident chunks are returned as zero-copy shared slices.
    pub fn next_chunk(&mut self, file: &mut MnemeFile) -> Result<Option<poir_mneme::ObjectBytes>> {
        if self.next >= self.chunks.len() {
            return Ok(None);
        }
        let id = self.chunks[self.next];
        self.next += 1;
        Ok(Some(file.get(id)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poir_mneme::{PoolConfig, PoolKindConfig};
    use poir_storage::Device;

    const ROOT_POOL: PoolId = PoolId(0);
    const CHUNK_POOL: PoolId = PoolId(1);

    fn test_file(dev: &std::sync::Arc<Device>) -> MnemeFile {
        MnemeFile::create(
            dev.create_file(),
            &[
                PoolConfig {
                    id: ROOT_POOL,
                    kind: PoolKindConfig::SegmentPerObject { embedded_refs: true },
                },
                PoolConfig {
                    id: CHUNK_POOL,
                    kind: PoolKindConfig::SegmentPerObject { embedded_refs: false },
                },
            ],
            8,
        )
        .unwrap()
    }

    #[test]
    fn store_and_load_round_trip() {
        let dev = Device::with_defaults();
        let mut file = test_file(&dev);
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let root = store(&mut file, ROOT_POOL, CHUNK_POOL, &data, 8192).unwrap();
        assert_eq!(load(&mut file, root).unwrap(), data);
    }

    #[test]
    fn incremental_retrieval_reads_only_needed_chunks() {
        let dev = Device::with_defaults();
        let mut file = test_file(&dev);
        let data = vec![7u8; 50_000];
        let root = store(&mut file, ROOT_POOL, CHUNK_POOL, &data, 10_000).unwrap();
        file.flush().unwrap();
        dev.chill();
        let before = dev.stats().snapshot();
        let mut cursor = ChunkCursor::open(&mut file, root).unwrap();
        assert_eq!(cursor.num_chunks(), 5);
        assert_eq!(cursor.total_len(), 50_000);
        // Read only the first chunk.
        let first = cursor.next_chunk(&mut file).unwrap().unwrap();
        assert_eq!(first.len(), 10_000);
        assert_eq!(cursor.remaining(), 4);
        let delta = dev.stats().snapshot().since(&before);
        // Far fewer bytes than the whole record: root + one chunk segment
        // (plus location buckets), not 50 KB.
        assert!(delta.bytes_read < 25_000, "incremental read moved {} bytes", delta.bytes_read);
    }

    #[test]
    fn empty_record_has_no_chunks() {
        let dev = Device::with_defaults();
        let mut file = test_file(&dev);
        let root = store(&mut file, ROOT_POOL, CHUNK_POOL, b"", 100).unwrap();
        let mut cursor = ChunkCursor::open(&mut file, root).unwrap();
        assert_eq!(cursor.num_chunks(), 0);
        assert_eq!(cursor.next_chunk(&mut file).unwrap(), None);
        assert_eq!(load(&mut file, root).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn references_are_visible_to_the_pool() {
        // The root pool can enumerate chunk references — what a garbage
        // collector would trace.
        let dev = Device::with_defaults();
        let mut file = test_file(&dev);
        let root = store(&mut file, ROOT_POOL, CHUNK_POOL, &vec![1u8; 1000], 300).unwrap();
        let refs = file.references_of(root).unwrap();
        assert_eq!(refs.len(), 4, "1000 bytes in 300-byte chunks = 4 chunks");
    }

    #[test]
    fn chunk_size_one_is_degenerate_but_correct() {
        let dev = Device::with_defaults();
        let mut file = test_file(&dev);
        let root = store(&mut file, ROOT_POOL, CHUNK_POOL, b"abc", 1).unwrap();
        assert_eq!(load(&mut file, root).unwrap(), b"abc");
    }
}

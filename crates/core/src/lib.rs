//! # The integrated system: INQUERY + Mneme
//!
//! This crate is the paper's primary contribution (Brown, Callan, Moss &
//! Croft, EDBT 1994, Section 3.3): the INQUERY retrieval engine with its
//! inverted file index served either by the original custom B-tree package
//! or by the Mneme persistent object store.
//!
//! * [`btree_store`] — the [`BTreeInvertedFile`] baseline adaptor,
//! * [`mneme_store`] — the [`MnemeInvertedFile`] with the three-group
//!   object partition (≤12 B → small pool; >4 KB → own segment; rest packed
//!   into 8 KB segments) and per-pool buffers,
//! * [`buffer_sizing`] — the Table 2 buffer-size heuristics,
//! * [`engine`] — the [`Engine`] facade: build/open an index, run queries,
//!   measure query sets the way the paper does, and (extension) add or
//!   remove documents incrementally through the object store,
//! * [`chunked`] — large inverted lists broken into linked chunk objects
//!   via inter-object references (the paper's future-work item enabling
//!   incremental retrieval).

pub mod btree_store;
pub mod buffer_sizing;
pub mod builder;
pub mod chunked;
pub mod engine;
pub mod error;
pub mod instrument;
pub mod mneme_store;
pub mod multi_file;
pub mod result_cache;
pub mod service;
pub mod shard;

pub use btree_store::BTreeInvertedFile;
pub use buffer_sizing::{paper_heuristic, BufferSizes};
pub use builder::EngineBuilder;
pub use engine::{
    BackendKind, Degraded, Engine, ExecMode, ParallelSetReport, QueryRequest, QueryResponse,
    QuerySetReport, RankedResult, ShardTiming,
};
pub use error::{CoreError, Result};
pub use instrument::StoreInstrumentation;
pub use mneme_store::{
    pool_for, pool_for_with, MnemeInvertedFile, MnemeOptions, SharedMnemeView, LARGE_MIN, SMALL_MAX,
};
pub use multi_file::{MultiFileInvertedFile, MultiFileOptions};
pub use poir_telemetry::{
    Attribution, BufferResidencyReport, LatencyBreakdown, LatencySummary, MetricsRegistry,
    MetricsReport, QueryTrace, RegistrySnapshot, SlowQueryRecord, TelemetryOptions, TraceOp,
    TraceRecord, Tracer, WindowRates,
};
pub use result_cache::{ResultCache, ResultCacheStats, ResultKey};
pub use service::{
    PendingQuery, QueryService, RetryPolicy, ServiceConfig, ServiceStats, ShardHealth,
};
pub use shard::{ShardSpec, ShardedEngine};

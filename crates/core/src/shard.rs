//! Horizontal sharding: one engine per document-id range, merged top-k.
//!
//! [`ShardedEngine`] fronts `N` independently built [`Engine`]s, each
//! serving a contiguous document-id range of the collection (see
//! [`Index::split_shards`](poir_inquery::Index::split_shards)). Because
//! every shard scores with the **global** collection statistics — the
//! dictionary's collection-wide document frequencies and the full
//! document table — each shard's top `k` is exactly the restriction of
//! the unsharded ranking to that shard's documents, so merging the
//! per-shard lists with the ranking comparator reproduces the unsharded
//! top `k` bit-for-bit (ties included).
//!
//! The query service (see [`crate::service`]) runs these shards on a
//! worker pool; this module also works standalone for single-threaded
//! sharded evaluation and batch measurement.

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;
use std::time::Instant;

use poir_inquery::query::daat;
use poir_inquery::Index;
use poir_storage::Device;
use poir_telemetry::{Event, LatencyBreakdown, MetricsReport, Phase, QueryTrace, Recorder};

use crate::engine::{
    Engine, EngineParts, ExecMode, QueryRequest, QueryResponse, QuerySetReport, RankedResult,
    ShardTiming,
};
use crate::error::{CoreError, Result};

/// Sharding layout: how many shards to split the collection into and how
/// many service workers evaluate them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Horizontal partitions of the document space (min 1).
    pub shards: usize,
    /// Worker threads in the query service's pool (min 1).
    pub workers: usize,
}

impl ShardSpec {
    /// A spec with both values clamped to at least 1.
    pub fn new(shards: usize, workers: usize) -> ShardSpec {
        ShardSpec { shards: shards.max(1), workers: workers.max(1) }
    }
}

impl Default for ShardSpec {
    /// The paper's configuration: one shard, one worker (no sharding).
    fn default() -> ShardSpec {
        ShardSpec { shards: 1, workers: 1 }
    }
}

impl fmt::Display for ShardSpec {
    /// Stable CLI/JSON form `"<shards>x<workers>"`; round-trips through
    /// [`ShardSpec::from_str`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.shards, self.workers)
    }
}

impl FromStr for ShardSpec {
    type Err = CoreError;

    /// Parses `"4x8"` (4 shards, 8 workers) or bare `"4"` (4 shards, 4
    /// workers). Zeroes are rejected rather than clamped: a spec that
    /// names zero shards is a typo, not a request for the default.
    fn from_str(s: &str) -> Result<ShardSpec> {
        let err = || CoreError::UnknownName { kind: "shard spec", value: s.to_string() };
        let (shards, workers) = match s.split_once(['x', 'X']) {
            Some((a, b)) => {
                (a.trim().parse().map_err(|_| err())?, { b.trim().parse().map_err(|_| err())? })
            }
            None => {
                let n: usize = s.trim().parse().map_err(|_| err())?;
                (n, n)
            }
        };
        if shards == 0 || workers == 0 {
            return Err(err());
        }
        Ok(ShardSpec { shards, workers })
    }
}

/// `N` per-range engines behind the unsharded [`Engine`]'s query
/// interface. Built by
/// [`EngineBuilder::build_sharded`](crate::EngineBuilder::build_sharded).
pub struct ShardedEngine {
    spec: ShardSpec,
    shards: Vec<Engine>,
    recorder: Recorder,
    device: Arc<Device>,
}

impl fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("spec", &self.spec)
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

impl ShardedEngine {
    /// Bounded retry budget for a shard evaluation that raises a
    /// transient storage fault (matches the service's default
    /// [`RetryPolicy`](crate::service::RetryPolicy)).
    pub const MAX_SHARD_RETRIES: u32 = 2;

    pub(crate) fn from_shards(
        spec: ShardSpec,
        shards: Vec<Engine>,
        recorder: Recorder,
        device: Arc<Device>,
    ) -> ShardedEngine {
        debug_assert_eq!(spec.shards, shards.len());
        ShardedEngine { spec, shards, recorder, device }
    }

    /// The sharding layout this engine was built with.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// Number of shards (≥ 1).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shared telemetry recorder (one instance across all shards).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The simulated device all shards run on.
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    /// The store file handle behind shard `shard` — fault-injection and
    /// operational tooling target a single shard's storage through this.
    pub fn shard_store_handle(&self, shard: usize) -> &poir_storage::FileHandle {
        self.shards[shard].store_handle()
    }

    /// Splits `index` and builds the shards — convenience for
    /// [`EngineBuilder::build_sharded`](crate::EngineBuilder::build_sharded);
    /// see that method for the full builder surface.
    pub fn build(device: &Arc<Device>, spec: ShardSpec, index: Index) -> Result<ShardedEngine> {
        Engine::builder(device).sharding(spec).build_sharded(index)
    }

    /// Picks (and validates) the execution mode for a sharded request.
    ///
    /// Sharded evaluation is document-at-a-time only: the term-at-a-time
    /// [`Evaluator`](poir_inquery::Evaluator) reads document frequencies
    /// from each shard's stored records, which hold shard-local counts —
    /// its beliefs would silently diverge from the unsharded ranking. The
    /// DAAT modes score from the dictionary's global statistics, so they
    /// are exact; anything else is a typed error rather than a wrong
    /// answer.
    fn sharded_mode(&self, req: &QueryRequest) -> Result<ExecMode> {
        match req.mode {
            None => Ok(ExecMode::DaatPruned),
            Some(m @ (ExecMode::Daat | ExecMode::DaatPruned)) => Ok(m),
            Some(ExecMode::Serial | ExecMode::BatchedPrefetch) => {
                Err(CoreError::Unsupported("term-at-a-time execution on a sharded engine"))
            }
        }
    }

    /// Runs one typed request across every shard and merges the per-shard
    /// top `k` into the global top `k` (bit-identical to the unsharded
    /// ranking; see the module docs).
    ///
    /// The request's deadline is checked between shards: shard 0 always
    /// completes, and an expired budget at a later boundary returns
    /// [`CoreError::DeadlineExceeded`] carrying the merge of the shards
    /// that finished in time.
    ///
    /// Shard failures are isolated: a shard whose evaluation raises a
    /// transient storage fault is retried up to
    /// [`ShardedEngine::MAX_SHARD_RETRIES`] times (immediately — the
    /// direct path has no backoff clock of its own); a shard that still
    /// fails is dropped from the response and reported in
    /// [`QueryResponse::degraded`] instead of failing the request. Only
    /// when *every* shard fails does the request error.
    pub fn execute(&mut self, req: &QueryRequest) -> Result<QueryResponse> {
        if self.shards.len() == 1 {
            return self.shards[0].execute(req);
        }
        let mode = self.sharded_mode(req)?;
        let qid = req.id.unwrap_or(0);
        // Structured queries cannot fall back to the term-at-a-time
        // pipeline here (shard-local record statistics; see
        // `sharded_mode`), so reject them before touching any shard.
        let parsed = poir_inquery::parse_query(&req.text, self.shards[0].stop_words())?;
        if daat::flatten_bag(&parsed).is_none() {
            return Err(CoreError::Unsupported("structured queries on a sharded engine"));
        }
        let start = Instant::now();
        let mut per_shard: Vec<Vec<poir_inquery::ScoredDoc>> = Vec::new();
        let mut timings = Vec::new();
        let mut phase_micros = [0u64; Phase::COUNT];
        let mut events = [0u64; Event::COUNT];
        let mut missing_shards = Vec::new();
        let mut retries_total = 0u32;
        let mut last_err = None;
        for i in 0..self.shards.len() {
            if i > 0 {
                if let Some(budget) = req.deadline {
                    let elapsed = start.elapsed();
                    if elapsed > budget {
                        let merged = daat::merge_topk(per_shard, req.k);
                        let partial = self.shards[0].to_ranked_results(merged);
                        return Err(CoreError::DeadlineExceeded { budget, elapsed, partial });
                    }
                }
            }
            let t = Instant::now();
            let mut attempt = 0u32;
            let outcome = loop {
                match self.shards[i].run_one(qid as usize, &req.text, req.k, mode, true) {
                    Ok(ok) => break Ok(ok),
                    Err(e) if attempt < Self::MAX_SHARD_RETRIES && e.is_transient_fault() => {
                        attempt += 1;
                        retries_total += 1;
                        self.recorder.incr(Event::ShardRetry);
                    }
                    Err(e) => break Err(e),
                }
            };
            let (scored, trace) = match outcome {
                Ok(pair) => pair,
                Err(e) => {
                    missing_shards.push(i);
                    last_err = Some(e);
                    continue;
                }
            };
            timings.push(ShardTiming {
                shard: i,
                micros: t.elapsed().as_micros() as u64,
                hits: scored.len(),
            });
            let trace = trace.expect("instrumented run returns a trace");
            for (acc, v) in phase_micros.iter_mut().zip(trace.phase_micros) {
                *acc += v;
            }
            for (acc, v) in events.iter_mut().zip(trace.events) {
                *acc += v;
            }
            per_shard.push(scored);
        }
        if per_shard.is_empty() {
            return Err(last_err.unwrap_or(CoreError::Unsupported("no shards evaluated")));
        }
        let degraded = if missing_shards.is_empty() {
            None
        } else {
            self.recorder.incr(Event::DegradedResponse);
            Some(crate::engine::Degraded { missing_shards, retries: retries_total })
        };
        let merge_start = Instant::now();
        let merged = daat::merge_topk(per_shard, req.k);
        let merge_micros = merge_start.elapsed().as_micros() as u64;
        let hits = self.shards[0].to_ranked_results(merged);
        let trace = QueryTrace { query: qid as usize, results: hits.len(), phase_micros, events };
        let eval_micros = timings.iter().map(|t| t.micros).sum();
        let breakdown = LatencyBreakdown::from_parts(
            qid,
            0,
            eval_micros,
            merge_micros,
            start.elapsed().as_micros() as u64,
        );
        Ok(QueryResponse {
            hits,
            shards: timings,
            trace,
            queue_micros: 0,
            mode,
            breakdown,
            degraded,
            cached: false,
        })
    }

    /// Processes a query set in batch mode across the shards, reproducing
    /// the unsharded measurement procedure: chill the OS cache, run every
    /// query (document-at-a-time with pruning), merge per-query rankings.
    ///
    /// Telemetry is aggregated from **one** shared-recorder delta taken
    /// around the whole run — the shards share a single recorder, so
    /// summing per-shard snapshots would double-count device events;
    /// record lookups are summed from each shard's monotone store counter
    /// instead. Per-pool buffer statistics are per-store and are not
    /// aggregated (`buffer_stats: None`).
    pub fn run_query_set<S: AsRef<str>>(
        &mut self,
        queries: &[S],
        k: usize,
    ) -> Result<(QuerySetReport, Vec<Vec<RankedResult>>)> {
        if self.shards.len() == 1 {
            let mode = self.shards[0].exec_mode();
            return self.shards[0].run_query_set_mode(queries, k, mode);
        }
        self.device.chill();
        let lookups_before: u64 = self.shards.iter().map(|s| s.store_record_lookups()).sum();
        let io_before = self.device.stats().snapshot();
        let tel_before = self.recorder.snapshot();
        let instrumented = self.recorder.is_enabled();
        let mut rankings = Vec::with_capacity(queries.len());
        let start = Instant::now();
        for (qi, q) in queries.iter().enumerate() {
            let mut per_shard = Vec::with_capacity(self.shards.len());
            for shard in &mut self.shards {
                let (scored, _) =
                    shard.run_one(qi, q.as_ref(), k, ExecMode::DaatPruned, instrumented)?;
                per_shard.push(scored);
            }
            rankings.push(daat::merge_topk(per_shard, k));
        }
        let engine_time = start.elapsed();
        let io = self.device.stats().snapshot().since(&io_before);
        let lookups_after: u64 = self.shards.iter().map(|s| s.store_record_lookups()).sum();
        let record_lookups = lookups_after.saturating_sub(lookups_before);
        let metrics = instrumented.then(|| {
            let delta = self.recorder.snapshot().since(&tel_before);
            let sim_io_micros = self.device.cost_model().charge_telemetry(&delta).as_micros();
            MetricsReport {
                queries: queries.len(),
                delta,
                traces: Vec::new(),
                engine_micros: engine_time.as_micros() as u64,
                sim_io_micros,
            }
        });
        let report = QuerySetReport {
            queries: queries.len(),
            engine_time,
            sys_io_time: self.device.cost_model().charge(&io),
            io,
            record_lookups,
            buffer_stats: None,
            metrics,
        };
        let rankings = rankings.into_iter().map(|r| self.shards[0].to_ranked_results(r)).collect();
        Ok((report, rankings))
    }

    /// Decomposes into per-shard worker-pool parts for the query service
    /// (Mneme backends only).
    pub(crate) fn into_parts(self) -> Result<(ShardSpec, Vec<EngineParts>, Recorder, Arc<Device>)> {
        let ShardedEngine { spec, shards, recorder, device } = self;
        let parts = shards.into_iter().map(Engine::into_parts).collect::<Result<Vec<_>>>()?;
        Ok((spec, parts, recorder, device))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_spec_parses_and_round_trips() {
        let spec: ShardSpec = "4x8".parse().unwrap();
        assert_eq!(spec, ShardSpec { shards: 4, workers: 8 });
        assert_eq!(spec.to_string(), "4x8");
        assert_eq!(spec.to_string().parse::<ShardSpec>().unwrap(), spec);
        // Bare shard count: workers default to the shard count.
        assert_eq!("3".parse::<ShardSpec>().unwrap(), ShardSpec { shards: 3, workers: 3 });
        // Uppercase separator and surrounding whitespace are tolerated.
        assert_eq!("2X5".parse::<ShardSpec>().unwrap(), ShardSpec { shards: 2, workers: 5 });
        assert_eq!(" 2 x 5 ".parse::<ShardSpec>().unwrap(), ShardSpec::new(2, 5));
        assert_eq!(ShardSpec::default(), ShardSpec { shards: 1, workers: 1 });
        assert_eq!(ShardSpec::new(0, 0), ShardSpec { shards: 1, workers: 1 });
        for bad in ["", "0", "0x2", "2x0", "x", "2x", "x2", "axb", "-1x2"] {
            let err = bad.parse::<ShardSpec>().unwrap_err();
            assert!(
                matches!(err, CoreError::UnknownName { kind: "shard spec", .. }),
                "{bad:?} -> {err}"
            );
        }
    }
}

//! The sharded query service: a bounded admission queue in front of a
//! fixed worker pool.
//!
//! [`QueryService`] owns the shards of a [`ShardedEngine`] (decomposed
//! into their shared-view parts) and serves typed
//! [`QueryRequest`]s from a bounded queue:
//!
//! * **Admission control** — the queue has a fixed capacity; a request
//!   arriving at a full queue is rejected immediately with
//!   [`CoreError::Overloaded`] instead of queueing without bound
//!   (reject-when-full load shedding).
//! * **Deadlines** — a request's budget is measured from submission and
//!   checked at phase boundaries: at dequeue (an already-expired request
//!   is dropped without evaluation), between shards, and after the merge.
//!   An expired budget yields [`CoreError::DeadlineExceeded`] carrying
//!   the hits computed so far.
//! * **Fixed worker pool** — `workers` threads (see
//!   [`ShardSpec`]) evaluate queries concurrently against each shard
//!   store's lock-synchronized
//!   [`shared_view`](crate::MnemeInvertedFile::shared_view); Mneme
//!   backends only, like the parallel batch path.
//!
//! Every admission decision is recorded on the shared telemetry
//! recorder (`queue_enqueued` / `queue_rejected` / `queue_expired`), and
//! a tracing recorder gets one `queue_wait` slice per dequeued request.

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use poir_inquery::query::daat;
use poir_inquery::{BeliefParams, Dictionary, DocTable, Evaluator, ScoredDoc, StopWords};
use poir_telemetry::trace::tag_query;
use poir_telemetry::{Event, Phase, QueryTrace, Recorder, TraceOp};

use crate::engine::{ExecMode, QueryRequest, QueryResponse, RankedResult, ShardTiming};
use crate::error::{CoreError, Result};
use crate::mneme_store::MnemeInvertedFile;
use crate::shard::{ShardSpec, ShardedEngine};

/// One shard's read path, shared by every worker.
struct ShardRuntime {
    dict: Dictionary,
    docs: DocTable,
    store: MnemeInvertedFile,
}

/// State shared between the service handle and its workers.
struct ServiceShared {
    shards: Vec<ShardRuntime>,
    stop: StopWords,
    params: BeliefParams,
    recorder: Recorder,
    capacity: usize,
    /// Requests admitted but not yet dequeued.
    depth: AtomicUsize,
}

/// One admitted request in flight through the worker pool.
struct Job {
    request: QueryRequest,
    submitted: Instant,
    seq: u32,
    reply: mpsc::Sender<Result<QueryResponse>>,
}

/// Handle to a submitted request; redeem with [`PendingQuery::wait`].
#[derive(Debug)]
pub struct PendingQuery {
    seq: u32,
    rx: Receiver<Result<QueryResponse>>,
}

impl PendingQuery {
    /// Blocks until the worker pool finishes this request.
    pub fn wait(self) -> Result<QueryResponse> {
        self.rx.recv().unwrap_or(Err(CoreError::ServiceStopped))
    }

    /// The service-assigned sequence number (the `queue_wait` trace
    /// object).
    pub fn sequence(&self) -> u32 {
        self.seq
    }
}

/// A running query service; see the module docs.
pub struct QueryService {
    shared: Arc<ServiceShared>,
    spec: ShardSpec,
    seq: AtomicU32,
    /// `None` once [`QueryService::shutdown`] has run; dropping the
    /// sender is what lets blocked workers drain and exit.
    tx: Mutex<Option<SyncSender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for QueryService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryService")
            .field("spec", &self.spec)
            .field("capacity", &self.shared.capacity)
            .field("queue_depth", &self.queue_depth())
            .finish_non_exhaustive()
    }
}

impl QueryService {
    /// Starts the worker pool over `engine`'s shards with a bounded
    /// admission queue of `queue_capacity` requests (min 1). Mneme
    /// backends only — workers fetch through each shard store's
    /// [`shared_view`](crate::MnemeInvertedFile::shared_view).
    pub fn start(engine: ShardedEngine, queue_capacity: usize) -> Result<QueryService> {
        let capacity = queue_capacity.max(1);
        let (spec, parts, recorder, _device) = engine.into_parts()?;
        let mut shards = Vec::with_capacity(parts.len());
        let mut stop_params = None;
        for p in parts {
            // Stop words and belief parameters are builder-wide; keep the
            // first shard's copy rather than one clone per shard.
            if stop_params.is_none() {
                stop_params = Some((p.stop, p.params));
            }
            shards.push(ShardRuntime { dict: p.dict, docs: p.docs, store: p.store });
        }
        let (stop, params) = stop_params.expect("a sharded engine has at least one shard");
        let shared = Arc::new(ServiceShared {
            shards,
            stop,
            params,
            recorder,
            capacity,
            depth: AtomicUsize::new(0),
        });
        let (tx, rx) = mpsc::sync_channel::<Job>(capacity);
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..spec.workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || Self::worker_loop(&shared, &rx))
            })
            .collect();
        Ok(QueryService {
            shared,
            spec,
            seq: AtomicU32::new(0),
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(workers),
        })
    }

    /// The sharding layout the service runs.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// The admission queue's capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Requests currently admitted but not yet picked up by a worker.
    pub fn queue_depth(&self) -> usize {
        self.shared.depth.load(Ordering::Relaxed)
    }

    /// The shared telemetry recorder (queue counters land here).
    pub fn recorder(&self) -> &Recorder {
        &self.shared.recorder
    }

    /// Submits a request without blocking. A full queue rejects with
    /// [`CoreError::Overloaded`]; a stopped service with
    /// [`CoreError::ServiceStopped`].
    pub fn try_submit(&self, request: QueryRequest) -> Result<PendingQuery> {
        let tx = self.tx.lock().expect("service sender mutex poisoned");
        let Some(tx) = tx.as_ref() else {
            return Err(CoreError::ServiceStopped);
        };
        let (reply, rx) = mpsc::channel();
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let job = Job { request, submitted: Instant::now(), seq, reply };
        match tx.try_send(job) {
            Ok(()) => {
                self.shared.depth.fetch_add(1, Ordering::Relaxed);
                self.shared.recorder.incr(Event::QueueEnqueued);
                Ok(PendingQuery { seq, rx })
            }
            Err(TrySendError::Full(_)) => {
                self.shared.recorder.incr(Event::QueueRejected);
                Err(CoreError::Overloaded { capacity: self.shared.capacity })
            }
            Err(TrySendError::Disconnected(_)) => Err(CoreError::ServiceStopped),
        }
    }

    /// Submits and waits: [`QueryService::try_submit`] then
    /// [`PendingQuery::wait`].
    pub fn query(&self, request: QueryRequest) -> Result<QueryResponse> {
        self.try_submit(request)?.wait()
    }

    /// Stops accepting requests, lets the workers drain the queue, and
    /// joins them. Idempotent and safe to call concurrently; requests
    /// already admitted still complete and their [`PendingQuery`]s
    /// resolve.
    pub fn shutdown(&self) {
        // Dropping the sender unblocks every worker's `recv` once the
        // queue is empty — the drain-then-exit protocol.
        self.tx.lock().expect("service sender mutex poisoned").take();
        let workers: Vec<JoinHandle<()>> =
            self.workers.lock().expect("service worker mutex poisoned").drain(..).collect();
        for w in workers {
            let _ = w.join();
        }
    }

    fn worker_loop(shared: &ServiceShared, rx: &Mutex<Receiver<Job>>) {
        loop {
            // Hold the receiver lock only while dequeueing; processing
            // happens with the lock released so the pool stays concurrent.
            let job = {
                let guard = rx.lock().expect("service receiver mutex poisoned");
                match guard.recv() {
                    Ok(job) => job,
                    Err(_) => return,
                }
            };
            shared.depth.fetch_sub(1, Ordering::Relaxed);
            let _tag = tag_query(job.seq);
            let queue_wait = job.submitted.elapsed();
            let queue_micros = queue_wait.as_micros() as u64;
            shared.recorder.trace(TraceOp::QueueWait, job.seq as u64, None, 0, queue_wait);
            // An already-expired request is dropped without evaluation —
            // its worker time would be pure waste under overload.
            if let Some(budget) = job.request.deadline {
                if queue_wait > budget {
                    shared.recorder.incr(Event::QueueExpired);
                    let _ = job.reply.send(Err(CoreError::DeadlineExceeded {
                        budget,
                        elapsed: queue_wait,
                        partial: Vec::new(),
                    }));
                    continue;
                }
            }
            let result = Self::evaluate(shared, &job).map(|mut resp| {
                resp.queue_micros = queue_micros;
                resp
            });
            // A dropped PendingQuery just discards the response.
            let _ = job.reply.send(result);
        }
    }

    /// Evaluates one request across the shards — the worker-pool analogue
    /// of [`ShardedEngine::execute`], fetching through shared views.
    fn evaluate(shared: &ServiceShared, job: &Job) -> Result<QueryResponse> {
        let req = &job.request;
        let sharded = shared.shards.len() > 1;
        // Sharded evaluation must be document-at-a-time: term-at-a-time
        // beliefs read shard-local record statistics and would silently
        // diverge from the unsharded ranking (see `ShardedEngine`).
        let mode = match (req.mode, sharded) {
            (None, _) => ExecMode::DaatPruned,
            (Some(m @ (ExecMode::Daat | ExecMode::DaatPruned)), _) => m,
            (Some(m), false) => m,
            (Some(_), true) => {
                return Err(CoreError::Unsupported("term-at-a-time execution on a sharded engine"))
            }
        };
        let mut phase_micros = [0u64; Phase::COUNT];
        let t = Instant::now();
        let parsed = poir_inquery::parse_query(&req.text, &shared.stop)?;
        phase_micros[Phase::Parse as usize] = t.elapsed().as_micros() as u64;
        let daat_bag = match mode {
            ExecMode::Daat | ExecMode::DaatPruned => daat::flatten_bag(&parsed),
            ExecMode::Serial | ExecMode::BatchedPrefetch => None,
        };
        let (merged, timings) = if let Some(bag) = daat_bag {
            let mut per_shard: Vec<Vec<ScoredDoc>> = Vec::with_capacity(shared.shards.len());
            let mut timings = Vec::with_capacity(shared.shards.len());
            for (i, shard) in shared.shards.iter().enumerate() {
                // Shard 0 always completes, so a deadline hit still
                // returns a deterministic non-empty partial merge.
                if i > 0 {
                    if let Some(budget) = req.deadline {
                        let elapsed = job.submitted.elapsed();
                        if elapsed > budget {
                            let merged = daat::merge_topk(per_shard, req.k);
                            let partial = to_ranked(&shared.shards[0].docs, merged);
                            return Err(CoreError::DeadlineExceeded { budget, elapsed, partial });
                        }
                    }
                }
                let t = Instant::now();
                let mut view = shard.store.shared_view();
                let scored = if mode == ExecMode::DaatPruned {
                    daat::rank_daat_pruned(
                        &mut view,
                        &shard.dict,
                        &shard.docs,
                        shared.params,
                        &bag,
                        req.k,
                    )?
                    .0
                } else {
                    daat::rank_daat(
                        &mut view,
                        &shard.dict,
                        &shard.docs,
                        shared.params,
                        &bag,
                        req.k,
                    )?
                };
                timings.push(ShardTiming {
                    shard: i,
                    micros: t.elapsed().as_micros() as u64,
                    hits: scored.len(),
                });
                per_shard.push(scored);
            }
            (daat::merge_topk(per_shard, req.k), timings)
        } else if sharded {
            return Err(CoreError::Unsupported("structured queries on a sharded engine"));
        } else {
            // Single shard: structured queries (and term-at-a-time mode
            // overrides) run through the Evaluator over the shared view,
            // where record statistics equal the global ones.
            let shard = &shared.shards[0];
            let t = Instant::now();
            let mut view = shard.store.shared_view();
            let mut ev =
                Evaluator::new(&mut view, &shard.dict, &shard.docs, &shared.stop, shared.params);
            if mode == ExecMode::BatchedPrefetch {
                ev.prefetch(&parsed);
            }
            let scored = ev.rank(&parsed, req.k)?;
            let timing = ShardTiming {
                shard: 0,
                micros: t.elapsed().as_micros() as u64,
                hits: scored.len(),
            };
            (scored, vec![timing])
        };
        phase_micros[Phase::Evaluate as usize] = timings.iter().map(|t| t.micros).sum();
        if let Some(budget) = req.deadline {
            let elapsed = job.submitted.elapsed();
            if elapsed > budget {
                let partial = to_ranked(&shared.shards[0].docs, merged);
                return Err(CoreError::DeadlineExceeded { budget, elapsed, partial });
            }
        }
        let hits = to_ranked(&shared.shards[0].docs, merged);
        // Event counters on a shared-recorder service are set-level, not
        // per-query (see `QueryResponse::trace`); the per-request trace
        // carries the phase timings only.
        let trace = QueryTrace {
            query: job.seq as usize,
            results: hits.len(),
            phase_micros,
            events: [0; Event::COUNT],
        };
        Ok(QueryResponse { hits, shards: timings, trace, queue_micros: 0 })
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Names every scored document from the (collection-wide) document table.
fn to_ranked(docs: &DocTable, scored: Vec<ScoredDoc>) -> Vec<RankedResult> {
    scored
        .into_iter()
        .map(|s| RankedResult { doc: s.doc, name: docs.info(s.doc).name.clone(), score: s.score })
        .collect()
}

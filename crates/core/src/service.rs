//! The sharded query service: a bounded admission queue in front of a
//! fixed worker pool.
//!
//! [`QueryService`] owns the shards of a [`ShardedEngine`] (decomposed
//! into their shared-view parts) and serves typed
//! [`QueryRequest`]s from a bounded queue:
//!
//! * **Admission control** — the queue has a fixed capacity; a request
//!   arriving at a full queue is rejected immediately with
//!   [`CoreError::Overloaded`] instead of queueing without bound
//!   (reject-when-full load shedding).
//! * **Deadlines** — a request's budget is measured from submission and
//!   checked at phase boundaries: at dequeue (an already-expired request
//!   is dropped without evaluation), between shards, and after the merge.
//!   An expired budget yields [`CoreError::DeadlineExceeded`] carrying
//!   the hits computed so far.
//! * **Fixed worker pool** — `workers` threads (see
//!   [`ShardSpec`]) evaluate queries concurrently against each shard
//!   store's lock-synchronized
//!   [`shared_view`](crate::MnemeInvertedFile::shared_view); Mneme
//!   backends only, like the parallel batch path.
//!
//! Every admission decision is recorded on the shared telemetry
//! recorder (`queue_enqueued` / `queue_rejected` / `queue_expired`), and
//! a tracing recorder gets one `queue_wait` slice per dequeued request.
//!
//! On top of the counters sits the serving observatory (PR 8): a
//! [`MetricsRegistry`] of windowed counters/gauges/histograms (queue
//! depth, admitted/rejected/expired, in-flight workers, per-shard eval,
//! merge, deadline slack), a [`BreakdownRing`] feeding p99 tail-latency
//! attribution, a [`FlightRecorder`] retaining the N slowest requests
//! (with their trace slices when tracing is on), and a
//! [`QueryService::stats`] snapshot — optionally sampled periodically to
//! a JSONL file (plus a Prometheus text exposition on shutdown) by a
//! background thread configured through [`ServiceConfig`].

use std::fs::OpenOptions;
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use poir_inquery::query::daat;
use poir_inquery::{
    BeliefParams, BlockCacheStats, Dictionary, DocTable, Evaluator, InvertedFileStore, ScoredDoc,
    StopWords,
};
use poir_telemetry::trace::tag_query;
use poir_telemetry::{
    Attribution, BreakdownRing, Counter, Event, FlightRecorder, Gauge, Histogram, LatencyBreakdown,
    LatencySummary, MetricsRegistry, Phase, QueryTrace, Recorder, RegistrySnapshot,
    SlowQueryRecord, SlowShard, TraceOp, WindowRates,
};

use crate::engine::{Degraded, ExecMode, QueryRequest, QueryResponse, RankedResult, ShardTiming};
use crate::error::{CoreError, Result};
use crate::mneme_store::MnemeInvertedFile;
use crate::result_cache::{ResultCache, ResultCacheStats, ResultKey};
use crate::shard::{ShardSpec, ShardedEngine};

/// Bounded-retry policy for transient storage faults during shard
/// evaluation (see [`CoreError::is_transient_fault`]). The backoff is
/// deterministic — `backoff * attempt` — so a chaos run is replayable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries per shard per request beyond the first attempt.
    pub max_retries: u32,
    /// Base backoff; attempt `n` sleeps `backoff * n` before retrying.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 2, backoff: Duration::from_micros(100) }
    }
}

/// Serving-side configuration for [`QueryService::start_with`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Admission queue capacity (min 1; reject-when-full).
    pub queue_capacity: usize,
    /// Bounded retry for transient storage faults during evaluation.
    pub retry: RetryPolicy,
    /// End-to-end microseconds past which a request enters the slow-query
    /// flight recorder.
    pub slow_threshold_micros: u64,
    /// Slowest requests the flight recorder retains.
    pub slow_capacity: usize,
    /// Recent requests the latency-breakdown ring retains (the p99
    /// attribution window).
    pub breakdown_window: usize,
    /// When set, a background sampler appends one stats JSON line per
    /// interval to this file, plus a final line and a Prometheus text
    /// exposition (`<path>.prom`) at shutdown.
    pub stats_out: Option<PathBuf>,
    /// Sampling interval for `stats_out`.
    pub stats_interval: Duration,
    /// Entry capacity of the query-result cache (tier 3 of the cache
    /// hierarchy): repeated requests under an unchanged store epoch are
    /// answered without touching any shard. 0 (the default) disables it.
    pub result_cache_entries: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 32,
            retry: RetryPolicy::default(),
            slow_threshold_micros: 10_000,
            slow_capacity: 32,
            breakdown_window: 4096,
            stats_out: None,
            stats_interval: Duration::from_secs(1),
            result_cache_entries: 0,
        }
    }
}

/// The service's windowed metrics and observability state. Registered
/// once at startup; every handle is lock-free on the hot path.
struct ServiceMetrics {
    registry: MetricsRegistry,
    queue_depth: Gauge,
    in_flight: Gauge,
    admitted: Counter,
    rejected: Counter,
    expired: Counter,
    completed: Counter,
    failed: Counter,
    degraded: Counter,
    shard_retries: Counter,
    worker_panics: Counter,
    result_cache_hits: Counter,
    result_cache_misses: Counter,
    queue_wait: Histogram,
    eval: Vec<Histogram>,
    merge: Histogram,
    request: Histogram,
    deadline_slack: Histogram,
    breakdowns: BreakdownRing,
    flight: FlightRecorder,
}

impl ServiceMetrics {
    fn new(shards: usize, config: &ServiceConfig) -> ServiceMetrics {
        let registry = MetricsRegistry::new();
        ServiceMetrics {
            queue_depth: registry.gauge("queue_depth"),
            in_flight: registry.gauge("in_flight"),
            admitted: registry.counter("admitted"),
            rejected: registry.counter("rejected"),
            expired: registry.counter("expired"),
            completed: registry.counter("completed"),
            failed: registry.counter("failed"),
            degraded: registry.counter("degraded"),
            shard_retries: registry.counter("shard_retries"),
            worker_panics: registry.counter("worker_panics"),
            result_cache_hits: registry.counter("result_cache_hits"),
            result_cache_misses: registry.counter("result_cache_misses"),
            queue_wait: registry.histogram("queue_wait_micros"),
            eval: (0..shards)
                .map(|i| registry.histogram(&format!("shard{i}_eval_micros")))
                .collect(),
            merge: registry.histogram("merge_micros"),
            request: registry.histogram("request_micros"),
            deadline_slack: registry.histogram("deadline_slack_micros"),
            breakdowns: BreakdownRing::new(config.breakdown_window),
            flight: FlightRecorder::new(config.slow_capacity, config.slow_threshold_micros),
            registry,
        }
    }
}

/// One shard's read path, shared by every worker.
struct ShardRuntime {
    dict: Dictionary,
    docs: DocTable,
    store: MnemeInvertedFile,
}

/// Per-shard failure accounting, updated lock-free by the workers.
#[derive(Default)]
struct ShardHealthState {
    /// Requests where this shard failed past the retry budget.
    failures: AtomicU64,
    /// Transient-fault retries attempted against this shard.
    retries: AtomicU64,
    /// Failures since this shard last evaluated cleanly.
    consecutive_failures: AtomicU64,
}

/// One shard's health in a [`ServiceStats`] snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardHealth {
    /// Shard index.
    pub shard: usize,
    /// `false` while the shard's most recent evaluation failed.
    pub healthy: bool,
    /// Lifetime requests where this shard failed past the retry budget.
    pub failures: u64,
    /// Lifetime transient-fault retries against this shard.
    pub retries: u64,
    /// Failures since the shard last evaluated cleanly.
    pub consecutive_failures: u64,
}

impl ShardHealth {
    fn to_json(&self) -> String {
        format!(
            "{{\"shard\": {}, \"healthy\": {}, \"failures\": {}, \"retries\": {}, \
             \"consecutive_failures\": {}}}",
            self.shard, self.healthy, self.failures, self.retries, self.consecutive_failures
        )
    }
}

/// State shared between the service handle and its workers.
struct ServiceShared {
    shards: Vec<ShardRuntime>,
    stop: StopWords,
    params: BeliefParams,
    recorder: Recorder,
    capacity: usize,
    /// Requests admitted but not yet dequeued.
    depth: AtomicUsize,
    /// Per-shard failure accounting, index-aligned with `shards`.
    health: Vec<ShardHealthState>,
    /// Tier-3 query-result cache (None when disabled by configuration).
    result_cache: Option<ResultCache>,
    metrics: ServiceMetrics,
    config: ServiceConfig,
    started: Instant,
}

/// One admitted request in flight through the worker pool.
struct Job {
    request: QueryRequest,
    submitted: Instant,
    seq: u32,
    reply: mpsc::Sender<Result<QueryResponse>>,
}

/// Handle to a submitted request; redeem with [`PendingQuery::wait`].
#[derive(Debug)]
pub struct PendingQuery {
    seq: u32,
    rx: Receiver<Result<QueryResponse>>,
}

impl PendingQuery {
    /// Blocks until the worker pool finishes this request.
    pub fn wait(self) -> Result<QueryResponse> {
        self.rx.recv().unwrap_or(Err(CoreError::ServiceStopped))
    }

    /// The service-assigned sequence number (the `queue_wait` trace
    /// object).
    pub fn sequence(&self) -> u32 {
        self.seq
    }
}

/// A running query service; see the module docs.
pub struct QueryService {
    shared: Arc<ServiceShared>,
    spec: ShardSpec,
    seq: AtomicU32,
    /// `None` once [`QueryService::shutdown`] has run; dropping the
    /// sender is what lets blocked workers drain and exit.
    tx: Mutex<Option<SyncSender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// The stats sampler thread (when `stats_out` is configured);
    /// dropping the sender tells it to write the final snapshot and exit.
    sampler: Mutex<Option<(mpsc::Sender<()>, JoinHandle<()>)>>,
}

impl std::fmt::Debug for QueryService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryService")
            .field("spec", &self.spec)
            .field("capacity", &self.shared.capacity)
            .field("queue_depth", &self.queue_depth())
            .finish_non_exhaustive()
    }
}

impl QueryService {
    /// Starts the worker pool over `engine`'s shards with a bounded
    /// admission queue of `queue_capacity` requests (min 1). Mneme
    /// backends only — workers fetch through each shard store's
    /// [`shared_view`](crate::MnemeInvertedFile::shared_view).
    pub fn start(engine: ShardedEngine, queue_capacity: usize) -> Result<QueryService> {
        Self::start_with(engine, ServiceConfig { queue_capacity, ..ServiceConfig::default() })
    }

    /// [`QueryService::start`] with the full serving configuration:
    /// admission capacity plus the observability knobs (slow-query
    /// threshold and capacity, breakdown window, stats sampling).
    pub fn start_with(engine: ShardedEngine, config: ServiceConfig) -> Result<QueryService> {
        let capacity = config.queue_capacity.max(1);
        let (spec, parts, recorder, _device) = engine.into_parts()?;
        let mut shards = Vec::with_capacity(parts.len());
        let mut stop_params = None;
        for p in parts {
            // Stop words and belief parameters are builder-wide; keep the
            // first shard's copy rather than one clone per shard.
            if stop_params.is_none() {
                stop_params = Some((p.stop, p.params));
            }
            shards.push(ShardRuntime { dict: p.dict, docs: p.docs, store: p.store });
        }
        let (stop, params) = stop_params.expect("a sharded engine has at least one shard");
        let metrics = ServiceMetrics::new(shards.len(), &config);
        let health = (0..shards.len()).map(|_| ShardHealthState::default()).collect();
        let result_cache = (config.result_cache_entries > 0)
            .then(|| ResultCache::new(config.result_cache_entries));
        let shared = Arc::new(ServiceShared {
            shards,
            stop,
            params,
            recorder,
            capacity,
            depth: AtomicUsize::new(0),
            health,
            result_cache,
            metrics,
            config,
            started: Instant::now(),
        });
        let (tx, rx) = mpsc::sync_channel::<Job>(capacity);
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..spec.workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || Self::worker_loop(&shared, &rx))
            })
            .collect();
        let sampler = shared.config.stats_out.clone().map(|path| {
            let shared = Arc::clone(&shared);
            let (stop_tx, stop_rx) = mpsc::channel::<()>();
            let handle =
                std::thread::spawn(move || Self::sampler_loop(&shared, spec, &path, &stop_rx));
            (stop_tx, handle)
        });
        Ok(QueryService {
            shared,
            spec,
            seq: AtomicU32::new(0),
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(workers),
            sampler: Mutex::new(sampler),
        })
    }

    /// Appends one stats snapshot per interval to `path`; on shutdown
    /// writes a final snapshot line plus the Prometheus text exposition
    /// to `<path>.prom`. Write errors are deliberately swallowed — the
    /// observer must never take down the server.
    fn sampler_loop(
        shared: &Arc<ServiceShared>,
        spec: ShardSpec,
        path: &std::path::Path,
        stop_rx: &Receiver<()>,
    ) {
        let append = |line: &str| {
            if let Ok(mut f) = OpenOptions::new().create(true).append(true).open(path) {
                let _ = writeln!(f, "{line}");
            }
        };
        while let Err(mpsc::RecvTimeoutError::Timeout) =
            stop_rx.recv_timeout(shared.config.stats_interval)
        {
            append(&stats_of(shared, spec).to_json());
        }
        // Final snapshot: workers are already joined at shutdown, so this
        // line sees the service's final counters even if no interval
        // elapsed during a short run.
        let stats = stats_of(shared, spec);
        append(&stats.to_json());
        let mut prom = path.as_os_str().to_os_string();
        prom.push(".prom");
        let _ = std::fs::write(prom, stats.prometheus_text());
    }

    /// The sharding layout the service runs.
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// The admission queue's capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Requests currently admitted but not yet picked up by a worker.
    pub fn queue_depth(&self) -> usize {
        self.shared.depth.load(Ordering::Relaxed)
    }

    /// The shared telemetry recorder (queue counters land here).
    pub fn recorder(&self) -> &Recorder {
        &self.shared.recorder
    }

    /// The serving configuration the service was started with.
    pub fn config(&self) -> &ServiceConfig {
        &self.shared.config
    }

    /// Typed snapshot of the service's own metrics: lifetime counters,
    /// windowed rates, exact latency percentiles over the breakdown
    /// window, p99 attribution, and slow-query flight-recorder state.
    pub fn stats(&self) -> ServiceStats {
        stats_of(&self.shared, self.spec)
    }

    /// Counters from the query-result cache (`None` when
    /// [`ServiceConfig::result_cache_entries`] is 0).
    pub fn result_cache_stats(&self) -> Option<ResultCacheStats> {
        self.shared.result_cache.as_ref().map(|c| c.stats())
    }

    /// Counters from the decoded-block cache, when the shard stores carry
    /// one (a single instance shared across shards by the builder).
    pub fn block_cache_stats(&self) -> Option<BlockCacheStats> {
        self.shared.shards.iter().find_map(|s| s.store.block_cache().map(|c| c.stats()))
    }

    /// Invalidates the epoch-keyed serving caches (query results and
    /// decoded blocks) by bumping every shard store's mutation epoch —
    /// the operational hook for out-of-band index updates.
    pub fn invalidate_caches(&self) {
        for s in &self.shared.shards {
            s.store.bump_epoch();
        }
    }

    /// The flight recorder's retained slow queries, slowest first.
    pub fn slow_queries(&self) -> Vec<SlowQueryRecord> {
        self.shared.metrics.flight.snapshot()
    }

    /// The retained slow queries as JSONL, one record per line.
    pub fn slow_queries_jsonl(&self) -> String {
        self.shared.metrics.flight.dump_jsonl()
    }

    /// Submits a request without blocking. A full queue rejects with
    /// [`CoreError::Overloaded`]; a stopped service with
    /// [`CoreError::ServiceStopped`].
    pub fn try_submit(&self, request: QueryRequest) -> Result<PendingQuery> {
        let tx = self.tx.lock().expect("service sender mutex poisoned");
        let Some(tx) = tx.as_ref() else {
            return Err(CoreError::ServiceStopped);
        };
        let (reply, rx) = mpsc::channel();
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let job = Job { request, submitted: Instant::now(), seq, reply };
        match tx.try_send(job) {
            Ok(()) => {
                self.shared.depth.fetch_add(1, Ordering::Relaxed);
                self.shared.recorder.incr(Event::QueueEnqueued);
                self.shared.metrics.queue_depth.inc();
                self.shared.metrics.admitted.inc();
                Ok(PendingQuery { seq, rx })
            }
            Err(TrySendError::Full(_)) => {
                self.shared.recorder.incr(Event::QueueRejected);
                self.shared.metrics.rejected.inc();
                Err(CoreError::Overloaded { capacity: self.shared.capacity })
            }
            Err(TrySendError::Disconnected(_)) => Err(CoreError::ServiceStopped),
        }
    }

    /// Submits and waits: [`QueryService::try_submit`] then
    /// [`PendingQuery::wait`].
    pub fn query(&self, request: QueryRequest) -> Result<QueryResponse> {
        self.try_submit(request)?.wait()
    }

    /// Stops accepting requests, lets the workers drain the queue, and
    /// joins them. Idempotent and safe to call concurrently; requests
    /// already admitted still complete and their [`PendingQuery`]s
    /// resolve.
    pub fn shutdown(&self) {
        // Dropping the sender unblocks every worker's `recv` once the
        // queue is empty — the drain-then-exit protocol.
        self.tx.lock().expect("service sender mutex poisoned").take();
        let workers: Vec<JoinHandle<()>> =
            self.workers.lock().expect("service worker mutex poisoned").drain(..).collect();
        for w in workers {
            let _ = w.join();
        }
        // Workers are drained, so the sampler's final snapshot sees the
        // service's final counters.
        if let Some((stop_tx, handle)) =
            self.sampler.lock().expect("service sampler mutex poisoned").take()
        {
            drop(stop_tx);
            let _ = handle.join();
        }
    }

    fn worker_loop(shared: &ServiceShared, rx: &Mutex<Receiver<Job>>) {
        loop {
            // Hold the receiver lock only while dequeueing; processing
            // happens with the lock released so the pool stays concurrent.
            let job = {
                let guard = rx.lock().expect("service receiver mutex poisoned");
                match guard.recv() {
                    Ok(job) => job,
                    Err(_) => return,
                }
            };
            shared.depth.fetch_sub(1, Ordering::Relaxed);
            shared.metrics.queue_depth.dec();
            // The stable query id joins trace records, the latency
            // breakdown, and the slow-query log; the service sequence
            // number is the fallback when the caller didn't pick one.
            let qid = job.request.id.unwrap_or(job.seq);
            let _tag = tag_query(qid);
            let queue_wait = job.submitted.elapsed();
            let queue_micros = queue_wait.as_micros() as u64;
            shared.recorder.trace(TraceOp::QueueWait, qid as u64, None, 0, queue_wait);
            shared.metrics.queue_wait.record(queue_micros);
            // An already-expired request is dropped without evaluation —
            // its worker time would be pure waste under overload.
            if let Some(budget) = job.request.deadline {
                if queue_wait > budget {
                    shared.recorder.incr(Event::QueueExpired);
                    shared.metrics.expired.inc();
                    let _ = job.reply.send(Err(CoreError::DeadlineExceeded {
                        budget,
                        elapsed: queue_wait,
                        partial: Vec::new(),
                    }));
                    continue;
                }
            }
            // Tier-3 lookup: a repeated request under an unchanged store
            // epoch is answered from the result cache without touching a
            // single shard. The epoch is read once, before evaluation, so
            // a concurrent invalidation can only make the entry we store
            // unreachable — never serve a stale one.
            let epoch = store_epoch(shared);
            let cache_key = shared.result_cache.as_ref().and_then(|_| {
                Self::resolved_mode(shared, &job.request).map(|mode| ResultKey {
                    query: job.request.text.trim().to_string(),
                    k: job.request.k,
                    mode: mode as u8,
                    shards: shared.shards.len(),
                })
            });
            if let (Some(cache), Some(key)) = (shared.result_cache.as_ref(), cache_key.as_ref()) {
                if let Some(mut resp) = cache.get(key, epoch) {
                    // The ranking is the stored evaluation's, bit for bit;
                    // the timing fields describe *this* request.
                    resp.queue_micros = queue_micros;
                    resp.breakdown = LatencyBreakdown::from_parts(
                        qid,
                        queue_micros,
                        0,
                        0,
                        job.submitted.elapsed().as_micros() as u64,
                    );
                    shared.metrics.result_cache_hits.inc();
                    shared.metrics.completed.inc();
                    shared.metrics.request.record(resp.breakdown.total_micros());
                    shared.metrics.breakdowns.push(resp.breakdown);
                    shared.recorder.incr(Event::ResultCacheHit);
                    shared.recorder.trace(TraceOp::ResultCache, 1, None, 0, Duration::ZERO);
                    let _ = job.reply.send(Ok(resp));
                    continue;
                }
                shared.metrics.result_cache_misses.inc();
                shared.recorder.incr(Event::ResultCacheMiss);
                shared.recorder.trace(TraceOp::ResultCache, 0, None, 1, Duration::ZERO);
            }
            shared.metrics.in_flight.inc();
            // A panicking evaluation must not take the worker (and with
            // it a slice of pool capacity) down: catch it, surface a
            // typed error to the caller, and keep draining the queue.
            // Unwind safety: evaluation only reads the shared state, and
            // the parking_lot locks inside the mneme store don't poison.
            let result =
                catch_unwind(AssertUnwindSafe(|| Self::evaluate(shared, &job, queue_micros)))
                    .unwrap_or_else(|payload| {
                        shared.metrics.worker_panics.inc();
                        let message = payload
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".to_string());
                        Err(CoreError::WorkerPanicked { message })
                    });
            shared.metrics.in_flight.dec();
            match &result {
                Ok(resp) => {
                    Self::record_completion(shared, &job, resp);
                    // Only clean, complete answers are cacheable: a
                    // degraded response would pin its missing shards into
                    // every future hit.
                    if resp.degraded.is_none() {
                        if let (Some(cache), Some(key)) = (shared.result_cache.as_ref(), cache_key)
                        {
                            cache.insert(key, epoch, resp.clone());
                        }
                    }
                }
                Err(CoreError::DeadlineExceeded { .. }) => shared.metrics.expired.inc(),
                Err(_) => {
                    shared.metrics.failed.inc();
                }
            }
            // A dropped PendingQuery just discards the response.
            let _ = job.reply.send(result);
        }
    }

    /// Folds one completed request into the windowed registry, the
    /// breakdown ring, and (past the threshold) the flight recorder.
    fn record_completion(shared: &ServiceShared, job: &Job, resp: &QueryResponse) {
        let m = &shared.metrics;
        m.completed.inc();
        if resp.degraded.is_some() {
            m.degraded.inc();
            shared.recorder.incr(Event::DegradedResponse);
        }
        for t in &resp.shards {
            if let Some(h) = m.eval.get(t.shard) {
                h.record(t.micros);
            }
        }
        m.merge.record(resp.breakdown.merge_micros);
        let total = resp.breakdown.total_micros();
        m.request.record(total);
        if let Some(budget) = job.request.deadline {
            m.deadline_slack.record((budget.as_micros() as u64).saturating_sub(total));
        }
        m.breakdowns.push(resp.breakdown);
        if total >= m.flight.threshold_micros() {
            let trace = shared
                .recorder
                .tracer()
                .map(|t| t.records_for_query(resp.breakdown.query_id))
                .unwrap_or_default();
            m.flight.offer(SlowQueryRecord {
                query_id: resp.breakdown.query_id,
                seq: job.seq,
                mode: resp.mode.to_string(),
                k: job.request.k,
                breakdown: resp.breakdown,
                shards: resp
                    .shards
                    .iter()
                    .map(|t| SlowShard { shard: t.shard, micros: t.micros, hits: t.hits })
                    .collect(),
                trace,
            });
        }
    }

    /// One shard evaluation attempt (the retryable unit): document-at-a-
    /// time ranking through the shard store's shared view.
    fn rank_shard(
        shard: &ShardRuntime,
        params: BeliefParams,
        bag: &[(f64, String)],
        mode: ExecMode,
        k: usize,
    ) -> Result<Vec<ScoredDoc>> {
        let mut view = shard.store.shared_view();
        if mode == ExecMode::DaatPruned {
            Ok(daat::rank_daat_pruned(&mut view, &shard.dict, &shard.docs, params, bag, k)?.0)
        } else {
            Ok(daat::rank_daat(&mut view, &shard.dict, &shard.docs, params, bag, k)?)
        }
    }

    /// The execution mode [`QueryService::evaluate`] will resolve for this
    /// request, or `None` when resolution is rejected (term-at-a-time on a
    /// sharded service). Sharded evaluation must be document-at-a-time:
    /// term-at-a-time beliefs read shard-local record statistics and would
    /// silently diverge from the unsharded ranking (see [`ShardedEngine`]).
    fn resolved_mode(shared: &ServiceShared, req: &QueryRequest) -> Option<ExecMode> {
        let sharded = shared.shards.len() > 1;
        match (req.mode, sharded) {
            (None, _) => Some(ExecMode::DaatPruned),
            (Some(m @ (ExecMode::Daat | ExecMode::DaatPruned)), _) => Some(m),
            (Some(m), false) => Some(m),
            (Some(_), true) => None,
        }
    }

    /// Evaluates one request across the shards — the worker-pool analogue
    /// of [`ShardedEngine::execute`], fetching through shared views.
    fn evaluate(shared: &ServiceShared, job: &Job, queue_micros: u64) -> Result<QueryResponse> {
        let req = &job.request;
        let qid = req.id.unwrap_or(job.seq);
        let sharded = shared.shards.len() > 1;
        let Some(mode) = Self::resolved_mode(shared, req) else {
            return Err(CoreError::Unsupported("term-at-a-time execution on a sharded engine"));
        };
        let mut phase_micros = [0u64; Phase::COUNT];
        let t = Instant::now();
        let parsed = poir_inquery::parse_query(&req.text, &shared.stop)?;
        phase_micros[Phase::Parse as usize] = t.elapsed().as_micros() as u64;
        let daat_bag = match mode {
            ExecMode::Daat | ExecMode::DaatPruned => daat::flatten_bag(&parsed),
            ExecMode::Serial | ExecMode::BatchedPrefetch => None,
        };
        let mut missing_shards: Vec<usize> = Vec::new();
        let mut retries_total: u32 = 0;
        let (merged, timings, merge_micros) = if let Some(bag) = daat_bag {
            let mut per_shard: Vec<Vec<ScoredDoc>> = Vec::with_capacity(shared.shards.len());
            let mut timings = Vec::with_capacity(shared.shards.len());
            let mut last_err: Option<CoreError> = None;
            let retry = shared.config.retry;
            for (i, shard) in shared.shards.iter().enumerate() {
                // Shard 0 always completes, so a deadline hit still
                // returns a deterministic non-empty partial merge.
                if i > 0 {
                    if let Some(budget) = req.deadline {
                        let elapsed = job.submitted.elapsed();
                        if elapsed > budget {
                            let merged = daat::merge_topk(per_shard, req.k);
                            let partial = to_ranked(&shared.shards[0].docs, merged);
                            return Err(CoreError::DeadlineExceeded { budget, elapsed, partial });
                        }
                    }
                }
                let t = Instant::now();
                // Bounded retry with deterministic backoff for transient
                // storage faults; a shard that fails past the budget is
                // dropped from the merge instead of failing the request.
                let mut attempt: u32 = 0;
                let outcome = loop {
                    let run = Self::rank_shard(shard, shared.params, &bag, mode, req.k);
                    match run {
                        Ok(scored) => break Ok(scored),
                        Err(e) if attempt < retry.max_retries && e.is_transient_fault() => {
                            attempt += 1;
                            retries_total += 1;
                            shared.health[i].retries.fetch_add(1, Ordering::Relaxed);
                            shared.metrics.shard_retries.inc();
                            shared.recorder.incr(Event::ShardRetry);
                            std::thread::sleep(retry.backoff * attempt);
                        }
                        Err(e) => break Err(e),
                    }
                };
                match outcome {
                    Ok(scored) => {
                        shared.health[i].consecutive_failures.store(0, Ordering::Relaxed);
                        timings.push(ShardTiming {
                            shard: i,
                            micros: t.elapsed().as_micros() as u64,
                            hits: scored.len(),
                        });
                        per_shard.push(scored);
                    }
                    Err(e) => {
                        shared.health[i].failures.fetch_add(1, Ordering::Relaxed);
                        shared.health[i].consecutive_failures.fetch_add(1, Ordering::Relaxed);
                        missing_shards.push(i);
                        last_err = Some(e);
                    }
                }
            }
            if per_shard.is_empty() {
                // Every shard failed: no partial answer to degrade to.
                return Err(
                    last_err.unwrap_or(CoreError::Unsupported("query service with zero shards"))
                );
            }
            let merge_start = Instant::now();
            let merged = daat::merge_topk(per_shard, req.k);
            (merged, timings, merge_start.elapsed().as_micros() as u64)
        } else if sharded {
            return Err(CoreError::Unsupported("structured queries on a sharded engine"));
        } else {
            // Single shard: structured queries (and term-at-a-time mode
            // overrides) run through the Evaluator over the shared view,
            // where record statistics equal the global ones.
            let shard = &shared.shards[0];
            let t = Instant::now();
            let mut view = shard.store.shared_view();
            let mut ev =
                Evaluator::new(&mut view, &shard.dict, &shard.docs, &shared.stop, shared.params);
            if mode == ExecMode::BatchedPrefetch {
                ev.prefetch(&parsed);
            }
            let scored = ev.rank(&parsed, req.k)?;
            let timing = ShardTiming {
                shard: 0,
                micros: t.elapsed().as_micros() as u64,
                hits: scored.len(),
            };
            (scored, vec![timing], 0)
        };
        let eval_micros: u64 = timings.iter().map(|t| t.micros).sum();
        phase_micros[Phase::Evaluate as usize] = eval_micros;
        phase_micros[Phase::Rank as usize] = merge_micros;
        if let Some(budget) = req.deadline {
            let elapsed = job.submitted.elapsed();
            if elapsed > budget {
                let partial = to_ranked(&shared.shards[0].docs, merged);
                return Err(CoreError::DeadlineExceeded { budget, elapsed, partial });
            }
        }
        let hits = to_ranked(&shared.shards[0].docs, merged);
        // Event counters on a shared-recorder service are set-level, not
        // per-query (see `QueryResponse::trace`); the per-request trace
        // carries the phase timings only.
        let trace = QueryTrace {
            query: qid as usize,
            results: hits.len(),
            phase_micros,
            events: [0; Event::COUNT],
        };
        // End-to-end from submission: queue wait + shard evaluation +
        // merge, with everything else (parse, naming, scheduling gaps)
        // in the residual.
        let breakdown = LatencyBreakdown::from_parts(
            qid,
            queue_micros,
            eval_micros,
            merge_micros,
            job.submitted.elapsed().as_micros() as u64,
        );
        let degraded = if missing_shards.is_empty() {
            None
        } else {
            Some(Degraded { missing_shards, retries: retries_total })
        };
        Ok(QueryResponse {
            hits,
            shards: timings,
            trace,
            queue_micros,
            mode,
            breakdown,
            degraded,
            cached: false,
        })
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Sum of the shard stores' combined epochs — changes whenever any shard
/// store mutates (each combined epoch only grows, so the sum is monotone
/// and never revisits a value).
fn store_epoch(shared: &ServiceShared) -> u64 {
    shared.shards.iter().map(|s| InvertedFileStore::store_epoch(&s.store)).sum()
}

/// Names every scored document from the (collection-wide) document table.
fn to_ranked(docs: &DocTable, scored: Vec<ScoredDoc>) -> Vec<RankedResult> {
    scored
        .into_iter()
        .map(|s| RankedResult { doc: s.doc, name: docs.info(s.doc).name.clone(), score: s.score })
        .collect()
}

/// Typed snapshot of a running service's own metrics — the return type
/// of [`QueryService::stats`] and the line format of `--stats-out`.
#[derive(Debug, Clone)]
pub struct ServiceStats {
    /// Seconds since the service started.
    pub uptime_secs: f64,
    /// Shards the service evaluates against.
    pub shards: usize,
    /// Worker threads in the pool.
    pub workers: usize,
    /// Admission queue capacity.
    pub queue_capacity: usize,
    /// Requests admitted but not yet dequeued (instantaneous).
    pub queue_depth: i64,
    /// Requests being evaluated right now (instantaneous).
    pub in_flight: i64,
    /// Lifetime requests admitted.
    pub admitted: u64,
    /// Lifetime requests rejected at admission (queue full).
    pub rejected: u64,
    /// Lifetime requests expired (at dequeue or mid-evaluation).
    pub expired: u64,
    /// Lifetime requests completed successfully.
    pub completed: u64,
    /// Lifetime requests failed with a non-deadline error.
    pub failed: u64,
    /// Lifetime responses that completed with one or more shards missing.
    pub degraded: u64,
    /// Lifetime transient-fault retries across all shards.
    pub shard_retries: u64,
    /// Lifetime worker panics caught (the worker survived each one).
    pub worker_panics: u64,
    /// Per-shard failure accounting, index-aligned with the shards.
    pub shard_health: Vec<ShardHealth>,
    /// Admission rate over the rolling windows.
    pub admitted_rate: WindowRates,
    /// Completion rate over the rolling windows (the server-side QPS).
    pub completed_rate: WindowRates,
    /// Exact end-to-end latency percentiles over the breakdown window.
    pub latency: LatencySummary,
    /// Where the p99 spends its time (`None` before any completion).
    pub attribution: Option<Attribution>,
    /// Flight-recorder admission threshold.
    pub slow_threshold_micros: u64,
    /// Slow queries currently retained by the flight recorder.
    pub slow_retained: usize,
    /// Slow queries ever observed past the threshold.
    pub slow_observed: u64,
    /// Query-result cache counters (`None` when the cache is disabled).
    pub result_cache: Option<ResultCacheStats>,
    /// Decoded-block cache counters (`None` when no cache is attached).
    pub block_cache: Option<BlockCacheStats>,
    /// The shared telemetry recorder's epoch (0 when telemetry is off).
    pub epoch: u64,
    /// Every windowed metric, in registration order.
    pub registry: RegistrySnapshot,
}

impl ServiceStats {
    /// One JSON object on a single line (the `--stats-out` line format;
    /// stable keys, no external deps).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str(&format!(
            "{{\"uptime_secs\": {:.3}, \"shards\": {}, \"workers\": {}, \
             \"queue_capacity\": {}, \"queue_depth\": {}, \"in_flight\": {}, \
             \"admitted\": {}, \"rejected\": {}, \"expired\": {}, \"completed\": {}, \
             \"failed\": {}, \"degraded\": {}, \"shard_retries\": {}, \"worker_panics\": {}",
            self.uptime_secs,
            self.shards,
            self.workers,
            self.queue_capacity,
            self.queue_depth,
            self.in_flight,
            self.admitted,
            self.rejected,
            self.expired,
            self.completed,
            self.failed,
            self.degraded,
            self.shard_retries,
            self.worker_panics
        ));
        let health: Vec<String> = self.shard_health.iter().map(ShardHealth::to_json).collect();
        s.push_str(&format!(", \"shard_health\": [{}]", health.join(", ")));
        let rates = |r: &WindowRates| {
            format!("{{\"s1\": {:.3}, \"s10\": {:.3}, \"s60\": {:.3}}}", r.s1, r.s10, r.s60)
        };
        s.push_str(&format!(", \"admitted_rate\": {}", rates(&self.admitted_rate)));
        s.push_str(&format!(", \"completed_rate\": {}", rates(&self.completed_rate)));
        s.push_str(&format!(", \"latency\": {}", self.latency.to_json()));
        s.push_str(&format!(
            ", \"p99_attribution\": {}",
            self.attribution.as_ref().map_or("null".to_string(), |a| a.to_json())
        ));
        s.push_str(&format!(
            ", \"slow\": {{\"threshold_micros\": {}, \"retained\": {}, \"observed\": {}}}",
            self.slow_threshold_micros, self.slow_retained, self.slow_observed
        ));
        s.push_str(&format!(
            ", \"result_cache\": {}",
            self.result_cache.as_ref().map_or("null".to_string(), |c| format!(
                "{{\"hits\": {}, \"misses\": {}, \"evicts\": {}, \"entries\": {}, \
                 \"capacity\": {}, \"hit_rate\": {:.4}}}",
                c.hits,
                c.misses,
                c.evicts,
                c.entries,
                c.capacity,
                c.hit_rate()
            ))
        ));
        s.push_str(&format!(
            ", \"block_cache\": {}",
            self.block_cache.as_ref().map_or("null".to_string(), |c| format!(
                "{{\"hits\": {}, \"misses\": {}, \"admits\": {}, \"evicts\": {}, \
                 \"bytes\": {}, \"entries\": {}, \"capacity\": {}, \"hit_rate\": {:.4}}}",
                c.hits,
                c.misses,
                c.admits,
                c.evicts,
                c.bytes,
                c.entries,
                c.capacity,
                c.hit_rate()
            ))
        ));
        s.push_str(&format!(", \"epoch\": {}", self.epoch));
        s.push_str(&format!(", \"metrics\": {}}}", self.registry.to_json()));
        s
    }

    /// Prometheus text exposition of every windowed metric (prefix
    /// `poir_service_`) plus the uptime gauge.
    pub fn prometheus_text(&self) -> String {
        let mut s = self.registry.prometheus_text("poir_service_");
        s.push_str(&format!(
            "# TYPE poir_service_uptime_seconds gauge\npoir_service_uptime_seconds {:.3}\n",
            self.uptime_secs
        ));
        // The result-cache counters already live in the registry; the
        // block cache is shared store state, exported here by value.
        if let Some(c) = &self.block_cache {
            s.push_str(&format!(
                "# TYPE poir_service_block_cache_hits counter\n\
                 poir_service_block_cache_hits {}\n\
                 # TYPE poir_service_block_cache_misses counter\n\
                 poir_service_block_cache_misses {}\n\
                 # TYPE poir_service_block_cache_bytes gauge\n\
                 poir_service_block_cache_bytes {}\n",
                c.hits, c.misses, c.bytes
            ));
        }
        s
    }
}

/// Builds a [`ServiceStats`] from the shared state (also used by the
/// sampler thread, which has no `QueryService` handle).
fn stats_of(shared: &ServiceShared, spec: ShardSpec) -> ServiceStats {
    let m = &shared.metrics;
    ServiceStats {
        uptime_secs: shared.started.elapsed().as_secs_f64(),
        shards: shared.shards.len(),
        workers: spec.workers,
        queue_capacity: shared.capacity,
        queue_depth: m.queue_depth.value(),
        in_flight: m.in_flight.value(),
        admitted: m.admitted.total(),
        rejected: m.rejected.total(),
        expired: m.expired.total(),
        completed: m.completed.total(),
        failed: m.failed.total(),
        degraded: m.degraded.total(),
        shard_retries: m.shard_retries.total(),
        worker_panics: m.worker_panics.total(),
        shard_health: shared
            .health
            .iter()
            .enumerate()
            .map(|(i, h)| {
                let consecutive = h.consecutive_failures.load(Ordering::Relaxed);
                ShardHealth {
                    shard: i,
                    healthy: consecutive == 0,
                    failures: h.failures.load(Ordering::Relaxed),
                    retries: h.retries.load(Ordering::Relaxed),
                    consecutive_failures: consecutive,
                }
            })
            .collect(),
        admitted_rate: m.admitted.rates(),
        completed_rate: m.completed.rates(),
        latency: m.breakdowns.summary(),
        attribution: m.breakdowns.p99_attribution(),
        slow_threshold_micros: m.flight.threshold_micros(),
        slow_retained: m.flight.len(),
        slow_observed: m.flight.observed(),
        result_cache: shared.result_cache.as_ref().map(|c| c.stats()),
        block_cache: shared.shards.iter().find_map(|s| s.store.block_cache().map(|c| c.stats())),
        epoch: shared.recorder.epoch(),
        registry: m.registry.snapshot(),
    }
}

//! Query-result cache: tier 3 of the serving-path cache hierarchy.
//!
//! The service front-end sees heavily repeated queries (head terms of a
//! Zipfian query log); for those, even a fully buffered evaluation still
//! pays parsing, cursor setup, scoring, and top-k maintenance. This cache
//! closes that gap: a bounded LRU over *normalized* request keys returning
//! the complete, already-ranked response.
//!
//! Correctness hinges on two properties:
//!
//! * **Bit-identical answers.** A cached response is the stored output of
//!   a real evaluation — the ranking, scores, and statistics are the exact
//!   bytes an uncached evaluation produced. Only the `cached` marker and
//!   timing fields differ.
//! * **Epoch invalidation.** Every entry remembers the store epoch it was
//!   computed under; a lookup under any other epoch misses, and a mutation
//!   (epoch bump) therefore invalidates the whole cache wholesale without
//!   a sweep. Entries from dead epochs age out through the LRU bound.

use std::collections::HashMap;
use std::sync::Mutex;

use crate::engine::QueryResponse;

/// The normalized identity of a cacheable request. Two requests with equal
/// keys are guaranteed the same answer under an unchanged store epoch.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ResultKey {
    /// The query text, whitespace-trimmed (parsing is deterministic, so
    /// trimmed text is a sound identity; finer normalisation would only
    /// raise the hit rate, never change an answer).
    pub query: String,
    /// Requested result count.
    pub k: usize,
    /// The *resolved* execution mode (the service's default already
    /// applied), as a stable discriminant.
    pub mode: u8,
    /// Number of shards evaluated (0 = unsharded engine).
    pub shards: usize,
}

/// Cumulative counters for telemetry and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResultCacheStats {
    /// Lookups answered from cache.
    pub hits: u64,
    /// Lookups that had to evaluate.
    pub misses: u64,
    /// Entries displaced by the LRU bound or by epoch churn.
    pub evicts: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Configured entry capacity.
    pub capacity: usize,
}

impl ResultCacheStats {
    /// Hit fraction over all lookups so far (0 when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    epoch: u64,
    response: QueryResponse,
    /// Monotonic recency stamp (larger = more recently used).
    used: u64,
}

struct Inner {
    map: HashMap<ResultKey, Entry>,
    clock: u64,
    hits: u64,
    misses: u64,
    evicts: u64,
}

/// A bounded LRU of complete query responses, keyed by [`ResultKey`] and
/// validated against the store epoch on every lookup.
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache").field("stats", &self.stats()).finish()
    }
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` responses (a capacity of
    /// zero disables it: every lookup misses, nothing is stored).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                clock: 0,
                hits: 0,
                misses: 0,
                evicts: 0,
            }),
            capacity,
        }
    }

    /// Looks up a response computed under `epoch`. A key present under a
    /// different epoch is stale: it is dropped on the spot and the lookup
    /// misses.
    pub fn get(&self, key: &ResultKey, epoch: u64) -> Option<QueryResponse> {
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.map.get_mut(key) {
            Some(entry) if entry.epoch == epoch => {
                entry.used = clock;
                let mut response = entry.response.clone();
                inner.hits += 1;
                response.cached = true;
                Some(response)
            }
            Some(_) => {
                inner.map.remove(key);
                inner.evicts += 1;
                inner.misses += 1;
                None
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Stores a response computed under `epoch`, evicting the least
    /// recently used entry when full.
    pub fn insert(&self, key: ResultKey, epoch: u64, response: QueryResponse) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let clock = inner.clock;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            if let Some(victim) =
                inner.map.iter().min_by_key(|(_, e)| e.used).map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
                inner.evicts += 1;
            }
        }
        inner.map.insert(key, Entry { epoch, response, used: clock });
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> ResultCacheStats {
        let inner = self.inner.lock().unwrap();
        ResultCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evicts: inner.evicts,
            entries: inner.map.len(),
            capacity: self.capacity,
        }
    }

    /// Configured entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(q: &str) -> ResultKey {
        ResultKey { query: q.trim().to_string(), k: 10, mode: 2, shards: 0 }
    }

    fn response(n: usize) -> QueryResponse {
        QueryResponse {
            hits: (0..n)
                .map(|i| crate::engine::RankedResult {
                    doc: poir_inquery::DocId(i as u32),
                    name: format!("D{i}"),
                    score: 1.0 / (i + 1) as f64,
                })
                .collect(),
            shards: Vec::new(),
            trace: Default::default(),
            queue_micros: 0,
            mode: crate::engine::ExecMode::Serial,
            breakdown: Default::default(),
            degraded: None,
            cached: false,
        }
    }

    #[test]
    fn hit_returns_the_stored_response_marked_cached() {
        let cache = ResultCache::new(4);
        assert!(cache.get(&key("alpha"), 7).is_none());
        cache.insert(key("alpha"), 7, response(3));
        let hit = cache.get(&key("alpha"), 7).expect("hit");
        assert!(hit.cached);
        assert_eq!(hit.hits.len(), 3);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn epoch_bump_invalidates_everything() {
        let cache = ResultCache::new(4);
        cache.insert(key("a"), 1, response(1));
        cache.insert(key("b"), 1, response(2));
        assert!(cache.get(&key("a"), 1).is_some());
        assert!(cache.get(&key("a"), 2).is_none(), "new epoch must miss");
        assert!(cache.get(&key("b"), 2).is_none());
        let stats = cache.stats();
        assert_eq!(stats.entries, 0, "stale entries are dropped on lookup");
        assert_eq!(stats.evicts, 2);
    }

    #[test]
    fn lru_eviction_respects_the_bound() {
        let cache = ResultCache::new(2);
        cache.insert(key("a"), 1, response(1));
        cache.insert(key("b"), 1, response(1));
        assert!(cache.get(&key("a"), 1).is_some(), "touch a");
        cache.insert(key("c"), 1, response(1));
        assert_eq!(cache.stats().entries, 2);
        assert!(cache.get(&key("b"), 1).is_none(), "b was least recently used");
        assert!(cache.get(&key("a"), 1).is_some());
        assert!(cache.get(&key("c"), 1).is_some());
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let cache = ResultCache::new(0);
        cache.insert(key("a"), 1, response(1));
        assert!(cache.get(&key("a"), 1).is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = ResultCache::new(8);
        cache.insert(key("a"), 1, response(1));
        let mut other_k = key("a");
        other_k.k = 20;
        let mut other_mode = key("a");
        other_mode.mode = 1;
        let mut other_shards = key("a");
        other_shards.shards = 4;
        assert!(cache.get(&other_k, 1).is_none());
        assert!(cache.get(&other_mode, 1).is_none());
        assert!(cache.get(&other_shards, 1).is_none());
    }
}

//! Error type for the integration layer.

use std::fmt;
use std::time::Duration;

use crate::engine::RankedResult;

/// Errors surfaced while building or serving an inverted file.
#[derive(Debug)]
pub enum CoreError {
    /// From the Mneme persistent object store.
    Mneme(poir_mneme::MnemeError),
    /// From the baseline B-tree package.
    BTree(poir_btree::BTreeError),
    /// From the IR engine (parsing, record decoding).
    Inquery(poir_inquery::InqueryError),
    /// From the storage substrate.
    Storage(poir_storage::StorageError),
    /// The requested operation is not supported by the active backend
    /// (e.g. incremental update on the B-tree baseline).
    Unsupported(&'static str),
    /// A term reference did not resolve (dictionary/store mismatch).
    DanglingRef(u64),
    /// Persisted engine metadata failed validation on reopen.
    CorruptMetadata(&'static str),
    /// A stored inverted record failed to decode.
    CorruptRecord(String),
    /// A name string (CLI flag, config value) matched no known variant.
    UnknownName {
        /// What was being parsed, e.g. "backend" or "execution mode".
        kind: &'static str,
        /// The offending input.
        value: String,
    },
    /// The query service's admission queue was full — the typed
    /// reject-when-full signal. Retry later or shed load.
    Overloaded {
        /// The queue's configured capacity at rejection time.
        capacity: usize,
    },
    /// The query's deadline budget expired at a phase boundary. Carries
    /// whatever results had been computed when the budget ran out.
    DeadlineExceeded {
        /// The budget the request asked for.
        budget: Duration,
        /// Time actually elapsed when the deadline was noticed.
        elapsed: Duration,
        /// Hits merged from the shards that completed in time.
        partial: Vec<RankedResult>,
    },
    /// The query service has shut down and accepts no further requests.
    ServiceStopped,
    /// A service worker panicked while evaluating this request. The panic
    /// was caught; the worker survived and the queue kept draining.
    WorkerPanicked {
        /// The panic payload, when it carried a string.
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Mneme(e) => write!(f, "mneme: {e}"),
            CoreError::BTree(e) => write!(f, "b-tree: {e}"),
            CoreError::Inquery(e) => write!(f, "inquery: {e}"),
            CoreError::Storage(e) => write!(f, "storage: {e}"),
            CoreError::Unsupported(what) => write!(f, "unsupported by this backend: {what}"),
            CoreError::DanglingRef(r) => write!(f, "dangling store reference {r:#x}"),
            CoreError::CorruptMetadata(what) => write!(f, "engine metadata corrupt: {what}"),
            CoreError::CorruptRecord(what) => write!(f, "inverted record corrupt: {what}"),
            CoreError::UnknownName { kind, value } => write!(f, "unknown {kind} {value:?}"),
            CoreError::Overloaded { capacity } => {
                write!(f, "query service overloaded (queue capacity {capacity})")
            }
            CoreError::DeadlineExceeded { budget, elapsed, partial } => write!(
                f,
                "deadline of {budget:?} exceeded after {elapsed:?} ({} partial hits)",
                partial.len()
            ),
            CoreError::ServiceStopped => write!(f, "query service stopped"),
            CoreError::WorkerPanicked { message } => {
                write!(f, "service worker panicked: {message}")
            }
        }
    }
}

impl CoreError {
    /// The storage-level fault beneath this error, if any, found by
    /// walking the `source()` chain.
    pub fn storage_fault(&self) -> Option<&poir_storage::StorageError> {
        let mut e: &(dyn std::error::Error + 'static) = self;
        loop {
            if let Some(s) = e.downcast_ref::<poir_storage::StorageError>() {
                return Some(s);
            }
            e = e.source()?;
        }
    }

    /// Whether retrying the failed operation can plausibly succeed:
    /// injected transient storage faults (EIO, short read, torn write)
    /// are retryable; a poisoned (power-cut) device, corruption, and
    /// request-level errors are not.
    pub fn is_transient_fault(&self) -> bool {
        matches!(
            self.storage_fault(),
            Some(
                poir_storage::StorageError::InjectedFault
                    | poir_storage::StorageError::ShortRead { .. }
                    | poir_storage::StorageError::TornWrite { .. }
            )
        )
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Mneme(e) => Some(e),
            CoreError::BTree(e) => Some(e),
            CoreError::Inquery(e) => Some(e),
            CoreError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<poir_mneme::MnemeError> for CoreError {
    fn from(e: poir_mneme::MnemeError) -> Self {
        CoreError::Mneme(e)
    }
}

impl From<poir_btree::BTreeError> for CoreError {
    fn from(e: poir_btree::BTreeError) -> Self {
        CoreError::BTree(e)
    }
}

impl From<poir_inquery::InqueryError> for CoreError {
    fn from(e: poir_inquery::InqueryError) -> Self {
        CoreError::Inquery(e)
    }
}

impl From<poir_storage::StorageError> for CoreError {
    fn from(e: poir_storage::StorageError) -> Self {
        CoreError::Storage(e)
    }
}

impl From<CoreError> for poir_inquery::InqueryError {
    fn from(e: CoreError) -> Self {
        poir_inquery::InqueryError::Store(Box::new(e))
    }
}

/// Result alias for the integration layer.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = poir_mneme::MnemeError::IdSpaceExhausted.into();
        assert!(e.to_string().contains("mneme"));
        assert!(std::error::Error::source(&e).is_some());
        let e: CoreError = poir_storage::StorageError::UnknownFile(2).into();
        assert!(e.to_string().contains("storage"));
        assert!(CoreError::Unsupported("updates").to_string().contains("updates"));
        assert!(CoreError::DanglingRef(0xAB).to_string().contains("0xab"));
        let iq: poir_inquery::InqueryError = CoreError::Unsupported("x").into();
        assert!(matches!(iq, poir_inquery::InqueryError::Store(_)));
        assert!(CoreError::Overloaded { capacity: 8 }.to_string().contains("capacity 8"));
        let d = CoreError::DeadlineExceeded {
            budget: Duration::from_millis(5),
            elapsed: Duration::from_millis(9),
            partial: Vec::new(),
        };
        assert!(d.to_string().contains("0 partial hits"));
        assert!(CoreError::ServiceStopped.to_string().contains("stopped"));
    }
}

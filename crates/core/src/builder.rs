//! Typed construction for [`Engine`].
//!
//! The engine's original positional constructors grew one argument per
//! feature and pushed every optional knob (buffer sizes, reservation,
//! execution mode, telemetry) into post-construction setter calls.
//! [`EngineBuilder`] replaced them (the positional shims are gone) with
//! named, typed options:
//!
//! ```no_run
//! # use std::sync::Arc;
//! # use poir_core::{BackendKind, Engine, ExecMode};
//! # use poir_storage::Device;
//! # use poir_telemetry::TelemetryOptions;
//! # fn demo(device: &Arc<Device>, index: poir_inquery::Index) -> poir_core::Result<()> {
//! let mut engine = Engine::builder(device)
//!     .backend(BackendKind::MnemeCache)
//!     .exec_mode(ExecMode::BatchedPrefetch)
//!     .telemetry(TelemetryOptions::full())
//!     .build(index)?;
//! # Ok(())
//! # }
//! ```
//!
//! Defaults reproduce the paper's primary configuration: Mneme with the
//! Table 2 buffer heuristic, serial execution, reservation enabled, and
//! telemetry off (zero overhead).

use std::sync::Arc;

use poir_btree::BTreeConfig;
use poir_inquery::{BeliefParams, BlockCache, Index, StopWords};
use poir_mneme::BufferPolicy;
use poir_storage::{Device, FileHandle};
use poir_telemetry::TelemetryOptions;

use poir_telemetry::Recorder;

use crate::buffer_sizing::BufferSizes;
use crate::engine::{BackendKind, Engine, ExecMode};
use crate::error::Result;
use crate::mneme_store::MnemeOptions;
use crate::service::{QueryService, ServiceConfig};
use crate::shard::{ShardSpec, ShardedEngine};

/// Builder for [`Engine`]; see the module docs for defaults.
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    pub(crate) device: Arc<Device>,
    pub(crate) backend: BackendKind,
    pub(crate) exec_mode: ExecMode,
    pub(crate) buffers: Option<BufferSizes>,
    pub(crate) telemetry: TelemetryOptions,
    pub(crate) stop: StopWords,
    pub(crate) params: BeliefParams,
    pub(crate) reservation: bool,
    pub(crate) mneme: MnemeOptions,
    pub(crate) btree: BTreeConfig,
    pub(crate) sharding: ShardSpec,
    pub(crate) shared_recorder: Option<Recorder>,
    pub(crate) service: ServiceConfig,
    pub(crate) buffer_policy: BufferPolicy,
    pub(crate) block_cache_bytes: usize,
    pub(crate) shared_block_cache: Option<Arc<BlockCache>>,
}

impl EngineBuilder {
    pub(crate) fn new(device: &Arc<Device>) -> EngineBuilder {
        EngineBuilder {
            device: Arc::clone(device),
            backend: BackendKind::MnemeCache,
            exec_mode: ExecMode::Serial,
            buffers: None,
            telemetry: TelemetryOptions::off(),
            stop: StopWords::default(),
            params: BeliefParams::default(),
            reservation: true,
            mneme: MnemeOptions::default(),
            btree: BTreeConfig::default(),
            sharding: ShardSpec::default(),
            shared_recorder: None,
            service: ServiceConfig::default(),
            buffer_policy: BufferPolicy::Lru,
            block_cache_bytes: 0,
            shared_block_cache: None,
        }
    }

    /// Storage configuration (ignored by [`EngineBuilder::open`], which
    /// reads the backend from the persisted metadata).
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Default I/O scheduling mode for [`Engine::run_query_set`].
    pub fn exec_mode(mut self, mode: ExecMode) -> Self {
        self.exec_mode = mode;
        self
    }

    /// Explicit per-pool buffer sizes for [`BackendKind::MnemeCache`]
    /// (default: the Table 2 heuristic from the collection's largest
    /// record). Ignored by the other backends.
    pub fn buffers(mut self, sizes: BufferSizes) -> Self {
        self.buffers = Some(sizes);
        self
    }

    /// Telemetry switches (default: [`TelemetryOptions::off`]).
    pub fn telemetry(mut self, options: TelemetryOptions) -> Self {
        self.telemetry = options;
        self
    }

    /// Stop-word list (default: the INQUERY list with stemming).
    pub fn stop_words(mut self, stop: StopWords) -> Self {
        self.stop = stop;
        self
    }

    /// Belief-function parameters (default: the paper's).
    pub fn belief_params(mut self, params: BeliefParams) -> Self {
        self.params = params;
        self
    }

    /// Pre-evaluation buffer reservation (default: enabled; the off
    /// setting exists for the ablation study).
    pub fn reservation(mut self, enabled: bool) -> Self {
        self.reservation = enabled;
        self
    }

    /// Mneme build options: medium segment size, directory buckets.
    pub fn mneme_options(mut self, options: MnemeOptions) -> Self {
        self.mneme = options;
        self
    }

    /// B-tree build options: page size, node-cache capacity.
    pub fn btree_config(mut self, config: BTreeConfig) -> Self {
        self.btree = config;
        self
    }

    /// Horizontal sharding for [`EngineBuilder::build_sharded`] (default:
    /// [`ShardSpec::default`], one shard and one worker — the paper's
    /// unsharded configuration). Ignored by [`EngineBuilder::build`] and
    /// [`EngineBuilder::open`].
    pub fn sharding(mut self, spec: ShardSpec) -> Self {
        self.sharding = spec;
        self
    }

    /// Replacement policy for the Mneme segment buffers (default:
    /// [`BufferPolicy::Lru`], the paper's configuration). `S3Fifo` is the
    /// scan-resistant option for mixed point/scan workloads. Ignored by
    /// the non-Mneme backends.
    pub fn buffer_policy(mut self, policy: BufferPolicy) -> Self {
        self.buffer_policy = policy;
        self
    }

    /// Byte budget for the decoded-block cache (tier 2 of the cache
    /// hierarchy): decoded `(docs, tfs)` block pairs keyed by store epoch,
    /// object, and block index. Default 0 disables it. With
    /// [`EngineBuilder::build_sharded`] one cache is shared by all shards.
    pub fn block_cache_bytes(mut self, bytes: usize) -> Self {
        self.block_cache_bytes = bytes;
        self
    }

    /// Serving configuration for [`EngineBuilder::build_service`]: queue
    /// capacity plus the observability knobs (slow-query threshold,
    /// breakdown window, stats sampling). Ignored by the other build
    /// methods.
    pub fn service_config(mut self, config: ServiceConfig) -> Self {
        self.service = config;
        self
    }

    /// Loads a finished [`Index`] into a fresh inverted file of the chosen
    /// backend.
    pub fn build(self, index: Index) -> Result<Engine> {
        Engine::from_builder_build(self, index)
    }

    /// Builds the sharded engine (see [`EngineBuilder::build_sharded`])
    /// and starts a [`QueryService`] over it with this builder's
    /// [`ServiceConfig`].
    pub fn build_service(self, index: Index) -> Result<QueryService> {
        let config = self.service.clone();
        let engine = self.build_sharded(index)?;
        QueryService::start_with(engine, config)
    }

    /// Partitions `index` into the configured number of shards (see
    /// [`EngineBuilder::sharding`]) and builds one engine per shard, all on
    /// this builder's device and sharing one telemetry recorder. With the
    /// default one-shard spec this is [`EngineBuilder::build`] behind the
    /// [`ShardedEngine`] facade.
    pub fn build_sharded(self, index: Index) -> Result<ShardedEngine> {
        let spec = self.sharding;
        let device = Arc::clone(&self.device);
        // One recorder for every shard: each shard engine attaching its own
        // would overwrite the device's recorder and split counter deltas
        // across instances (the double-count / vanishing-counter bug).
        let recorder =
            self.shared_recorder.clone().unwrap_or_else(|| Engine::recorder_for(&self.telemetry));
        // Likewise one decoded-block cache across shards: the byte budget
        // is a process-wide bound, and keys already carry a per-store id
        // so shard entries cannot alias.
        let block_cache = self.shared_block_cache.clone().or_else(|| {
            (self.block_cache_bytes > 0).then(|| Arc::new(BlockCache::new(self.block_cache_bytes)))
        });
        let mut shards = Vec::with_capacity(spec.shards);
        for shard_index in index.split_shards(spec.shards) {
            let builder = EngineBuilder {
                shared_recorder: Some(recorder.clone()),
                shared_block_cache: block_cache.clone(),
                ..self.clone()
            };
            shards.push(builder.build(shard_index)?);
        }
        Ok(ShardedEngine::from_shards(spec, shards, recorder, device))
    }

    /// Reopens an engine saved by [`Engine::save`]. The backend kind and
    /// largest-record size come from the persisted metadata; the builder
    /// supplies everything else (buffers, telemetry, execution mode, ...).
    pub fn open(self, store_handle: FileHandle, meta: &FileHandle) -> Result<Engine> {
        Engine::from_builder_open(self, store_handle, meta)
    }
}

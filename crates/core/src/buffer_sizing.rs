//! The paper's buffer-sizing heuristics (Table 2).
//!
//! "The large object buffer size was 3 times the size of the largest
//! inverted list in the collection. ... For the three larger collections,
//! the medium object buffer size was 9% of the size of the large object
//! buffer. This allocation was based on object access behavior observed
//! during query processing, where the number of accesses to medium objects
//! equaled roughly 9% of the number of accesses to large objects. For the
//! CACM collection, 9% of the large object buffer would not have been large
//! enough to hold a single medium object segment. Therefore, we made the
//! medium object buffer large enough to hold 3 medium object segments. ...
//! The small object buffer was simply made large enough to hold 3 small
//! object segments." (Section 4.2)

use poir_mneme::small_pool::SMALL_SEGMENT_LEN;

/// Per-pool buffer capacities in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferSizes {
    /// Small object pool buffer.
    pub small: usize,
    /// Medium object pool buffer.
    pub medium: usize,
    /// Large object pool buffer.
    pub large: usize,
}

impl BufferSizes {
    /// Everything zero — the "Mneme, no cache" configuration.
    pub const NONE: BufferSizes = BufferSizes { small: 0, medium: 0, large: 0 };

    /// Total buffer memory.
    pub fn total(&self) -> usize {
        self.small + self.medium + self.large
    }
}

/// The fraction of large-object accesses observed as medium-object accesses.
pub const MEDIUM_ACCESS_RATIO: f64 = 0.09;

/// Number of segments the small and fallback-medium buffers hold.
pub const SEGMENTS_HELD: usize = 3;

/// Computes Table 2's buffer sizes from the collection's largest inverted
/// list and the medium pool's physical segment size.
pub fn paper_heuristic(largest_list_bytes: usize, medium_segment_bytes: usize) -> BufferSizes {
    let large = 3 * largest_list_bytes;
    let nine_percent = (large as f64 * MEDIUM_ACCESS_RATIO) as usize;
    let medium = if nine_percent < medium_segment_bytes {
        SEGMENTS_HELD * medium_segment_bytes
    } else {
        nine_percent
    };
    let small = SEGMENTS_HELD * SMALL_SEGMENT_LEN;
    BufferSizes { small, medium, large }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_collections_get_nine_percent_medium() {
        // A TIPSTER-like largest list (the paper's were megabytes).
        let sizes = paper_heuristic(2_600_000, 8192);
        assert_eq!(sizes.large, 7_800_000);
        assert_eq!(sizes.medium, 702_000);
        assert_eq!(sizes.small, 3 * 4096);
    }

    #[test]
    fn cacm_like_collections_fall_back_to_three_segments() {
        // CACM's largest list was small: 9% of 3× would not hold one 8 KB
        // segment.
        let sizes = paper_heuristic(8_000, 8192);
        assert_eq!(sizes.large, 24_000);
        // 9% of 24 KB = 2.16 KB < 8 KB → 3 segments.
        assert_eq!(sizes.medium, 3 * 8192);
    }

    #[test]
    fn boundary_exactly_one_segment() {
        // 9% equal to the segment size uses the percentage rule.
        let largest = (8192.0f64 / 0.09 / 3.0).ceil() as usize;
        let sizes = paper_heuristic(largest, 8192);
        assert!(sizes.medium >= 8192);
    }

    #[test]
    fn none_is_zero() {
        assert_eq!(BufferSizes::NONE.total(), 0);
        let sizes = paper_heuristic(100_000, 8192);
        assert_eq!(sizes.total(), sizes.small + sizes.medium + sizes.large);
    }
}

//! Batch index creation.
//!
//! "Creation occurs once when a document collection is first indexed by the
//! IR system, although it may be considered a special case of modification
//! where a number of document additions are batched together. ... Indexing a
//! large collection can be very expensive because it is dominated by a
//! sorting problem, where the inverted list entries for every term
//! appearance in the collection are sorted by term identifier and document
//! identifier." (Section 2)
//!
//! [`IndexBuilder`] accumulates postings per term while documents stream
//! in; [`IndexBuilder::finish`] performs the term-id sort and emits the
//! compressed records together with the populated hash dictionary and
//! document table. The result is backend-agnostic: the same [`Index`] is
//! loaded into the B-tree file or the Mneme store.

use std::collections::HashMap;

use crate::belief::CollectionStats;
use crate::codec::encode_vbyte;
use crate::dict::{Dictionary, TermId};
use crate::documents::DocTable;
use crate::postings::{
    encode_v2_directory, encode_v2_header, interleave_vbyte_postings, pack_block, DocId,
    InvertedRecord, BLOCK_SIZE,
};
use crate::text::{tokenize, StopWords};

/// Per-term accumulation state: completed [`BLOCK_SIZE`] posting blocks are
/// kept *already bit-packed*, so building a multi-million-token collection
/// costs roughly its compressed index size in memory; only the currently
/// filling block (at most 128 postings) stays raw, because its bit widths
/// are unknown until it completes — and because short records are emitted
/// in the v1 all-vbyte layout, which needs the raw arrays back.
#[derive(Default)]
struct TermAccumulator {
    /// Bit-packed v2 body of every completed block.
    body: Vec<u8>,
    /// Skip-directory data for each completed block:
    /// `(last doc id, block byte length, block-max tf, doc width, tf width)`.
    blocks: Vec<(u32, usize, u32, u32, u32)>,
    /// The filling block's doc gaps (first value absolute for the record's
    /// first posting; gaps run continuously across block boundaries).
    cur_gaps: Vec<u32>,
    /// The filling block's tf−1 values (the packed representation).
    cur_tfs_m1: Vec<u32>,
    /// The filling block's vbyte-coded position-gap streams, posting-major.
    cur_pos: Vec<u8>,
    /// Largest tf inside the currently filling block.
    block_max_tf: u32,
    last_doc: u32,
    df: u32,
    max_tf: u32,
}

impl TermAccumulator {
    /// Bit-packs the filling block onto `body` and records its directory
    /// entry. Called when a posting arrives for a full block (never at
    /// exactly [`BLOCK_SIZE`] postings, so records that end there can
    /// still be emitted in the v1 layout) and at finish for the partial
    /// final block.
    fn flush_block(&mut self) {
        let start = self.body.len();
        let (doc_width, tf_width) =
            pack_block(&self.cur_gaps, &self.cur_tfs_m1, &self.cur_pos, &mut self.body);
        self.blocks.push((
            self.last_doc,
            self.body.len() - start,
            self.block_max_tf,
            doc_width,
            tf_width,
        ));
        self.cur_gaps.clear();
        self.cur_tfs_m1.clear();
        self.cur_pos.clear();
        self.block_max_tf = 0;
    }
}

/// Streaming index builder.
pub struct IndexBuilder {
    stop: StopWords,
    dict: Dictionary,
    docs: DocTable,
    postings: Vec<TermAccumulator>,
    /// Scratch: per-document term → positions map, reused across documents.
    scratch: HashMap<TermId, Vec<u32>>,
}

impl IndexBuilder {
    /// Creates a builder using the given stop-word list.
    pub fn new(stop: StopWords) -> Self {
        IndexBuilder {
            stop,
            dict: Dictionary::new(),
            docs: DocTable::new(),
            postings: Vec::new(),
            scratch: HashMap::new(),
        }
    }

    /// Number of documents added so far.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// Tokenizes and indexes one document, returning its ordinal id.
    pub fn add_document(&mut self, name: &str, text: &str) -> DocId {
        // Token count before stop-word removal approximates document length
        // (positions already index the raw token stream).
        let raw_tokens =
            text.split(|c: char| !c.is_ascii_alphanumeric()).filter(|t| !t.is_empty()).count();
        let doc = self.docs.push(name.to_string(), raw_tokens as u32);
        // Gather per-term positions for this document.
        self.scratch.clear();
        for (token, pos) in tokenize(text, &self.stop) {
            let id = self.dict.intern(&token);
            if id.0 as usize >= self.postings.len() {
                self.postings.resize_with(id.0 as usize + 1, TermAccumulator::default);
            }
            self.scratch.entry(id).or_default().push(pos);
        }
        for (&term, positions) in &self.scratch {
            let tf = positions.len() as u32;
            let entry = self.dict.entry_mut(term);
            entry.df += 1;
            entry.cf += tf as u64;
            let acc = &mut self.postings[term.0 as usize];
            // Pack on overflow: the previous block is closed only when a
            // posting arrives for the next one.
            if acc.cur_gaps.len() == BLOCK_SIZE as usize {
                acc.flush_block();
            }
            // Append this document's posting to the filling block: doc gap
            // (absolute for the first posting), tf−1, then position gaps.
            let gap = if acc.df == 0 { doc.0 } else { doc.0 - acc.last_doc };
            acc.cur_gaps.push(gap);
            acc.cur_tfs_m1.push(tf - 1);
            let mut prev = 0u32;
            for (j, &p) in positions.iter().enumerate() {
                encode_vbyte(if j == 0 { p } else { p - prev }, &mut acc.cur_pos);
                prev = p;
            }
            acc.last_doc = doc.0;
            acc.df += 1;
            acc.max_tf = acc.max_tf.max(tf);
            acc.block_max_tf = acc.block_max_tf.max(tf);
        }
        doc
    }

    /// Sorts, compresses, and emits the finished index.
    pub fn finish(self) -> Index {
        let IndexBuilder { dict, docs, postings, .. } = self;
        // The sort the paper says dominates index construction is implicit
        // here: accumulators are already ordered by term identifier, and
        // postings within each record arrived in document-id order.
        let records: Vec<(TermId, Vec<u8>)> = postings
            .into_iter()
            .enumerate()
            .map(|(i, mut acc)| {
                let term = TermId(i as u32);
                let cf = dict.entry(term).cf;
                let mut record = Vec::with_capacity(16 + acc.body.len() + acc.cur_pos.len());
                if acc.df > BLOCK_SIZE {
                    // Bit-packed v2 layout: close the final block, then
                    // emit header, directory, and the packed body (matches
                    // InvertedRecord::encode byte for byte — pack_block is
                    // shared).
                    acc.flush_block();
                    encode_v2_header(acc.df, cf, acc.max_tf, &mut record);
                    encode_v2_directory(&acc.blocks, &mut record);
                    record.extend_from_slice(&acc.body);
                } else if cf > u32::MAX as u64 {
                    // Short record whose cf needs 64 bits: v2 extended
                    // header over the v1 posting stream.
                    encode_v2_header(acc.df, cf, acc.max_tf, &mut record);
                    interleave_vbyte_postings(
                        &acc.cur_gaps,
                        &acc.cur_tfs_m1,
                        &acc.cur_pos,
                        &mut record,
                    );
                } else {
                    encode_vbyte(acc.df, &mut record);
                    encode_vbyte(cf as u32, &mut record);
                    encode_vbyte(acc.max_tf, &mut record);
                    interleave_vbyte_postings(
                        &acc.cur_gaps,
                        &acc.cur_tfs_m1,
                        &acc.cur_pos,
                        &mut record,
                    );
                }
                (term, record)
            })
            .collect();
        debug_assert!(records.windows(2).all(|w| w[0].0 < w[1].0));
        Index { dictionary: dict, documents: docs, records }
    }
}

/// A finished, backend-agnostic index.
#[derive(Clone)]
pub struct Index {
    /// The populated hash dictionary (term → id, statistics).
    pub dictionary: Dictionary,
    /// The document table.
    pub documents: DocTable,
    /// Compressed inverted records, sorted by term id.
    pub records: Vec<(TermId, Vec<u8>)>,
}

impl Index {
    /// Collection statistics for the belief functions.
    pub fn collection_stats(&self) -> CollectionStats {
        CollectionStats {
            num_docs: self.documents.len() as u32,
            avg_doc_len: self.documents.avg_len(),
        }
    }

    /// Sizes of every inverted record in bytes — the data behind Figure 1.
    pub fn record_sizes(&self) -> Vec<usize> {
        self.records.iter().map(|(_, r)| r.len()).collect()
    }

    /// Total bytes of compressed inverted records.
    pub fn total_record_bytes(&self) -> u64 {
        self.records.iter().map(|(_, r)| r.len() as u64).sum()
    }

    /// Contiguous document-id ranges carving `num_docs` documents into
    /// `shards` near-equal horizontal slices: shard `s` owns
    /// `[s·D/N, (s+1)·D/N)`. Matches the corpus-side split in
    /// `poir-collections`.
    pub fn shard_ranges(num_docs: usize, shards: usize) -> Vec<std::ops::Range<u32>> {
        let n = shards.max(1);
        (0..n).map(|s| (s * num_docs / n) as u32..((s + 1) * num_docs / n) as u32).collect()
    }

    /// Splits the index into `shards` horizontal shards over contiguous,
    /// disjoint document-id ranges.
    ///
    /// Every shard keeps a full clone of the dictionary (collection-wide
    /// df/cf; store references are rebound when the shard's records load
    /// into a backend) and of the document table, so per-shard evaluation
    /// scores every document with the same global statistics the unsharded
    /// index uses. Each inverted record is re-encoded holding only the
    /// postings inside the shard's range, at the *global* document ids; a
    /// term absent from a shard keeps a genuine empty record so the shard
    /// backend still assigns it a valid store reference.
    pub fn split_shards(&self, shards: usize) -> Vec<Index> {
        if shards <= 1 {
            return vec![self.clone()];
        }
        let ranges = Self::shard_ranges(self.documents.len(), shards);
        let mut shard_records: Vec<Vec<(TermId, Vec<u8>)>> =
            vec![Vec::with_capacity(self.records.len()); shards];
        for (term, bytes) in &self.records {
            let rec = InvertedRecord::decode(bytes)
                .unwrap_or_else(|| panic!("index record {term:?} must decode"));
            // Postings ascend by doc id and the ranges tile [0, num_docs),
            // so one forward scan deals every posting to its shard.
            let mut postings = rec.postings.into_iter().peekable();
            for (s, range) in ranges.iter().enumerate() {
                let mut slice = Vec::new();
                while postings.peek().is_some_and(|p| p.doc.0 < range.end) {
                    slice.push(postings.next().expect("peeked"));
                }
                shard_records[s].push((*term, InvertedRecord::from_postings(slice).encode()));
            }
        }
        shard_records
            .into_iter()
            .map(|records| Index {
                dictionary: self.dictionary.clone(),
                documents: self.documents.clone(),
                records,
            })
            .collect()
    }

    /// Fraction of records no larger than `threshold` bytes (the paper's
    /// "approximately 50% of the inverted lists are 12 bytes or less").
    pub fn fraction_at_most(&self, threshold: usize) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let n = self.records.iter().filter(|(_, r)| r.len() <= threshold).count();
        n as f64 / self.records.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::postings::InvertedRecord;

    fn tiny_index() -> Index {
        let mut b = IndexBuilder::new(StopWords::default());
        b.add_document("D0", "the quick brown fox jumps over the lazy dog");
        b.add_document("D1", "the quick red fox");
        b.add_document("D2", "dogs and foxes and dogs again dog dog");
        b.finish()
    }

    #[test]
    fn dictionary_statistics_are_correct() {
        let idx = tiny_index();
        let fox = idx.dictionary.lookup("fox").unwrap();
        assert_eq!(idx.dictionary.entry(fox).df, 2);
        assert_eq!(idx.dictionary.entry(fox).cf, 2);
        let dog = idx.dictionary.lookup("dog").unwrap();
        assert_eq!(idx.dictionary.entry(dog).df, 2, "dog in D0 and D2");
        assert_eq!(
            idx.dictionary.entry(dog).cf,
            3,
            "1 in D0 + 2 in D2 (no stemming: dogs is distinct)"
        );
        assert!(idx.dictionary.lookup("the").is_none(), "stop words are not indexed");
    }

    #[test]
    fn records_decode_with_correct_postings() {
        let idx = tiny_index();
        let quick = idx.dictionary.lookup("quick").unwrap();
        let (_, bytes) = idx.records.iter().find(|(t, _)| *t == quick).unwrap();
        let rec = InvertedRecord::decode(bytes).unwrap();
        assert_eq!(rec.df(), 2);
        assert_eq!(rec.postings[0].doc, DocId(0));
        assert_eq!(rec.postings[0].positions, vec![1]);
        assert_eq!(rec.postings[1].doc, DocId(1));
    }

    #[test]
    fn records_are_sorted_by_term_id() {
        let idx = tiny_index();
        assert!(idx.records.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(idx.records.len(), idx.dictionary.len());
    }

    #[test]
    fn document_table_lengths() {
        let idx = tiny_index();
        assert_eq!(idx.documents.len(), 3);
        assert_eq!(idx.documents.info(DocId(0)).len, 9);
        assert_eq!(idx.documents.info(DocId(0)).name, "D0");
        let stats = idx.collection_stats();
        assert_eq!(stats.num_docs, 3);
        assert!(stats.avg_doc_len > 0.0);
    }

    #[test]
    fn size_helpers() {
        let idx = tiny_index();
        let sizes = idx.record_sizes();
        assert_eq!(sizes.len(), idx.records.len());
        assert_eq!(sizes.iter().map(|&s| s as u64).sum::<u64>(), idx.total_record_bytes());
        assert_eq!(idx.fraction_at_most(usize::MAX), 1.0);
        assert_eq!(idx.fraction_at_most(0), 0.0);
    }

    #[test]
    fn empty_collection() {
        let idx = IndexBuilder::new(StopWords::default()).finish();
        assert_eq!(idx.records.len(), 0);
        assert_eq!(idx.fraction_at_most(12), 0.0);
        assert_eq!(idx.collection_stats().num_docs, 0);
    }

    #[test]
    fn blocked_records_match_canonical_encoding() {
        // Past BLOCK_SIZE documents, the builder must stream out the same
        // blocked layout InvertedRecord::encode produces.
        let mut b = IndexBuilder::new(StopWords::none());
        for i in 0..300u32 {
            let text = "word ".repeat((i % 5 + 1) as usize);
            b.add_document(&format!("D{i}"), &text);
        }
        let idx = b.finish();
        let word = idx.dictionary.lookup("word").unwrap();
        let (_, bytes) = idx.records.iter().find(|(t, _)| *t == word).unwrap();
        let rec = InvertedRecord::decode(bytes).expect("blocked record decodes");
        assert_eq!(rec.df(), 300);
        assert_eq!(&rec.encode(), bytes, "builder bytes == canonical encoding");
    }

    #[test]
    fn shard_ranges_tile_the_collection() {
        let ranges = Index::shard_ranges(10, 4);
        assert_eq!(ranges, vec![0..2, 2..5, 5..7, 7..10]);
        assert_eq!(Index::shard_ranges(3, 1), vec![0..3]);
        assert_eq!(Index::shard_ranges(2, 4), vec![0..0, 0..1, 1..1, 1..2]);
        assert_eq!(Index::shard_ranges(0, 2), vec![0..0, 0..0]);
    }

    #[test]
    fn split_shards_partitions_postings_and_keeps_global_statistics() {
        let mut b = IndexBuilder::new(StopWords::none());
        for i in 0..200u32 {
            let mut text = "word ".repeat((i % 3 + 1) as usize);
            if i % 2 == 0 {
                text.push_str("even ");
            }
            if i < 50 {
                text.push_str("early ");
            }
            b.add_document(&format!("D{i}"), &text);
        }
        let idx = b.finish();
        for n in [2, 3, 4] {
            let shards = idx.split_shards(n);
            assert_eq!(shards.len(), n);
            let ranges = Index::shard_ranges(idx.documents.len(), n);
            for (term, bytes) in &idx.records {
                let global = InvertedRecord::decode(bytes).unwrap();
                let mut reassembled = Vec::new();
                for (shard, range) in shards.iter().zip(&ranges) {
                    let (_, sbytes) = &shard.records[term.0 as usize];
                    let rec = InvertedRecord::decode(sbytes).expect("shard record decodes");
                    assert!(
                        rec.postings.iter().all(|p| range.contains(&p.doc.0)),
                        "shard postings stay inside the shard's doc range"
                    );
                    reassembled.extend(rec.postings);
                }
                assert_eq!(reassembled, global.postings, "n={n}: concat of shards == global");
            }
            for shard in &shards {
                assert_eq!(shard.dictionary.len(), idx.dictionary.len());
                assert_eq!(shard.documents.len(), idx.documents.len());
                let word = shard.dictionary.lookup("early").unwrap();
                assert_eq!(shard.dictionary.entry(word).df, 50, "dictionary df stays global");
            }
        }
        // "early" lives only in the first quarter: later shards hold a
        // genuine (decodable) empty record for it.
        let shards = idx.split_shards(4);
        let early = idx.dictionary.lookup("early").unwrap();
        let (_, bytes) = &shards[3].records[early.0 as usize];
        let rec = InvertedRecord::decode(bytes).unwrap();
        assert_eq!(rec.df(), 0);
        assert!(rec.postings.is_empty());
    }

    #[test]
    fn repeated_document_terms_make_one_posting() {
        let mut b = IndexBuilder::new(StopWords::none());
        b.add_document("D0", "echo echo echo");
        let idx = b.finish();
        let echo = idx.dictionary.lookup("echo").unwrap();
        let rec = InvertedRecord::decode(&idx.records[echo.0 as usize].1).unwrap();
        assert_eq!(rec.df(), 1);
        assert_eq!(rec.postings[0].tf, 3);
        assert_eq!(rec.postings[0].positions, vec![0, 1, 2]);
    }
}

//! # INQUERY-style probabilistic full-text retrieval engine
//!
//! A from-scratch re-implementation of the published INQUERY retrieval
//! model (Turtle & Croft, TOIS 1991; Callan, Croft & Harding, DEXA 1992) as
//! used in Brown, Callan, Moss & Croft, *Supporting Full-Text Information
//! Retrieval with a Persistent Object Store* (EDBT 1994):
//!
//! * [`text`] — tokenization and stop words,
//! * [`dict`] — the memory-resident open-chaining hash dictionary,
//! * [`codec`] / [`postings`] — compressed inverted records (~60%
//!   compression via delta + variable-byte coding),
//! * [`index`] — batch (sort-based) index construction,
//! * [`store`] — the [`store::InvertedFileStore`] boundary the paper swaps
//!   implementations behind (B-tree vs. Mneme; see `poir-core`),
//! * [`belief`] — Bayesian inference-network belief functions,
//! * [`query`] — the structured query language (`#and`, `#or`, `#not`,
//!   `#sum`, `#wsum`, `#max`, `#phrase`, `#uwN`), term-at-a-time
//!   evaluation, and the document-at-a-time extension,
//! * [`metrics`] — recall/precision evaluation,
//! * [`trec`] — TREC qrels / run-file interchange.

pub mod belief;
pub mod block_cache;
pub mod codec;
pub mod dict;
pub mod documents;
pub mod error;
pub mod index;
pub mod metrics;
pub mod porter;
pub mod postings;
pub mod query;
pub mod store;
pub mod text;
pub mod trec;

pub use belief::{BeliefParams, CollectionStats};
pub use block_cache::{BlockCache, BlockCacheStats, BlockKey, DecodedBlock};
pub use dict::{Dictionary, TermEntry, TermId};
pub use documents::{DocInfo, DocTable};
pub use error::{InqueryError, Result};
pub use index::{Index, IndexBuilder};
pub use metrics::Judgments;
pub use porter::stem;
pub use postings::{
    BlockCursor, DocId, InvertedRecord, Posting, PostingsCursor, SeekSummary, SkipBlock, BLOCK_SIZE,
};
pub use query::{
    merge_topk, parse_query, rank_score_list, Evaluator, QueryNode, ScoreList, ScoredDoc,
};
pub use store::{InvertedFileStore, MemoryStore, RecordBytes};
pub use text::{tokenize, StopWords};

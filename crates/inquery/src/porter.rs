//! The Porter stemming algorithm (Porter, *An algorithm for suffix
//! stripping*, Program 14(3), 1980).
//!
//! INQUERY normalised word forms before dictionary lookup so that "index",
//! "indexes", and "indexing" share one inverted record. Stemming is opt-in
//! here (see [`crate::text::StopWords::with_stemming`]) because the paper's
//! storage comparison does not depend on it — but a production deployment
//! of the engine would enable it, and the record-size distribution it
//! produces is slightly more head-heavy (fewer, larger records).
//!
//! This is a faithful implementation of the original five-step algorithm
//! over ASCII lower-case words.

/// Stems one lower-case ASCII word. Words shorter than three characters are
/// returned unchanged, as in Porter's reference implementation.
///
/// ```
/// assert_eq!(poir_inquery::porter::stem("retrieval"), "retriev");
/// assert_eq!(poir_inquery::porter::stem("indexing"), poir_inquery::porter::stem("indexes"));
/// ```
pub fn stem(word: &str) -> String {
    let mut w: Vec<u8> = word.bytes().collect();
    if w.len() <= 2 {
        return word.to_string();
    }
    step1a(&mut w);
    step1b(&mut w);
    step1c(&mut w);
    step2(&mut w);
    step3(&mut w);
    step4(&mut w);
    step5a(&mut w);
    step5b(&mut w);
    String::from_utf8(w).expect("ascii in, ascii out")
}

fn is_consonant(w: &[u8], i: usize) -> bool {
    match w[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => i == 0 || !is_consonant(w, i - 1),
        _ => true,
    }
}

/// Porter's *m*: the number of vowel-consonant sequences in `w[..len]`.
fn measure(w: &[u8], len: usize) -> usize {
    let mut m = 0;
    let mut i = 0;
    // Skip the initial consonant run.
    while i < len && is_consonant(w, i) {
        i += 1;
    }
    loop {
        // Vowel run.
        while i < len && !is_consonant(w, i) {
            i += 1;
        }
        if i >= len {
            return m;
        }
        // Consonant run → one VC block.
        while i < len && is_consonant(w, i) {
            i += 1;
        }
        m += 1;
    }
}

fn has_vowel(w: &[u8], len: usize) -> bool {
    (0..len).any(|i| !is_consonant(w, i))
}

/// Ends with a double consonant.
fn double_consonant(w: &[u8]) -> bool {
    let n = w.len();
    n >= 2 && w[n - 1] == w[n - 2] && is_consonant(w, n - 1)
}

/// Ends consonant-vowel-consonant, where the final consonant is not w, x,
/// or y.
fn cvc(w: &[u8], len: usize) -> bool {
    if len < 3 {
        return false;
    }
    is_consonant(w, len - 3)
        && !is_consonant(w, len - 2)
        && is_consonant(w, len - 1)
        && !matches!(w[len - 1], b'w' | b'x' | b'y')
}

fn ends_with(w: &[u8], suffix: &str) -> bool {
    w.len() >= suffix.len() && &w[w.len() - suffix.len()..] == suffix.as_bytes()
}

/// If the word ends in `suffix` and the stem before it has measure > `min_m`,
/// replace the suffix with `replacement` and return true.
fn replace_if(w: &mut Vec<u8>, suffix: &str, replacement: &str, min_m: usize) -> bool {
    if ends_with(w, suffix) {
        let stem_len = w.len() - suffix.len();
        if measure(w, stem_len) > min_m {
            w.truncate(stem_len);
            w.extend_from_slice(replacement.as_bytes());
        }
        return true; // suffix matched (even if m-condition blocked the rewrite)
    }
    false
}

fn step1a(w: &mut Vec<u8>) {
    if ends_with(w, "sses") || ends_with(w, "ies") {
        w.truncate(w.len() - 2);
    } else if ends_with(w, "s") && !ends_with(w, "ss") {
        w.truncate(w.len() - 1);
    }
}

fn step1b(w: &mut Vec<u8>) {
    if ends_with(w, "eed") {
        if measure(w, w.len() - 3) > 0 {
            w.truncate(w.len() - 1);
        }
        return;
    }
    let stripped = if ends_with(w, "ed") && has_vowel(w, w.len() - 2) {
        w.truncate(w.len() - 2);
        true
    } else if ends_with(w, "ing") && has_vowel(w, w.len() - 3) {
        w.truncate(w.len() - 3);
        true
    } else {
        false
    };
    if stripped {
        if ends_with(w, "at") || ends_with(w, "bl") || ends_with(w, "iz") {
            w.push(b'e');
        } else if double_consonant(w) && !matches!(w[w.len() - 1], b'l' | b's' | b'z') {
            w.truncate(w.len() - 1);
        } else if measure(w, w.len()) == 1 && cvc(w, w.len()) {
            w.push(b'e');
        }
    }
}

fn step1c(w: &mut [u8]) {
    if ends_with(w, "y") && has_vowel(w, w.len() - 1) {
        let n = w.len();
        w[n - 1] = b'i';
    }
}

fn step2(w: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    ];
    for (suffix, replacement) in RULES {
        if replace_if(w, suffix, replacement, 0) {
            return;
        }
    }
}

fn step3(w: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    ];
    for (suffix, replacement) in RULES {
        if replace_if(w, suffix, replacement, 0) {
            return;
        }
    }
}

fn step4(w: &mut Vec<u8>) {
    const SUFFIXES: &[&str] = &[
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ou",
        "ism", "ate", "iti", "ous", "ive", "ize",
    ];
    // "ion" is special: the preceding letter must be s or t.
    if ends_with(w, "ion") {
        let stem_len = w.len() - 3;
        if stem_len > 0 && matches!(w[stem_len - 1], b's' | b't') && measure(w, stem_len) > 1 {
            w.truncate(stem_len);
        }
        return;
    }
    for suffix in SUFFIXES {
        if ends_with(w, suffix) {
            let stem_len = w.len() - suffix.len();
            if measure(w, stem_len) > 1 {
                w.truncate(stem_len);
            }
            return;
        }
    }
}

fn step5a(w: &mut Vec<u8>) {
    if ends_with(w, "e") {
        let stem_len = w.len() - 1;
        let m = measure(w, stem_len);
        if m > 1 || (m == 1 && !cvc(w, stem_len)) {
            w.truncate(stem_len);
        }
    }
}

fn step5b(w: &mut Vec<u8>) {
    if measure(w, w.len()) > 1 && double_consonant(w) && w[w.len() - 1] == b'l' {
        w.truncate(w.len() - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Examples from Porter's paper, plus common IR vocabulary.
    #[test]
    fn canonical_examples() {
        for (word, expected) in [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ] {
            assert_eq!(stem(word), expected, "stem({word:?})");
        }
    }

    #[test]
    fn ir_vocabulary_conflates() {
        assert_eq!(stem("indexing"), stem("indexes"));
        assert_eq!(stem("retrieval"), "retriev");
        assert_eq!(stem("retrieves"), "retriev");
        assert_eq!(stem("querying"), stem("queries"));
        assert_eq!(stem("stored"), stem("storing"));
    }

    #[test]
    fn short_words_are_untouched() {
        assert_eq!(stem("a"), "a");
        assert_eq!(stem("is"), "is");
        assert_eq!(stem("by"), "by");
    }

    #[test]
    fn stemming_is_idempotent_for_common_words() {
        for w in ["retrieval", "indexing", "performance", "management", "probabilistic"] {
            let once = stem(w);
            let twice = stem(&once);
            // Porter is not idempotent in general, but stems must at least
            // stay stable for this vocabulary (guards regressions).
            assert_eq!(stem(&twice), twice, "{w} unstable");
        }
    }
}

//! The inverted-file store abstraction.
//!
//! INQUERY's query processor only needs one operation from its index
//! subsystem: fetch the complete record for a term ("it reads the complete
//! record for one term, and merges the evidence", Section 3.1). The
//! [`InvertedFileStore`] trait captures exactly that boundary — the
//! subsystem the paper swaps between a custom B-tree package and the Mneme
//! persistent object store (both implementations live in `poir-core`).
//!
//! The store is addressed by the opaque `store_ref` each backend deposited
//! in the hash dictionary at index-build time (Section 3.3).

use std::sync::Arc;

use crate::error::Result;

/// Bytes of one fetched record (or record range), in whatever ownership
/// form the backend could produce cheapest.
///
/// The fetch path is zero-copy where possible: a backend whose cache
/// already holds the record's buffer hands out a [`RecordBytes::Shared`]
/// sub-slice of that reference-counted buffer instead of copying into a
/// fresh `Vec`. Callers treat both variants uniformly as `&[u8]` (the type
/// derefs to a slice); a shared slice stays valid for as long as the value
/// lives, even if the backend's cache evicts or mutates the segment in the
/// meantime (mutation is copy-on-write against outstanding readers).
#[derive(Debug, Clone)]
pub enum RecordBytes {
    /// A private copy the caller exclusively owns (direct disk reads and
    /// sliced fallbacks).
    Owned(Vec<u8>),
    /// The sub-slice `buf[start..end]` of a buffer shared with the
    /// backend's cache — produced without copying payload bytes.
    Shared {
        /// The shared backing buffer (a cached segment image, usually).
        buf: Arc<Vec<u8>>,
        /// First payload byte within `buf`.
        start: usize,
        /// One past the last payload byte within `buf`.
        end: usize,
    },
}

impl RecordBytes {
    /// Wraps the sub-slice `buf[start..end]` without copying.
    pub fn shared(buf: Arc<Vec<u8>>, start: usize, end: usize) -> Self {
        debug_assert!(start <= end && end <= buf.len());
        RecordBytes::Shared { buf, start, end }
    }

    /// The record bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            RecordBytes::Owned(v) => v,
            RecordBytes::Shared { buf, start, end } => &buf[*start..*end],
        }
    }

    /// Re-slices to `self[from..to]` (clamped) without copying: an owned
    /// buffer moves behind an `Arc`, a shared slice just restrides.
    pub fn slice(self, from: usize, to: usize) -> RecordBytes {
        match self {
            RecordBytes::Owned(v) => {
                let end = to.min(v.len());
                let start = from.min(end);
                RecordBytes::Shared { buf: Arc::new(v), start, end }
            }
            RecordBytes::Shared { buf, start, end } => {
                let new_end = start.saturating_add(to).min(end);
                let new_start = start.saturating_add(from).min(new_end);
                RecordBytes::Shared { buf, start: new_start, end: new_end }
            }
        }
    }

    /// An exclusively owned `Vec`, copying only when the bytes are still
    /// shared with another holder or are a proper sub-slice.
    pub fn into_vec(self) -> Vec<u8> {
        match self {
            RecordBytes::Owned(v) => v,
            RecordBytes::Shared { buf, start, end } => {
                if start == 0 && end == buf.len() {
                    Arc::try_unwrap(buf).unwrap_or_else(|shared| shared.to_vec())
                } else {
                    buf[start..end].to_vec()
                }
            }
        }
    }

    /// Mutable access to the bytes, converting a shared slice into an
    /// owned copy first (record-level copy-on-write).
    pub fn to_mut(&mut self) -> &mut Vec<u8> {
        if matches!(self, RecordBytes::Shared { .. }) {
            let owned = std::mem::replace(self, RecordBytes::Owned(Vec::new())).into_vec();
            *self = RecordBytes::Owned(owned);
        }
        match self {
            RecordBytes::Owned(v) => v,
            RecordBytes::Shared { .. } => unreachable!("just converted to Owned"),
        }
    }

    /// Whether the bytes are a zero-copy view of a backend buffer.
    pub fn is_shared(&self) -> bool {
        matches!(self, RecordBytes::Shared { .. })
    }
}

impl std::ops::Deref for RecordBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for RecordBytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for RecordBytes {
    fn from(v: Vec<u8>) -> Self {
        RecordBytes::Owned(v)
    }
}

impl From<Arc<Vec<u8>>> for RecordBytes {
    fn from(buf: Arc<Vec<u8>>) -> Self {
        let end = buf.len();
        RecordBytes::Shared { buf, start: 0, end }
    }
}

impl PartialEq for RecordBytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for RecordBytes {}
impl PartialEq<[u8]> for RecordBytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<&[u8]> for RecordBytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for RecordBytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl<const N: usize> PartialEq<[u8; N]> for RecordBytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}
impl<const N: usize> PartialEq<&[u8; N]> for RecordBytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

/// A pluggable inverted-file backend.
pub trait InvertedFileStore {
    /// Fetches the encoded inverted record behind `store_ref`.
    fn fetch(&mut self, store_ref: u64) -> Result<RecordBytes>;

    /// Fetches many records at once, one result per reference.
    ///
    /// The default implementation loops over [`InvertedFileStore::fetch`]
    /// (and therefore counts each reference as a record lookup). Backends
    /// with physical layout knowledge override this to batch their device
    /// I/O — the Mneme store coalesces runs of adjacent segments into
    /// single gathered reads.
    fn fetch_batch(&mut self, store_refs: &[u64]) -> Vec<Result<RecordBytes>> {
        store_refs.iter().map(|&r| self.fetch(r)).collect()
    }

    /// Advisory pre-evaluation prefetch: fault the records behind the given
    /// references into whatever cache the backend maintains, so subsequent
    /// [`InvertedFileStore::fetch`] calls are hits. Unlike
    /// [`InvertedFileStore::fetch_batch`], prefetching does not count
    /// record lookups (keeping the "A" statistic's denominator comparable
    /// across execution modes) and swallows errors — the later fetch
    /// surfaces them. The default implementation does nothing.
    fn prefetch(&mut self, _store_refs: &[u64]) {}

    /// Fetches part of the record behind `store_ref`: `len` bytes starting
    /// at byte `start`. Returns fewer bytes when the record ends before
    /// `start + len`; backends may also return *more* than requested (up
    /// to the whole record) when a partial read is not cheaper. Backends
    /// overriding this count a call with `start == 0` as a record lookup
    /// and continuation calls (`start > 0`) as none, keeping the "A"
    /// statistic's denominator comparable with whole-record fetching.
    ///
    /// The default implementation fetches the whole record and slices it,
    /// which is never cheaper — callers should consult
    /// [`InvertedFileStore::supports_range_read`] before choosing the
    /// range protocol over [`InvertedFileStore::fetch`].
    fn fetch_range(&mut self, store_ref: u64, start: u64, len: usize) -> Result<RecordBytes> {
        let bytes = self.fetch(store_ref)?;
        if start == 0 && len >= bytes.len() {
            return Ok(bytes);
        }
        let from = (start.min(bytes.len() as u64)) as usize;
        let to = from.saturating_add(len).min(bytes.len());
        Ok(bytes.slice(from, to))
    }

    /// Whether [`InvertedFileStore::fetch_range`] can serve a byte range
    /// with less device I/O than a whole-record fetch for at least some
    /// records. `false` (the default) means the range protocol degrades
    /// to whole-record fetches and callers should not bother.
    fn supports_range_read(&self) -> bool {
        false
    }

    /// A free (no-I/O) upper bound on the record's encoded length, when the
    /// backend can answer from in-memory metadata — the Mneme store reads
    /// it off a huge-pool object's segment address. `None` (the default)
    /// means the length is unknown without fetching; callers deciding
    /// between whole-record and range fetching must then probe.
    fn record_len_hint(&self, _store_ref: u64) -> Option<u64> {
        None
    }

    /// Pre-evaluation reservation pass: pin whatever is already resident
    /// for the given references (Section 3.3's query-tree scan). The
    /// default implementation does nothing.
    fn reserve(&mut self, _store_refs: &[u64]) {}

    /// Releases reservations placed by [`InvertedFileStore::reserve`].
    fn release_reservations(&mut self) {}

    /// The decoded-block cache this backend maintains, if any. Evaluators
    /// attach it to every packed cursor they open so re-referenced blocks
    /// skip bit-unpacking. `None` (the default) disables tier 2 entirely.
    fn decoded_block_cache(&self) -> Option<Arc<crate::block_cache::BlockCache>> {
        None
    }

    /// The cache-invalidation epoch for this backend's records: any
    /// mutation that can change record bytes must move it to a value never
    /// used before. Backends sharing one [`crate::BlockCache`] must also
    /// disambiguate themselves within it (the Mneme store folds a
    /// process-unique store id into the high bits). Meaningless unless
    /// [`InvertedFileStore::decoded_block_cache`] returns `Some`.
    fn store_epoch(&self) -> u64 {
        0
    }

    /// Number of record fetches served so far (the denominator of the
    /// paper's "A" statistic).
    fn record_lookups(&self) -> u64;
}

/// A trivial memory-resident store, used by unit tests and as the indexing
/// staging area. Records sit behind `Arc`s so fetches are zero-copy shared
/// slices, exactly like a cache-hit on the Mneme backend.
#[derive(Debug, Default)]
pub struct MemoryStore {
    records: Vec<Arc<Vec<u8>>>,
    lookups: u64,
}

impl MemoryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a record, returning the reference to hand to the dictionary.
    pub fn add(&mut self, record: Vec<u8>) -> u64 {
        self.records.push(Arc::new(record));
        (self.records.len() - 1) as u64
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl InvertedFileStore for MemoryStore {
    fn fetch(&mut self, store_ref: u64) -> Result<RecordBytes> {
        self.lookups += 1;
        self.records
            .get(store_ref as usize)
            .map(|rec| RecordBytes::from(Arc::clone(rec)))
            .ok_or_else(|| {
                crate::error::InqueryError::BadRecord(format!("no record at reference {store_ref}"))
            })
    }

    fn record_lookups(&self) -> u64 {
        self.lookups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_store_round_trips() {
        let mut s = MemoryStore::new();
        let a = s.add(vec![1, 2, 3]);
        let b = s.add(vec![4]);
        assert_eq!(s.fetch(a).unwrap(), vec![1, 2, 3]);
        assert_eq!(s.fetch(b).unwrap(), vec![4]);
        assert_eq!(s.record_lookups(), 2);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn missing_reference_is_an_error() {
        let mut s = MemoryStore::new();
        assert!(s.fetch(0).is_err());
        assert_eq!(s.record_lookups(), 1, "failed fetches still count as lookups");
    }

    #[test]
    fn default_reservation_hooks_are_noops() {
        let mut s = MemoryStore::new();
        s.reserve(&[1, 2, 3]);
        s.prefetch(&[1, 2, 3]);
        s.release_reservations();
        assert!(s.is_empty());
        assert_eq!(s.record_lookups(), 0, "prefetch must not count lookups");
    }

    #[test]
    fn default_fetch_batch_matches_fetch() {
        let mut s = MemoryStore::new();
        let a = s.add(vec![1, 2, 3]);
        let b = s.add(vec![4]);
        let results = s.fetch_batch(&[b, a, 99]);
        assert_eq!(results[0].as_ref().unwrap(), &vec![4]);
        assert_eq!(results[1].as_ref().unwrap(), &vec![1, 2, 3]);
        assert!(results[2].is_err());
        assert_eq!(s.record_lookups(), 3, "default batch counts every reference");
    }

    #[test]
    fn memory_fetches_share_rather_than_copy() {
        let mut s = MemoryStore::new();
        let r = s.add(vec![7u8; 64]);
        let a = s.fetch(r).unwrap();
        let b = s.fetch(r).unwrap();
        assert!(a.is_shared() && b.is_shared());
        assert_eq!(
            a.as_slice().as_ptr(),
            b.as_slice().as_ptr(),
            "both fetches must view the same backing buffer"
        );
    }

    #[test]
    fn record_bytes_slicing_is_zero_copy() {
        let shared = RecordBytes::from(Arc::new(vec![0u8, 1, 2, 3, 4, 5, 6, 7]));
        let base = shared.as_slice().as_ptr();
        let mid = shared.slice(2, 6);
        assert_eq!(mid, [2u8, 3, 4, 5]);
        assert_eq!(mid.as_slice().as_ptr(), unsafe { base.add(2) });
        // Clamped out-of-range slicing never panics.
        let tail = mid.slice(3, 99);
        assert_eq!(tail, [5u8]);
        let owned = RecordBytes::Owned(vec![9u8, 8, 7]).slice(1, 2);
        assert_eq!(owned, [8u8]);
    }

    #[test]
    fn record_bytes_into_vec_and_cow() {
        // Sole holder of a whole buffer: into_vec reclaims without copying.
        let v = RecordBytes::from(Arc::new(vec![1u8, 2, 3])).into_vec();
        assert_eq!(v, vec![1, 2, 3]);
        // A second holder forces the copy.
        let arc = Arc::new(vec![4u8, 5]);
        let held = Arc::clone(&arc);
        assert_eq!(RecordBytes::from(arc).into_vec(), vec![4, 5]);
        assert_eq!(*held, vec![4, 5], "original buffer is untouched");
        // to_mut converts shared to owned in place and allows mutation.
        let mut rb = RecordBytes::shared(held, 0, 2);
        rb.to_mut().push(6);
        assert!(!rb.is_shared());
        assert_eq!(rb, [4u8, 5, 6]);
    }
}

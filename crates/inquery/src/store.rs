//! The inverted-file store abstraction.
//!
//! INQUERY's query processor only needs one operation from its index
//! subsystem: fetch the complete record for a term ("it reads the complete
//! record for one term, and merges the evidence", Section 3.1). The
//! [`InvertedFileStore`] trait captures exactly that boundary — the
//! subsystem the paper swaps between a custom B-tree package and the Mneme
//! persistent object store (both implementations live in `poir-core`).
//!
//! The store is addressed by the opaque `store_ref` each backend deposited
//! in the hash dictionary at index-build time (Section 3.3).

use crate::error::Result;

/// A pluggable inverted-file backend.
pub trait InvertedFileStore {
    /// Fetches the encoded inverted record behind `store_ref`.
    fn fetch(&mut self, store_ref: u64) -> Result<Vec<u8>>;

    /// Fetches many records at once, one result per reference.
    ///
    /// The default implementation loops over [`InvertedFileStore::fetch`]
    /// (and therefore counts each reference as a record lookup). Backends
    /// with physical layout knowledge override this to batch their device
    /// I/O — the Mneme store coalesces runs of adjacent segments into
    /// single gathered reads.
    fn fetch_batch(&mut self, store_refs: &[u64]) -> Vec<Result<Vec<u8>>> {
        store_refs.iter().map(|&r| self.fetch(r)).collect()
    }

    /// Advisory pre-evaluation prefetch: fault the records behind the given
    /// references into whatever cache the backend maintains, so subsequent
    /// [`InvertedFileStore::fetch`] calls are hits. Unlike
    /// [`InvertedFileStore::fetch_batch`], prefetching does not count
    /// record lookups (keeping the "A" statistic's denominator comparable
    /// across execution modes) and swallows errors — the later fetch
    /// surfaces them. The default implementation does nothing.
    fn prefetch(&mut self, _store_refs: &[u64]) {}

    /// Fetches part of the record behind `store_ref`: `len` bytes starting
    /// at byte `start`. Returns fewer bytes when the record ends before
    /// `start + len`; backends may also return *more* than requested (up
    /// to the whole record) when a partial read is not cheaper. Backends
    /// overriding this count a call with `start == 0` as a record lookup
    /// and continuation calls (`start > 0`) as none, keeping the "A"
    /// statistic's denominator comparable with whole-record fetching.
    ///
    /// The default implementation fetches the whole record and slices it,
    /// which is never cheaper — callers should consult
    /// [`InvertedFileStore::supports_range_read`] before choosing the
    /// range protocol over [`InvertedFileStore::fetch`].
    fn fetch_range(&mut self, store_ref: u64, start: u64, len: usize) -> Result<Vec<u8>> {
        let bytes = self.fetch(store_ref)?;
        if start == 0 && len >= bytes.len() {
            return Ok(bytes);
        }
        let from = (start.min(bytes.len() as u64)) as usize;
        let to = from.saturating_add(len).min(bytes.len());
        Ok(bytes[from..to].to_vec())
    }

    /// Whether [`InvertedFileStore::fetch_range`] can serve a byte range
    /// with less device I/O than a whole-record fetch for at least some
    /// records. `false` (the default) means the range protocol degrades
    /// to whole-record fetches and callers should not bother.
    fn supports_range_read(&self) -> bool {
        false
    }

    /// A free (no-I/O) upper bound on the record's encoded length, when the
    /// backend can answer from in-memory metadata — the Mneme store reads
    /// it off a huge-pool object's segment address. `None` (the default)
    /// means the length is unknown without fetching; callers deciding
    /// between whole-record and range fetching must then probe.
    fn record_len_hint(&self, _store_ref: u64) -> Option<u64> {
        None
    }

    /// Pre-evaluation reservation pass: pin whatever is already resident
    /// for the given references (Section 3.3's query-tree scan). The
    /// default implementation does nothing.
    fn reserve(&mut self, _store_refs: &[u64]) {}

    /// Releases reservations placed by [`InvertedFileStore::reserve`].
    fn release_reservations(&mut self) {}

    /// Number of record fetches served so far (the denominator of the
    /// paper's "A" statistic).
    fn record_lookups(&self) -> u64;
}

/// A trivial memory-resident store, used by unit tests and as the indexing
/// staging area.
#[derive(Debug, Default)]
pub struct MemoryStore {
    records: Vec<Vec<u8>>,
    lookups: u64,
}

impl MemoryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a record, returning the reference to hand to the dictionary.
    pub fn add(&mut self, record: Vec<u8>) -> u64 {
        self.records.push(record);
        (self.records.len() - 1) as u64
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl InvertedFileStore for MemoryStore {
    fn fetch(&mut self, store_ref: u64) -> Result<Vec<u8>> {
        self.lookups += 1;
        self.records.get(store_ref as usize).cloned().ok_or_else(|| {
            crate::error::InqueryError::BadRecord(format!("no record at reference {store_ref}"))
        })
    }

    fn record_lookups(&self) -> u64 {
        self.lookups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_store_round_trips() {
        let mut s = MemoryStore::new();
        let a = s.add(vec![1, 2, 3]);
        let b = s.add(vec![4]);
        assert_eq!(s.fetch(a).unwrap(), vec![1, 2, 3]);
        assert_eq!(s.fetch(b).unwrap(), vec![4]);
        assert_eq!(s.record_lookups(), 2);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn missing_reference_is_an_error() {
        let mut s = MemoryStore::new();
        assert!(s.fetch(0).is_err());
        assert_eq!(s.record_lookups(), 1, "failed fetches still count as lookups");
    }

    #[test]
    fn default_reservation_hooks_are_noops() {
        let mut s = MemoryStore::new();
        s.reserve(&[1, 2, 3]);
        s.prefetch(&[1, 2, 3]);
        s.release_reservations();
        assert!(s.is_empty());
        assert_eq!(s.record_lookups(), 0, "prefetch must not count lookups");
    }

    #[test]
    fn default_fetch_batch_matches_fetch() {
        let mut s = MemoryStore::new();
        let a = s.add(vec![1, 2, 3]);
        let b = s.add(vec![4]);
        let results = s.fetch_batch(&[b, a, 99]);
        assert_eq!(results[0].as_ref().unwrap(), &vec![4]);
        assert_eq!(results[1].as_ref().unwrap(), &vec![1, 2, 3]);
        assert!(results[2].is_err());
        assert_eq!(s.record_lookups(), 3, "default batch counts every reference");
    }
}

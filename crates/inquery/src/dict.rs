//! The open-chaining hash dictionary.
//!
//! "INQUERY uses an open-chaining hash dictionary to map text strings
//! (words) to unique integers called term ids. The hash dictionary also
//! stores summary statistics for each string and resides entirely in main
//! memory during query processing." (Section 3.1)
//!
//! After integration with Mneme, "the Mneme identifier assigned to the
//! object was stored in the INQUERY hash dictionary entry for the
//! associated term" (Section 3.3) — the opaque [`TermEntry::store_ref`]
//! field, which each inverted-file backend interprets its own way.

use std::fmt;

/// A term's unique integer id — the B-tree key and the dictionary index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

/// Summary statistics and storage reference for one term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TermEntry {
    /// Collection frequency: total occurrences across all documents.
    pub cf: u64,
    /// Document frequency: number of documents containing the term.
    pub df: u32,
    /// Opaque reference into the inverted-file store (term id for the
    /// B-tree backend; a Mneme object id for the Mneme backend).
    pub store_ref: u64,
}

const NIL: u32 = u32::MAX;

#[derive(Clone)]
struct Slot {
    str_off: u32,
    str_len: u16,
    next: u32,
    entry: TermEntry,
}

/// Open-chaining hash dictionary: term string → [`TermId`] + [`TermEntry`].
#[derive(Clone)]
pub struct Dictionary {
    buckets: Vec<u32>,
    slots: Vec<Slot>,
    arena: Vec<u8>,
}

impl fmt::Debug for Dictionary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Dictionary")
            .field("terms", &self.slots.len())
            .field("buckets", &self.buckets.len())
            .field("arena_bytes", &self.arena.len())
            .finish()
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl Default for Dictionary {
    fn default() -> Self {
        Self::new()
    }
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Dictionary { buckets: vec![NIL; 1024], slots: Vec::new(), arena: Vec::new() }
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the dictionary holds no terms.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    fn bucket_of(&self, term: &str) -> usize {
        (fnv1a(term.as_bytes()) as usize) & (self.buckets.len() - 1)
    }

    fn slot_term(&self, slot: &Slot) -> &str {
        let start = slot.str_off as usize;
        // The arena only ever receives validated UTF-8 strings.
        std::str::from_utf8(&self.arena[start..start + slot.str_len as usize])
            .expect("arena holds valid utf-8")
    }

    /// Looks up a term's id.
    pub fn lookup(&self, term: &str) -> Option<TermId> {
        let mut cur = self.buckets[self.bucket_of(term)];
        while cur != NIL {
            let slot = &self.slots[cur as usize];
            if self.slot_term(slot) == term {
                return Some(TermId(cur));
            }
            cur = slot.next;
        }
        None
    }

    /// Returns the id for `term`, inserting it with zeroed statistics if
    /// absent.
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(id) = self.lookup(term) {
            return id;
        }
        assert!(term.len() <= u16::MAX as usize, "term too long");
        if self.slots.len() >= self.buckets.len() {
            self.grow();
        }
        let bucket = self.bucket_of(term);
        let id = self.slots.len() as u32;
        let str_off = self.arena.len() as u32;
        self.arena.extend_from_slice(term.as_bytes());
        self.slots.push(Slot {
            str_off,
            str_len: term.len() as u16,
            next: self.buckets[bucket],
            entry: TermEntry::default(),
        });
        self.buckets[bucket] = id;
        TermId(id)
    }

    fn grow(&mut self) {
        let new_len = self.buckets.len() * 2;
        self.buckets = vec![NIL; new_len];
        for (i, slot) in self.slots.iter_mut().enumerate() {
            slot.next = NIL;
            let _ = i;
        }
        // Rebuild chains (bucket_of borrows immutably, so compute first).
        for i in 0..self.slots.len() {
            let term_hash = {
                let slot = &self.slots[i];
                let start = slot.str_off as usize;
                fnv1a(&self.arena[start..start + slot.str_len as usize])
            };
            let bucket = (term_hash as usize) & (new_len - 1);
            self.slots[i].next = self.buckets[bucket];
            self.buckets[bucket] = i as u32;
        }
    }

    /// The term string of `id`.
    pub fn term(&self, id: TermId) -> &str {
        self.slot_term(&self.slots[id.0 as usize])
    }

    /// Read access to a term's statistics.
    pub fn entry(&self, id: TermId) -> &TermEntry {
        &self.slots[id.0 as usize].entry
    }

    /// Mutable access to a term's statistics.
    pub fn entry_mut(&mut self, id: TermId) -> &mut TermEntry {
        &mut self.slots[id.0 as usize].entry
    }

    /// Iterates `(id, term, entry)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str, &TermEntry)> {
        self.slots.iter().enumerate().map(|(i, s)| (TermId(i as u32), self.slot_term(s), &s.entry))
    }

    /// Serializes the dictionary (buckets are rebuilt on load).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.arena.len() + self.slots.len() * 26);
        out.extend_from_slice(b"IQDC");
        out.extend_from_slice(&1u16.to_le_bytes());
        out.extend_from_slice(&(self.slots.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.arena.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.arena);
        for slot in &self.slots {
            out.extend_from_slice(&slot.str_off.to_le_bytes());
            out.extend_from_slice(&slot.str_len.to_le_bytes());
            out.extend_from_slice(&slot.entry.cf.to_le_bytes());
            out.extend_from_slice(&slot.entry.df.to_le_bytes());
            out.extend_from_slice(&slot.entry.store_ref.to_le_bytes());
        }
        out
    }

    /// Deserializes a dictionary written by [`Dictionary::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 14 || &bytes[0..4] != b"IQDC" {
            return None;
        }
        let count = u32::from_le_bytes(bytes[6..10].try_into().unwrap()) as usize;
        let arena_len = u32::from_le_bytes(bytes[10..14].try_into().unwrap()) as usize;
        let arena_end = 14 + arena_len;
        if bytes.len() < arena_end + count * 26 {
            return None;
        }
        let arena = bytes[14..arena_end].to_vec();
        let mut dict = Dictionary {
            buckets: vec![NIL; (count.max(512) * 2).next_power_of_two()],
            slots: Vec::with_capacity(count),
            arena,
        };
        let mut pos = arena_end;
        for _ in 0..count {
            let e = &bytes[pos..pos + 26];
            let str_off = u32::from_le_bytes(e[0..4].try_into().unwrap());
            let str_len = u16::from_le_bytes(e[4..6].try_into().unwrap());
            if str_off as usize + str_len as usize > dict.arena.len() {
                return None;
            }
            std::str::from_utf8(&dict.arena[str_off as usize..str_off as usize + str_len as usize])
                .ok()?;
            dict.slots.push(Slot {
                str_off,
                str_len,
                next: NIL,
                entry: TermEntry {
                    cf: u64::from_le_bytes(e[6..14].try_into().unwrap()),
                    df: u32::from_le_bytes(e[14..18].try_into().unwrap()),
                    store_ref: u64::from_le_bytes(e[18..26].try_into().unwrap()),
                },
            });
            pos += 26;
        }
        // Rebuild hash chains.
        for i in 0..dict.slots.len() {
            let bucket = {
                let slot = &dict.slots[i];
                let start = slot.str_off as usize;
                (fnv1a(&dict.arena[start..start + slot.str_len as usize]) as usize)
                    & (dict.buckets.len() - 1)
            };
            dict.slots[i].next = dict.buckets[bucket];
            dict.buckets[bucket] = i as u32;
        }
        Some(dict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_sequential_ids() {
        let mut d = Dictionary::new();
        assert_eq!(d.intern("alpha"), TermId(0));
        assert_eq!(d.intern("beta"), TermId(1));
        assert_eq!(d.intern("alpha"), TermId(0), "re-intern returns the same id");
        assert_eq!(d.len(), 2);
        assert_eq!(d.term(TermId(1)), "beta");
    }

    #[test]
    fn lookup_misses_return_none() {
        let mut d = Dictionary::new();
        d.intern("present");
        assert_eq!(d.lookup("absent"), None);
        assert!(d.lookup("present").is_some());
    }

    #[test]
    fn statistics_are_mutable() {
        let mut d = Dictionary::new();
        let id = d.intern("term");
        d.entry_mut(id).cf = 42;
        d.entry_mut(id).df = 7;
        d.entry_mut(id).store_ref = 0xDEADBEEF;
        assert_eq!(d.entry(id).cf, 42);
        assert_eq!(d.entry(id).df, 7);
        assert_eq!(d.entry(id).store_ref, 0xDEADBEEF);
    }

    #[test]
    fn growth_preserves_all_terms() {
        let mut d = Dictionary::new();
        let n = 10_000;
        for i in 0..n {
            let id = d.intern(&format!("term-{i}"));
            d.entry_mut(id).cf = i as u64;
        }
        assert_eq!(d.len(), n);
        for i in 0..n {
            let id = d.lookup(&format!("term-{i}")).expect("term survives growth");
            assert_eq!(d.entry(id).cf, i as u64);
        }
    }

    #[test]
    fn serialization_round_trips() {
        let mut d = Dictionary::new();
        for i in 0..500 {
            let id = d.intern(&format!("word{i}"));
            d.entry_mut(id).cf = i as u64 * 3;
            d.entry_mut(id).df = i as u32;
            d.entry_mut(id).store_ref = i as u64 | (1 << 40);
        }
        let bytes = d.to_bytes();
        let d2 = Dictionary::from_bytes(&bytes).unwrap();
        assert_eq!(d2.len(), d.len());
        for (id, term, entry) in d.iter() {
            assert_eq!(d2.lookup(term), Some(id));
            assert_eq!(d2.entry(id), entry);
            assert_eq!(d2.term(id), term);
        }
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(Dictionary::from_bytes(b"").is_none());
        assert!(Dictionary::from_bytes(b"NOPE00000000000000").is_none());
        // Truncated entry table.
        let mut d = Dictionary::new();
        d.intern("x");
        let bytes = d.to_bytes();
        assert!(Dictionary::from_bytes(&bytes[..bytes.len() - 1]).is_none());
    }

    #[test]
    fn iter_visits_in_id_order() {
        let mut d = Dictionary::new();
        d.intern("c");
        d.intern("a");
        d.intern("b");
        let terms: Vec<&str> = d.iter().map(|(_, t, _)| t).collect();
        assert_eq!(terms, vec!["c", "a", "b"]);
    }

    #[test]
    fn unicode_terms_are_preserved() {
        let mut d = Dictionary::new();
        let id = d.intern("café");
        let d2 = Dictionary::from_bytes(&d.to_bytes()).unwrap();
        assert_eq!(d2.lookup("café"), Some(id));
    }
}

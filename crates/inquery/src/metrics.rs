//! Recall / precision evaluation.
//!
//! "Traditionally, IR system performance has been measured in terms of
//! recall and precision. ... A relevance file lists the documents that
//! should have been retrieved for each query and is required for
//! determining recall and precision." (Sections 4, 4.2). The paper fixes
//! effectiveness across the compared systems and measures time — but the
//! query sets "are designed to evaluate an IR system's recall and
//! precision", so the harness reports both.

use std::collections::HashSet;

use crate::postings::DocId;
use crate::query::eval::ScoredDoc;

/// Relevance judgments for one query.
#[derive(Debug, Clone, Default)]
pub struct Judgments {
    relevant: HashSet<DocId>,
}

impl Judgments {
    /// Builds judgments from the relevant document ids.
    pub fn new(relevant: impl IntoIterator<Item = DocId>) -> Self {
        Judgments { relevant: relevant.into_iter().collect() }
    }

    /// Number of relevant documents.
    pub fn len(&self) -> usize {
        self.relevant.len()
    }

    /// Whether no documents are relevant.
    pub fn is_empty(&self) -> bool {
        self.relevant.is_empty()
    }

    /// Whether `doc` is judged relevant.
    pub fn is_relevant(&self, doc: DocId) -> bool {
        self.relevant.contains(&doc)
    }

    /// Precision at cutoff `k`: fraction of the top `k` that are relevant.
    pub fn precision_at(&self, ranked: &[ScoredDoc], k: usize) -> f64 {
        if k == 0 {
            return 0.0;
        }
        let hits = ranked.iter().take(k).filter(|s| self.is_relevant(s.doc)).count();
        hits as f64 / k as f64
    }

    /// Recall at cutoff `k`: fraction of relevant documents in the top `k`.
    pub fn recall_at(&self, ranked: &[ScoredDoc], k: usize) -> f64 {
        if self.relevant.is_empty() {
            return 0.0;
        }
        let hits = ranked.iter().take(k).filter(|s| self.is_relevant(s.doc)).count();
        hits as f64 / self.relevant.len() as f64
    }

    /// Non-interpolated average precision over the full ranking.
    pub fn average_precision(&self, ranked: &[ScoredDoc]) -> f64 {
        if self.relevant.is_empty() {
            return 0.0;
        }
        let mut hits = 0usize;
        let mut sum = 0.0;
        for (i, s) in ranked.iter().enumerate() {
            if self.is_relevant(s.doc) {
                hits += 1;
                sum += hits as f64 / (i + 1) as f64;
            }
        }
        sum / self.relevant.len() as f64
    }

    /// Interpolated precision at the 11 standard recall points (0.0, 0.1,
    /// ..., 1.0).
    pub fn interpolated_11pt(&self, ranked: &[ScoredDoc]) -> [f64; 11] {
        let mut out = [0.0f64; 11];
        if self.relevant.is_empty() {
            return out;
        }
        // precision/recall after each rank position.
        let mut points: Vec<(f64, f64)> = Vec::new(); // (recall, precision)
        let mut hits = 0usize;
        for (i, s) in ranked.iter().enumerate() {
            if self.is_relevant(s.doc) {
                hits += 1;
                points
                    .push((hits as f64 / self.relevant.len() as f64, hits as f64 / (i + 1) as f64));
            }
        }
        for (level, slot) in out.iter_mut().enumerate() {
            let r = level as f64 / 10.0;
            *slot = points
                .iter()
                .filter(|&&(recall, _)| recall >= r - 1e-12)
                .map(|&(_, p)| p)
                .fold(0.0, f64::max);
        }
        out
    }
}

/// Mean of a metric across queries (e.g. mean average precision).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranked(docs: &[u32]) -> Vec<ScoredDoc> {
        docs.iter()
            .enumerate()
            .map(|(i, &d)| ScoredDoc { doc: DocId(d), score: 1.0 - i as f64 * 0.01 })
            .collect()
    }

    #[test]
    fn precision_and_recall_at_cutoffs() {
        let j = Judgments::new([DocId(1), DocId(3), DocId(9)]);
        let r = ranked(&[1, 2, 3, 4, 5]);
        assert_eq!(j.precision_at(&r, 1), 1.0);
        assert_eq!(j.precision_at(&r, 2), 0.5);
        assert!((j.precision_at(&r, 3) - 2.0 / 3.0).abs() < 1e-12);
        assert!((j.recall_at(&r, 3) - 2.0 / 3.0).abs() < 1e-12);
        assert!((j.recall_at(&r, 5) - 2.0 / 3.0).abs() < 1e-12, "doc 9 never retrieved");
        assert_eq!(j.precision_at(&r, 0), 0.0);
    }

    #[test]
    fn average_precision_perfect_and_worst() {
        let j = Judgments::new([DocId(1), DocId(2)]);
        assert_eq!(j.average_precision(&ranked(&[1, 2, 3])), 1.0);
        // Relevant docs at ranks 2 and 4: AP = (1/2 + 2/4)/2 = 0.5.
        assert!((j.average_precision(&ranked(&[0, 1, 3, 2])) - 0.5).abs() < 1e-12);
        assert_eq!(j.average_precision(&ranked(&[5, 6])), 0.0);
    }

    #[test]
    fn eleven_point_interpolation_is_monotone_nonincreasing() {
        let j = Judgments::new([DocId(0), DocId(2), DocId(4), DocId(6)]);
        let pts = j.interpolated_11pt(&ranked(&[0, 1, 2, 3, 4, 5, 6, 7]));
        assert_eq!(pts[0], 1.0, "interpolated precision at recall 0");
        for w in pts.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "interpolation must be non-increasing: {pts:?}");
        }
        assert!(pts[10] > 0.0, "full recall was reached");
    }

    #[test]
    fn empty_judgments_are_all_zero() {
        let j = Judgments::new([]);
        let r = ranked(&[1, 2, 3]);
        assert!(j.is_empty());
        assert_eq!(j.recall_at(&r, 3), 0.0);
        assert_eq!(j.average_precision(&r), 0.0);
        assert_eq!(j.interpolated_11pt(&r), [0.0; 11]);
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[0.25, 0.75]) - 0.5).abs() < 1e-12);
    }
}

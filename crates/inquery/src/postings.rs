//! Inverted-list record format.
//!
//! "There is one record per term. A record has a header containing summary
//! statistics about the term, followed by a listing of the documents, and
//! the locations within each document, where the term occurs. The record is
//! stored as a vector of integers in a compressed format." (Section 3.1)
//!
//! Two encodings share the wire format (version is self-describing):
//!
//! **v1** — the legacy all-vbyte layout, still written for short records
//! (`df <= BLOCK_SIZE` with a `u32`-range cf) and still decoded for
//! records written by older builds:
//!
//! ```text
//! header:   df, cf, max_tf                       (vbyte)
//! postings: df × [ doc-gap, tf, tf × position-gap ]
//! ```
//!
//! **v2** — bit-packed blocks, written whenever `df > BLOCK_SIZE` (and for
//! the rare short record whose cf exceeds `u32::MAX`). The header starts
//! with a vbyte 0 — impossible as a v1 `df` except for the exactly-3-byte
//! empty record — followed by the version and a full-width cf:
//!
//! ```text
//! header:    0x80, version=2, df, cf-hi, cf-lo, max_tf     (vbyte)
//! directory: ceil(df / BLOCK_SIZE) ×
//!              [ last-doc-gap, byte-len, block-max-tf,
//!                doc-width, tf-width ]                      (vbyte)
//! block:     packed doc-gaps  (doc-width bits each, LE u64 words)
//!            packed tf-1      (tf-width bits each, LE u64 words)
//!            df_block × [ tf × position-gap ]               (vbyte)
//! ```
//!
//! `last-doc-gap` delta-codes each block's largest document id against the
//! previous block's, `byte-len` is the encoded size of the whole block,
//! and `block-max-tf` caps the tf of any posting inside. `doc-width` and
//! `tf-width` are the block's fixed bit widths: the packed arrays decode
//! word-at-a-time into scratch buffers ([`crate::codec::unpack_bits`]),
//! with no per-integer branching. Term frequencies are stored minus one
//! (every posting has at least one occurrence), so an all-`tf=1` block
//! packs its tf array into zero bytes. Doc gaps run continuously across
//! block boundaries, so a cursor that seeks to block *i* re-bases on block
//! *i−1*'s last doc. The directory length is derived from `df`, never
//! stored. A v2 record with `df <= BLOCK_SIZE` carries no directory and
//! keeps the v1 posting stream after its extended header.
//!
//! Document ids and within-document positions are delta-coded, which gives
//! the ~60% compression the paper reports on posting-heavy records.

use std::sync::Arc;

use crate::block_cache::{BlockCache, BlockKey, DecodedBlock};
use crate::codec::{bit_width, decode_vbyte, encode_vbyte, pack_bits, packed_len, unpack_bits};

/// Postings per skip block in the blocked record layout.
pub const BLOCK_SIZE: u32 = 128;

/// The self-describing version number of the bit-packed record format.
const FORMAT_V2: u32 = 2;

/// One entry of a blocked record's skip directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkipBlock {
    /// Largest document id in the block.
    pub last_doc: u32,
    /// Byte offset of the block's first posting within the record.
    pub offset: usize,
    /// Encoded length of the block's postings in bytes.
    pub len: usize,
    /// Largest within-document tf in the block.
    pub max_tf: u32,
    /// Bit width of the block's packed doc gaps (0 in v1 records).
    pub doc_width: u32,
    /// Bit width of the block's packed tf−1 values (0 means either a v1
    /// record or an all-`tf=1` v2 block; [`BlockCursor`] knows which).
    pub tf_width: u32,
}

/// A document's ordinal id within its collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u32);

/// One document's entry in an inverted list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Posting {
    /// The document.
    pub doc: DocId,
    /// Number of occurrences in the document.
    pub tf: u32,
    /// Ascending word positions of each occurrence.
    pub positions: Vec<u32>,
}

/// A fully decoded inverted record.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InvertedRecord {
    /// Collection frequency (total occurrences).
    pub cf: u64,
    /// Largest within-document tf (used for belief normalisation caps).
    pub max_tf: u32,
    /// Per-document postings, ascending by document id.
    pub postings: Vec<Posting>,
}

impl InvertedRecord {
    /// Document frequency.
    pub fn df(&self) -> u32 {
        self.postings.len() as u32
    }

    /// Builds a record from postings (which must be ascending by doc).
    pub fn from_postings(postings: Vec<Posting>) -> Self {
        debug_assert!(postings.windows(2).all(|w| w[0].doc < w[1].doc));
        let cf = postings.iter().map(|p| p.tf as u64).sum();
        let max_tf = postings.iter().map(|p| p.tf).max().unwrap_or(0);
        InvertedRecord { cf, max_tf, postings }
    }

    /// Serializes to the compressed on-disk form: the legacy v1 layout for
    /// short records, bit-packed v2 blocks when `df > BLOCK_SIZE` (or when
    /// cf needs more than 32 bits).
    pub fn encode(&self) -> Vec<u8> {
        let df = self.postings.len() as u32;
        let mut out = Vec::with_capacity(8 + self.postings.len() * 4);
        if df <= BLOCK_SIZE && self.cf <= u32::MAX as u64 {
            encode_vbyte(df, &mut out);
            encode_vbyte(self.cf as u32, &mut out);
            encode_vbyte(self.max_tf, &mut out);
            let mut prev_doc = 0u32;
            let mut first = true;
            for p in &self.postings {
                encode_posting(p, &mut first, &mut prev_doc, &mut out);
            }
            return out;
        }
        encode_v2_header(df, self.cf, self.max_tf, &mut out);
        if df <= BLOCK_SIZE {
            // An over-u32 cf on a short list: extended header, v1 postings.
            let mut prev_doc = 0u32;
            let mut first = true;
            for p in &self.postings {
                encode_posting(p, &mut first, &mut prev_doc, &mut out);
            }
            return out;
        }
        // Blocked layout: pack the posting body first to learn each
        // block's byte length and widths, then emit the directory ahead.
        let mut body = Vec::with_capacity(self.postings.len() * 4);
        let mut directory = Vec::with_capacity(self.postings.len().div_ceil(BLOCK_SIZE as usize));
        let mut gaps = Vec::with_capacity(BLOCK_SIZE as usize);
        let mut tfs_m1 = Vec::with_capacity(BLOCK_SIZE as usize);
        let mut pos_stream = Vec::new();
        let mut prev_doc = 0u32;
        let mut first = true;
        for chunk in self.postings.chunks(BLOCK_SIZE as usize) {
            gaps.clear();
            tfs_m1.clear();
            pos_stream.clear();
            let mut block_max_tf = 0u32;
            for p in chunk {
                gaps.push(if first { p.doc.0 } else { p.doc.0 - prev_doc });
                first = false;
                prev_doc = p.doc.0;
                debug_assert!(p.tf >= 1, "v2 blocks store tf-1; every posting needs tf >= 1");
                tfs_m1.push(p.tf.saturating_sub(1));
                block_max_tf = block_max_tf.max(p.tf);
                debug_assert_eq!(p.positions.len(), p.tf as usize);
                let mut prev_pos = 0u32;
                for (j, &q) in p.positions.iter().enumerate() {
                    encode_vbyte(if j == 0 { q } else { q - prev_pos }, &mut pos_stream);
                    prev_pos = q;
                }
            }
            let start = body.len();
            let (doc_width, tf_width) = pack_block(&gaps, &tfs_m1, &pos_stream, &mut body);
            directory.push((
                chunk[chunk.len() - 1].doc.0,
                body.len() - start,
                block_max_tf,
                doc_width,
                tf_width,
            ));
        }
        encode_v2_directory(&directory, &mut out);
        out.extend_from_slice(&body);
        out
    }

    /// Decodes a record written by [`InvertedRecord::encode`] (either
    /// format version).
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let (df, cf, max_tf, v2) = parse_header(bytes, &mut pos)?;
        // Untrusted input: a posting costs at least 3 bytes in v1 and at
        // least one position byte in v2, so a declared df larger than the
        // record is corrupt — and pre-allocation must never trust the raw
        // value.
        if (df as usize) > bytes.len() {
            return None;
        }
        if v2 && df > BLOCK_SIZE {
            return Self::decode_packed(bytes, df, cf, max_tf);
        }
        let blocks = if df > BLOCK_SIZE {
            let blocks = parse_skip_directory(bytes, &mut pos, df, false)?;
            // The directory must describe exactly the bytes that follow it.
            let last = blocks.last()?;
            if last.offset.checked_add(last.len)? != bytes.len() {
                return None;
            }
            blocks
        } else {
            Vec::new()
        };
        let mut postings = Vec::with_capacity(df as usize);
        let mut prev_doc = 0u32;
        for i in 0..df {
            let block = &blocks.get((i / BLOCK_SIZE) as usize);
            if let Some(b) = block {
                if i % BLOCK_SIZE == 0 && pos != b.offset {
                    return None; // block does not start where the directory says
                }
            }
            let gap = decode_vbyte(bytes, &mut pos)?;
            let doc = if i == 0 { gap } else { prev_doc.checked_add(gap)? };
            prev_doc = doc;
            let tf = decode_vbyte(bytes, &mut pos)?;
            if (tf as usize) > bytes.len() {
                return None;
            }
            if let Some(b) = block {
                if tf > b.max_tf {
                    return None; // block-max invariant violated
                }
                let last_in_block = i % BLOCK_SIZE == BLOCK_SIZE - 1 || i == df - 1;
                if last_in_block && doc != b.last_doc {
                    return None; // directory's last-doc disagrees with the data
                }
            }
            let mut positions = Vec::with_capacity(tf as usize);
            let mut prev_pos = 0u32;
            for j in 0..tf {
                let pgap = decode_vbyte(bytes, &mut pos)?;
                let p = if j == 0 { pgap } else { prev_pos.checked_add(pgap)? };
                prev_pos = p;
                positions.push(p);
            }
            postings.push(Posting { doc: DocId(doc), tf, positions });
        }
        if pos != bytes.len() {
            return None; // trailing garbage
        }
        Some(InvertedRecord { cf, max_tf, postings })
    }

    /// Decodes a v2 blocked record by streaming a [`BlockCursor`] over it,
    /// with whole-record strictness the cursor alone does not enforce: the
    /// directory must span exactly the record, and every block's position
    /// stream must end exactly at its block boundary.
    fn decode_packed(bytes: &[u8], df: u32, cf: u64, max_tf: u32) -> Option<Self> {
        let (mut cur, ..) = BlockCursor::open(bytes)?;
        let last = cur.blocks.last()?;
        if last.offset.checked_add(last.len)? != bytes.len() {
            return None;
        }
        let mut postings = Vec::with_capacity(df as usize);
        for i in 0..df {
            postings.push(cur.next(bytes)?);
            let block_boundary = (i + 1) % BLOCK_SIZE == 0 || i + 1 == df;
            if block_boundary && cur.pos_ptr != cur.pos_end {
                return None; // slack bytes inside the block's position region
            }
        }
        Some(InvertedRecord { cf, max_tf, postings })
    }

    /// Decodes only the `(df, cf, max_tf)` header (either format version).
    pub fn decode_header(bytes: &[u8]) -> Option<(u32, u64, u32)> {
        let mut pos = 0usize;
        let (df, cf, max_tf, _) = parse_header(bytes, &mut pos)?;
        Some((df, cf, max_tf))
    }
}

/// Parses a record header of either version, returning
/// `(df, cf, max_tf, is_v2)`. A leading vbyte 0 signals the v2 extended
/// header — every v2 record has `df > 0`, and the only v1 record starting
/// with 0 is the empty record, whose "version" field (really its cf) is
/// either not 2 or is followed by `df = 0`; both fall back to v1.
fn parse_header(bytes: &[u8], pos: &mut usize) -> Option<(u32, u64, u32, bool)> {
    let first = decode_vbyte(bytes, pos)?;
    if first == 0 {
        let mark = *pos;
        if decode_vbyte(bytes, pos) == Some(FORMAT_V2) {
            if let Some(df) = decode_vbyte(bytes, pos) {
                if df > 0 {
                    // Committed: a v1 empty record is exactly three vbytes,
                    // so a parsed df > 0 here cannot be v1.
                    let cf_hi = decode_vbyte(bytes, pos)? as u64;
                    let cf_lo = decode_vbyte(bytes, pos)? as u64;
                    let max_tf = decode_vbyte(bytes, pos)?;
                    return Some((df, (cf_hi << 32) | cf_lo, max_tf, true));
                }
            }
        }
        // The leading 0 was a v1 empty record's df.
        *pos = mark;
        let cf = decode_vbyte(bytes, pos)? as u64;
        let max_tf = decode_vbyte(bytes, pos)?;
        return Some((0, cf, max_tf, false));
    }
    let cf = decode_vbyte(bytes, pos)? as u64;
    let max_tf = decode_vbyte(bytes, pos)?;
    Some((first, cf, max_tf, false))
}

/// Emits the v2 extended header: sentinel 0, version, df, cf split into
/// two vbyte halves (full 64-bit round-trip), max_tf.
pub(crate) fn encode_v2_header(df: u32, cf: u64, max_tf: u32, out: &mut Vec<u8>) {
    encode_vbyte(0, out);
    encode_vbyte(FORMAT_V2, out);
    encode_vbyte(df, out);
    encode_vbyte((cf >> 32) as u32, out);
    encode_vbyte(cf as u32, out);
    encode_vbyte(max_tf, out);
}

/// Emits the v2 skip directory from
/// `(last_doc, len, block_max_tf, doc_width, tf_width)` entries.
pub(crate) fn encode_v2_directory(directory: &[(u32, usize, u32, u32, u32)], out: &mut Vec<u8>) {
    let mut prev_last = 0u32;
    for (i, &(last_doc, len, block_max_tf, doc_width, tf_width)) in directory.iter().enumerate() {
        encode_vbyte(if i == 0 { last_doc } else { last_doc - prev_last }, out);
        prev_last = last_doc;
        debug_assert!(len <= u32::MAX as usize);
        encode_vbyte(len as u32, out);
        encode_vbyte(block_max_tf, out);
        encode_vbyte(doc_width, out);
        encode_vbyte(tf_width, out);
    }
}

/// Packs one block's raw arrays into the v2 wire form — packed doc gaps,
/// packed tf−1 values, then the already-vbyte-coded position streams —
/// returning the chosen `(doc_width, tf_width)`. Shared by
/// [`InvertedRecord::encode`] and the index builder so both emit
/// byte-identical blocks.
pub(crate) fn pack_block(
    gaps: &[u32],
    tfs_m1: &[u32],
    pos_stream: &[u8],
    out: &mut Vec<u8>,
) -> (u32, u32) {
    let doc_width = bit_width(gaps.iter().copied().max().unwrap_or(0));
    let tf_width = bit_width(tfs_m1.iter().copied().max().unwrap_or(0));
    pack_bits(gaps, doc_width, out);
    pack_bits(tfs_m1, tf_width, out);
    out.extend_from_slice(pos_stream);
    (doc_width, tf_width)
}

/// Re-interleaves raw per-posting arrays into the v1 posting stream
/// `doc-gap, tf, positions...` — the index builder keeps the filling block
/// as raw arrays (so completed blocks can be packed) and uses this to emit
/// short records in the v1 layout. `pos_stream` holds each posting's
/// position gaps back to back; vbyte terminators (high bit set) delimit
/// the individual integers.
pub(crate) fn interleave_vbyte_postings(
    gaps: &[u32],
    tfs_m1: &[u32],
    pos_stream: &[u8],
    out: &mut Vec<u8>,
) {
    let mut cursor = 0usize;
    for (&gap, &tf_m1) in gaps.iter().zip(tfs_m1) {
        encode_vbyte(gap, out);
        let tf = tf_m1 + 1;
        encode_vbyte(tf, out);
        let start = cursor;
        for _ in 0..tf {
            while pos_stream[cursor] & 0x80 == 0 {
                cursor += 1;
            }
            cursor += 1; // past the final byte of this vbyte
        }
        out.extend_from_slice(&pos_stream[start..cursor]);
    }
    debug_assert_eq!(cursor, pos_stream.len());
}

fn encode_posting(p: &Posting, first: &mut bool, prev_doc: &mut u32, out: &mut Vec<u8>) {
    let gap = if *first { p.doc.0 } else { p.doc.0 - *prev_doc };
    *first = false;
    *prev_doc = p.doc.0;
    encode_vbyte(gap, out);
    encode_vbyte(p.tf, out);
    debug_assert_eq!(p.positions.len(), p.tf as usize);
    let mut prev_pos = 0u32;
    for (j, &pos) in p.positions.iter().enumerate() {
        let pgap = if j == 0 { pos } else { pos - prev_pos };
        prev_pos = pos;
        encode_vbyte(pgap, out);
    }
}

/// Parses a blocked record's skip directory (the cursor/decoder already
/// consumed the header). `packed` selects the 5-field v2 entry over the
/// 3-field v1 entry. Offsets come back rebased onto the record, pointing
/// at each block's first posting byte.
fn parse_skip_directory(
    bytes: &[u8],
    pos: &mut usize,
    df: u32,
    packed: bool,
) -> Option<Vec<SkipBlock>> {
    let num_blocks = df.div_ceil(BLOCK_SIZE) as usize;
    // Each directory entry costs at least 3 (v1) or 5 (v2) bytes, so an
    // entry count the bytes cannot possibly hold is corrupt — and
    // pre-allocation must never trust the raw value.
    if num_blocks.checked_mul(if packed { 5 } else { 3 })? > bytes.len() {
        return None;
    }
    let mut blocks = Vec::with_capacity(num_blocks);
    let mut prev_last = 0u32;
    let mut offset = 0usize;
    for i in 0..num_blocks {
        let gap = decode_vbyte(bytes, pos)?;
        if i > 0 && gap == 0 {
            return None; // block last-docs must strictly ascend
        }
        let last_doc = if i == 0 { gap } else { prev_last.checked_add(gap)? };
        prev_last = last_doc;
        let len = decode_vbyte(bytes, pos)? as usize;
        if len == 0 {
            return None; // a block holds at least one posting
        }
        let max_tf = decode_vbyte(bytes, pos)?;
        let (doc_width, tf_width) = if packed {
            let dw = decode_vbyte(bytes, pos)?;
            let tw = decode_vbyte(bytes, pos)?;
            if dw > 32 || tw > 32 {
                return None; // widths are bits of a u32
            }
            let n = if i + 1 < num_blocks {
                BLOCK_SIZE as usize
            } else {
                df as usize - i * BLOCK_SIZE as usize
            };
            // The packed arrays plus at least one position byte per
            // posting must fit the declared block length.
            if packed_len(n, dw).checked_add(packed_len(n, tw))?.checked_add(n)? > len {
                return None;
            }
            (dw, tw)
        } else {
            (0, 0)
        };
        blocks.push(SkipBlock { last_doc, offset, len, max_tf, doc_width, tf_width });
        offset = offset.checked_add(len)?;
    }
    // Rebase offsets onto the record: postings start where the directory ends.
    let postings_start = *pos;
    for b in &mut blocks {
        b.offset = b.offset.checked_add(postings_start)?;
    }
    Some(blocks)
}

/// How much work a [`BlockCursor::seek`] bypassed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SeekSummary {
    /// Block boundaries jumped without decoding.
    pub blocks_skipped: u64,
    /// Postings bypassed without decoding.
    pub postings_skipped: u64,
}

/// Cursor state detached from the record bytes, so callers that fetch a
/// record incrementally (range reads) can keep one cursor while the byte
/// buffer grows. Every decoding method takes the byte slice the cursor was
/// opened on — or any longer prefix-compatible slice of the same record.
#[derive(Debug, Clone)]
pub struct BlockCursor {
    pos: usize,
    df: u32,
    remaining: u32,
    prev_doc: u32,
    first: bool,
    /// Whether the record is a v2 blocked record with bit-packed blocks.
    packed: bool,
    blocks: Vec<SkipBlock>,
    /// Scratch: the loaded block's absolute doc ids (packed records only).
    docs: Vec<u32>,
    /// Scratch: the loaded block's tf values (packed records only).
    tfs: Vec<u32>,
    /// Block index currently decoded into the scratch buffers
    /// (`usize::MAX` when none is).
    loaded: usize,
    /// Byte cursor into the loaded block's position streams.
    pos_ptr: usize,
    /// One past the loaded block's last byte.
    pos_end: usize,
    /// Postings of the loaded block whose position streams `pos_ptr` has
    /// passed.
    pos_read: usize,
    bytes_decoded: u64,
    blocks_bitpacked: u64,
    /// Attached decoded-block cache, when the owning store maintains one.
    cache: Option<CacheHandle>,
    cache_hits: u64,
    cache_misses: u64,
}

/// A cursor's attachment to a shared decoded-block cache: the cache itself
/// plus the key prefix identifying this cursor's record in it.
#[derive(Debug, Clone)]
struct CacheHandle {
    cache: Arc<BlockCache>,
    /// The owning store's epoch at attach time (see [`BlockKey::epoch`]).
    epoch: u64,
    /// Backend object id of the record this cursor walks.
    object: u64,
}

impl BlockCursor {
    /// Opens a cursor, consuming the header (and skip directory, when the
    /// record is blocked). `bytes` may be a prefix of the full record as
    /// long as it covers the header and directory.
    pub fn open(bytes: &[u8]) -> Option<(Self, u32, u64, u32)> {
        let mut pos = 0usize;
        let (df, cf, max_tf, v2) = parse_header(bytes, &mut pos)?;
        let packed = v2 && df > BLOCK_SIZE;
        let blocks = if df > BLOCK_SIZE {
            parse_skip_directory(bytes, &mut pos, df, packed)?
        } else {
            Vec::new()
        };
        let cursor = BlockCursor {
            pos,
            df,
            remaining: df,
            prev_doc: 0,
            first: true,
            packed,
            blocks,
            docs: Vec::new(),
            tfs: Vec::new(),
            loaded: usize::MAX,
            pos_ptr: 0,
            pos_end: 0,
            pos_read: 0,
            bytes_decoded: 0,
            blocks_bitpacked: 0,
            cache: None,
            cache_hits: 0,
            cache_misses: 0,
        };
        Some((cursor, df, cf, max_tf))
    }

    /// Attaches a decoded-block cache. `epoch` and `object` form the cache
    /// key's record half; the caller (the store that owns the cache) must
    /// bump `epoch` whenever the record's bytes can have changed.
    pub fn attach_cache(&mut self, cache: Arc<BlockCache>, epoch: u64, object: u64) {
        self.cache = Some(CacheHandle { cache, epoch, object });
    }

    /// Packed blocks this cursor served from the attached cache.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Packed blocks this cursor decoded despite an attached cache.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses
    }

    /// Encoded bytes this cursor has decoded so far (packed arrays, vbyte
    /// postings, and position streams it actually touched).
    pub fn bytes_decoded(&self) -> u64 {
        self.bytes_decoded
    }

    /// Bit-packed blocks this cursor has word-decoded into scratch.
    pub fn blocks_bitpacked(&self) -> u64 {
        self.blocks_bitpacked
    }

    /// Postings not yet consumed.
    pub fn remaining(&self) -> u32 {
        self.remaining
    }

    /// Document frequency of the underlying record.
    pub fn df(&self) -> u32 {
        self.df
    }

    /// The skip directory (empty for unblocked records).
    pub fn blocks(&self) -> &[SkipBlock] {
        &self.blocks
    }

    /// Total encoded record length implied by the skip directory (`None`
    /// for unblocked records, whose length the directory cannot tell).
    pub fn total_len(&self) -> Option<usize> {
        self.blocks.last().map(|b| b.offset + b.len)
    }

    /// Index of the block holding the next posting.
    fn current_block(&self) -> usize {
        ((self.df - self.remaining) / BLOCK_SIZE) as usize
    }

    /// Index of the block holding the next posting (`None` for unblocked
    /// or exhausted cursors).
    pub fn current_block_index(&self) -> Option<usize> {
        if self.blocks.is_empty() || self.remaining == 0 {
            return None;
        }
        Some(self.current_block())
    }

    /// Block-max tf of the block holding the next posting (`None` for
    /// unblocked or exhausted cursors).
    pub fn current_block_max_tf(&self) -> Option<u32> {
        if self.blocks.is_empty() || self.remaining == 0 {
            return None;
        }
        self.blocks.get(self.current_block()).map(|b| b.max_tf)
    }

    /// Byte offset one past the block holding the next posting. Callers
    /// that fetch the record incrementally must have bytes up to here
    /// before decoding (`None` for unblocked or exhausted cursors).
    pub fn current_block_end(&self) -> Option<usize> {
        if self.blocks.is_empty() || self.remaining == 0 {
            return None;
        }
        self.blocks.get(self.current_block()).map(|b| b.offset + b.len)
    }

    /// Jumps forward to the first block that could contain `target`,
    /// bypassing every block whose last doc precedes it. Never decodes a
    /// posting and never moves backward; a no-op on unblocked records.
    pub fn seek(&mut self, target: u32) -> SeekSummary {
        if self.blocks.is_empty() || self.remaining == 0 {
            return SeekSummary::default();
        }
        let cur = self.current_block();
        let mut t = cur;
        while t < self.blocks.len() && self.blocks[t].last_doc < target {
            t += 1;
        }
        if t == cur {
            return SeekSummary::default();
        }
        if t == self.blocks.len() {
            // Every remaining document precedes `target`: exhaust the cursor.
            let skipped = self.remaining as u64;
            let last = &self.blocks[t - 1];
            self.pos = last.offset + last.len;
            self.prev_doc = last.last_doc;
            self.first = false;
            self.remaining = 0;
            return SeekSummary { blocks_skipped: (t - cur) as u64, postings_skipped: skipped };
        }
        let consumed = self.df - self.remaining;
        let skipped = (t as u32 * BLOCK_SIZE - consumed) as u64;
        self.pos = self.blocks[t].offset;
        self.prev_doc = self.blocks[t - 1].last_doc;
        self.first = false;
        self.remaining = self.df - t as u32 * BLOCK_SIZE;
        SeekSummary { blocks_skipped: (t - cur) as u64, postings_skipped: skipped }
    }

    /// Decodes the next posting, or `None` at the end.
    pub fn next(&mut self, bytes: &[u8]) -> Option<Posting> {
        if self.packed {
            let (doc, tf, i) = self.packed_doc_tf(bytes)?;
            if (tf as usize) > bytes.len() {
                return None; // corrupt: more positions declared than bytes
            }
            // Fast-forward the position stream past postings whose
            // positions were never read (next_doc_tf never touches them).
            while self.pos_read < i {
                for _ in 0..self.tfs[self.pos_read] {
                    decode_vbyte(bytes, &mut self.pos_ptr)?;
                }
                self.pos_read += 1;
            }
            let start = self.pos_ptr;
            let mut positions = Vec::with_capacity(tf as usize);
            let mut prev = 0u32;
            for j in 0..tf {
                let pgap = decode_vbyte(bytes, &mut self.pos_ptr)?;
                prev = if j == 0 { pgap } else { prev.checked_add(pgap)? };
                positions.push(prev);
            }
            if self.pos_ptr > self.pos_end {
                return None; // stream ran past the block boundary
            }
            self.pos_read = i + 1;
            self.bytes_decoded += (self.pos_ptr - start) as u64;
            self.remaining -= 1;
            return Some(Posting { doc, tf, positions });
        }
        let start = self.pos;
        let (doc, tf) = self.next_doc_header(bytes)?;
        let mut positions = Vec::with_capacity(tf as usize);
        let mut prev = 0u32;
        for j in 0..tf {
            let pgap = decode_vbyte(bytes, &mut self.pos)?;
            prev = if j == 0 { pgap } else { prev.checked_add(pgap)? };
            positions.push(prev);
        }
        self.bytes_decoded += (self.pos - start) as u64;
        self.remaining -= 1;
        Some(Posting { doc, tf, positions })
    }

    /// Decodes the next posting's doc and tf, skipping its positions
    /// without allocating — the document-at-a-time scoring hot path. On
    /// packed records this is a pair of array reads: positions are not
    /// even scanned past, because the packed block keeps them out of line.
    #[inline]
    pub fn next_doc_tf(&mut self, bytes: &[u8]) -> Option<(DocId, u32)> {
        if self.packed {
            let (doc, tf, _) = self.packed_doc_tf(bytes)?;
            self.remaining -= 1;
            return Some((doc, tf));
        }
        let start = self.pos;
        let (doc, tf) = self.next_doc_header(bytes)?;
        for _ in 0..tf {
            decode_vbyte(bytes, &mut self.pos)?;
        }
        self.bytes_decoded += (self.pos - start) as u64;
        self.remaining -= 1;
        Some((doc, tf))
    }

    /// Looks up the next posting's `(doc, tf, index-in-block)` from the
    /// scratch buffers, loading its block first if needed. Does not
    /// consume the posting (`remaining` is the caller's).
    #[inline]
    fn packed_doc_tf(&mut self, bytes: &[u8]) -> Option<(DocId, u32, usize)> {
        if self.remaining == 0 {
            return None;
        }
        let consumed = (self.df - self.remaining) as usize;
        let b = consumed / BLOCK_SIZE as usize;
        let i = consumed % BLOCK_SIZE as usize;
        if self.loaded != b {
            self.load_block(b, bytes)?;
        }
        Some((DocId(self.docs[i]), self.tfs[i], i))
    }

    /// Word-decodes block `b`'s packed arrays into the scratch buffers:
    /// doc gaps are unpacked then prefix-summed into absolute ids, tf−1
    /// values are unpacked then bumped. Validates the block against its
    /// directory entry (last doc and block-max tf) so corruption surfaces
    /// as `None`, never as a panic.
    fn load_block(&mut self, b: usize, bytes: &[u8]) -> Option<()> {
        let blk = *self.blocks.get(b)?;
        let n = if b + 1 < self.blocks.len() {
            BLOCK_SIZE as usize
        } else {
            self.df as usize - b * BLOCK_SIZE as usize
        };
        let end = blk.offset.checked_add(blk.len)?;
        if end > bytes.len() {
            return None;
        }
        let docs_bytes = packed_len(n, blk.doc_width);
        let tfs_bytes = packed_len(n, blk.tf_width);
        if docs_bytes.checked_add(tfs_bytes)? > blk.len {
            return None;
        }
        if let Some(handle) = &self.cache {
            let key = BlockKey { epoch: handle.epoch, object: handle.object, block: b as u32 };
            if let Some(cached) = handle.cache.get(&key) {
                // Cross-check against the directory before trusting the
                // entry; a mismatch (impossible short of a key collision)
                // falls through to a fresh decode.
                if cached.docs.len() == n
                    && cached.tfs.len() == n
                    && cached.docs.last().copied() == Some(blk.last_doc)
                {
                    self.docs.clear();
                    self.docs.extend_from_slice(&cached.docs);
                    self.tfs.clear();
                    self.tfs.extend_from_slice(&cached.tfs);
                    self.pos_ptr = blk.offset + docs_bytes + tfs_bytes;
                    self.pos_end = end;
                    self.pos_read = 0;
                    self.loaded = b;
                    self.cache_hits += 1;
                    // No bytes_decoded / blocks_bitpacked bump: nothing
                    // was decoded — that asymmetry is what the cache buys.
                    return Some(());
                }
            }
        }
        let region = &bytes[blk.offset..end];
        unpack_bits(&region[..docs_bytes], n, blk.doc_width, &mut self.docs)?;
        unpack_bits(&region[docs_bytes..docs_bytes + tfs_bytes], n, blk.tf_width, &mut self.tfs)?;
        let mut prev = if b == 0 { 0u32 } else { self.blocks[b - 1].last_doc };
        let mut max_tf = 0u32;
        for (d, t) in self.docs.iter_mut().zip(self.tfs.iter_mut()) {
            prev = prev.checked_add(*d)?;
            *d = prev;
            let tf = t.checked_add(1)?;
            *t = tf;
            max_tf = max_tf.max(tf);
        }
        if prev != blk.last_doc || max_tf > blk.max_tf {
            return None; // directory disagrees with the data
        }
        self.pos_ptr = blk.offset + docs_bytes + tfs_bytes;
        self.pos_end = end;
        self.pos_read = 0;
        self.loaded = b;
        self.bytes_decoded += (docs_bytes + tfs_bytes) as u64;
        self.blocks_bitpacked += 1;
        if let Some(handle) = &self.cache {
            self.cache_misses += 1;
            let key = BlockKey { epoch: handle.epoch, object: handle.object, block: b as u32 };
            let (docs, tfs) = (&self.docs, &self.tfs);
            handle.cache.offer_with(key, || {
                Arc::new(DecodedBlock { docs: docs.clone(), tfs: tfs.clone() })
            });
        }
        Some(())
    }

    /// Decodes `doc-gap, tf` without consuming the posting (positions and
    /// the `remaining` decrement are the caller's). v1 records only.
    fn next_doc_header(&mut self, bytes: &[u8]) -> Option<(DocId, u32)> {
        if self.remaining == 0 {
            return None;
        }
        let gap = decode_vbyte(bytes, &mut self.pos)?;
        let doc = if self.first { gap } else { self.prev_doc.checked_add(gap)? };
        self.first = false;
        self.prev_doc = doc;
        let tf = decode_vbyte(bytes, &mut self.pos)?;
        if (tf as usize) > bytes.len() {
            return None; // corrupt: more positions declared than bytes exist
        }
        Some((DocId(doc), tf))
    }
}

/// Streaming decoder over an encoded record — lets document-at-a-time
/// evaluation advance each term's cursor without materialising whole lists.
/// A borrow-holding convenience wrapper over [`BlockCursor`].
pub struct PostingsCursor<'a> {
    bytes: &'a [u8],
    inner: BlockCursor,
}

impl<'a> PostingsCursor<'a> {
    /// Opens a cursor, returning it with the header already consumed.
    pub fn open(bytes: &'a [u8]) -> Option<(Self, u32, u64, u32)> {
        let (inner, df, cf, max_tf) = BlockCursor::open(bytes)?;
        Some((PostingsCursor { bytes, inner }, df, cf, max_tf))
    }

    /// Postings not yet consumed.
    pub fn remaining(&self) -> u32 {
        self.inner.remaining()
    }

    /// The skip directory (empty for unblocked records).
    pub fn blocks(&self) -> &[SkipBlock] {
        self.inner.blocks()
    }

    /// Jumps forward past blocks that cannot contain `target`; see
    /// [`BlockCursor::seek`].
    pub fn seek(&mut self, target: u32) -> SeekSummary {
        self.inner.seek(target)
    }

    /// Decodes the next posting, or `None` at the end.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Posting> {
        self.inner.next(self.bytes)
    }

    /// Decodes the next posting's doc and tf without allocating.
    pub fn next_doc_tf(&mut self) -> Option<(DocId, u32)> {
        self.inner.next_doc_tf(self.bytes)
    }

    /// Attaches a decoded-block cache; see [`BlockCursor::attach_cache`].
    pub fn attach_cache(&mut self, cache: Arc<BlockCache>, epoch: u64, object: u64) {
        self.inner.attach_cache(cache, epoch, object);
    }

    /// Packed blocks served from the attached cache.
    pub fn cache_hits(&self) -> u64 {
        self.inner.cache_hits()
    }

    /// Packed blocks decoded despite an attached cache.
    pub fn cache_misses(&self) -> u64 {
        self.inner.cache_misses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InvertedRecord {
        InvertedRecord::from_postings(vec![
            Posting { doc: DocId(3), tf: 2, positions: vec![5, 17] },
            Posting { doc: DocId(4), tf: 1, positions: vec![0] },
            Posting { doc: DocId(1000), tf: 3, positions: vec![2, 3, 900] },
        ])
    }

    #[test]
    fn from_postings_computes_stats() {
        let r = sample();
        assert_eq!(r.df(), 3);
        assert_eq!(r.cf, 6);
        assert_eq!(r.max_tf, 3);
    }

    #[test]
    fn encode_decode_round_trip() {
        let r = sample();
        let bytes = r.encode();
        assert_eq!(InvertedRecord::decode(&bytes), Some(r));
    }

    #[test]
    fn header_only_decode() {
        let bytes = sample().encode();
        assert_eq!(InvertedRecord::decode_header(&bytes), Some((3, 6, 3)));
    }

    #[test]
    fn empty_record_round_trips() {
        let r = InvertedRecord::from_postings(vec![]);
        let bytes = r.encode();
        assert_eq!(bytes.len(), 3);
        assert_eq!(InvertedRecord::decode(&bytes), Some(r));
    }

    #[test]
    fn single_occurrence_records_are_tiny() {
        // "approximately 50% of the inverted lists are 12 bytes or less" —
        // the single-occurrence records that dominate a Zipf vocabulary
        // must fit the small object pool.
        for doc in [0u32, 100, 10_000, 500_000] {
            let r = InvertedRecord::from_postings(vec![Posting {
                doc: DocId(doc),
                tf: 1,
                positions: vec![50],
            }]);
            let bytes = r.encode();
            assert!(bytes.len() <= 12, "doc {doc}: {} bytes", bytes.len());
        }
    }

    #[test]
    fn truncation_and_garbage_are_rejected() {
        let bytes = sample().encode();
        assert_eq!(InvertedRecord::decode(&bytes[..bytes.len() - 1]), None);
        let mut padded = bytes.clone();
        padded.push(0x81);
        assert_eq!(InvertedRecord::decode(&padded), None);
        assert_eq!(InvertedRecord::decode(&[]), None);
    }

    #[test]
    fn cursor_streams_the_same_postings() {
        let r = sample();
        let bytes = r.encode();
        let (mut cursor, df, cf, max_tf) = PostingsCursor::open(&bytes).unwrap();
        assert_eq!((df, cf, max_tf), (3, 6, 3));
        let mut streamed = Vec::new();
        while let Some(p) = cursor.next() {
            streamed.push(p);
        }
        assert_eq!(streamed, r.postings);
        assert_eq!(cursor.remaining(), 0);
        assert_eq!(cursor.next(), None);
    }

    fn long_record(df: u32) -> InvertedRecord {
        InvertedRecord::from_postings(
            (0..df)
                .map(|d| Posting {
                    doc: DocId(d * 7 + 3),
                    tf: 1 + d % 4,
                    positions: (0..(1 + d % 4)).map(|j| j * 5 + d % 11).collect(),
                })
                .collect(),
        )
    }

    #[test]
    fn blocked_records_round_trip() {
        for df in [129u32, 256, 300, 1000] {
            let r = long_record(df);
            let bytes = r.encode();
            assert_eq!(InvertedRecord::decode(&bytes), Some(r), "df {df}");
        }
    }

    #[test]
    fn block_size_boundary_stays_unblocked() {
        // Exactly BLOCK_SIZE postings must keep the legacy layout: the
        // cursor sees no skip directory.
        let r = long_record(BLOCK_SIZE);
        let bytes = r.encode();
        let (cursor, ..) = PostingsCursor::open(&bytes).unwrap();
        assert!(cursor.blocks().is_empty());
        assert_eq!(InvertedRecord::decode(&bytes), Some(r));
    }

    #[test]
    fn skip_directory_describes_every_block() {
        let r = long_record(300);
        let bytes = r.encode();
        let (cursor, df, ..) = PostingsCursor::open(&bytes).unwrap();
        let blocks = cursor.blocks();
        assert_eq!(df, 300);
        assert_eq!(blocks.len(), 3); // ceil(300 / 128)
        assert_eq!(blocks[0].last_doc, r.postings[127].doc.0);
        assert_eq!(blocks[1].last_doc, r.postings[255].doc.0);
        assert_eq!(blocks[2].last_doc, r.postings[299].doc.0);
        assert_eq!(blocks.last().unwrap().offset + blocks.last().unwrap().len, bytes.len());
        for b in blocks {
            assert!(b.max_tf >= 1 && b.max_tf <= r.max_tf);
        }
    }

    #[test]
    fn seek_lands_on_the_same_posting_as_linear_scan() {
        let r = long_record(500);
        let bytes = r.encode();
        for target_idx in [0usize, 127, 128, 129, 300, 499] {
            let target = r.postings[target_idx].doc.0;
            let (mut cursor, ..) = PostingsCursor::open(&bytes).unwrap();
            let summary = cursor.seek(target);
            let mut found = None;
            while let Some(p) = cursor.next() {
                if p.doc.0 >= target {
                    found = Some(p);
                    break;
                }
            }
            assert_eq!(found.as_ref(), Some(&r.postings[target_idx]), "target idx {target_idx}");
            if target_idx >= 2 * BLOCK_SIZE as usize {
                assert!(summary.blocks_skipped > 0, "seek to idx {target_idx} skipped nothing");
                assert!(summary.postings_skipped > 0);
            }
        }
    }

    #[test]
    fn seek_past_the_end_exhausts_the_cursor() {
        let r = long_record(200);
        let bytes = r.encode();
        let (mut cursor, ..) = PostingsCursor::open(&bytes).unwrap();
        let summary = cursor.seek(u32::MAX);
        assert_eq!(summary.postings_skipped, 200);
        assert_eq!(cursor.remaining(), 0);
        assert_eq!(cursor.next(), None);
    }

    #[test]
    fn next_doc_tf_matches_next() {
        let r = long_record(260);
        let bytes = r.encode();
        let (mut full, ..) = PostingsCursor::open(&bytes).unwrap();
        let (mut slim, ..) = PostingsCursor::open(&bytes).unwrap();
        while let Some(p) = full.next() {
            assert_eq!(slim.next_doc_tf(), Some((p.doc, p.tf)));
        }
        assert_eq!(slim.next_doc_tf(), None);
    }

    #[test]
    fn corrupt_skip_directories_are_rejected() {
        let r = long_record(200);
        let bytes = r.encode();
        assert!(InvertedRecord::decode(&bytes).is_some());
        // Truncation anywhere in the record must fail, not panic.
        for cut in [1usize, 3, 5, 10, bytes.len() / 2, bytes.len() - 1] {
            assert_eq!(InvertedRecord::decode(&bytes[..cut]), None, "cut at {cut}");
        }
        // Flipping any single byte must never produce a decode that
        // disagrees with the framing (decode may still fail or succeed,
        // but must not panic) — directory fields are covered explicitly.
        for i in 0..bytes.len().min(64) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x55;
            let _ = InvertedRecord::decode(&bad); // must not panic
        }
    }

    /// The pre-v2 blocked writer, kept here to pin the decode fallback:
    /// records written by older builds must keep decoding forever.
    fn encode_v1_blocked(r: &InvertedRecord) -> Vec<u8> {
        let mut out = Vec::new();
        encode_vbyte(r.df(), &mut out);
        encode_vbyte(r.cf.min(u32::MAX as u64) as u32, &mut out);
        encode_vbyte(r.max_tf, &mut out);
        let mut body = Vec::new();
        let mut directory = Vec::new();
        let mut prev_doc = 0u32;
        let mut first = true;
        for chunk in r.postings.chunks(BLOCK_SIZE as usize) {
            let start = body.len();
            let mut block_max_tf = 0u32;
            for p in chunk {
                encode_posting(p, &mut first, &mut prev_doc, &mut body);
                block_max_tf = block_max_tf.max(p.tf);
            }
            directory.push((chunk[chunk.len() - 1].doc.0, body.len() - start, block_max_tf));
        }
        let mut prev_last = 0u32;
        for (i, &(last_doc, len, block_max_tf)) in directory.iter().enumerate() {
            encode_vbyte(if i == 0 { last_doc } else { last_doc - prev_last }, &mut out);
            prev_last = last_doc;
            encode_vbyte(len as u32, &mut out);
            encode_vbyte(block_max_tf, &mut out);
        }
        out.extend_from_slice(&body);
        out
    }

    #[test]
    fn large_cf_round_trips_full_width() {
        // Regression: encode used to clamp cf to u32::MAX silently.
        let mut r = sample();
        r.cf = 5_000_000_000; // > u32::MAX
        let bytes = r.encode();
        assert_eq!(InvertedRecord::decode(&bytes), Some(r.clone()));
        let (df, cf, max_tf) = InvertedRecord::decode_header(&bytes).unwrap();
        assert_eq!((df, cf, max_tf), (3, 5_000_000_000, 3));
        let (_, cdf, ccf, _) = BlockCursor::open(&bytes).unwrap();
        assert_eq!((cdf, ccf), (3, 5_000_000_000));
        // And through a blocked record, at the far end of the range.
        let mut long = long_record(300);
        long.cf = u64::MAX;
        let bytes = long.encode();
        assert_eq!(InvertedRecord::decode(&bytes), Some(long));
    }

    #[test]
    fn legacy_v1_blocked_records_still_decode() {
        let r = long_record(300);
        let v1 = encode_v1_blocked(&r);
        assert_ne!(v1, r.encode(), "the new encoder writes v2 blocks");
        assert_eq!(InvertedRecord::decode(&v1), Some(r.clone()));
        let (mut cur, df, cf, max_tf) = BlockCursor::open(&v1).unwrap();
        assert_eq!((df, cf, max_tf), (300, r.cf, r.max_tf));
        assert_eq!(cur.blocks().len(), 3);
        let mut streamed = Vec::new();
        while let Some(p) = cur.next(&v1) {
            streamed.push(p);
        }
        assert_eq!(streamed, r.postings);
        assert_eq!(cur.blocks_bitpacked(), 0, "v1 decodes without the packed kernel");
        assert!(cur.bytes_decoded() > 0);
    }

    #[test]
    fn v2_blocked_records_carry_the_version_sentinel() {
        let bytes = long_record(300).encode();
        assert_eq!(bytes[0], 0x80, "vbyte 0 sentinel");
        assert_eq!(bytes[1], 0x82, "format version 2");
        let (mut cur, ..) = BlockCursor::open(&bytes).unwrap();
        for b in cur.blocks() {
            assert!(b.doc_width >= 1 && b.doc_width <= 32);
            assert!(b.tf_width <= 32);
        }
        while cur.next_doc_tf(&bytes).is_some() {}
        assert_eq!(cur.blocks_bitpacked(), 3);
        assert!(cur.bytes_decoded() > 0);
    }

    #[test]
    fn packed_blocks_beat_the_vbyte_layout_on_size() {
        let r = long_record(1000);
        assert!(
            r.encode().len() < encode_v1_blocked(&r).len(),
            "bit-packed blocks must not bloat dense records"
        );
    }

    #[test]
    fn mixed_next_and_next_doc_tf_stay_consistent() {
        // Interleaving position-reading and position-skipping consumption
        // exercises the packed cursor's lazy position fast-forward.
        let r = long_record(300);
        let bytes = r.encode();
        let (mut cur, ..) = BlockCursor::open(&bytes).unwrap();
        for (i, p) in r.postings.iter().enumerate() {
            if i % 3 == 0 {
                assert_eq!(cur.next(&bytes).as_ref(), Some(p), "posting {i}");
            } else {
                assert_eq!(cur.next_doc_tf(&bytes), Some((p.doc, p.tf)), "posting {i}");
            }
        }
        assert_eq!(cur.next(&bytes), None);
    }

    #[test]
    fn compression_beats_raw_integers() {
        // A dense 1000-document list: compressed size must be well under
        // the raw u32 representation (the paper reports ~60% compression).
        let postings: Vec<Posting> = (0..1000)
            .map(|d| Posting { doc: DocId(d * 3), tf: 1, positions: vec![d % 200] })
            .collect();
        let r = InvertedRecord::from_postings(postings);
        let encoded = r.encode();
        let raw = 1000 * 3 * 4; // doc, tf, position as raw u32s
        assert!((encoded.len() as f64) < raw as f64 * 0.45, "{} vs raw {raw}", encoded.len());
    }
}

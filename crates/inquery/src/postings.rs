//! Inverted-list record format.
//!
//! "There is one record per term. A record has a header containing summary
//! statistics about the term, followed by a listing of the documents, and
//! the locations within each document, where the term occurs. The record is
//! stored as a vector of integers in a compressed format." (Section 3.1)
//!
//! Layout (all integers variable-byte coded, see [`crate::codec`]):
//!
//! ```text
//! header:   df, cf, max_tf
//! postings: df × [ doc-gap, tf, tf × position-gap ]
//! ```
//!
//! Records with more than [`BLOCK_SIZE`] postings additionally carry a
//! skip directory between the header and the postings — one entry per
//! fixed-size posting block:
//!
//! ```text
//! directory: ceil(df / BLOCK_SIZE) × [ last-doc-gap, byte-len, block-max-tf ]
//! ```
//!
//! `last-doc-gap` delta-codes each block's largest document id against the
//! previous block's, `byte-len` is the encoded size of the block's
//! postings, and `block-max-tf` caps the tf of any posting inside. Doc
//! gaps run continuously across block boundaries, so a cursor that seeks
//! to block *i* re-bases on block *i−1*'s last doc. The directory length
//! is derived from `df`, never stored. Records with `df <= BLOCK_SIZE`
//! keep the legacy unblocked layout byte-for-byte.
//!
//! Document ids and within-document positions are delta-coded, which gives
//! the ~60% compression the paper reports on posting-heavy records.

use crate::codec::{decode_vbyte, encode_vbyte};

/// Postings per skip block in the blocked record layout.
pub const BLOCK_SIZE: u32 = 128;

/// One entry of a blocked record's skip directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkipBlock {
    /// Largest document id in the block.
    pub last_doc: u32,
    /// Byte offset of the block's first posting within the record.
    pub offset: usize,
    /// Encoded length of the block's postings in bytes.
    pub len: usize,
    /// Largest within-document tf in the block.
    pub max_tf: u32,
}

/// A document's ordinal id within its collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u32);

/// One document's entry in an inverted list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Posting {
    /// The document.
    pub doc: DocId,
    /// Number of occurrences in the document.
    pub tf: u32,
    /// Ascending word positions of each occurrence.
    pub positions: Vec<u32>,
}

/// A fully decoded inverted record.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InvertedRecord {
    /// Collection frequency (total occurrences).
    pub cf: u64,
    /// Largest within-document tf (used for belief normalisation caps).
    pub max_tf: u32,
    /// Per-document postings, ascending by document id.
    pub postings: Vec<Posting>,
}

impl InvertedRecord {
    /// Document frequency.
    pub fn df(&self) -> u32 {
        self.postings.len() as u32
    }

    /// Builds a record from postings (which must be ascending by doc).
    pub fn from_postings(postings: Vec<Posting>) -> Self {
        debug_assert!(postings.windows(2).all(|w| w[0].doc < w[1].doc));
        let cf = postings.iter().map(|p| p.tf as u64).sum();
        let max_tf = postings.iter().map(|p| p.tf).max().unwrap_or(0);
        InvertedRecord { cf, max_tf, postings }
    }

    /// Serializes to the compressed on-disk form (blocked when
    /// `df > BLOCK_SIZE`, the legacy unblocked layout otherwise).
    pub fn encode(&self) -> Vec<u8> {
        let df = self.postings.len() as u32;
        let mut out = Vec::with_capacity(8 + self.postings.len() * 4);
        encode_vbyte(df, &mut out);
        encode_vbyte(self.cf.min(u32::MAX as u64) as u32, &mut out);
        encode_vbyte(self.max_tf, &mut out);
        if df <= BLOCK_SIZE {
            let mut prev_doc = 0u32;
            let mut first = true;
            for p in &self.postings {
                encode_posting(p, &mut first, &mut prev_doc, &mut out);
            }
            return out;
        }
        // Blocked layout: encode the posting body first to learn each
        // block's byte length, then emit the directory ahead of it.
        let mut body = Vec::with_capacity(self.postings.len() * 4);
        let mut directory = Vec::with_capacity(self.postings.len().div_ceil(BLOCK_SIZE as usize));
        let mut prev_doc = 0u32;
        let mut first = true;
        for chunk in self.postings.chunks(BLOCK_SIZE as usize) {
            let start = body.len();
            let mut block_max_tf = 0u32;
            for p in chunk {
                encode_posting(p, &mut first, &mut prev_doc, &mut body);
                block_max_tf = block_max_tf.max(p.tf);
            }
            directory.push((chunk[chunk.len() - 1].doc.0, body.len() - start, block_max_tf));
        }
        let mut prev_last = 0u32;
        for (i, &(last_doc, len, block_max_tf)) in directory.iter().enumerate() {
            encode_vbyte(if i == 0 { last_doc } else { last_doc - prev_last }, &mut out);
            prev_last = last_doc;
            debug_assert!(len <= u32::MAX as usize);
            encode_vbyte(len as u32, &mut out);
            encode_vbyte(block_max_tf, &mut out);
        }
        out.extend_from_slice(&body);
        out
    }

    /// Decodes a record written by [`InvertedRecord::encode`].
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let df = decode_vbyte(bytes, &mut pos)?;
        let cf = decode_vbyte(bytes, &mut pos)? as u64;
        let max_tf = decode_vbyte(bytes, &mut pos)?;
        // Untrusted input: a posting costs at least 3 bytes, so a declared
        // df larger than that bound is corrupt — and pre-allocation must
        // never trust the raw value.
        if (df as usize) > bytes.len() {
            return None;
        }
        let blocks = if df > BLOCK_SIZE {
            let blocks = parse_skip_directory(bytes, &mut pos, df)?;
            // The directory must describe exactly the bytes that follow it.
            let last = blocks.last()?;
            if last.offset.checked_add(last.len)? != bytes.len() {
                return None;
            }
            blocks
        } else {
            Vec::new()
        };
        let mut postings = Vec::with_capacity(df as usize);
        let mut prev_doc = 0u32;
        for i in 0..df {
            let block = &blocks.get((i / BLOCK_SIZE) as usize);
            if let Some(b) = block {
                if i % BLOCK_SIZE == 0 && pos != b.offset {
                    return None; // block does not start where the directory says
                }
            }
            let gap = decode_vbyte(bytes, &mut pos)?;
            let doc = if i == 0 { gap } else { prev_doc.checked_add(gap)? };
            prev_doc = doc;
            let tf = decode_vbyte(bytes, &mut pos)?;
            if (tf as usize) > bytes.len() {
                return None;
            }
            if let Some(b) = block {
                if tf > b.max_tf {
                    return None; // block-max invariant violated
                }
                let last_in_block = i % BLOCK_SIZE == BLOCK_SIZE - 1 || i == df - 1;
                if last_in_block && doc != b.last_doc {
                    return None; // directory's last-doc disagrees with the data
                }
            }
            let mut positions = Vec::with_capacity(tf as usize);
            let mut prev_pos = 0u32;
            for j in 0..tf {
                let pgap = decode_vbyte(bytes, &mut pos)?;
                let p = if j == 0 { pgap } else { prev_pos.checked_add(pgap)? };
                prev_pos = p;
                positions.push(p);
            }
            postings.push(Posting { doc: DocId(doc), tf, positions });
        }
        if pos != bytes.len() {
            return None; // trailing garbage
        }
        Some(InvertedRecord { cf, max_tf, postings })
    }

    /// Decodes only the `(df, cf, max_tf)` header.
    pub fn decode_header(bytes: &[u8]) -> Option<(u32, u64, u32)> {
        let mut pos = 0usize;
        let df = decode_vbyte(bytes, &mut pos)?;
        let cf = decode_vbyte(bytes, &mut pos)? as u64;
        let max_tf = decode_vbyte(bytes, &mut pos)?;
        Some((df, cf, max_tf))
    }
}

fn encode_posting(p: &Posting, first: &mut bool, prev_doc: &mut u32, out: &mut Vec<u8>) {
    let gap = if *first { p.doc.0 } else { p.doc.0 - *prev_doc };
    *first = false;
    *prev_doc = p.doc.0;
    encode_vbyte(gap, out);
    encode_vbyte(p.tf, out);
    debug_assert_eq!(p.positions.len(), p.tf as usize);
    let mut prev_pos = 0u32;
    for (j, &pos) in p.positions.iter().enumerate() {
        let pgap = if j == 0 { pos } else { pos - prev_pos };
        prev_pos = pos;
        encode_vbyte(pgap, out);
    }
}

/// Parses a blocked record's skip directory (the cursor/decoder already
/// consumed the `df, cf, max_tf` header). Offsets come back rebased onto
/// the record, pointing at each block's first posting byte.
fn parse_skip_directory(bytes: &[u8], pos: &mut usize, df: u32) -> Option<Vec<SkipBlock>> {
    let num_blocks = df.div_ceil(BLOCK_SIZE) as usize;
    // Each directory entry costs at least 3 bytes, so an entry count the
    // bytes cannot possibly hold is corrupt — and pre-allocation must
    // never trust the raw value.
    if num_blocks.checked_mul(3)? > bytes.len() {
        return None;
    }
    let mut blocks = Vec::with_capacity(num_blocks);
    let mut prev_last = 0u32;
    let mut offset = 0usize;
    for i in 0..num_blocks {
        let gap = decode_vbyte(bytes, pos)?;
        if i > 0 && gap == 0 {
            return None; // block last-docs must strictly ascend
        }
        let last_doc = if i == 0 { gap } else { prev_last.checked_add(gap)? };
        prev_last = last_doc;
        let len = decode_vbyte(bytes, pos)? as usize;
        if len == 0 {
            return None; // a block holds at least one posting
        }
        let max_tf = decode_vbyte(bytes, pos)?;
        blocks.push(SkipBlock { last_doc, offset, len, max_tf });
        offset = offset.checked_add(len)?;
    }
    // Rebase offsets onto the record: postings start where the directory ends.
    let postings_start = *pos;
    for b in &mut blocks {
        b.offset = b.offset.checked_add(postings_start)?;
    }
    Some(blocks)
}

/// How much work a [`BlockCursor::seek`] bypassed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SeekSummary {
    /// Block boundaries jumped without decoding.
    pub blocks_skipped: u64,
    /// Postings bypassed without decoding.
    pub postings_skipped: u64,
}

/// Cursor state detached from the record bytes, so callers that fetch a
/// record incrementally (range reads) can keep one cursor while the byte
/// buffer grows. Every decoding method takes the byte slice the cursor was
/// opened on — or any longer prefix-compatible slice of the same record.
#[derive(Debug, Clone)]
pub struct BlockCursor {
    pos: usize,
    df: u32,
    remaining: u32,
    prev_doc: u32,
    first: bool,
    blocks: Vec<SkipBlock>,
}

impl BlockCursor {
    /// Opens a cursor, consuming the header (and skip directory, when the
    /// record is blocked). `bytes` may be a prefix of the full record as
    /// long as it covers the header and directory.
    pub fn open(bytes: &[u8]) -> Option<(Self, u32, u64, u32)> {
        let mut pos = 0usize;
        let df = decode_vbyte(bytes, &mut pos)?;
        let cf = decode_vbyte(bytes, &mut pos)? as u64;
        let max_tf = decode_vbyte(bytes, &mut pos)?;
        let blocks =
            if df > BLOCK_SIZE { parse_skip_directory(bytes, &mut pos, df)? } else { Vec::new() };
        let cursor = BlockCursor { pos, df, remaining: df, prev_doc: 0, first: true, blocks };
        Some((cursor, df, cf, max_tf))
    }

    /// Postings not yet consumed.
    pub fn remaining(&self) -> u32 {
        self.remaining
    }

    /// Document frequency of the underlying record.
    pub fn df(&self) -> u32 {
        self.df
    }

    /// The skip directory (empty for unblocked records).
    pub fn blocks(&self) -> &[SkipBlock] {
        &self.blocks
    }

    /// Total encoded record length implied by the skip directory (`None`
    /// for unblocked records, whose length the directory cannot tell).
    pub fn total_len(&self) -> Option<usize> {
        self.blocks.last().map(|b| b.offset + b.len)
    }

    /// Index of the block holding the next posting.
    fn current_block(&self) -> usize {
        ((self.df - self.remaining) / BLOCK_SIZE) as usize
    }

    /// Index of the block holding the next posting (`None` for unblocked
    /// or exhausted cursors).
    pub fn current_block_index(&self) -> Option<usize> {
        if self.blocks.is_empty() || self.remaining == 0 {
            return None;
        }
        Some(self.current_block())
    }

    /// Block-max tf of the block holding the next posting (`None` for
    /// unblocked or exhausted cursors).
    pub fn current_block_max_tf(&self) -> Option<u32> {
        if self.blocks.is_empty() || self.remaining == 0 {
            return None;
        }
        self.blocks.get(self.current_block()).map(|b| b.max_tf)
    }

    /// Byte offset one past the block holding the next posting. Callers
    /// that fetch the record incrementally must have bytes up to here
    /// before decoding (`None` for unblocked or exhausted cursors).
    pub fn current_block_end(&self) -> Option<usize> {
        if self.blocks.is_empty() || self.remaining == 0 {
            return None;
        }
        self.blocks.get(self.current_block()).map(|b| b.offset + b.len)
    }

    /// Jumps forward to the first block that could contain `target`,
    /// bypassing every block whose last doc precedes it. Never decodes a
    /// posting and never moves backward; a no-op on unblocked records.
    pub fn seek(&mut self, target: u32) -> SeekSummary {
        if self.blocks.is_empty() || self.remaining == 0 {
            return SeekSummary::default();
        }
        let cur = self.current_block();
        let mut t = cur;
        while t < self.blocks.len() && self.blocks[t].last_doc < target {
            t += 1;
        }
        if t == cur {
            return SeekSummary::default();
        }
        if t == self.blocks.len() {
            // Every remaining document precedes `target`: exhaust the cursor.
            let skipped = self.remaining as u64;
            let last = &self.blocks[t - 1];
            self.pos = last.offset + last.len;
            self.prev_doc = last.last_doc;
            self.first = false;
            self.remaining = 0;
            return SeekSummary { blocks_skipped: (t - cur) as u64, postings_skipped: skipped };
        }
        let consumed = self.df - self.remaining;
        let skipped = (t as u32 * BLOCK_SIZE - consumed) as u64;
        self.pos = self.blocks[t].offset;
        self.prev_doc = self.blocks[t - 1].last_doc;
        self.first = false;
        self.remaining = self.df - t as u32 * BLOCK_SIZE;
        SeekSummary { blocks_skipped: (t - cur) as u64, postings_skipped: skipped }
    }

    /// Decodes the next posting, or `None` at the end.
    pub fn next(&mut self, bytes: &[u8]) -> Option<Posting> {
        let (doc, tf) = self.next_doc_header(bytes)?;
        let mut positions = Vec::with_capacity(tf as usize);
        let mut prev = 0u32;
        for j in 0..tf {
            let pgap = decode_vbyte(bytes, &mut self.pos)?;
            prev = if j == 0 { pgap } else { prev.checked_add(pgap)? };
            positions.push(prev);
        }
        self.remaining -= 1;
        Some(Posting { doc, tf, positions })
    }

    /// Decodes the next posting's doc and tf, skipping its positions
    /// without allocating — the document-at-a-time scoring hot path.
    pub fn next_doc_tf(&mut self, bytes: &[u8]) -> Option<(DocId, u32)> {
        let (doc, tf) = self.next_doc_header(bytes)?;
        for _ in 0..tf {
            decode_vbyte(bytes, &mut self.pos)?;
        }
        self.remaining -= 1;
        Some((doc, tf))
    }

    /// Decodes `doc-gap, tf` without consuming the posting (positions and
    /// the `remaining` decrement are the caller's).
    fn next_doc_header(&mut self, bytes: &[u8]) -> Option<(DocId, u32)> {
        if self.remaining == 0 {
            return None;
        }
        let gap = decode_vbyte(bytes, &mut self.pos)?;
        let doc = if self.first { gap } else { self.prev_doc.checked_add(gap)? };
        self.first = false;
        self.prev_doc = doc;
        let tf = decode_vbyte(bytes, &mut self.pos)?;
        if (tf as usize) > bytes.len() {
            return None; // corrupt: more positions declared than bytes exist
        }
        Some((DocId(doc), tf))
    }
}

/// Streaming decoder over an encoded record — lets document-at-a-time
/// evaluation advance each term's cursor without materialising whole lists.
/// A borrow-holding convenience wrapper over [`BlockCursor`].
pub struct PostingsCursor<'a> {
    bytes: &'a [u8],
    inner: BlockCursor,
}

impl<'a> PostingsCursor<'a> {
    /// Opens a cursor, returning it with the header already consumed.
    pub fn open(bytes: &'a [u8]) -> Option<(Self, u32, u64, u32)> {
        let (inner, df, cf, max_tf) = BlockCursor::open(bytes)?;
        Some((PostingsCursor { bytes, inner }, df, cf, max_tf))
    }

    /// Postings not yet consumed.
    pub fn remaining(&self) -> u32 {
        self.inner.remaining()
    }

    /// The skip directory (empty for unblocked records).
    pub fn blocks(&self) -> &[SkipBlock] {
        self.inner.blocks()
    }

    /// Jumps forward past blocks that cannot contain `target`; see
    /// [`BlockCursor::seek`].
    pub fn seek(&mut self, target: u32) -> SeekSummary {
        self.inner.seek(target)
    }

    /// Decodes the next posting, or `None` at the end.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Posting> {
        self.inner.next(self.bytes)
    }

    /// Decodes the next posting's doc and tf without allocating.
    pub fn next_doc_tf(&mut self) -> Option<(DocId, u32)> {
        self.inner.next_doc_tf(self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InvertedRecord {
        InvertedRecord::from_postings(vec![
            Posting { doc: DocId(3), tf: 2, positions: vec![5, 17] },
            Posting { doc: DocId(4), tf: 1, positions: vec![0] },
            Posting { doc: DocId(1000), tf: 3, positions: vec![2, 3, 900] },
        ])
    }

    #[test]
    fn from_postings_computes_stats() {
        let r = sample();
        assert_eq!(r.df(), 3);
        assert_eq!(r.cf, 6);
        assert_eq!(r.max_tf, 3);
    }

    #[test]
    fn encode_decode_round_trip() {
        let r = sample();
        let bytes = r.encode();
        assert_eq!(InvertedRecord::decode(&bytes), Some(r));
    }

    #[test]
    fn header_only_decode() {
        let bytes = sample().encode();
        assert_eq!(InvertedRecord::decode_header(&bytes), Some((3, 6, 3)));
    }

    #[test]
    fn empty_record_round_trips() {
        let r = InvertedRecord::from_postings(vec![]);
        let bytes = r.encode();
        assert_eq!(bytes.len(), 3);
        assert_eq!(InvertedRecord::decode(&bytes), Some(r));
    }

    #[test]
    fn single_occurrence_records_are_tiny() {
        // "approximately 50% of the inverted lists are 12 bytes or less" —
        // the single-occurrence records that dominate a Zipf vocabulary
        // must fit the small object pool.
        for doc in [0u32, 100, 10_000, 500_000] {
            let r = InvertedRecord::from_postings(vec![Posting {
                doc: DocId(doc),
                tf: 1,
                positions: vec![50],
            }]);
            let bytes = r.encode();
            assert!(bytes.len() <= 12, "doc {doc}: {} bytes", bytes.len());
        }
    }

    #[test]
    fn truncation_and_garbage_are_rejected() {
        let bytes = sample().encode();
        assert_eq!(InvertedRecord::decode(&bytes[..bytes.len() - 1]), None);
        let mut padded = bytes.clone();
        padded.push(0x81);
        assert_eq!(InvertedRecord::decode(&padded), None);
        assert_eq!(InvertedRecord::decode(&[]), None);
    }

    #[test]
    fn cursor_streams_the_same_postings() {
        let r = sample();
        let bytes = r.encode();
        let (mut cursor, df, cf, max_tf) = PostingsCursor::open(&bytes).unwrap();
        assert_eq!((df, cf, max_tf), (3, 6, 3));
        let mut streamed = Vec::new();
        while let Some(p) = cursor.next() {
            streamed.push(p);
        }
        assert_eq!(streamed, r.postings);
        assert_eq!(cursor.remaining(), 0);
        assert_eq!(cursor.next(), None);
    }

    fn long_record(df: u32) -> InvertedRecord {
        InvertedRecord::from_postings(
            (0..df)
                .map(|d| Posting {
                    doc: DocId(d * 7 + 3),
                    tf: 1 + d % 4,
                    positions: (0..(1 + d % 4)).map(|j| j * 5 + d % 11).collect(),
                })
                .collect(),
        )
    }

    #[test]
    fn blocked_records_round_trip() {
        for df in [129u32, 256, 300, 1000] {
            let r = long_record(df);
            let bytes = r.encode();
            assert_eq!(InvertedRecord::decode(&bytes), Some(r), "df {df}");
        }
    }

    #[test]
    fn block_size_boundary_stays_unblocked() {
        // Exactly BLOCK_SIZE postings must keep the legacy layout: the
        // cursor sees no skip directory.
        let r = long_record(BLOCK_SIZE);
        let bytes = r.encode();
        let (cursor, ..) = PostingsCursor::open(&bytes).unwrap();
        assert!(cursor.blocks().is_empty());
        assert_eq!(InvertedRecord::decode(&bytes), Some(r));
    }

    #[test]
    fn skip_directory_describes_every_block() {
        let r = long_record(300);
        let bytes = r.encode();
        let (cursor, df, ..) = PostingsCursor::open(&bytes).unwrap();
        let blocks = cursor.blocks();
        assert_eq!(df, 300);
        assert_eq!(blocks.len(), 3); // ceil(300 / 128)
        assert_eq!(blocks[0].last_doc, r.postings[127].doc.0);
        assert_eq!(blocks[1].last_doc, r.postings[255].doc.0);
        assert_eq!(blocks[2].last_doc, r.postings[299].doc.0);
        assert_eq!(blocks.last().unwrap().offset + blocks.last().unwrap().len, bytes.len());
        for b in blocks {
            assert!(b.max_tf >= 1 && b.max_tf <= r.max_tf);
        }
    }

    #[test]
    fn seek_lands_on_the_same_posting_as_linear_scan() {
        let r = long_record(500);
        let bytes = r.encode();
        for target_idx in [0usize, 127, 128, 129, 300, 499] {
            let target = r.postings[target_idx].doc.0;
            let (mut cursor, ..) = PostingsCursor::open(&bytes).unwrap();
            let summary = cursor.seek(target);
            let mut found = None;
            while let Some(p) = cursor.next() {
                if p.doc.0 >= target {
                    found = Some(p);
                    break;
                }
            }
            assert_eq!(found.as_ref(), Some(&r.postings[target_idx]), "target idx {target_idx}");
            if target_idx >= 2 * BLOCK_SIZE as usize {
                assert!(summary.blocks_skipped > 0, "seek to idx {target_idx} skipped nothing");
                assert!(summary.postings_skipped > 0);
            }
        }
    }

    #[test]
    fn seek_past_the_end_exhausts_the_cursor() {
        let r = long_record(200);
        let bytes = r.encode();
        let (mut cursor, ..) = PostingsCursor::open(&bytes).unwrap();
        let summary = cursor.seek(u32::MAX);
        assert_eq!(summary.postings_skipped, 200);
        assert_eq!(cursor.remaining(), 0);
        assert_eq!(cursor.next(), None);
    }

    #[test]
    fn next_doc_tf_matches_next() {
        let r = long_record(260);
        let bytes = r.encode();
        let (mut full, ..) = PostingsCursor::open(&bytes).unwrap();
        let (mut slim, ..) = PostingsCursor::open(&bytes).unwrap();
        while let Some(p) = full.next() {
            assert_eq!(slim.next_doc_tf(), Some((p.doc, p.tf)));
        }
        assert_eq!(slim.next_doc_tf(), None);
    }

    #[test]
    fn corrupt_skip_directories_are_rejected() {
        let r = long_record(200);
        let bytes = r.encode();
        assert!(InvertedRecord::decode(&bytes).is_some());
        // Truncation anywhere in the record must fail, not panic.
        for cut in [1usize, 3, 5, 10, bytes.len() / 2, bytes.len() - 1] {
            assert_eq!(InvertedRecord::decode(&bytes[..cut]), None, "cut at {cut}");
        }
        // Flipping any single byte must never produce a decode that
        // disagrees with the framing (decode may still fail or succeed,
        // but must not panic) — directory fields are covered explicitly.
        for i in 0..bytes.len().min(64) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x55;
            let _ = InvertedRecord::decode(&bad); // must not panic
        }
    }

    #[test]
    fn compression_beats_raw_integers() {
        // A dense 1000-document list: compressed size must be well under
        // the raw u32 representation (the paper reports ~60% compression).
        let postings: Vec<Posting> = (0..1000)
            .map(|d| Posting { doc: DocId(d * 3), tf: 1, positions: vec![d % 200] })
            .collect();
        let r = InvertedRecord::from_postings(postings);
        let encoded = r.encode();
        let raw = 1000 * 3 * 4; // doc, tf, position as raw u32s
        assert!((encoded.len() as f64) < raw as f64 * 0.45, "{} vs raw {raw}", encoded.len());
    }
}

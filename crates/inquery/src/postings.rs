//! Inverted-list record format.
//!
//! "There is one record per term. A record has a header containing summary
//! statistics about the term, followed by a listing of the documents, and
//! the locations within each document, where the term occurs. The record is
//! stored as a vector of integers in a compressed format." (Section 3.1)
//!
//! Layout (all integers variable-byte coded, see [`crate::codec`]):
//!
//! ```text
//! header:   df, cf, max_tf
//! postings: df × [ doc-gap, tf, tf × position-gap ]
//! ```
//!
//! Document ids and within-document positions are delta-coded, which gives
//! the ~60% compression the paper reports on posting-heavy records.

use crate::codec::{decode_vbyte, encode_vbyte};

/// A document's ordinal id within its collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u32);

/// One document's entry in an inverted list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Posting {
    /// The document.
    pub doc: DocId,
    /// Number of occurrences in the document.
    pub tf: u32,
    /// Ascending word positions of each occurrence.
    pub positions: Vec<u32>,
}

/// A fully decoded inverted record.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InvertedRecord {
    /// Collection frequency (total occurrences).
    pub cf: u64,
    /// Largest within-document tf (used for belief normalisation caps).
    pub max_tf: u32,
    /// Per-document postings, ascending by document id.
    pub postings: Vec<Posting>,
}

impl InvertedRecord {
    /// Document frequency.
    pub fn df(&self) -> u32 {
        self.postings.len() as u32
    }

    /// Builds a record from postings (which must be ascending by doc).
    pub fn from_postings(postings: Vec<Posting>) -> Self {
        debug_assert!(postings.windows(2).all(|w| w[0].doc < w[1].doc));
        let cf = postings.iter().map(|p| p.tf as u64).sum();
        let max_tf = postings.iter().map(|p| p.tf).max().unwrap_or(0);
        InvertedRecord { cf, max_tf, postings }
    }

    /// Serializes to the compressed on-disk form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.postings.len() * 4);
        encode_vbyte(self.postings.len() as u32, &mut out);
        encode_vbyte(self.cf.min(u32::MAX as u64) as u32, &mut out);
        encode_vbyte(self.max_tf, &mut out);
        let mut prev_doc = 0u32;
        for (i, p) in self.postings.iter().enumerate() {
            let gap = if i == 0 { p.doc.0 } else { p.doc.0 - prev_doc };
            prev_doc = p.doc.0;
            encode_vbyte(gap, &mut out);
            encode_vbyte(p.tf, &mut out);
            debug_assert_eq!(p.positions.len(), p.tf as usize);
            let mut prev_pos = 0u32;
            for (j, &pos) in p.positions.iter().enumerate() {
                let pgap = if j == 0 { pos } else { pos - prev_pos };
                prev_pos = pos;
                encode_vbyte(pgap, &mut out);
            }
        }
        out
    }

    /// Decodes a record written by [`InvertedRecord::encode`].
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let df = decode_vbyte(bytes, &mut pos)?;
        let cf = decode_vbyte(bytes, &mut pos)? as u64;
        let max_tf = decode_vbyte(bytes, &mut pos)?;
        // Untrusted input: a posting costs at least 3 bytes, so a declared
        // df larger than that bound is corrupt — and pre-allocation must
        // never trust the raw value.
        if (df as usize) > bytes.len() {
            return None;
        }
        let mut postings = Vec::with_capacity(df as usize);
        let mut prev_doc = 0u32;
        for i in 0..df {
            let gap = decode_vbyte(bytes, &mut pos)?;
            let doc = if i == 0 { gap } else { prev_doc.checked_add(gap)? };
            prev_doc = doc;
            let tf = decode_vbyte(bytes, &mut pos)?;
            if (tf as usize) > bytes.len() {
                return None;
            }
            let mut positions = Vec::with_capacity(tf as usize);
            let mut prev_pos = 0u32;
            for j in 0..tf {
                let pgap = decode_vbyte(bytes, &mut pos)?;
                let p = if j == 0 { pgap } else { prev_pos.checked_add(pgap)? };
                prev_pos = p;
                positions.push(p);
            }
            postings.push(Posting { doc: DocId(doc), tf, positions });
        }
        if pos != bytes.len() {
            return None; // trailing garbage
        }
        Some(InvertedRecord { cf, max_tf, postings })
    }

    /// Decodes only the `(df, cf, max_tf)` header.
    pub fn decode_header(bytes: &[u8]) -> Option<(u32, u64, u32)> {
        let mut pos = 0usize;
        let df = decode_vbyte(bytes, &mut pos)?;
        let cf = decode_vbyte(bytes, &mut pos)? as u64;
        let max_tf = decode_vbyte(bytes, &mut pos)?;
        Some((df, cf, max_tf))
    }
}

/// Streaming decoder over an encoded record — lets document-at-a-time
/// evaluation advance each term's cursor without materialising whole lists.
pub struct PostingsCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    remaining: u32,
    prev_doc: u32,
    first: bool,
}

impl<'a> PostingsCursor<'a> {
    /// Opens a cursor, returning it with the header already consumed.
    pub fn open(bytes: &'a [u8]) -> Option<(Self, u32, u64, u32)> {
        let mut pos = 0usize;
        let df = decode_vbyte(bytes, &mut pos)?;
        let cf = decode_vbyte(bytes, &mut pos)? as u64;
        let max_tf = decode_vbyte(bytes, &mut pos)?;
        Some((
            PostingsCursor { bytes, pos, remaining: df, prev_doc: 0, first: true },
            df,
            cf,
            max_tf,
        ))
    }

    /// Postings not yet consumed.
    pub fn remaining(&self) -> u32 {
        self.remaining
    }

    /// Decodes the next posting, or `None` at the end.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Posting> {
        if self.remaining == 0 {
            return None;
        }
        let gap = decode_vbyte(self.bytes, &mut self.pos)?;
        let doc = if self.first { gap } else { self.prev_doc.checked_add(gap)? };
        self.first = false;
        self.prev_doc = doc;
        let tf = decode_vbyte(self.bytes, &mut self.pos)?;
        if (tf as usize) > self.bytes.len() {
            return None; // corrupt: more positions declared than bytes exist
        }
        let mut positions = Vec::with_capacity(tf as usize);
        let mut prev = 0u32;
        for j in 0..tf {
            let pgap = decode_vbyte(self.bytes, &mut self.pos)?;
            prev = if j == 0 { pgap } else { prev.checked_add(pgap)? };
            positions.push(prev);
        }
        self.remaining -= 1;
        Some(Posting { doc: DocId(doc), tf, positions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InvertedRecord {
        InvertedRecord::from_postings(vec![
            Posting { doc: DocId(3), tf: 2, positions: vec![5, 17] },
            Posting { doc: DocId(4), tf: 1, positions: vec![0] },
            Posting { doc: DocId(1000), tf: 3, positions: vec![2, 3, 900] },
        ])
    }

    #[test]
    fn from_postings_computes_stats() {
        let r = sample();
        assert_eq!(r.df(), 3);
        assert_eq!(r.cf, 6);
        assert_eq!(r.max_tf, 3);
    }

    #[test]
    fn encode_decode_round_trip() {
        let r = sample();
        let bytes = r.encode();
        assert_eq!(InvertedRecord::decode(&bytes), Some(r));
    }

    #[test]
    fn header_only_decode() {
        let bytes = sample().encode();
        assert_eq!(InvertedRecord::decode_header(&bytes), Some((3, 6, 3)));
    }

    #[test]
    fn empty_record_round_trips() {
        let r = InvertedRecord::from_postings(vec![]);
        let bytes = r.encode();
        assert_eq!(bytes.len(), 3);
        assert_eq!(InvertedRecord::decode(&bytes), Some(r));
    }

    #[test]
    fn single_occurrence_records_are_tiny() {
        // "approximately 50% of the inverted lists are 12 bytes or less" —
        // the single-occurrence records that dominate a Zipf vocabulary
        // must fit the small object pool.
        for doc in [0u32, 100, 10_000, 500_000] {
            let r = InvertedRecord::from_postings(vec![Posting {
                doc: DocId(doc),
                tf: 1,
                positions: vec![50],
            }]);
            let bytes = r.encode();
            assert!(bytes.len() <= 12, "doc {doc}: {} bytes", bytes.len());
        }
    }

    #[test]
    fn truncation_and_garbage_are_rejected() {
        let bytes = sample().encode();
        assert_eq!(InvertedRecord::decode(&bytes[..bytes.len() - 1]), None);
        let mut padded = bytes.clone();
        padded.push(0x81);
        assert_eq!(InvertedRecord::decode(&padded), None);
        assert_eq!(InvertedRecord::decode(&[]), None);
    }

    #[test]
    fn cursor_streams_the_same_postings() {
        let r = sample();
        let bytes = r.encode();
        let (mut cursor, df, cf, max_tf) = PostingsCursor::open(&bytes).unwrap();
        assert_eq!((df, cf, max_tf), (3, 6, 3));
        let mut streamed = Vec::new();
        while let Some(p) = cursor.next() {
            streamed.push(p);
        }
        assert_eq!(streamed, r.postings);
        assert_eq!(cursor.remaining(), 0);
        assert_eq!(cursor.next(), None);
    }

    #[test]
    fn compression_beats_raw_integers() {
        // A dense 1000-document list: compressed size must be well under
        // the raw u32 representation (the paper reports ~60% compression).
        let postings: Vec<Posting> = (0..1000)
            .map(|d| Posting { doc: DocId(d * 3), tf: 1, positions: vec![d % 200] })
            .collect();
        let r = InvertedRecord::from_postings(postings);
        let encoded = r.encode();
        let raw = 1000 * 3 * 4; // doc, tf, position as raw u32s
        assert!((encoded.len() as f64) < raw as f64 * 0.45, "{} vs raw {raw}", encoded.len());
    }
}

//! TREC interchange formats.
//!
//! The paper's query sets come with relevance files ("A relevance file
//! lists the documents that should have been retrieved for each query",
//! Section 4.2) and its TIPSTER experiments sit in the first TREC's
//! ecosystem [Harman 1992]. This module reads and writes the two de-facto
//! standard formats of that ecosystem, so the engine interoperates with
//! real evaluation tooling:
//!
//! * **qrels**: `query-id 0 document-name relevance` — relevance judgments,
//! * **run files**: `query-id Q0 document-name rank score tag` — ranked
//!   retrieval output consumed by `trec_eval`.

use std::collections::HashMap;

use crate::documents::DocTable;
use crate::metrics::Judgments;
use crate::postings::DocId;
use crate::query::eval::ScoredDoc;

/// Formats one query's ranking as TREC run-file lines.
pub fn format_run(query_id: &str, ranked: &[ScoredDoc], docs: &DocTable, tag: &str) -> String {
    let mut out = String::with_capacity(ranked.len() * 48);
    for (rank, s) in ranked.iter().enumerate() {
        out.push_str(&format!(
            "{query_id} Q0 {} {} {:.6} {tag}\n",
            docs.info(s.doc).name,
            rank + 1,
            s.score
        ));
    }
    out
}

/// One parsed run-file line.
#[derive(Debug, Clone, PartialEq)]
pub struct RunLine {
    pub query_id: String,
    pub doc_name: String,
    pub rank: u32,
    pub score: f64,
    pub tag: String,
}

/// Parses a TREC run file; malformed lines are reported by number.
pub fn parse_run(text: &str) -> Result<Vec<RunLine>, String> {
    let mut out = Vec::new();
    for (no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 6 || fields[1] != "Q0" {
            return Err(format!("line {}: expected `qid Q0 doc rank score tag`", no + 1));
        }
        out.push(RunLine {
            query_id: fields[0].to_string(),
            doc_name: fields[2].to_string(),
            rank: fields[3].parse().map_err(|_| format!("line {}: bad rank", no + 1))?,
            score: fields[4].parse().map_err(|_| format!("line {}: bad score", no + 1))?,
            tag: fields[5].to_string(),
        });
    }
    Ok(out)
}

/// Formats relevance judgments as qrels lines.
pub fn format_qrels(query_id: &str, judgments: &Judgments, docs: &DocTable) -> String {
    let mut relevant: Vec<&str> = (0..docs.len() as u32)
        .map(DocId)
        .filter(|&d| judgments.is_relevant(d))
        .map(|d| docs.info(d).name.as_str())
        .collect();
    relevant.sort_unstable();
    let mut out = String::with_capacity(relevant.len() * 32);
    for name in relevant {
        out.push_str(&format!("{query_id} 0 {name} 1\n"));
    }
    out
}

/// Parses qrels text into per-query judged document names with their
/// relevance grade (`> 0` = relevant).
pub fn parse_qrels(text: &str) -> Result<HashMap<String, Vec<(String, bool)>>, String> {
    let mut out: HashMap<String, Vec<(String, bool)>> = HashMap::new();
    for (no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 4 {
            return Err(format!("line {}: expected `qid 0 doc rel`", no + 1));
        }
        let grade: i32 =
            fields[3].parse().map_err(|_| format!("line {}: bad relevance", no + 1))?;
        out.entry(fields[0].to_string()).or_default().push((fields[2].to_string(), grade > 0));
    }
    Ok(out)
}

/// Resolves one query's parsed qrels into [`Judgments`] against a document
/// table. Unknown document names are returned separately (real qrels often
/// judge documents outside a subcollection).
pub fn qrels_to_judgments(judged: &[(String, bool)], docs: &DocTable) -> (Judgments, Vec<String>) {
    let by_name: HashMap<&str, DocId> =
        (0..docs.len() as u32).map(DocId).map(|d| (docs.info(d).name.as_str(), d)).collect();
    let mut relevant = Vec::new();
    let mut unknown = Vec::new();
    for (name, rel) in judged {
        match by_name.get(name.as_str()) {
            Some(&d) if *rel => relevant.push(d),
            Some(_) => {}
            None => unknown.push(name.clone()),
        }
    }
    (Judgments::new(relevant), unknown)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs() -> DocTable {
        let mut t = DocTable::new();
        for i in 0..5 {
            t.push(format!("DOC-{i}"), 100);
        }
        t
    }

    fn ranked() -> Vec<ScoredDoc> {
        vec![
            ScoredDoc { doc: DocId(3), score: 0.91 },
            ScoredDoc { doc: DocId(0), score: 0.73 },
            ScoredDoc { doc: DocId(4), score: 0.5 },
        ]
    }

    #[test]
    fn run_file_round_trips() {
        let text = format_run("51", &ranked(), &docs(), "poir");
        assert!(text.starts_with("51 Q0 DOC-3 1 0.910000 poir\n"));
        let parsed = parse_run(&text).unwrap();
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[1].doc_name, "DOC-0");
        assert_eq!(parsed[1].rank, 2);
        assert!((parsed[2].score - 0.5).abs() < 1e-9);
        assert_eq!(parsed[0].tag, "poir");
    }

    #[test]
    fn run_parser_rejects_malformed_lines() {
        assert!(parse_run("51 Q0 DOC-1 1 0.5").is_err(), "missing tag");
        assert!(parse_run("51 XX DOC-1 1 0.5 tag").is_err(), "bad literal");
        assert!(parse_run("51 Q0 DOC-1 x 0.5 tag").is_err(), "bad rank");
        assert!(parse_run("# comment\n\n").unwrap().is_empty());
    }

    #[test]
    fn qrels_round_trip() {
        let judgments = Judgments::new([DocId(1), DocId(4)]);
        let text = format_qrels("51", &judgments, &docs());
        assert_eq!(text, "51 0 DOC-1 1\n51 0 DOC-4 1\n");
        let parsed = parse_qrels(&text).unwrap();
        let (restored, unknown) = qrels_to_judgments(&parsed["51"], &docs());
        assert!(unknown.is_empty());
        assert!(restored.is_relevant(DocId(1)));
        assert!(restored.is_relevant(DocId(4)));
        assert!(!restored.is_relevant(DocId(0)));
        assert_eq!(restored.len(), 2);
    }

    #[test]
    fn qrels_with_nonrelevant_and_unknown_documents() {
        let text = "51 0 DOC-1 1\n51 0 DOC-2 0\n51 0 GHOST-9 1\n52 0 DOC-0 2\n";
        let parsed = parse_qrels(text).unwrap();
        let (j51, unknown) = qrels_to_judgments(&parsed["51"], &docs());
        assert_eq!(j51.len(), 1, "grade 0 is not relevant");
        assert_eq!(unknown, vec!["GHOST-9".to_string()]);
        let (j52, _) = qrels_to_judgments(&parsed["52"], &docs());
        assert!(j52.is_relevant(DocId(0)), "graded relevance > 0 counts");
    }

    #[test]
    fn qrels_parser_rejects_malformed_lines() {
        assert!(parse_qrels("51 0 DOC-1").is_err());
        assert!(parse_qrels("51 0 DOC-1 rel").is_err());
    }
}

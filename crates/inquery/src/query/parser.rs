//! Recursive-descent parser for the INQUERY query language.
//!
//! Grammar (whitespace-separated):
//!
//! ```text
//! query   := item+                          (multiple items → implicit #sum)
//! item    := '#' op '(' body ')' | word
//! op      := and | or | not | sum | wsum | max | phrase | uw<N>
//! body    := item+                          (#wsum: (weight item)+;
//!                                            #phrase/#uw: word+)
//! ```
//!
//! Bare words are analyzer-normalised (lower-cased); stop words are removed
//! the way INQUERY applies its stop file to queries — except inside
//! `#phrase`/`#uw`, where every word is kept because positions in the index
//! count stop words too.

use crate::error::{InqueryError, Result};
use crate::query::ast::QueryNode;
use crate::text::StopWords;

/// Parses `input` into a query tree using `stop` for query-side stop-word
/// removal.
///
/// ```
/// use poir_inquery::{parse_query, QueryNode, StopWords};
/// let stop = StopWords::default();
/// let q = parse_query("#and(inverted #or(file index))", &stop).unwrap();
/// assert_eq!(q.leaf_terms(), vec!["inverted", "file", "index"]);
/// // Bare words become a probabilistic #sum; stop words are dropped.
/// let q = parse_query("the inverted index", &stop).unwrap();
/// assert!(matches!(q, QueryNode::Sum(children) if children.len() == 2));
/// ```
pub fn parse_query(input: &str, stop: &StopWords) -> Result<QueryNode> {
    let mut parser = Parser { input, pos: 0, stop };
    let items = parser.parse_items(true)?;
    parser.skip_ws();
    if parser.pos != input.len() {
        return Err(parser.error("unexpected trailing input"));
    }
    match items.len() {
        0 => Err(InqueryError::Parse {
            message: "query contains no indexable terms".into(),
            offset: 0,
        }),
        1 => Ok(items.into_iter().next().unwrap()),
        _ => Ok(QueryNode::Sum(items)),
    }
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
    stop: &'a StopWords,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> InqueryError {
        InqueryError::Parse { message: message.into(), offset: self.pos }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.input.len() - trimmed.len();
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    /// Parses items until `)` (or end of input when `top_level`).
    fn parse_items(&mut self, top_level: bool) -> Result<Vec<QueryNode>> {
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                None => {
                    if top_level {
                        return Ok(items);
                    }
                    return Err(self.error("unbalanced parentheses: expected ')'"));
                }
                Some(')') => {
                    if top_level {
                        return Err(self.error("unexpected ')'"));
                    }
                    return Ok(items);
                }
                Some('#') => items.push(self.parse_operator()?),
                Some(_) => {
                    if let Some(node) = self.parse_word_term()? {
                        items.push(node);
                    }
                }
            }
        }
    }

    fn take_word(&mut self) -> &'a str {
        let rest = self.rest();
        let end = rest
            .find(|c: char| c.is_whitespace() || c == '(' || c == ')' || c == '#')
            .unwrap_or(rest.len());
        self.pos += end;
        &rest[..end]
    }

    /// Normalises a raw query word into an index term.
    fn normalise(word: &str) -> String {
        word.chars().filter(|c| c.is_ascii_alphanumeric()).map(|c| c.to_ascii_lowercase()).collect()
    }

    fn parse_word_term(&mut self) -> Result<Option<QueryNode>> {
        let start = self.pos;
        let raw = self.take_word();
        if raw.is_empty() {
            self.pos = start;
            return Err(self.error("expected a word"));
        }
        let term = Self::normalise(raw);
        if term.is_empty() {
            return Ok(None);
        }
        // Stop words and noise are dropped; surviving words take their
        // index form (stemmed when the analyzer stems).
        Ok(self.stop.index_form(&term).map(QueryNode::Term))
    }

    fn expect(&mut self, c: char) -> Result<()> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            Ok(())
        } else {
            Err(self.error(&format!("expected '{c}'")))
        }
    }

    fn parse_operator(&mut self) -> Result<QueryNode> {
        debug_assert_eq!(self.peek(), Some('#'));
        self.pos += 1;
        let name = self.take_word().to_ascii_lowercase();
        self.expect('(')?;
        let node = match name.as_str() {
            "and" => QueryNode::And(self.parse_nonempty_items("#and")?),
            "or" => QueryNode::Or(self.parse_nonempty_items("#or")?),
            "sum" => QueryNode::Sum(self.parse_nonempty_items("#sum")?),
            "max" => QueryNode::Max(self.parse_nonempty_items("#max")?),
            "not" => {
                let items = self.parse_nonempty_items("#not")?;
                if items.len() != 1 {
                    return Err(self.error("#not takes exactly one argument"));
                }
                QueryNode::Not(Box::new(items.into_iter().next().unwrap()))
            }
            "wsum" => QueryNode::WSum(self.parse_weighted_items()?),
            "phrase" => QueryNode::Phrase(self.parse_word_list("#phrase")?),
            _ if name.starts_with("uw") => {
                let size: u32 = name[2..]
                    .parse()
                    .map_err(|_| self.error("expected #uw<N> with a numeric window size"))?;
                if size == 0 {
                    return Err(self.error("#uw window size must be positive"));
                }
                QueryNode::Window { size, terms: self.parse_word_list("#uw")? }
            }
            other => return Err(self.error(&format!("unknown operator #{other}"))),
        };
        self.expect(')')?;
        Ok(node)
    }

    fn parse_nonempty_items(&mut self, op: &str) -> Result<Vec<QueryNode>> {
        let items = self.parse_items(false)?;
        if items.is_empty() {
            return Err(self.error(&format!("{op} requires at least one indexable argument")));
        }
        Ok(items)
    }

    /// `#wsum` body: alternating weight / item pairs.
    fn parse_weighted_items(&mut self) -> Result<Vec<(f64, QueryNode)>> {
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(')') => break,
                None => return Err(self.error("unbalanced parentheses in #wsum")),
                _ => {}
            }
            let start = self.pos;
            let word = self.take_word();
            let weight: f64 = word.parse().map_err(|_| {
                self.pos = start;
                self.error("expected a numeric weight in #wsum")
            })?;
            if !(weight.is_finite() && weight >= 0.0) {
                self.pos = start;
                return Err(self.error("#wsum weights must be finite and non-negative"));
            }
            self.skip_ws();
            let item = match self.peek() {
                Some('#') => Some(self.parse_operator()?),
                Some(c) if c != ')' => self.parse_word_term()?,
                _ => return Err(self.error("#wsum weight without an argument")),
            };
            if let Some(item) = item {
                out.push((weight, item));
            }
        }
        if out.is_empty() {
            return Err(self.error("#wsum requires at least one weighted argument"));
        }
        Ok(out)
    }

    /// `#phrase`/`#uw` body: plain words only, stop words kept.
    fn parse_word_list(&mut self, op: &str) -> Result<Vec<String>> {
        let mut words = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(')') => break,
                None => return Err(self.error(&format!("unbalanced parentheses in {op}"))),
                Some('#') => {
                    return Err(self.error(&format!("{op} accepts only plain words")));
                }
                Some(_) => {
                    let term = Self::normalise(self.take_word());
                    if term.is_empty() {
                        continue;
                    }
                    // Inside #phrase/#uw, stop words stay (they are
                    // positional wildcards) but content words take their
                    // index form so they match the dictionary.
                    if term.len() >= 2 && !self.stop.contains(&term) {
                        words.push(self.stop.index_form(&term).unwrap_or(term));
                    } else {
                        words.push(term);
                    }
                }
            }
        }
        if words.len() < 2 {
            return Err(self.error(&format!("{op} requires at least two words")));
        }
        Ok(words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> QueryNode {
        parse_query(s, &StopWords::default()).unwrap()
    }

    #[test]
    fn bare_words_become_a_sum() {
        assert_eq!(
            parse("information retrieval systems"),
            QueryNode::Sum(vec![
                QueryNode::Term("information".into()),
                QueryNode::Term("retrieval".into()),
                QueryNode::Term("systems".into()),
            ])
        );
    }

    #[test]
    fn single_word_is_a_bare_term() {
        assert_eq!(parse("Retrieval"), QueryNode::Term("retrieval".into()));
    }

    #[test]
    fn stop_words_are_removed_from_queries() {
        assert_eq!(
            parse("the performance of retrieval"),
            QueryNode::Sum(vec![
                QueryNode::Term("performance".into()),
                QueryNode::Term("retrieval".into()),
            ])
        );
    }

    #[test]
    fn boolean_operators_nest() {
        let q = parse("#and(database #or(index btree) #not(hardware))");
        assert_eq!(
            q,
            QueryNode::And(vec![
                QueryNode::Term("database".into()),
                QueryNode::Or(vec![
                    QueryNode::Term("index".into()),
                    QueryNode::Term("btree".into()),
                ]),
                QueryNode::Not(Box::new(QueryNode::Term("hardware".into()))),
            ])
        );
    }

    #[test]
    fn wsum_pairs_weights_and_items() {
        let q = parse("#wsum(2 retrieval 1 #phrase(object store) 0.5 mneme)");
        match q {
            QueryNode::WSum(items) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[0], (2.0, QueryNode::Term("retrieval".into())));
                assert_eq!(
                    items[1],
                    (1.0, QueryNode::Phrase(vec!["object".into(), "store".into()]))
                );
                assert_eq!(items[2], (0.5, QueryNode::Term("mneme".into())));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn phrase_keeps_stop_words() {
        let q = parse("#phrase(state of the art)");
        assert_eq!(
            q,
            QueryNode::Phrase(vec!["state".into(), "of".into(), "the".into(), "art".into()])
        );
    }

    #[test]
    fn unordered_window_parses_size() {
        let q = parse("#uw5(information retrieval)");
        assert_eq!(
            q,
            QueryNode::Window { size: 5, terms: vec!["information".into(), "retrieval".into()] }
        );
    }

    #[test]
    fn parse_errors_carry_position_and_reason() {
        let stop = StopWords::default();
        for (query, fragment) in [
            ("#and(a b", "unbalanced"),
            ("#bogus(x y)", "unknown operator"),
            ("#not(alpha beta)", "exactly one"),
            ("#wsum(x retrieval)", "numeric weight"),
            ("#phrase(single)", "at least two"),
            ("#uwx(a b)", "numeric window"),
            ("#uw0(ab cd)", "positive"),
            ("the of and", "no indexable terms"),
            ("", "no indexable terms"),
            ("#phrase(a #and(b))", "only plain words"),
            ("retrieval)", "unexpected ')'"),
        ] {
            match parse_query(query, &stop) {
                Err(InqueryError::Parse { message, .. }) => {
                    assert!(
                        message.contains(fragment),
                        "query {query:?}: message {message:?} should contain {fragment:?}"
                    );
                }
                other => panic!("query {query:?}: expected parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn punctuation_in_words_is_stripped() {
        assert_eq!(parse("B-tree's"), QueryNode::Term("btrees".into()));
    }

    #[test]
    fn operators_with_all_stop_children_error() {
        assert!(parse_query("#and(the of)", &StopWords::default()).is_err());
    }
}

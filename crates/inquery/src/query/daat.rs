//! Document-at-a-time evaluation — the paper's scalability extension.
//!
//! "A 'document-at-a-time' approach, which gathered all of the evidence for
//! one document before proceeding to the next, might scale better to large
//! collections. However, it would be cumbersome with the current custom
//! B-tree package." (Section 3.1)
//!
//! With records fetched through the store abstraction this mode is no
//! longer cumbersome: all query-term records are opened as streaming
//! [`PostingsCursor`]s and merged by document id, holding only one decoded
//! posting per term instead of whole accumulator maps. It applies to
//! bag-of-words queries (`#sum`/`#wsum` over terms), which is what the
//! paper's natural-language query sets produce.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::belief::{BeliefParams, CollectionStats};
use crate::dict::Dictionary;
use crate::documents::DocTable;
use crate::error::{InqueryError, Result};
use crate::postings::{DocId, Posting, PostingsCursor};
use crate::query::ast::QueryNode;
use crate::query::eval::ScoredDoc;
use crate::store::InvertedFileStore;

/// Flattens a query into `(weight, term)` pairs if it is a bag-of-words
/// query (a bare term, `#sum` of terms, or `#wsum` of terms).
pub fn flatten_bag(query: &QueryNode) -> Option<Vec<(f64, String)>> {
    match query {
        QueryNode::Term(t) => Some(vec![(1.0, t.clone())]),
        QueryNode::Sum(children) => children
            .iter()
            .map(|c| match c {
                QueryNode::Term(t) => Some((1.0, t.clone())),
                _ => None,
            })
            .collect(),
        QueryNode::WSum(children) => children
            .iter()
            .map(|(w, c)| match c {
                QueryNode::Term(t) => Some((*w, t.clone())),
                _ => None,
            })
            .collect(),
        _ => None,
    }
}

/// Ranks a bag-of-words query document-at-a-time. Produces exactly the
/// same scores as the term-at-a-time evaluator on the same query.
pub fn rank_daat<S: InvertedFileStore + ?Sized>(
    store: &mut S,
    dict: &Dictionary,
    docs: &DocTable,
    params: BeliefParams,
    terms: &[(f64, String)],
    k: usize,
) -> Result<Vec<ScoredDoc>> {
    let stats = CollectionStats { num_docs: docs.len() as u32, avg_doc_len: docs.avg_len() };
    // Fetch every term's record bytes (one store lookup per term, as in
    // term-at-a-time — the access pattern the storage layer sees is the
    // same; what changes is evaluation memory). Unknown terms contribute
    // the default belief to every document, exactly as in term-at-a-time,
    // so their weight stays in the normalisation.
    let mut weights = Vec::new();
    let mut buffers = Vec::new();
    let mut unknown_weight = 0.0f64;
    for (w, term) in terms {
        let Some(id) = dict.lookup(term) else {
            unknown_weight += *w;
            continue;
        };
        let bytes = store.fetch(dict.entry(id).store_ref)?;
        weights.push(*w);
        buffers.push(bytes);
    }
    let mut cursors = Vec::with_capacity(buffers.len());
    let mut dfs = Vec::with_capacity(buffers.len());
    let mut heap: BinaryHeap<Reverse<(u32, usize)>> = BinaryHeap::new();
    let mut current: Vec<Option<Posting>> = Vec::with_capacity(buffers.len());
    for (i, bytes) in buffers.iter().enumerate() {
        let (mut cursor, df, _cf, _max_tf) = PostingsCursor::open(bytes)
            .ok_or_else(|| InqueryError::BadRecord("cursor open failed".into()))?;
        dfs.push(df);
        let head = cursor.next();
        if let Some(p) = &head {
            heap.push(Reverse((p.doc.0, i)));
        }
        current.push(head);
        cursors.push(cursor);
    }
    let total_weight: f64 = weights.iter().sum::<f64>() + unknown_weight;
    if total_weight == 0.0 || weights.is_empty() {
        return Ok(Vec::new());
    }
    // The belief a term contributes when absent from the document.
    let default = params.default_belief;
    // Gather all evidence for one document before moving to the next.
    let mut results: Vec<ScoredDoc> = Vec::new();
    while let Some(&Reverse((doc_raw, _))) = heap.peek() {
        let doc = DocId(doc_raw);
        let doc_len = docs.info(doc).len;
        let mut weighted_sum = 0.0;
        let mut consumed = Vec::new();
        // Pop every term positioned at this document.
        while let Some(&Reverse((d, i))) = heap.peek() {
            if d != doc_raw {
                break;
            }
            heap.pop();
            consumed.push(i);
            let posting = current[i].take().expect("heap entries have postings");
            let belief = params.term_belief(posting.tf, doc_len, dfs[i], &stats);
            weighted_sum += weights[i] * belief;
        }
        // Terms absent from this document contribute the default belief.
        let absent_weight: f64 = total_weight - consumed.iter().map(|&i| weights[i]).sum::<f64>();
        weighted_sum += absent_weight * default;
        results.push(ScoredDoc { doc, score: weighted_sum / total_weight });
        // Advance consumed cursors.
        for i in consumed {
            let next = cursors[i].next();
            if let Some(p) = &next {
                heap.push(Reverse((p.doc.0, i)));
            }
            current[i] = next;
        }
    }
    results.sort_unstable_by(|a, b| {
        b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal).then(a.doc.cmp(&b.doc))
    });
    results.truncate(k);
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexBuilder;
    use crate::query::eval::Evaluator;
    use crate::query::parser::parse_query;
    use crate::store::MemoryStore;
    use crate::text::StopWords;

    fn corpus() -> (MemoryStore, Dictionary, DocTable, StopWords) {
        let stop = StopWords::default();
        let mut b = IndexBuilder::new(stop.clone());
        b.add_document("D0", "alpha beta gamma alpha");
        b.add_document("D1", "beta beta delta");
        b.add_document("D2", "alpha delta epsilon beta");
        b.add_document("D3", "zeta eta theta");
        let idx = b.finish();
        let mut store = MemoryStore::new();
        let mut dict = idx.dictionary;
        for (term, bytes) in idx.records {
            let r = store.add(bytes);
            dict.entry_mut(term).store_ref = r;
        }
        (store, dict, idx.documents, stop)
    }

    #[test]
    fn flatten_accepts_bags_and_rejects_structure() {
        let stop = StopWords::default();
        let bag = parse_query("alpha beta gamma", &stop).unwrap();
        assert_eq!(flatten_bag(&bag).unwrap().len(), 3);
        let weighted = parse_query("#wsum(2 alpha 1 beta)", &stop).unwrap();
        let flat = flatten_bag(&weighted).unwrap();
        assert_eq!(flat[0], (2.0, "alpha".into()));
        let single = parse_query("alpha", &stop).unwrap();
        assert_eq!(flatten_bag(&single).unwrap(), vec![(1.0, "alpha".into())]);
        let structured = parse_query("#and(alpha beta)", &stop).unwrap();
        assert!(flatten_bag(&structured).is_none());
        let nested = parse_query("#sum(alpha #and(beta gamma))", &stop).unwrap();
        assert!(flatten_bag(&nested).is_none());
    }

    #[test]
    fn daat_matches_taat_scores() {
        let (mut store, dict, docs, stop) = corpus();
        for query in [
            "alpha beta delta",
            "#wsum(3 alpha 1 beta 2 epsilon)",
            "alpha",
            // Unknown terms must dilute DAAT exactly as they dilute TAAT.
            "alpha unknownword beta",
            "#wsum(1 alpha 5 missingterm)",
        ] {
            let q = parse_query(query, &stop).unwrap();
            let taat = {
                let mut ev =
                    Evaluator::new(&mut store, &dict, &docs, &stop, BeliefParams::default());
                ev.rank(&q, 10).unwrap()
            };
            let bag = flatten_bag(&q).unwrap();
            let daat =
                rank_daat(&mut store, &dict, &docs, BeliefParams::default(), &bag, 10).unwrap();
            assert_eq!(taat.len(), daat.len(), "query {query:?}");
            for (a, b) in taat.iter().zip(daat.iter()) {
                assert_eq!(a.doc, b.doc, "query {query:?}");
                assert!((a.score - b.score).abs() < 1e-9, "query {query:?}");
            }
        }
    }

    #[test]
    fn daat_handles_unknown_terms() {
        let (mut store, dict, docs, stop) = corpus();
        let ranked = rank_daat(
            &mut store,
            &dict,
            &docs,
            BeliefParams::default(),
            &[(1.0, "unknown".into()), (1.0, "alpha".into())],
            10,
        )
        .unwrap();
        assert!(!ranked.is_empty());
        // Every ranked doc contains alpha.
        for s in &ranked {
            assert!([0u32, 2].contains(&s.doc.0));
        }
        let stop2 = stop;
        let _ = stop2;
    }

    #[test]
    fn daat_empty_query_returns_nothing() {
        let (mut store, dict, docs, _stop) = corpus();
        let ranked = rank_daat(&mut store, &dict, &docs, BeliefParams::default(), &[], 10).unwrap();
        assert!(ranked.is_empty());
    }

    #[test]
    fn daat_respects_k() {
        let (mut store, dict, docs, _stop) = corpus();
        let ranked = rank_daat(
            &mut store,
            &dict,
            &docs,
            BeliefParams::default(),
            &[(1.0, "beta".into())],
            2,
        )
        .unwrap();
        assert_eq!(ranked.len(), 2);
    }
}

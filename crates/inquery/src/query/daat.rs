//! Document-at-a-time evaluation — the paper's scalability extension.
//!
//! "A 'document-at-a-time' approach, which gathered all of the evidence for
//! one document before proceeding to the next, might scale better to large
//! collections. However, it would be cumbersome with the current custom
//! B-tree package." (Section 3.1)
//!
//! With records fetched through the store abstraction this mode is no
//! longer cumbersome: all query-term records are opened as streaming
//! [`PostingsCursor`]s and merged by document id, holding only one decoded
//! posting per term instead of whole accumulator maps. It applies to
//! bag-of-words queries (`#sum`/`#wsum` over terms), which is what the
//! paper's natural-language query sets produce.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use crate::belief::{BeliefParams, CollectionStats};
use crate::dict::Dictionary;
use crate::documents::DocTable;
use crate::error::{InqueryError, Result};
use crate::postings::{BlockCursor, DocId, Posting, PostingsCursor, SkipBlock};
use crate::query::ast::QueryNode;
use crate::query::eval::ScoredDoc;
use crate::store::{InvertedFileStore, RecordBytes};

/// Safety margin for floating-point upper-bound comparisons. Bounds are
/// computed in a different operation order than exact scores, so two
/// mathematically ordered values can disagree by a few ulps; the margin
/// (10^6 ulps at score scale) makes skips strictly conservative.
const PRUNE_EPS: f64 = 1e-9;

/// Bytes fetched up front per term record on the range-read protocol —
/// one device transfer block, which covers every small- and medium-pool
/// record whole and a blocked record's header plus skip directory.
pub const RANGE_PREFIX: usize = 8192;

/// Records at most this long are fetched whole even on stores with cheap
/// range reads: the lazy protocol's prefix-plus-chunk reads land unaligned
/// to device blocks, so on a record the pruner ends up consuming almost
/// entirely it costs *more* device I/O than one whole-record fetch. Only
/// genuinely long records — where skipped tail blocks translate into whole
/// device transfers never issued — repay the range protocol.
pub const LAZY_MIN: usize = 4 * RANGE_PREFIX;

/// Work-avoidance counters reported by [`rank_daat_pruned`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaatStats {
    /// Postings decoded (doc/tf actually read).
    pub postings_decoded: u64,
    /// Postings bypassed without decoding via cursor seeks.
    pub postings_skipped: u64,
    /// Whole blocks bypassed via the skip directory.
    pub blocks_skipped: u64,
    /// Cursor seeks that moved (at least one block jumped).
    pub cursor_seeks: u64,
    /// Posting payload bytes actually decoded by the cursors.
    pub bytes_decoded: u64,
    /// Posting blocks decoded from the v2 bit-packed representation.
    pub blocks_bitpacked: u64,
    /// Packed blocks served from the store's decoded-block cache.
    pub block_cache_hits: u64,
    /// Packed blocks decoded despite an attached decoded-block cache.
    pub block_cache_misses: u64,
}

/// Flattens a query into `(weight, term)` pairs if it is a bag-of-words
/// query (a bare term, `#sum` of terms, or `#wsum` of terms).
pub fn flatten_bag(query: &QueryNode) -> Option<Vec<(f64, String)>> {
    match query {
        QueryNode::Term(t) => Some(vec![(1.0, t.clone())]),
        QueryNode::Sum(children) => children
            .iter()
            .map(|c| match c {
                QueryNode::Term(t) => Some((1.0, t.clone())),
                _ => None,
            })
            .collect(),
        QueryNode::WSum(children) => children
            .iter()
            .map(|(w, c)| match c {
                QueryNode::Term(t) => Some((*w, t.clone())),
                _ => None,
            })
            .collect(),
        _ => None,
    }
}

/// Ranks a bag-of-words query document-at-a-time. Produces exactly the
/// same scores as the term-at-a-time evaluator on the same query.
pub fn rank_daat<S: InvertedFileStore + ?Sized>(
    store: &mut S,
    dict: &Dictionary,
    docs: &DocTable,
    params: BeliefParams,
    terms: &[(f64, String)],
    k: usize,
) -> Result<Vec<ScoredDoc>> {
    let stats = CollectionStats { num_docs: docs.len() as u32, avg_doc_len: docs.avg_len() };
    // Fetch every term's record bytes (one store lookup per term, as in
    // term-at-a-time — the access pattern the storage layer sees is the
    // same; what changes is evaluation memory). Unknown terms contribute
    // the default belief to every document, exactly as in term-at-a-time,
    // so their weight stays in the normalisation. Document frequency comes
    // from the dictionary, not the record header: on an unsharded index
    // the two are identical, and on a shard (whose records hold only a
    // document-id slice) the dictionary keeps the collection-wide df the
    // belief function needs for globally consistent scores.
    let block_cache = store.decoded_block_cache();
    let store_epoch = store.store_epoch();
    let mut weights = Vec::new();
    let mut buffers = Vec::new();
    let mut refs = Vec::new();
    let mut dfs = Vec::new();
    let mut unknown_weight = 0.0f64;
    for (w, term) in terms {
        let Some(id) = dict.lookup(term) else {
            unknown_weight += *w;
            continue;
        };
        let store_ref = dict.entry(id).store_ref;
        let bytes = store.fetch(store_ref)?;
        weights.push(*w);
        dfs.push(dict.entry(id).df);
        refs.push(store_ref);
        buffers.push(bytes);
    }
    let mut cursors = Vec::with_capacity(buffers.len());
    let mut heap: BinaryHeap<Reverse<(u32, usize)>> = BinaryHeap::new();
    let mut current: Vec<Option<Posting>> = Vec::with_capacity(buffers.len());
    for (i, bytes) in buffers.iter().enumerate() {
        let (mut cursor, _df, _cf, _max_tf) = PostingsCursor::open(bytes)
            .ok_or_else(|| InqueryError::BadRecord("cursor open failed".into()))?;
        if let Some(cache) = &block_cache {
            cursor.attach_cache(Arc::clone(cache), store_epoch, refs[i]);
        }
        let head = cursor.next();
        if let Some(p) = &head {
            heap.push(Reverse((p.doc.0, i)));
        }
        current.push(head);
        cursors.push(cursor);
    }
    let total_weight: f64 = weights.iter().sum::<f64>() + unknown_weight;
    if total_weight == 0.0 || weights.is_empty() {
        return Ok(Vec::new());
    }
    // The belief a term contributes when absent from the document.
    let default = params.default_belief;
    // Gather all evidence for one document before moving to the next.
    let mut results: Vec<ScoredDoc> = Vec::new();
    while let Some(&Reverse((doc_raw, _))) = heap.peek() {
        let doc = DocId(doc_raw);
        let doc_len = docs.info(doc).len;
        let mut weighted_sum = 0.0;
        let mut consumed = Vec::new();
        // Pop every term positioned at this document.
        while let Some(&Reverse((d, i))) = heap.peek() {
            if d != doc_raw {
                break;
            }
            heap.pop();
            consumed.push(i);
            let posting = current[i].take().expect("heap entries have postings");
            let belief = params.term_belief(posting.tf, doc_len, dfs[i], &stats);
            weighted_sum += weights[i] * belief;
        }
        // Terms absent from this document contribute the default belief.
        let absent_weight: f64 = total_weight - consumed.iter().map(|&i| weights[i]).sum::<f64>();
        weighted_sum += absent_weight * default;
        results.push(ScoredDoc { doc, score: weighted_sum / total_weight });
        // Advance consumed cursors.
        for i in consumed {
            let next = cursors[i].next();
            if let Some(p) = &next {
                heap.push(Reverse((p.doc.0, i)));
            }
            current[i] = next;
        }
    }
    results.sort_unstable_by(|a, b| {
        b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal).then(a.doc.cmp(&b.doc))
    });
    results.truncate(k);
    Ok(results)
}

/// One term's record bytes, fetched lazily at skip-block granularity over
/// the store's range-read path. Complete lists hold the whole record —
/// kept in whatever form the store returned, so a zero-copy shared slice
/// stays shared for the life of the query; partial lists hold an owned
/// zero-filled buffer with the prefix and any ensured blocks copied in.
struct LazyList {
    bytes: RecordBytes,
    /// Per-skip-block "bytes present" flags; empty when `complete`.
    fetched: Vec<bool>,
    complete: bool,
    prefix_len: usize,
    store_ref: u64,
}

impl LazyList {
    /// Fetches a term record — whole, or prefix-first when the store can
    /// serve cheap range reads — and opens its cursor.
    fn fetch_open<S: InvertedFileStore + ?Sized>(
        store: &mut S,
        store_ref: u64,
    ) -> Result<(LazyList, BlockCursor, u32, u32)> {
        let open_err = || InqueryError::BadRecord("cursor open failed".into());
        // Short records (per the store's free length hint) take the single
        // whole-record fetch: below LAZY_MIN the range protocol cannot win.
        let short = store.record_len_hint(store_ref).is_some_and(|len| len <= LAZY_MIN as u64);
        if short || !store.supports_range_read() {
            let bytes = store.fetch(store_ref)?;
            let (cursor, df, _cf, max_tf) = BlockCursor::open(&bytes).ok_or_else(open_err)?;
            let list =
                LazyList { bytes, fetched: Vec::new(), complete: true, prefix_len: 0, store_ref };
            return Ok((list, cursor, df, max_tf));
        }
        let prefix = store.fetch_range(store_ref, 0, RANGE_PREFIX)?;
        if prefix.len() < RANGE_PREFIX {
            // The record ended inside the prefix: it is complete.
            let (cursor, df, _cf, max_tf) = BlockCursor::open(&prefix).ok_or_else(open_err)?;
            let list = LazyList {
                bytes: prefix,
                fetched: Vec::new(),
                complete: true,
                prefix_len: 0,
                store_ref,
            };
            return Ok((list, cursor, df, max_tf));
        }
        // The record continues past the prefix. Blocked records tell us
        // their exact length through the skip directory, letting later
        // blocks be fetched individually; anything else (an unblocked
        // record that still outgrew the prefix, or a directory too large
        // for one prefix) falls back to fetching the rest eagerly.
        if let Some((cursor, df, _cf, max_tf)) = BlockCursor::open(&prefix) {
            if let Some(total) = cursor.total_len() {
                if total > prefix.len() {
                    let prefix_len = prefix.len();
                    let mut bytes = prefix.into_vec();
                    bytes.resize(total, 0);
                    let fetched =
                        cursor.blocks().iter().map(|b| b.offset + b.len <= prefix_len).collect();
                    let list = LazyList {
                        bytes: RecordBytes::Owned(bytes),
                        fetched,
                        complete: false,
                        prefix_len,
                        store_ref,
                    };
                    return Ok((list, cursor, df, max_tf));
                }
                let list = LazyList {
                    bytes: prefix,
                    fetched: Vec::new(),
                    complete: true,
                    prefix_len: 0,
                    store_ref,
                };
                return Ok((list, cursor, df, max_tf));
            }
        }
        // Continuation read (start > 0): does not count another lookup.
        let mut bytes = prefix.into_vec();
        let rest = store.fetch_range(store_ref, bytes.len() as u64, usize::MAX)?;
        bytes.extend_from_slice(&rest);
        let (cursor, df, _cf, max_tf) = BlockCursor::open(&bytes).ok_or_else(open_err)?;
        let list = LazyList {
            bytes: RecordBytes::Owned(bytes),
            fetched: Vec::new(),
            complete: true,
            prefix_len: 0,
            store_ref,
        };
        Ok((list, cursor, df, max_tf))
    }

    /// Makes skip block `b`'s bytes present, range-reading only the part
    /// the prefix did not already cover. Posting blocks are far smaller
    /// than a device block, so the read is rounded up to [`RANGE_PREFIX`]
    /// bytes (clamped to the record) and every posting block it fully
    /// covers is marked fetched — sequential decode then costs about the
    /// same device I/O as a whole-record fetch, while seeks past the
    /// covered span still skip physical reads entirely.
    fn ensure_block<S: InvertedFileStore + ?Sized>(
        &mut self,
        store: &mut S,
        blocks: &[SkipBlock],
        b: usize,
    ) -> Result<()> {
        let blk = blocks[b];
        let start = blk.offset.max(self.prefix_len);
        let end = (start + RANGE_PREFIX).max(blk.offset + blk.len).min(self.bytes.len());
        if end > start {
            let chunk = store.fetch_range(self.store_ref, start as u64, end - start)?;
            if chunk.len() < end - start {
                return Err(InqueryError::BadRecord(format!(
                    "range read returned {} of {} bytes",
                    chunk.len(),
                    end - start
                )));
            }
            self.bytes.to_mut()[start..end].copy_from_slice(&chunk[..end - start]);
        }
        self.fetched[b] = true;
        // Later blocks that landed entirely inside the chunk are present
        // too (blocks are contiguous, so covering their end covers them).
        for (i, later) in blocks.iter().enumerate().skip(b + 1) {
            if later.offset + later.len > end {
                break;
            }
            self.fetched[i] = true;
        }
        Ok(())
    }
}

/// Advances one list's cursor, ensuring the current block's bytes are
/// present first. Returns the next `(doc, tf)` or `None` at the end.
fn advance_list<S: InvertedFileStore + ?Sized>(
    store: &mut S,
    list: &mut LazyList,
    cursor: &mut BlockCursor,
    stats: &mut DaatStats,
) -> Result<Option<(u32, u32)>> {
    if cursor.remaining() == 0 {
        return Ok(None);
    }
    if !list.complete {
        if let Some(b) = cursor.current_block_index() {
            if !list.fetched[b] {
                list.ensure_block(store, cursor.blocks(), b)?;
            }
        }
    }
    match cursor.next_doc_tf(&list.bytes) {
        Some((doc, tf)) => {
            stats.postings_decoded += 1;
            Ok(Some((doc.0, tf)))
        }
        None => Err(InqueryError::BadRecord("posting decode failed".into())),
    }
}

/// Ranks a bag-of-words query document-at-a-time with max-score pruning.
///
/// Produces exactly the same top-`k` documents and bit-identical scores
/// as [`rank_daat`]: candidate documents are generated only from the
/// lists whose belief upper bound can still lift a document into the
/// top k, cursor seeks bypass whole posting blocks via the skip
/// directory, and every document that survives the bounds is scored in
/// the same floating-point operation order as the unpruned evaluator.
pub fn rank_daat_pruned<S: InvertedFileStore + ?Sized>(
    store: &mut S,
    dict: &Dictionary,
    docs: &DocTable,
    params: BeliefParams,
    terms: &[(f64, String)],
    k: usize,
) -> Result<(Vec<ScoredDoc>, DaatStats)> {
    let mut stats = DaatStats::default();
    if k == 0 {
        return Ok((Vec::new(), stats));
    }
    let collection = CollectionStats { num_docs: docs.len() as u32, avg_doc_len: docs.avg_len() };
    let default = params.default_belief;

    // Fetch every known term's record (same store access order as
    // rank_daat); unknown terms keep their weight in the normalisation.
    // As in rank_daat, df is the dictionary's collection-wide count (the
    // record header's df is shard-local on a sharded index); max_tf stays
    // the record header's, which on a shard caps the postings actually in
    // the record — a tighter, still-sound pruning bound.
    let mut weights: Vec<f64> = Vec::new();
    let mut lists: Vec<LazyList> = Vec::new();
    let mut cursors: Vec<BlockCursor> = Vec::new();
    let mut dfs: Vec<u32> = Vec::new();
    let mut max_tfs: Vec<u32> = Vec::new();
    let mut unknown_weight = 0.0f64;
    let block_cache = store.decoded_block_cache();
    let store_epoch = store.store_epoch();
    for (w, term) in terms {
        let Some(id) = dict.lookup(term) else {
            unknown_weight += *w;
            continue;
        };
        let store_ref = dict.entry(id).store_ref;
        let (list, mut cursor, _df, max_tf) = LazyList::fetch_open(store, store_ref)?;
        if let Some(cache) = &block_cache {
            // Cache hits only short-circuit the doc/tf unpack; position
            // bytes and lazy range reads behave exactly as uncached
            // (advance_list still ensures block bytes first), so I/O
            // accounting stays deterministic.
            cursor.attach_cache(Arc::clone(cache), store_epoch, store_ref);
        }
        weights.push(*w);
        lists.push(list);
        cursors.push(cursor);
        dfs.push(dict.entry(id).df);
        max_tfs.push(max_tf);
    }
    let total_weight: f64 = weights.iter().sum::<f64>() + unknown_weight;
    if total_weight == 0.0 || weights.is_empty() {
        return Ok((Vec::new(), stats));
    }
    let n = weights.len();

    // Record-level upper bounds on each term's score contribution above
    // the all-absent baseline: belief is monotone increasing in tf and
    // decreasing in document length, so evaluating at (max_tf, min_len)
    // bounds every posting. Negative weights cannot raise a score above
    // baseline, so their delta clamps to zero.
    let min_len = docs.min_len();
    let deltas: Vec<f64> = (0..n)
        .map(|i| {
            let ub = params.term_belief(max_tfs[i], min_len, dfs[i], &collection);
            (weights[i] * (ub - default)).max(0.0)
        })
        .collect();

    // Lists in descending upper-bound order; tail[j] bounds the total
    // contribution of lists ord[j..].
    let mut ord: Vec<usize> = (0..n).collect();
    ord.sort_unstable_by(|&a, &b| {
        deltas[b].partial_cmp(&deltas[a]).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut tail = vec![0.0f64; n + 1];
    for j in (0..n).rev() {
        tail[j] = tail[j + 1] + deltas[ord[j]];
    }

    // Current head posting per list.
    let mut heads: Vec<Option<(u32, u32)>> = Vec::with_capacity(n);
    for i in 0..n {
        let head = advance_list(store, &mut lists[i], &mut cursors[i], &mut stats)?;
        heads.push(head);
    }

    // Top-k heap: peek() is the worst kept candidate (lowest score, then
    // largest doc — the one the final sort would drop first).
    struct Candidate {
        score: f64,
        doc: DocId,
    }
    impl PartialEq for Candidate {
        fn eq(&self, other: &Self) -> bool {
            self.score == other.score && self.doc == other.doc
        }
    }
    impl Eq for Candidate {}
    impl PartialOrd for Candidate {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Candidate {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            other
                .score
                .partial_cmp(&self.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(self.doc.cmp(&other.doc))
        }
    }
    let mut heap: BinaryHeap<Candidate> = BinaryHeap::with_capacity(k + 1);
    let mut theta = f64::NEG_INFINITY;

    // Number of essential lists (ord[..m]); lists past m cannot lift a
    // document over theta on their own and only get probed.
    let mut m = n;
    let recompute_m = |theta: f64| -> usize {
        (0..n).find(|&j| default + tail[j] / total_weight + PRUNE_EPS <= theta).unwrap_or(n)
    };

    loop {
        if m == 0 {
            break;
        }
        // Candidate: smallest head document among essential lists.
        let mut cand = u32::MAX;
        for &i in &ord[..m] {
            if let Some((d, _)) = heads[i] {
                cand = cand.min(d);
            }
        }
        if cand == u32::MAX {
            break;
        }
        let doc_len = docs.info(DocId(cand)).len;
        let exact_delta = |i: usize, tf: u32| -> f64 {
            weights[i] * (params.term_belief(tf, doc_len, dfs[i], &collection) - default)
        };

        // Exact contributions from matching essential lists, record-level
        // bounds for the non-essential rest.
        let mut matched: Vec<(usize, u32)> = Vec::new();
        let mut bound = 0.0f64;
        for &i in &ord[..m] {
            if let Some((d, tf)) = heads[i] {
                if d == cand {
                    matched.push((i, tf));
                    bound += exact_delta(i, tf);
                }
            }
        }
        for &j in &ord[m..] {
            bound += deltas[j];
        }

        let mut alive = default + bound / total_weight + PRUNE_EPS > theta;
        if alive {
            // Probe non-essential lists in descending bound order,
            // replacing each record-level bound first with its block-max
            // refinement and then with the exact contribution. A stale
            // head (left behind while the list was non-essential) settles
            // the list without touching the cursor: at `cand` it is the
            // exact contribution, past `cand` the list cannot match.
            for &j in &ord[m..] {
                bound -= deltas[j];
                match heads[j] {
                    None => {}
                    Some((d, _)) if d > cand => {}
                    Some((d, tf)) if d == cand => {
                        matched.push((j, tf));
                        bound += exact_delta(j, tf);
                    }
                    Some(_) => {
                        let seek = cursors[j].seek(cand);
                        stats.blocks_skipped += seek.blocks_skipped;
                        stats.postings_skipped += seek.postings_skipped;
                        if seek.blocks_skipped > 0 {
                            stats.cursor_seeks += 1;
                        }
                        // Block-max refinement: the current block caps tf,
                        // which may rule the document out without touching
                        // its bytes.
                        let refined = match cursors[j].current_block_max_tf() {
                            Some(block_max) => {
                                let ub =
                                    params.term_belief(block_max, min_len, dfs[j], &collection);
                                (weights[j] * (ub - default)).max(0.0).min(deltas[j])
                            }
                            None if cursors[j].remaining() == 0 => 0.0,
                            None => deltas[j],
                        };
                        if default + (bound + refined) / total_weight + PRUNE_EPS <= theta {
                            alive = false;
                        } else {
                            // Decode within the block until we reach or
                            // pass cand.
                            while let Some((d, _)) = heads[j] {
                                if d >= cand {
                                    break;
                                }
                                heads[j] = advance_list(
                                    store,
                                    &mut lists[j],
                                    &mut cursors[j],
                                    &mut stats,
                                )?;
                            }
                            if let Some((d, tf)) = heads[j] {
                                if d == cand {
                                    matched.push((j, tf));
                                    bound += exact_delta(j, tf);
                                }
                            }
                        }
                    }
                }
                if !alive || default + bound / total_weight + PRUNE_EPS <= theta {
                    alive = false;
                    break;
                }
            }
        }

        if alive {
            // Full evaluation, replicating rank_daat's exact FP order:
            // contributions in ascending list index, then the absent mass.
            matched.sort_unstable_by_key(|&(i, _)| i);
            let mut weighted_sum = 0.0f64;
            for &(i, tf) in &matched {
                weighted_sum += weights[i] * params.term_belief(tf, doc_len, dfs[i], &collection);
            }
            let absent_weight: f64 =
                total_weight - matched.iter().map(|&(i, _)| weights[i]).sum::<f64>();
            weighted_sum += absent_weight * default;
            let score = weighted_sum / total_weight;
            if heap.len() < k {
                heap.push(Candidate { score, doc: DocId(cand) });
                if heap.len() == k {
                    theta = heap.peek().map(|c| c.score).unwrap_or(f64::NEG_INFINITY);
                    m = recompute_m(theta);
                }
            } else if score > theta {
                heap.pop();
                heap.push(Candidate { score, doc: DocId(cand) });
                theta = heap.peek().map(|c| c.score).unwrap_or(f64::NEG_INFINITY);
                m = recompute_m(theta);
            }
        }

        // Advance every essential list positioned at cand.
        for &i in &ord[..m] {
            if let Some((d, _)) = heads[i] {
                if d == cand {
                    heads[i] = advance_list(store, &mut lists[i], &mut cursors[i], &mut stats)?;
                }
            }
        }
    }

    for cursor in &cursors {
        stats.bytes_decoded += cursor.bytes_decoded();
        stats.blocks_bitpacked += cursor.blocks_bitpacked();
        stats.block_cache_hits += cursor.cache_hits();
        stats.block_cache_misses += cursor.cache_misses();
    }

    let mut results: Vec<ScoredDoc> =
        heap.into_iter().map(|c| ScoredDoc { doc: c.doc, score: c.score }).collect();
    results.sort_unstable_by(|a, b| {
        b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal).then(a.doc.cmp(&b.doc))
    });
    Ok((results, stats))
}

/// Merges per-shard top-`k` lists into the global top-`k`.
///
/// Each shard covers a disjoint document-id range and scores with the
/// collection-wide statistics, so a document's score is independent of
/// which shard holds it and any document in the global top-`k` is also in
/// its own shard's top-`k` (there are at most `k - 1` documents anywhere
/// that beat it). Concatenating per-shard lists therefore contains the
/// global answer, and sorting with the evaluator's exact comparator —
/// score descending, then document id ascending — reproduces the
/// unsharded ranking bit for bit, ties included.
pub fn merge_topk(shard_results: Vec<Vec<ScoredDoc>>, k: usize) -> Vec<ScoredDoc> {
    let mut all: Vec<ScoredDoc> = shard_results.into_iter().flatten().collect();
    all.sort_unstable_by(|a, b| {
        b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal).then(a.doc.cmp(&b.doc))
    });
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexBuilder;
    use crate::query::eval::Evaluator;
    use crate::query::parser::parse_query;
    use crate::store::MemoryStore;
    use crate::text::StopWords;

    fn corpus() -> (MemoryStore, Dictionary, DocTable, StopWords) {
        let stop = StopWords::default();
        let mut b = IndexBuilder::new(stop.clone());
        b.add_document("D0", "alpha beta gamma alpha");
        b.add_document("D1", "beta beta delta");
        b.add_document("D2", "alpha delta epsilon beta");
        b.add_document("D3", "zeta eta theta");
        let idx = b.finish();
        let mut store = MemoryStore::new();
        let mut dict = idx.dictionary;
        for (term, bytes) in idx.records {
            let r = store.add(bytes);
            dict.entry_mut(term).store_ref = r;
        }
        (store, dict, idx.documents, stop)
    }

    #[test]
    fn flatten_accepts_bags_and_rejects_structure() {
        let stop = StopWords::default();
        let bag = parse_query("alpha beta gamma", &stop).unwrap();
        assert_eq!(flatten_bag(&bag).unwrap().len(), 3);
        let weighted = parse_query("#wsum(2 alpha 1 beta)", &stop).unwrap();
        let flat = flatten_bag(&weighted).unwrap();
        assert_eq!(flat[0], (2.0, "alpha".into()));
        let single = parse_query("alpha", &stop).unwrap();
        assert_eq!(flatten_bag(&single).unwrap(), vec![(1.0, "alpha".into())]);
        let structured = parse_query("#and(alpha beta)", &stop).unwrap();
        assert!(flatten_bag(&structured).is_none());
        let nested = parse_query("#sum(alpha #and(beta gamma))", &stop).unwrap();
        assert!(flatten_bag(&nested).is_none());
    }

    #[test]
    fn daat_matches_taat_scores() {
        let (mut store, dict, docs, stop) = corpus();
        for query in [
            "alpha beta delta",
            "#wsum(3 alpha 1 beta 2 epsilon)",
            "alpha",
            // Unknown terms must dilute DAAT exactly as they dilute TAAT.
            "alpha unknownword beta",
            "#wsum(1 alpha 5 missingterm)",
        ] {
            let q = parse_query(query, &stop).unwrap();
            let taat = {
                let mut ev =
                    Evaluator::new(&mut store, &dict, &docs, &stop, BeliefParams::default());
                ev.rank(&q, 10).unwrap()
            };
            let bag = flatten_bag(&q).unwrap();
            let daat =
                rank_daat(&mut store, &dict, &docs, BeliefParams::default(), &bag, 10).unwrap();
            assert_eq!(taat.len(), daat.len(), "query {query:?}");
            for (a, b) in taat.iter().zip(daat.iter()) {
                assert_eq!(a.doc, b.doc, "query {query:?}");
                assert!((a.score - b.score).abs() < 1e-9, "query {query:?}");
            }
        }
    }

    #[test]
    fn daat_handles_unknown_terms() {
        let (mut store, dict, docs, stop) = corpus();
        let ranked = rank_daat(
            &mut store,
            &dict,
            &docs,
            BeliefParams::default(),
            &[(1.0, "unknown".into()), (1.0, "alpha".into())],
            10,
        )
        .unwrap();
        assert!(!ranked.is_empty());
        // Every ranked doc contains alpha.
        for s in &ranked {
            assert!([0u32, 2].contains(&s.doc.0));
        }
        let stop2 = stop;
        let _ = stop2;
    }

    #[test]
    fn daat_empty_query_returns_nothing() {
        let (mut store, dict, docs, _stop) = corpus();
        let ranked = rank_daat(&mut store, &dict, &docs, BeliefParams::default(), &[], 10).unwrap();
        assert!(ranked.is_empty());
    }

    #[test]
    fn daat_respects_k() {
        let (mut store, dict, docs, _stop) = corpus();
        let ranked = rank_daat(
            &mut store,
            &dict,
            &docs,
            BeliefParams::default(),
            &[(1.0, "beta".into())],
            2,
        )
        .unwrap();
        assert_eq!(ranked.len(), 2);
    }

    fn assert_bitwise_eq(full: &[ScoredDoc], pruned: &[ScoredDoc], ctx: &str) {
        assert_eq!(full.len(), pruned.len(), "{ctx}: result count");
        for (a, b) in full.iter().zip(pruned.iter()) {
            assert_eq!(a.doc, b.doc, "{ctx}: doc order");
            assert_eq!(a.score.to_bits(), b.score.to_bits(), "{ctx}: score bits for {:?}", a.doc);
        }
    }

    fn pruned_queries() -> Vec<Vec<(f64, String)>> {
        vec![
            vec![(1.0, "alpha".into()), (1.0, "beta".into()), (1.0, "delta".into())],
            vec![(3.0, "alpha".into()), (1.0, "beta".into()), (2.0, "epsilon".into())],
            vec![(1.0, "alpha".into()), (5.0, "missingterm".into())],
            vec![(1.0, "beta".into())],
        ]
    }

    #[test]
    fn pruned_matches_unpruned_on_small_corpus() {
        let (mut store, dict, docs, _stop) = corpus();
        for k in [1, 2, 3, 10] {
            for terms in pruned_queries() {
                let full = rank_daat(&mut store, &dict, &docs, BeliefParams::default(), &terms, k)
                    .unwrap();
                let (pruned, _) =
                    rank_daat_pruned(&mut store, &dict, &docs, BeliefParams::default(), &terms, k)
                        .unwrap();
                assert_bitwise_eq(&full, &pruned, &format!("k={k} terms={terms:?}"));
            }
        }
    }

    #[test]
    fn pruned_empty_cases() {
        let (mut store, dict, docs, _stop) = corpus();
        let (r, _) = rank_daat_pruned(
            &mut store,
            &dict,
            &docs,
            BeliefParams::default(),
            &[(1.0, "alpha".into())],
            0,
        )
        .unwrap();
        assert!(r.is_empty(), "k = 0 returns nothing");
        let (r, _) =
            rank_daat_pruned(&mut store, &dict, &docs, BeliefParams::default(), &[], 10).unwrap();
        assert!(r.is_empty(), "empty query returns nothing");
    }

    #[test]
    fn merge_topk_reproduces_single_list_ordering() {
        let s = |doc: u32, score: f64| ScoredDoc { doc: DocId(doc), score };
        // Ties on score must break by ascending doc id, across shards.
        let shard_a = vec![s(4, 0.9), s(0, 0.5), s(2, 0.5)];
        let shard_b = vec![s(1, 0.9), s(3, 0.5)];
        let merged = merge_topk(vec![shard_a, shard_b], 4);
        let docs: Vec<u32> = merged.iter().map(|r| r.doc.0).collect();
        assert_eq!(docs, vec![1, 4, 0, 2], "score desc, then doc asc, truncated to k");
        assert!(merge_topk(vec![], 5).is_empty());
        assert_eq!(merge_topk(vec![vec![s(7, 1.0)], vec![]], 0).len(), 0);
    }

    /// A corpus big enough that frequent terms cross `BLOCK_SIZE` and get
    /// the blocked record layout. Returns total encoded record bytes too.
    fn blocked_corpus<S: InvertedFileStore + RecordSink>(
        store: &mut S,
    ) -> (Dictionary, DocTable, usize) {
        let stop = StopWords::default();
        let mut b = IndexBuilder::new(stop);
        for i in 0..1500u32 {
            let mut text = String::new();
            for _ in 0..(i % 7) + 1 {
                text.push_str("common ");
            }
            if i % 2 == 0 {
                text.push_str("half ");
            }
            if i % 151 == 0 {
                text.push_str("rare ");
            }
            for w in 0..i % 5 {
                text.push_str(&format!("filler{w} "));
            }
            b.add_document(&format!("D{i:04}"), &text);
        }
        let idx = b.finish();
        let mut dict = idx.dictionary;
        let mut total = 0usize;
        for (term, bytes) in idx.records {
            total += bytes.len();
            let r = store.sink(bytes);
            dict.entry_mut(term).store_ref = r;
        }
        (dict, idx.documents, total)
    }

    /// Test-only abstraction so [`blocked_corpus`] can load either store.
    trait RecordSink {
        fn sink(&mut self, record: Vec<u8>) -> u64;
    }
    impl RecordSink for MemoryStore {
        fn sink(&mut self, record: Vec<u8>) -> u64 {
            self.add(record)
        }
    }

    #[test]
    fn pruned_matches_unpruned_on_blocked_records() {
        let mut store = MemoryStore::new();
        let (dict, docs, _) = blocked_corpus(&mut store);
        let mut skipped = 0u64;
        for k in [1, 3, 10, 50] {
            for terms in [
                vec![(1.0f64, "rare".to_string()), (1.0, "common".into())],
                vec![(1.0, "half".into()), (2.0, "rare".into()), (1.0, "filler3".into())],
                vec![(1.0, "common".into()), (1.0, "half".into())],
            ] {
                let full = rank_daat(&mut store, &dict, &docs, BeliefParams::default(), &terms, k)
                    .unwrap();
                let (pruned, stats) =
                    rank_daat_pruned(&mut store, &dict, &docs, BeliefParams::default(), &terms, k)
                        .unwrap();
                assert_bitwise_eq(&full, &pruned, &format!("k={k} terms={terms:?}"));
                skipped += stats.postings_skipped + stats.blocks_skipped;
            }
        }
        assert!(skipped > 0, "blocked corpus with small k must skip postings");
    }

    /// A store double that serves byte ranges, counting the calls and the
    /// bytes handed out, so tests can see the lazy-fetch path at work.
    struct RangeStore {
        inner: MemoryStore,
        range_reads: u64,
        bytes_served: u64,
    }
    impl RecordSink for RangeStore {
        fn sink(&mut self, record: Vec<u8>) -> u64 {
            self.inner.add(record)
        }
    }
    impl InvertedFileStore for RangeStore {
        fn fetch(&mut self, store_ref: u64) -> Result<RecordBytes> {
            self.inner.fetch(store_ref)
        }
        fn fetch_range(&mut self, store_ref: u64, start: u64, len: usize) -> Result<RecordBytes> {
            self.range_reads += 1;
            let bytes = self.inner.fetch(store_ref)?;
            let from = (start.min(bytes.len() as u64)) as usize;
            let to = from.saturating_add(len).min(bytes.len());
            self.bytes_served += (to - from) as u64;
            Ok(bytes.slice(from, to))
        }
        fn supports_range_read(&self) -> bool {
            true
        }
        fn record_lookups(&self) -> u64 {
            self.inner.record_lookups()
        }
    }

    #[test]
    fn pruned_range_reads_fetch_blocks_lazily() {
        let mut plain = MemoryStore::new();
        let (dict, docs, _) = blocked_corpus(&mut plain);
        let mut ranged = RangeStore { inner: MemoryStore::new(), range_reads: 0, bytes_served: 0 };
        let (rdict, rdocs, total_bytes) = blocked_corpus(&mut ranged);
        let terms: Vec<(f64, String)> = vec![(2.0, "rare".into()), (1.0, "common".into())];
        let full = rank_daat(&mut plain, &dict, &docs, BeliefParams::default(), &terms, 5).unwrap();
        let (pruned, stats) =
            rank_daat_pruned(&mut ranged, &rdict, &rdocs, BeliefParams::default(), &terms, 5)
                .unwrap();
        assert_bitwise_eq(&full, &pruned, "range-read path");
        assert!(ranged.range_reads >= 2, "prefix plus at least one block read");
        assert!(stats.blocks_skipped > 0, "seeks must bypass whole blocks");
        assert!(
            ranged.bytes_served < total_bytes as u64,
            "lazy fetch must move fewer bytes than the whole records ({} vs {total_bytes})",
            ranged.bytes_served
        );
    }
}

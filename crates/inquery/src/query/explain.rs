//! Query explanation: why did this document get this score?
//!
//! [`Evaluator::explain`] recomputes one document's belief through every
//! node of the query tree, producing a tree of [`Explanation`]s. The
//! inference network makes this natural — each node *is* a probability —
//! and it is the tool a downstream user reaches for when a ranking looks
//! wrong (the same way Lucene exposes `explain`).

use crate::error::Result;
use crate::postings::DocId;
use crate::query::ast::QueryNode;
use crate::query::eval::Evaluator;
use crate::store::InvertedFileStore;

/// One node's contribution to a document's belief.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// Human-readable description of the node.
    pub node: String,
    /// The belief this node assigned to the document.
    pub belief: f64,
    /// Child explanations (empty for leaves).
    pub children: Vec<Explanation>,
}

impl Explanation {
    /// Renders the tree with two-space indentation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!("{:.4}  {}\n", self.belief, self.node));
        for child in &self.children {
            child.render_into(out, depth + 1);
        }
    }
}

impl<S: InvertedFileStore + ?Sized> Evaluator<'_, S> {
    /// Explains the belief `query` assigns to `doc`, node by node.
    pub fn explain(&mut self, query: &QueryNode, doc: DocId) -> Result<Explanation> {
        let list = self.evaluate(query)?;
        let belief = list
            .entries
            .binary_search_by_key(&doc, |&(d, _)| d)
            .map(|i| list.entries[i].1)
            .unwrap_or(list.default);
        let node = match query {
            QueryNode::Term(t) => format!("term {t:?}"),
            QueryNode::And(c) => format!("#and ({} children)", c.len()),
            QueryNode::Or(c) => format!("#or ({} children)", c.len()),
            QueryNode::Sum(c) => format!("#sum ({} children)", c.len()),
            QueryNode::Max(c) => format!("#max ({} children)", c.len()),
            QueryNode::Not(_) => "#not".to_string(),
            QueryNode::WSum(c) => format!("#wsum ({} children)", c.len()),
            QueryNode::Phrase(terms) => format!("#phrase({})", terms.join(" ")),
            QueryNode::Window { size, terms } => {
                format!("#uw{size}({})", terms.join(" "))
            }
        };
        let mut children = Vec::new();
        match query {
            QueryNode::And(c) | QueryNode::Or(c) | QueryNode::Sum(c) | QueryNode::Max(c) => {
                for child in c {
                    children.push(self.explain(child, doc)?);
                }
            }
            QueryNode::Not(child) => children.push(self.explain(child, doc)?),
            QueryNode::WSum(c) => {
                for (w, child) in c {
                    let mut e = self.explain(child, doc)?;
                    e.node = format!("weight {w} × {}", e.node);
                    children.push(e);
                }
            }
            QueryNode::Term(_) | QueryNode::Phrase(_) | QueryNode::Window { .. } => {}
        }
        Ok(Explanation { node, belief, children })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::belief::BeliefParams;
    use crate::dict::Dictionary;
    use crate::documents::DocTable;
    use crate::index::IndexBuilder;
    use crate::query::parser::parse_query;
    use crate::store::MemoryStore;
    use crate::text::StopWords;

    fn corpus() -> (MemoryStore, Dictionary, DocTable, StopWords) {
        let stop = StopWords::default();
        let mut b = IndexBuilder::new(stop.clone());
        b.add_document("D0", "storage engines and storage pools");
        b.add_document("D1", "query engines");
        let idx = b.finish();
        let mut store = MemoryStore::new();
        let mut dict = idx.dictionary;
        for (term, bytes) in idx.records {
            let r = store.add(bytes);
            dict.entry_mut(term).store_ref = r;
        }
        (store, dict, idx.documents, stop)
    }

    #[test]
    fn explanation_matches_evaluation() {
        let (mut store, dict, docs, stop) = corpus();
        let q = parse_query("#wsum(2 storage 1 #and(query engines))", &stop).unwrap();
        let mut ev = Evaluator::new(&mut store, &dict, &docs, &stop, BeliefParams::default());
        let ranked = ev.rank(&q, 10).unwrap();
        for s in &ranked {
            let e = ev.explain(&q, s.doc).unwrap();
            assert!((e.belief - s.score).abs() < 1e-12, "doc {:?}", s.doc);
        }
    }

    #[test]
    fn explanation_tree_structure() {
        let (mut store, dict, docs, stop) = corpus();
        let q = parse_query("#wsum(2 storage 1 #and(query engines))", &stop).unwrap();
        let mut ev = Evaluator::new(&mut store, &dict, &docs, &stop, BeliefParams::default());
        let e = ev.explain(&q, DocId(0)).unwrap();
        assert!(e.node.starts_with("#wsum"));
        assert_eq!(e.children.len(), 2);
        assert!(e.children[0].node.contains("weight 2"));
        assert!(e.children[0].node.contains("storage"));
        assert_eq!(e.children[1].children.len(), 2, "#and has two term children");
        // The #and over (query, engines) for D0 multiplies a default 0.4
        // (no "query") with a real "engines" belief.
        let and = &e.children[1];
        assert!(and.belief < and.children.iter().map(|c| c.belief).fold(1.0, f64::min) + 1e-12);
        // Rendering is indented and contains every node.
        let text = e.render();
        assert!(text.contains("#wsum"));
        assert!(text.contains("  ")); // indentation
        assert_eq!(text.lines().count(), 5);
    }

    #[test]
    fn absent_document_gets_default_chain() {
        let (mut store, dict, docs, stop) = corpus();
        let q = parse_query("storage", &stop).unwrap();
        let mut ev = Evaluator::new(&mut store, &dict, &docs, &stop, BeliefParams::default());
        let e = ev.explain(&q, DocId(1)).unwrap();
        assert_eq!(e.belief, 0.4, "D1 lacks 'storage' → default belief");
    }
}

//! Term-at-a-time query evaluation.
//!
//! "During retrieval, INQUERY performs 'term-at-a-time' processing of
//! evidence. That is, it reads the complete record for one term, and merges
//! the evidence from that term with the evidence it is accumulating for
//! each document. Then it processes the next term." (Section 3.1)
//!
//! Each query node evaluates to a [`ScoreList`]: the documents with
//! non-default belief plus the default belief shared by every other
//! document. Operator nodes merge their children's score lists with the
//! belief combinators in [`crate::belief`]; leaf nodes fetch one complete
//! inverted record through the pluggable [`InvertedFileStore`].

use std::collections::HashMap;

use crate::belief::{BeliefParams, CollectionStats};
use crate::dict::Dictionary;
use crate::documents::DocTable;
use crate::error::{InqueryError, Result};
use crate::postings::{DocId, InvertedRecord};
use crate::query::ast::QueryNode;
use crate::store::InvertedFileStore;
use crate::text::StopWords;

/// Beliefs for the documents that have evidence, plus the shared default.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreList {
    /// Belief of every document not present in `entries`.
    pub default: f64,
    /// `(doc, belief)` pairs, ascending by document id.
    pub entries: Vec<(DocId, f64)>,
}

impl ScoreList {
    /// A list where every document has the same belief.
    pub fn uniform(default: f64) -> Self {
        ScoreList { default, entries: Vec::new() }
    }
}

/// A ranked result.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredDoc {
    /// The document.
    pub doc: DocId,
    /// Its final belief.
    pub score: f64,
}

/// Term-at-a-time evaluator over a pluggable inverted-file store.
pub struct Evaluator<'a, S: InvertedFileStore + ?Sized> {
    store: &'a mut S,
    dict: &'a Dictionary,
    docs: &'a DocTable,
    stop: &'a StopWords,
    stats: CollectionStats,
    params: BeliefParams,
    records_fetched: u64,
    bytes_fetched: u64,
    dict_lookups: u64,
}

impl<'a, S: InvertedFileStore + ?Sized> Evaluator<'a, S> {
    /// Creates an evaluator for one query session.
    pub fn new(
        store: &'a mut S,
        dict: &'a Dictionary,
        docs: &'a DocTable,
        stop: &'a StopWords,
        params: BeliefParams,
    ) -> Self {
        let stats = CollectionStats { num_docs: docs.len() as u32, avg_doc_len: docs.avg_len() };
        Evaluator {
            store,
            dict,
            docs,
            stop,
            stats,
            params,
            records_fetched: 0,
            bytes_fetched: 0,
            dict_lookups: 0,
        }
    }

    /// Complete inverted records fetched so far.
    pub fn records_fetched(&self) -> u64 {
        self.records_fetched
    }

    /// Compressed record bytes fetched so far.
    pub fn bytes_fetched(&self) -> u64 {
        self.bytes_fetched
    }

    /// Dictionary lookups performed during evaluation so far.
    pub fn dict_lookups(&self) -> u64 {
        self.dict_lookups
    }

    /// The reservation pass: scan the query tree and pin whatever evidence
    /// is already resident (Section 3.3). Call before [`Evaluator::evaluate`];
    /// pair with [`Evaluator::release_reservations`].
    pub fn reserve(&mut self, query: &QueryNode) {
        let refs: Vec<u64> = query
            .leaf_terms()
            .into_iter()
            .filter_map(|t| self.dict.lookup(t))
            .map(|id| self.dict.entry(id).store_ref)
            .collect();
        self.store.reserve(&refs);
    }

    /// Releases reservations placed by [`Evaluator::reserve`].
    pub fn release_reservations(&mut self) {
        self.store.release_reservations();
    }

    /// The prefetch pass: hand every leaf term's record reference to the
    /// store in one batch so it can fault them in with coalesced device
    /// I/O, turning per-term fetches during evaluation into buffer hits.
    /// References are deduplicated; prefetching is advisory and counts no
    /// record lookups.
    pub fn prefetch(&mut self, query: &QueryNode) {
        let mut refs: Vec<u64> = query
            .leaf_terms()
            .into_iter()
            .filter_map(|t| self.dict.lookup(t))
            .map(|id| self.dict.entry(id).store_ref)
            .collect();
        refs.sort_unstable();
        refs.dedup();
        self.store.prefetch(&refs);
    }

    fn fetch_record(&mut self, term: &str) -> Result<Option<InvertedRecord>> {
        self.dict_lookups += 1;
        let Some(id) = self.dict.lookup(term) else { return Ok(None) };
        let bytes = self.store.fetch(self.dict.entry(id).store_ref)?;
        self.records_fetched += 1;
        self.bytes_fetched += bytes.len() as u64;
        let record = InvertedRecord::decode(&bytes).ok_or_else(|| {
            InqueryError::BadRecord(format!("record for term {term:?} failed to decode"))
        })?;
        Ok(Some(record))
    }

    fn doc_len(&self, doc: DocId) -> u32 {
        self.docs.info(doc).len
    }

    /// Evaluates a query tree into a score list.
    pub fn evaluate(&mut self, query: &QueryNode) -> Result<ScoreList> {
        match query {
            QueryNode::Term(t) => self.eval_term(t),
            QueryNode::And(children) => {
                let lists = self.eval_children(children)?;
                Ok(combine(&lists, |b| BeliefParams::and(b.iter().copied())))
            }
            QueryNode::Or(children) => {
                let lists = self.eval_children(children)?;
                Ok(combine(&lists, |b| BeliefParams::or(b.iter().copied())))
            }
            QueryNode::Sum(children) => {
                let lists = self.eval_children(children)?;
                Ok(combine(&lists, BeliefParams::sum))
            }
            QueryNode::Max(children) => {
                let lists = self.eval_children(children)?;
                Ok(combine(&lists, |b| BeliefParams::max(b.iter().copied())))
            }
            QueryNode::Not(child) => {
                let inner = self.evaluate(child)?;
                Ok(ScoreList {
                    default: BeliefParams::not(inner.default),
                    entries: inner
                        .entries
                        .into_iter()
                        .map(|(d, b)| (d, BeliefParams::not(b)))
                        .collect(),
                })
            }
            QueryNode::WSum(children) => {
                let mut lists = Vec::with_capacity(children.len());
                let mut weights = Vec::with_capacity(children.len());
                for (w, child) in children {
                    weights.push(*w);
                    lists.push(self.evaluate(child)?);
                }
                Ok(combine(&lists, |beliefs| {
                    let weighted: Vec<(f64, f64)> =
                        weights.iter().copied().zip(beliefs.iter().copied()).collect();
                    BeliefParams::wsum(&weighted)
                }))
            }
            QueryNode::Phrase(terms) => self.eval_proximity(terms, None),
            QueryNode::Window { size, terms } => self.eval_proximity(terms, Some(*size)),
        }
    }

    fn eval_children(&mut self, children: &[QueryNode]) -> Result<Vec<ScoreList>> {
        children.iter().map(|c| self.evaluate(c)).collect()
    }

    fn eval_term(&mut self, term: &str) -> Result<ScoreList> {
        let default = self.params.default_belief;
        let Some(record) = self.fetch_record(term)? else {
            return Ok(ScoreList::uniform(default));
        };
        let df = record.df();
        let entries = record
            .postings
            .iter()
            .map(|p| (p.doc, self.params.term_belief(p.tf, self.doc_len(p.doc), df, &self.stats)))
            .collect();
        Ok(ScoreList { default, entries })
    }

    /// Evaluates `#phrase` (window `None`) or `#uwN` (window `Some(n)`).
    ///
    /// The synthetic term's occurrences are counted per document, its
    /// document frequency is the number of matching documents, and beliefs
    /// are computed exactly as for an ordinary term (INQUERY treats
    /// proximity operators as evidence sources).
    fn eval_proximity(&mut self, terms: &[String], window: Option<u32>) -> Result<ScoreList> {
        // For #phrase, stop words contribute a position offset but no
        // posting list (the index does not store them); the remaining terms
        // must appear at their exact relative offsets.
        let mut needed: Vec<(usize, &str)> = Vec::new();
        for (offset, t) in terms.iter().enumerate() {
            if window.is_none() && (t.len() < 2 || self.stop.contains(t)) {
                continue; // positional wildcard inside a phrase
            }
            needed.push((offset, t));
        }
        if needed.is_empty() {
            return Ok(ScoreList::uniform(self.params.default_belief));
        }
        let mut records = Vec::with_capacity(needed.len());
        for (offset, term) in &needed {
            match self.fetch_record(term)? {
                Some(r) => records.push((*offset, r)),
                // A genuinely unknown content word: the phrase matches
                // nothing anywhere.
                None => return Ok(ScoreList::uniform(self.params.default_belief)),
            }
        }
        // Intersect documents across all needed terms.
        let mut doc_tf: Vec<(DocId, u32)> = Vec::new();
        let first_docs: Vec<DocId> = records[0].1.postings.iter().map(|p| p.doc).collect();
        'docs: for doc in first_docs {
            let mut position_sets: Vec<(usize, &[u32])> = Vec::with_capacity(records.len());
            for (offset, record) in &records {
                match record.postings.binary_search_by_key(&doc, |p| p.doc) {
                    Ok(i) => position_sets.push((*offset, &record.postings[i].positions)),
                    Err(_) => continue 'docs,
                }
            }
            let count = match window {
                None => phrase_matches(&position_sets),
                Some(size) => window_matches(&position_sets, size),
            };
            if count > 0 {
                doc_tf.push((doc, count));
            }
        }
        let df = doc_tf.len() as u32;
        let default = self.params.default_belief;
        let entries = doc_tf
            .into_iter()
            .map(|(doc, tf)| (doc, self.params.term_belief(tf, self.doc_len(doc), df, &self.stats)))
            .collect();
        Ok(ScoreList { default, entries })
    }

    /// Evaluates and ranks: documents with evidence, best belief first
    /// (ties broken by document id for determinism). "Document ranking is a
    /// sorting problem" (Section 3.1).
    pub fn rank(&mut self, query: &QueryNode, k: usize) -> Result<Vec<ScoredDoc>> {
        let list = self.evaluate(query)?;
        Ok(rank_score_list(list, k))
    }
}

/// Ranks an evaluated score list: documents with evidence, best belief
/// first, ties broken by document id, truncated to `k`. Split out of
/// [`Evaluator::rank`] so callers can time evaluation and ranking as
/// separate phases.
pub fn rank_score_list(list: ScoreList, k: usize) -> Vec<ScoredDoc> {
    let mut scored: Vec<ScoredDoc> =
        list.entries.into_iter().map(|(doc, score)| ScoredDoc { doc, score }).collect();
    scored.sort_unstable_by(|a, b| {
        b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal).then(a.doc.cmp(&b.doc))
    });
    scored.truncate(k);
    scored
}

/// Counts exact phrase occurrences: an anchor position `p` matches when
/// every term with phrase offset `o` has a position `p + o`.
fn phrase_matches(position_sets: &[(usize, &[u32])]) -> u32 {
    let (base_offset, base_positions) = position_sets[0];
    let mut count = 0u32;
    'anchor: for &p in base_positions {
        let anchor = p as i64 - base_offset as i64;
        if anchor < 0 {
            continue;
        }
        for &(offset, positions) in &position_sets[1..] {
            let want = (anchor + offset as i64) as u32;
            if positions.binary_search(&want).is_err() {
                continue 'anchor;
            }
        }
        count += 1;
    }
    count
}

/// Counts non-overlapping unordered windows of at most `size` positions
/// containing one occurrence of every term (minimal-cover sweep).
fn window_matches(position_sets: &[(usize, &[u32])], size: u32) -> u32 {
    let k = position_sets.len();
    let mut pointers = vec![0usize; k];
    let mut count = 0u32;
    loop {
        let mut min_pos = u32::MAX;
        let mut max_pos = 0u32;
        let mut min_idx = 0usize;
        for (i, &(_, positions)) in position_sets.iter().enumerate() {
            let Some(&p) = positions.get(pointers[i]) else { return count };
            if p < min_pos {
                min_pos = p;
                min_idx = i;
            }
            max_pos = max_pos.max(p);
        }
        if max_pos - min_pos < size {
            count += 1;
            // Non-overlapping: every pointer advances past this window.
            for (i, &(_, positions)) in position_sets.iter().enumerate() {
                while pointers[i] < positions.len() && positions[pointers[i]] <= max_pos {
                    pointers[i] += 1;
                }
            }
        } else {
            pointers[min_idx] += 1;
        }
    }
}

/// Merges child score lists document-wise with `f` applied to the per-child
/// belief vector.
fn combine(lists: &[ScoreList], f: impl Fn(&[f64]) -> f64) -> ScoreList {
    let defaults: Vec<f64> = lists.iter().map(|l| l.default).collect();
    let mut acc: HashMap<DocId, Vec<f64>> = HashMap::new();
    for (i, list) in lists.iter().enumerate() {
        for &(doc, belief) in &list.entries {
            acc.entry(doc).or_insert_with(|| defaults.clone())[i] = belief;
        }
    }
    let mut entries: Vec<(DocId, f64)> =
        acc.into_iter().map(|(doc, beliefs)| (doc, f(&beliefs))).collect();
    entries.sort_unstable_by_key(|&(doc, _)| doc);
    ScoreList { default: f(&defaults), entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexBuilder;
    use crate::store::MemoryStore;

    /// Builds a tiny collection in a memory store and returns the pieces an
    /// evaluator needs.
    fn corpus() -> (MemoryStore, Dictionary, DocTable, StopWords) {
        let stop = StopWords::default();
        let mut b = IndexBuilder::new(stop.clone());
        b.add_document("D0", "persistent object store performance");
        b.add_document("D1", "object oriented database systems and the object model");
        b.add_document("D2", "information retrieval with inverted file index structures");
        b.add_document("D3", "the persistent object store supports information retrieval");
        b.add_document("D4", "btree index file structures");
        let idx = b.finish();
        let mut store = MemoryStore::new();
        let mut dict = idx.dictionary;
        for (term, bytes) in idx.records {
            let r = store.add(bytes);
            dict.entry_mut(term).store_ref = r;
        }
        (store, dict, idx.documents, stop)
    }

    fn eval(query: &str) -> Vec<ScoredDoc> {
        let (mut store, dict, docs, stop) = corpus();
        let q = crate::query::parser::parse_query(query, &stop).unwrap();
        let mut ev = Evaluator::new(&mut store, &dict, &docs, &stop, BeliefParams::default());
        ev.rank(&q, 10).unwrap()
    }

    #[test]
    fn single_term_ranks_matching_docs() {
        let ranked = eval("object");
        let docs: Vec<u32> = ranked.iter().map(|s| s.doc.0).collect();
        assert!(docs.contains(&0) && docs.contains(&1) && docs.contains(&3));
        assert_eq!(docs.len(), 3);
        // D1 has tf=2 but is longer; all scores must be above the default.
        assert!(ranked.iter().all(|s| s.score > 0.4));
    }

    #[test]
    fn unknown_term_matches_nothing() {
        assert!(eval("zebra").is_empty());
    }

    #[test]
    fn sum_prefers_docs_matching_more_terms() {
        let ranked = eval("persistent object store");
        assert!(!ranked.is_empty());
        // D0 and D3 contain all three; they must outrank D1 (only "object").
        let top2: Vec<u32> = ranked.iter().take(2).map(|s| s.doc.0).collect();
        assert!(top2.contains(&0));
        assert!(top2.contains(&3));
    }

    #[test]
    fn and_rewards_conjunction() {
        let ranked = eval("#and(information retrieval)");
        let top = ranked.first().unwrap();
        assert!(top.doc.0 == 2 || top.doc.0 == 3);
        // Docs with both terms beat the baseline product of defaults.
        assert!(top.score > 0.4 * 0.4);
    }

    #[test]
    fn or_includes_any_match() {
        let ranked = eval("#or(btree mneme)");
        assert_eq!(ranked.len(), 1, "only D4 mentions btree; mneme is unknown");
        assert_eq!(ranked[0].doc.0, 4);
    }

    #[test]
    fn not_inverts_scores() {
        let (mut store, dict, docs, stop) = corpus();
        let q = crate::query::parser::parse_query("#not(object)", &stop).unwrap();
        let mut ev = Evaluator::new(&mut store, &dict, &docs, &stop, BeliefParams::default());
        let list = ev.evaluate(&q).unwrap();
        assert!((list.default - 0.6).abs() < 1e-12);
        // Docs containing "object" now score below the default.
        assert!(list.entries.iter().all(|&(_, b)| b < 0.6));
    }

    #[test]
    fn phrase_requires_adjacency() {
        let ranked = eval("#phrase(object store)");
        let docs: Vec<u32> = ranked.iter().map(|s| s.doc.0).collect();
        assert_eq!(docs, vec![0, 3], "only D0/D3 contain 'object store' adjacently");
        // D1 contains both words but never adjacent.
        assert!(!docs.contains(&1));
    }

    #[test]
    fn phrase_spans_stop_words() {
        // D3: "the persistent object store supports information retrieval"
        // "store supports information" has no stop words; test one WITH:
        // "retrieval with inverted" in D2 ("with" is a stop word).
        let ranked = eval("#phrase(retrieval with inverted)");
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].doc.0, 2);
    }

    #[test]
    fn window_matches_within_size() {
        // D2: information(0) retrieval(1) ... index(5): within a window of
        // 8 but not of 2.
        let wide = eval("#uw8(information index)");
        assert_eq!(wide.len(), 1);
        assert_eq!(wide[0].doc.0, 2);
        let narrow = eval("#uw2(information index)");
        assert!(narrow.is_empty());
    }

    #[test]
    fn wsum_weights_shift_ranking() {
        // Weight "btree" heavily: D4 must win over the object-store docs.
        let ranked = eval("#wsum(10 btree 1 object)");
        assert_eq!(ranked.first().unwrap().doc.0, 4);
        // And inverted weights flip it.
        let ranked = eval("#wsum(1 btree 10 object)");
        assert_ne!(ranked.first().unwrap().doc.0, 4);
    }

    #[test]
    fn max_takes_strongest_evidence() {
        let ranked = eval("#max(btree object)");
        let docs: Vec<u32> = ranked.iter().map(|s| s.doc.0).collect();
        for d in [0, 1, 3, 4] {
            assert!(docs.contains(&d));
        }
    }

    #[test]
    fn term_at_a_time_fetches_each_record_once_per_occurrence() {
        let (mut store, dict, docs, stop) = corpus();
        let q =
            crate::query::parser::parse_query("#sum(object #and(object store))", &stop).unwrap();
        let mut ev = Evaluator::new(&mut store, &dict, &docs, &stop, BeliefParams::default());
        ev.rank(&q, 5).unwrap();
        // "object" appears twice in the tree → fetched twice (no caching at
        // this layer; that is the store's job, per the paper).
        assert_eq!(ev.records_fetched(), 3);
        assert!(ev.bytes_fetched() > 0);
        let _ = ev;
        assert_eq!(store.record_lookups(), 3);
    }

    #[test]
    fn ranking_is_deterministic_on_ties() {
        let a = eval("information retrieval");
        let b = eval("information retrieval");
        assert_eq!(a, b);
    }

    #[test]
    fn combine_fills_missing_children_with_defaults() {
        let a = ScoreList { default: 0.4, entries: vec![(DocId(1), 0.8)] };
        let b = ScoreList { default: 0.5, entries: vec![(DocId(2), 0.9)] };
        let merged = combine(&[a, b], BeliefParams::sum);
        assert_eq!(merged.entries.len(), 2);
        assert!((merged.entries[0].1 - (0.8 + 0.5) / 2.0).abs() < 1e-12);
        assert!((merged.entries[1].1 - (0.4 + 0.9) / 2.0).abs() < 1e-12);
        assert!((merged.default - 0.45).abs() < 1e-12);
    }

    #[test]
    fn window_count_is_non_overlapping() {
        // positions: a = [0, 10, 20], b = [1, 11, 21] → 3 disjoint windows.
        let a = [0u32, 10, 20];
        let b = [1u32, 11, 21];
        assert_eq!(window_matches(&[(0, &a), (1, &b)], 3), 3);
        // Overlap case: a = [0], b = [1, 2]: one window only.
        let a = [0u32];
        let b = [1u32, 2];
        assert_eq!(window_matches(&[(0, &a), (1, &b)], 3), 1);
    }

    #[test]
    fn phrase_match_counting() {
        // "x y x y" positions: x = [0, 2], y = [1, 3] → "x y" occurs twice.
        let x = [0u32, 2];
        let y = [1u32, 3];
        assert_eq!(phrase_matches(&[(0, &x), (1, &y)]), 2);
        // Anchor underflow: y-first phrase offsets.
        let sets = [(1usize, &y[..]), (0usize, &x[..])];
        assert_eq!(phrase_matches(&sets), 2);
    }
}

//! The query subsystem: parsing and evaluation of structured queries.

pub mod ast;
pub mod daat;
pub mod eval;
pub mod explain;
pub mod parser;

pub use ast::QueryNode;
pub use daat::{flatten_bag, merge_topk, rank_daat};
pub use eval::{rank_score_list, Evaluator, ScoreList, ScoredDoc};
pub use explain::Explanation;
pub use parser::parse_query;
